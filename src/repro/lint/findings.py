"""The :class:`Finding` record every checker emits.

A finding pins one contract violation to a file and line.  Its
:meth:`Finding.key` deliberately excludes the line number: the baseline
matches findings by *content* (file, rule, snippet), so unrelated edits
that shift line numbers do not resurrect baselined findings.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any

#: Finding severities, in increasing order of concern.
SEVERITIES = ("warning", "error")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str  #: repository-relative POSIX path of the offending file
    line: int  #: 1-indexed line of the violation
    rule: str  #: rule identifier, e.g. ``"RL001"``
    message: str  #: human-readable description of the violation
    severity: str = "error"  #: ``"error"`` or ``"warning"``
    snippet: str = ""  #: stripped source line, for reports and baselining

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    def key(self) -> tuple[str, str, str]:
        """Line-independent identity used for baseline matching."""
        return (self.path, self.rule, self.snippet)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form (inverse of :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Finding":
        """Rebuild a finding from :meth:`to_dict` output."""
        return cls(
            path=str(data["path"]),
            line=int(data["line"]),
            rule=str(data["rule"]),
            message=str(data["message"]),
            severity=str(data.get("severity", "error")),
            snippet=str(data.get("snippet", "")),
        )

    def render(self) -> str:
        """The one-line text form: ``path:line: RULE message``."""
        return f"{self.path}:{self.line}: {self.rule} {self.message}"
