"""Parsed-source model shared by every checker.

The engine parses each file exactly once into a :class:`Module` (source,
AST, suppression table) and bundles them as a :class:`Project`, so five
checkers cost one parse per file.  The import-alias helpers here give
checkers a common way to resolve ``np.random.default_rng`` or
``vectorized._compute`` back to fully-qualified dotted names without
executing any project code.
"""

from __future__ import annotations

import ast
import pathlib
from dataclasses import dataclass, field

from repro.lint import discovery
from repro.lint.suppress import suppressions_for


@dataclass
class Module:
    """One parsed source file."""

    path: pathlib.Path  #: absolute path on disk
    rel: str  #: repository-relative POSIX path (finding coordinates)
    name: str  #: dotted module name, e.g. ``repro.core.cache``
    source: str  #: raw file contents
    tree: ast.Module  #: parsed AST
    suppressions: dict[int, frozenset[str] | None] = field(default_factory=dict)

    def line(self, lineno: int) -> str:
        """The stripped source line at 1-indexed ``lineno``."""
        lines = self.source.splitlines()
        if 1 <= lineno <= len(lines):
            return lines[lineno - 1].strip()
        return ""


@dataclass
class Project:
    """Every module of one lint run, indexed by dotted name."""

    root: pathlib.Path
    modules: list[Module]
    #: files that failed to parse: (rel path, error message, line)
    broken: list[tuple[str, str, int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.by_name: dict[str, Module] = {m.name: m for m in self.modules}

    def module(self, name: str) -> Module | None:
        """The module registered under dotted ``name``, or ``None``."""
        return self.by_name.get(name)


def load_project(
    targets: list[str | pathlib.Path], root: pathlib.Path
) -> Project:
    """Parse every Python file under ``targets`` into a :class:`Project`.

    Unparsable files do not abort the run; they are recorded in
    :attr:`Project.broken` and surfaced by the engine as findings (a
    syntax error is never a reason to skip enforcement silently).
    """
    modules: list[Module] = []
    broken: list[tuple[str, str, int]] = []
    for path in discovery.iter_python_files(targets):
        rel = discovery.relative_posix(path, root)
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            line = getattr(exc, "lineno", 1) or 1
            broken.append((rel, f"{type(exc).__name__}: {exc}", int(line)))
            continue
        modules.append(
            Module(
                path=path,
                rel=rel,
                name=discovery.module_name_for(path, root),
                source=source,
                tree=tree,
                suppressions=suppressions_for(source),
            )
        )
    return Project(root=root, modules=modules, broken=broken)


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Local name → fully-dotted target for a module's imports.

    ``import numpy as np`` maps ``np`` to ``numpy``; ``from repro import
    obs`` maps ``obs`` to ``repro.obs``; ``from repro.rng import derive``
    maps ``derive`` to ``repro.rng.derive``.  Relative imports are left
    out — the repository uses absolute imports throughout.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                local = item.asname or item.name.split(".")[0]
                target = item.name if item.asname else item.name.split(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for item in node.names:
                if item.name == "*":
                    continue
                aliases[item.asname or item.name] = f"{node.module}.{item.name}"
    return aliases


def dotted_parts(node: ast.expr) -> list[str] | None:
    """``["np", "random", "default_rng"]`` for nested attribute access.

    Returns ``None`` when the expression is not a plain name/attribute
    chain (calls, subscripts, …).
    """
    parts: list[str] = []
    cursor: ast.expr = node
    while isinstance(cursor, ast.Attribute):
        parts.append(cursor.attr)
        cursor = cursor.value
    if not isinstance(cursor, ast.Name):
        return None
    parts.append(cursor.id)
    parts.reverse()
    return parts


def resolve_dotted(
    node: ast.expr, aliases: dict[str, str]
) -> str | None:
    """Fully-qualified dotted name of an attribute chain, or ``None``.

    The chain's leftmost name is resolved through the module's import
    aliases, so ``np.random.seed`` resolves to ``numpy.random.seed`` and
    ``rng_mod.derive`` to ``repro.rng.derive``.
    """
    parts = dotted_parts(node)
    if parts is None:
        return None
    head, rest = parts[0], parts[1:]
    resolved_head = aliases.get(head, head)
    return ".".join([resolved_head, *rest])
