"""Best-effort static call graph over a :class:`~repro.lint.project.Project`.

Built once per lint run and shared by the fork-safety (RL003) and
observability-coverage (RL005) checkers.  Resolution is deliberately
conservative and purely syntactic:

* ``foo(...)`` resolves to a same-module function, else a from-imported
  function;
* ``mod.foo(...)`` resolves through the module's import aliases
  (``from repro.core import vectorized`` makes ``vectorized._compute``
  resolve to ``repro.core.vectorized._compute``);
* ``self.foo(...)`` resolves to a method of the enclosing class;
* anything else (calls on arbitrary objects, dynamic dispatch) stays
  unresolved — reachability never guesses.

Each function also records whether it calls the :mod:`repro.obs` facade
directly, which module-level globals it mutates, and the worker entry
points it hands to a process pool (``.submit(f, …)``,
``.apply_async(f, …)`` or ``Process(target=f)``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.project import (
    Module,
    Project,
    dotted_parts,
    import_aliases,
    resolve_dotted,
)

#: Method names that mutate their receiver in place.
MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "sort",
        "reverse",
        "put",
    }
)

#: Executor/pool methods whose first argument runs in a worker process.
_DISPATCH_METHODS = frozenset({"submit", "apply_async", "map_async"})


@dataclass
class GlobalMutation:
    """One in-function mutation of a module-level name."""

    name: str  #: the module-level global being mutated
    line: int  #: 1-indexed line of the mutation
    how: str  #: human-readable description ("rebinds", "mutates", …)


@dataclass
class FunctionInfo:
    """Call-graph node for one function or method."""

    qualname: str  #: ``module.func`` or ``module.Class.method``
    module: Module
    node: ast.FunctionDef | ast.AsyncFunctionDef
    calls: set[str] = field(default_factory=set)
    has_obs: bool = False
    mutations: list[GlobalMutation] = field(default_factory=list)


class CallGraph:
    """Functions, their resolved callees, and pool entry points."""

    def __init__(self, project: Project) -> None:
        """Analyze every module of ``project`` (one AST pass each)."""
        self.functions: dict[str, FunctionInfo] = {}
        #: (entry-point qualname, dispatch line, module) triples
        self.entry_points: list[tuple[str, int, Module]] = []
        for module in project.modules:
            self._analyze_module(module)

    # -- construction --------------------------------------------------

    def _analyze_module(self, module: Module) -> None:
        aliases = import_aliases(module.tree)
        local_funcs = {
            node.name
            for node in module.tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        module_globals = _module_level_names(module.tree)

        def handle(
            node: ast.FunctionDef | ast.AsyncFunctionDef, class_name: str | None
        ) -> None:
            qual = (
                f"{module.name}.{class_name}.{node.name}"
                if class_name
                else f"{module.name}.{node.name}"
            )
            info = FunctionInfo(qualname=qual, module=module, node=node)
            self._analyze_function(
                info, aliases, local_funcs, module_globals, class_name, module
            )
            self.functions[info.qualname] = info

        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                handle(node, None)
            elif isinstance(node, ast.ClassDef):
                for sub in node.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        handle(sub, node.name)

    def _analyze_function(
        self,
        info: FunctionInfo,
        aliases: dict[str, str],
        local_funcs: set[str],
        module_globals: set[str],
        class_name: str | None,
        module: Module,
    ) -> None:
        node = info.node
        global_decls: set[str] = set()
        local_bindings = _local_bindings(node)
        for inner in ast.walk(node):
            if isinstance(inner, ast.Global):
                global_decls.update(inner.names)

        for inner in ast.walk(node):
            if isinstance(inner, ast.Call):
                callee = self._resolve_call(
                    inner, aliases, local_funcs, class_name, module
                )
                if callee is not None:
                    info.calls.add(callee)
                    if callee.startswith("repro.obs."):
                        info.has_obs = True
                self._record_dispatch(
                    inner, aliases, local_funcs, module, class_name
                )
                self._record_method_mutation(
                    inner, info, module_globals, global_decls, local_bindings
                )
            elif isinstance(inner, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                self._record_assignment_mutation(
                    inner, info, module_globals, global_decls, local_bindings
                )

    def _resolve_call(
        self,
        call: ast.Call,
        aliases: dict[str, str],
        local_funcs: set[str],
        class_name: str | None,
        module: Module,
    ) -> str | None:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id in local_funcs:
                return f"{module.name}.{func.id}"
            return aliases.get(func.id)
        if isinstance(func, ast.Attribute):
            parts = dotted_parts(func)
            if parts is None:
                return None
            if parts[0] == "self" and class_name and len(parts) == 2:
                return f"{module.name}.{class_name}.{parts[1]}"
            return resolve_dotted(func, aliases)
        return None

    def _record_dispatch(
        self,
        call: ast.Call,
        aliases: dict[str, str],
        local_funcs: set[str],
        module: Module,
        class_name: str | None,
    ) -> None:
        """Remember functions handed to a pool/process as entry points."""
        target: ast.expr | None = None
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr in _DISPATCH_METHODS:
            if call.args:
                target = call.args[0]
        else:
            resolved = (
                resolve_dotted(func, aliases)
                if isinstance(func, (ast.Attribute, ast.Name))
                else None
            )
            if resolved in ("multiprocessing.Process", "threading.Thread"):
                for keyword in call.keywords:
                    if keyword.arg == "target":
                        target = keyword.value
        if target is None:
            return
        qual = self._resolve_call(
            ast.Call(func=target, args=[], keywords=[]),
            aliases,
            local_funcs,
            class_name,
            module,
        )
        if qual is not None:
            self.entry_points.append((qual, call.lineno, module))

    @staticmethod
    def _record_method_mutation(
        call: ast.Call,
        info: FunctionInfo,
        module_globals: set[str],
        global_decls: set[str],
        local_bindings: set[str],
    ) -> None:
        func = call.func
        if not (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.attr in MUTATING_METHODS
        ):
            return
        name = func.value.id
        shadowed = name in local_bindings and name not in global_decls
        if name in module_globals and not shadowed:
            info.mutations.append(
                GlobalMutation(
                    name=name,
                    line=call.lineno,
                    how=f"calls mutating method .{func.attr}() on",
                )
            )

    @staticmethod
    def _record_assignment_mutation(
        stmt: ast.Assign | ast.AugAssign | ast.AnnAssign,
        info: FunctionInfo,
        module_globals: set[str],
        global_decls: set[str],
        local_bindings: set[str],
    ) -> None:
        targets: list[ast.expr]
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        else:
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, ast.Name):
                if target.id in global_decls and target.id in module_globals:
                    info.mutations.append(
                        GlobalMutation(
                            name=target.id, line=stmt.lineno, how="rebinds"
                        )
                    )
            elif isinstance(target, ast.Subscript) and isinstance(
                target.value, ast.Name
            ):
                name = target.value.id
                shadowed = name in local_bindings and name not in global_decls
                if name in module_globals and not shadowed:
                    info.mutations.append(
                        GlobalMutation(
                            name=name, line=stmt.lineno, how="assigns into"
                        )
                    )

    # -- queries -------------------------------------------------------

    def reachable_from(self, roots: list[str]) -> set[str]:
        """Transitive closure of resolvable callees starting at ``roots``."""
        seen: set[str] = set()
        frontier = [root for root in roots if root in self.functions]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            for callee in self.functions[current].calls:
                if callee in self.functions and callee not in seen:
                    frontier.append(callee)
        return seen

    def instrumented(self, qualname: str) -> bool:
        """True when the function calls :mod:`repro.obs` directly, or
        directly calls a resolvable function that does (one delegation
        level — the span still opens on every invocation)."""
        info = self.functions.get(qualname)
        if info is None:
            return False
        if info.has_obs:
            return True
        return any(
            callee in self.functions and self.functions[callee].has_obs
            for callee in info.calls
        )


def _module_level_names(tree: ast.Module) -> set[str]:
    """Names bound by assignment at module top level."""
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
    return names


def _local_bindings(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> set[str]:
    """Parameter and assignment bindings local to ``func``."""
    names: set[str] = set()
    args = func.args
    for arg in [
        *args.posonlyargs,
        *args.args,
        *args.kwonlyargs,
        *([args.vararg] if args.vararg else []),
        *([args.kwarg] if args.kwarg else []),
    ]:
        names.add(arg.arg)
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if isinstance(item.optional_vars, ast.Name):
                    names.add(item.optional_vars.id)
        elif isinstance(node, ast.comprehension):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
    return names
