"""Interprocedural call graph over a :class:`~repro.lint.project.Project`.

Built once per lint run on top of the shared
:class:`~repro.lint.symbols.SymbolTable` (see ``repro.lint.analysis``)
and consumed by the fork-safety (RL003), observability-coverage
(RL005), async-blocking (RL006), lock-guard (RL007) and lock-order
(RL008) checkers.  Resolution is deliberately conservative and purely
syntactic — calls on objects the symbol table cannot type stay
unresolved rather than guessed.

Beyond the resolved callee edges, every function records the
concurrency facts the new rules need:

* which locks are held at each call / ``await`` / lock acquisition
  (a ``with <lock>:`` stack maintained while walking the body);
* reads and writes of ``# guarded-by:``-declared state, with the locks
  held at the access;
* dispatch points — functions handed to a process pool, a thread, or
  an asyncio executor boundary (``asyncio.to_thread`` /
  ``loop.run_in_executor``).  Dispatch targets are *not* call edges:
  crossing an executor boundary is exactly what makes a blocking call
  legal inside a coroutine (RL006).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.project import Module, Project
from repro.lint.symbols import FunctionSymbol, ModuleSymbols, SymbolTable

#: Method names that mutate their receiver in place.
MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "sort",
        "reverse",
        "put",
    }
)

#: Executor/pool methods whose first argument runs in a worker.
_DISPATCH_METHODS = frozenset({"submit", "apply_async", "map_async"})

#: Receiver types that pin a ``.submit()`` dispatch to a worker kind.
_EXECUTOR_KINDS = {
    "concurrent.futures.ProcessPoolExecutor": "process",
    "concurrent.futures.ThreadPoolExecutor": "thread",
}


@dataclass
class GlobalMutation:
    """One in-function mutation of a module-level name."""

    name: str  #: the module-level global being mutated
    line: int  #: 1-indexed line of the mutation
    how: str  #: human-readable description ("rebinds", "mutates", …)


@dataclass(frozen=True)
class CallSite:
    """One resolved call, with the locks held when it runs."""

    callee: str  #: canonical qualname of the callee
    line: int
    held: tuple[str, ...]  #: canonical lock ids held at the call site


@dataclass(frozen=True)
class MethodCall:
    """One *unresolved* ``obj.method(...)`` call (receiver untyped)."""

    attr: str  #: the method name
    line: int
    held: tuple[str, ...]


@dataclass(frozen=True)
class LockAcquisition:
    """One ``with <lock>:`` entry (or the lock a function requires)."""

    lock: str  #: canonical lock id being acquired
    line: int
    held: tuple[str, ...]  #: locks already held when acquiring


@dataclass(frozen=True)
class GuardedAccess:
    """One read/write of ``# guarded-by:``-declared state."""

    target: str  #: canonical name of the guarded attribute/global
    line: int
    write: bool
    held: tuple[str, ...]


@dataclass(frozen=True)
class AwaitSite:
    """One ``await`` expression, with the locks held around it."""

    line: int
    held: tuple[str, ...]


@dataclass(frozen=True)
class DispatchPoint:
    """One function handed to a pool/thread/executor boundary.

    ``kind`` is ``"process"`` (fork pool, ``multiprocessing.Process``,
    untyped ``.submit``), ``"thread"`` (``threading.Thread``, a
    ``.submit`` on a receiver typed as ``ThreadPoolExecutor``) or
    ``"offload"`` (``asyncio.to_thread`` / ``loop.run_in_executor`` —
    still a thread, but reached from the event loop).
    """

    target: str  #: canonical qualname of the dispatched function
    line: int
    module: Module
    kind: str


@dataclass
class FunctionInfo:
    """Call-graph node for one function or method."""

    qualname: str  #: ``module.func`` or ``module.Class.method``
    module: Module
    node: ast.FunctionDef | ast.AsyncFunctionDef
    is_async: bool = False
    #: resolved callee qualname → first call line (iterates like the
    #: historical ``set`` of callees)
    calls: dict[str, int] = field(default_factory=dict)
    call_sites: list[CallSite] = field(default_factory=list)
    method_calls: list[MethodCall] = field(default_factory=list)
    has_obs: bool = False
    mutations: list[GlobalMutation] = field(default_factory=list)
    acquisitions: list[LockAcquisition] = field(default_factory=list)
    accesses: list[GuardedAccess] = field(default_factory=list)
    awaits: list[AwaitSite] = field(default_factory=list)
    #: lock the caller must hold (function-level ``# guarded-by:``)
    requires_lock: str | None = None


class CallGraph:
    """Functions, their resolved callees, locks, and dispatch points."""

    def __init__(self, project: Project, symbols: SymbolTable | None = None) -> None:
        """Analyze every function of ``project`` (one AST pass each).

        Pass the run's shared :class:`SymbolTable` to avoid rebuilding
        it; without one a private table is constructed.
        """
        self.symbols = symbols if symbols is not None else SymbolTable(project)
        self.functions: dict[str, FunctionInfo] = {}
        self.dispatches: list[DispatchPoint] = []
        for symbol in self.symbols.functions.values():
            info = FunctionInfo(
                qualname=symbol.qualname,
                module=symbol.module,
                node=symbol.node,
                is_async=symbol.is_async,
                requires_lock=symbol.requires_lock,
            )
            _FunctionVisitor(self, symbol, info).run()
            self.functions[info.qualname] = info

    # -- queries -------------------------------------------------------

    @property
    def entry_points(self) -> list[tuple[str, int, Module]]:
        """(qualname, line, module) of process/thread worker entry points.

        The historical RL003 surface: executor-offload targets
        (``asyncio.to_thread`` / ``run_in_executor``) are excluded —
        they run in the serving process where in-process locks still
        apply; use :attr:`dispatches` for the full picture.
        """
        return [
            (d.target, d.line, d.module)
            for d in self.dispatches
            if d.kind in ("process", "thread")
        ]

    def dispatch_targets(self, kinds: tuple[str, ...]) -> list[DispatchPoint]:
        """Dispatch points whose kind is in ``kinds``."""
        return [d for d in self.dispatches if d.kind in kinds]

    def reachable_from(self, roots: list[str]) -> set[str]:
        """Transitive closure of resolvable callees starting at ``roots``."""
        seen: set[str] = set()
        frontier = [root for root in roots if root in self.functions]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            for callee in self.functions[current].calls:
                if callee in self.functions and callee not in seen:
                    frontier.append(callee)
        return seen

    def instrumented(self, qualname: str) -> bool:
        """True when the function calls :mod:`repro.obs` directly, or
        directly calls a resolvable function that does (one delegation
        level — the span still opens on every invocation)."""
        info = self.functions.get(qualname)
        if info is None:
            return False
        if info.has_obs:
            return True
        return any(
            callee in self.functions and self.functions[callee].has_obs
            for callee in info.calls
        )


class _FunctionVisitor(ast.NodeVisitor):
    """One function body walk maintaining the held-locks stack."""

    def __init__(
        self, graph: CallGraph, symbol: FunctionSymbol, info: FunctionInfo
    ) -> None:
        self.graph = graph
        self.symbols = graph.symbols
        self.symbol = symbol
        self.info = info
        self.module = symbol.module
        self.syms: ModuleSymbols = graph.symbols.modules[symbol.module.name]
        self.held: list[str] = (
            [symbol.requires_lock] if symbol.requires_lock else []
        )
        self.locals = frozenset(_local_bindings(symbol.node))
        self.module_globals = _module_level_names(symbol.module.tree)
        self.global_decls: set[str] = set()
        for inner in ast.walk(symbol.node):
            if isinstance(inner, ast.Global):
                self.global_decls.update(inner.names)

    def run(self) -> None:
        """Visit the function body (not the ``def`` node itself)."""
        for decorator in self.symbol.node.decorator_list:
            self.visit(decorator)
        for stmt in self.symbol.node.body:
            self.visit(stmt)

    # -- resolution helpers -------------------------------------------

    def _resolve(self, node: ast.expr) -> str | None:
        return self.symbols.resolve(node, self.syms, self.symbol, self.locals)

    def _guard_access(self, target: str, line: int, write: bool) -> None:
        spec = self.symbols.guards.get(target)
        if spec is None:
            return
        if spec.module == self.module.name and line == spec.line:
            return  # the declaration line itself
        self.info.accesses.append(
            GuardedAccess(target=target, line=line, write=write, held=tuple(self.held))
        )

    # -- locks ---------------------------------------------------------

    def visit_With(self, node: ast.With) -> None:
        acquired = 0
        for item in node.items:
            resolved = self._resolve(item.context_expr)
            if resolved is not None and resolved in self.symbols.locks:
                self.info.acquisitions.append(
                    LockAcquisition(
                        lock=resolved,
                        line=item.context_expr.lineno,
                        held=tuple(self.held),
                    )
                )
                self.held.append(resolved)
                acquired += 1
            else:
                self.visit(item.context_expr)
        for stmt in node.body:
            self.visit(stmt)
        if acquired:
            del self.held[-acquired:]

    def visit_Await(self, node: ast.Await) -> None:
        self.info.awaits.append(AwaitSite(line=node.lineno, held=tuple(self.held)))
        self.generic_visit(node)

    # -- calls ---------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        resolved = self._resolve(func)
        if resolved is not None:
            self.info.calls.setdefault(resolved, node.lineno)
            self.info.call_sites.append(
                CallSite(callee=resolved, line=node.lineno, held=tuple(self.held))
            )
            if resolved.startswith("repro.obs."):
                self.info.has_obs = True
            if resolved.rsplit(".", 1)[-1] == "acquire":
                owner = resolved.rsplit(".", 1)[0]
                if owner in self.symbols.locks:
                    self.info.acquisitions.append(
                        LockAcquisition(
                            lock=owner, line=node.lineno, held=tuple(self.held)
                        )
                    )
        if isinstance(func, ast.Attribute):
            if resolved is None:
                self.info.method_calls.append(
                    MethodCall(
                        attr=func.attr, line=node.lineno, held=tuple(self.held)
                    )
                )
            receiver = self._resolve(func.value)
            if receiver is not None and receiver in self.symbols.guards:
                self._guard_access(
                    receiver, node.lineno, write=func.attr in MUTATING_METHODS
                )
            else:
                self.visit(func.value)
            self._record_method_mutation(node, func)
        elif not isinstance(func, ast.Name):
            self.visit(func)
        self._record_dispatch(node, resolved)
        for arg in node.args:
            self.visit(arg)
        for keyword in node.keywords:
            self.visit(keyword.value)

    def _record_dispatch(self, node: ast.Call, resolved: str | None) -> None:
        """Remember functions handed across a worker boundary."""
        target: ast.expr | None = None
        kind = "process"
        func = node.func
        if resolved == "asyncio.to_thread" and node.args:
            target, kind = node.args[0], "offload"
        elif isinstance(func, ast.Attribute) and func.attr == "run_in_executor":
            if len(node.args) >= 2:
                target, kind = node.args[1], "offload"
        elif isinstance(func, ast.Attribute) and func.attr in _DISPATCH_METHODS:
            if node.args:
                target = node.args[0]
                receiver_type = self.symbols.resolve_type(
                    func.value, self.syms, self.symbol
                )
                kind = _EXECUTOR_KINDS.get(receiver_type or "", "process")
        elif resolved == "multiprocessing.Process":
            target = _keyword(node, "target")
        elif resolved == "threading.Thread":
            target, kind = _keyword(node, "target"), "thread"
        if target is None:
            return
        qual = self._resolve(target)
        if qual is not None:
            self.graph.dispatches.append(
                DispatchPoint(
                    target=qual, line=node.lineno, module=self.module, kind=kind
                )
            )

    def _record_method_mutation(self, node: ast.Call, func: ast.Attribute) -> None:
        if not (
            isinstance(func.value, ast.Name) and func.attr in MUTATING_METHODS
        ):
            return
        name = func.value.id
        shadowed = name in self.locals and name not in self.global_decls
        if name in self.module_globals and not shadowed:
            self.info.mutations.append(
                GlobalMutation(
                    name=name,
                    line=node.lineno,
                    how=f"calls mutating method .{func.attr}() on",
                )
            )

    # -- guarded state accesses ---------------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.ctx, ast.Load):
            resolved = self._resolve(node)
            if resolved is not None and resolved in self.symbols.guards:
                self._guard_access(resolved, node.lineno, write=False)
                return
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            name = node.id
            shadowed = name in self.locals and name not in self.global_decls
            if name in self.syms.global_names and not shadowed:
                self._guard_access(
                    f"{self.module.name}.{name}", node.lineno, write=False
                )

    # -- assignments ---------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_store(target, node.lineno)
        self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_store(node.target, node.lineno)
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._record_store(node.target, node.lineno)
        if node.value is not None:
            self.visit(node.value)

    def _record_store(self, target: ast.expr, line: int) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_store(element, line)
        elif isinstance(target, ast.Starred):
            self._record_store(target.value, line)
        elif isinstance(target, ast.Attribute):
            resolved = self._resolve(target)
            if resolved is not None:
                self._guard_access(resolved, line, write=True)
            else:
                self.visit(target.value)
        elif isinstance(target, ast.Subscript):
            base_resolved = self._resolve(target.value)
            if base_resolved is not None and base_resolved in self.symbols.guards:
                self._guard_access(base_resolved, line, write=True)
            else:
                self.visit(target.value)
            name = (
                target.value.id if isinstance(target.value, ast.Name) else None
            )
            if name is not None:
                shadowed = name in self.locals and name not in self.global_decls
                if name in self.module_globals and not shadowed:
                    self.info.mutations.append(
                        GlobalMutation(name=name, line=line, how="assigns into")
                    )
            self.visit(target.slice)
        elif isinstance(target, ast.Name):
            if target.id in self.global_decls:
                if target.id in self.module_globals:
                    self.info.mutations.append(
                        GlobalMutation(name=target.id, line=line, how="rebinds")
                    )
                self._guard_access(
                    f"{self.module.name}.{target.id}", line, write=True
                )

    # -- nested definitions -------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_deferred(node.body)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_deferred(node.body)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_deferred([node.body])

    def _visit_deferred(self, body: list[ast.stmt] | list[ast.expr]) -> None:
        # A nested def/lambda body runs later: calls inside it still
        # belong to this function (historical behavior), but no lock
        # from the enclosing ``with`` is held when it finally executes.
        saved, self.held = self.held, []
        for stmt in body:
            self.visit(stmt)
        self.held = saved


def _keyword(node: ast.Call, name: str) -> ast.expr | None:
    """The value of keyword argument ``name``, or ``None``."""
    for keyword in node.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def _module_level_names(tree: ast.Module) -> set[str]:
    """Names bound by assignment at module top level."""
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
    return names


def _local_bindings(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> set[str]:
    """Parameter and assignment bindings local to ``func``."""
    names: set[str] = set()
    args = func.args
    for arg in [
        *args.posonlyargs,
        *args.args,
        *args.kwonlyargs,
        *([args.vararg] if args.vararg else []),
        *([args.kwarg] if args.kwarg else []),
    ]:
        names.add(arg.arg)
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if isinstance(item.optional_vars, ast.Name):
                    names.add(item.optional_vars.id)
        elif isinstance(node, ast.comprehension):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
    return names
