"""The committed findings baseline.

A baseline freezes a set of *known* findings so a newly-adopted rule can
land as a blocking gate without first fixing the whole tree.  This
repository ships an **empty** baseline — every true positive the eight
rules found was fixed instead — so the file mostly documents the
mechanism and keeps the ``--update-baseline`` workflow honest.

Findings are matched by :meth:`repro.lint.findings.Finding.key` (file,
rule, snippet — deliberately not the line number) with multiplicity: two
identical violations in one file need two baseline entries, and fixing
one of them surfaces the other.
"""

from __future__ import annotations

import json
import pathlib
from collections import Counter
from typing import Iterable, Sequence

from repro.lint.findings import Finding

#: Baseline file schema version.
FORMAT_VERSION = 1


class BaselineError(ValueError):
    """The baseline file exists but cannot be used."""


class Baseline:
    """A multiset of accepted findings, loaded from / saved to JSON."""

    def __init__(self, findings: Iterable[Finding] = ()) -> None:
        """Build a baseline accepting exactly ``findings``."""
        self._counts: Counter[tuple[str, str, str]] = Counter(
            f.key() for f in findings
        )
        self._entries: list[Finding] = list(findings)

    def __len__(self) -> int:
        return sum(self._counts.values())

    @property
    def entries(self) -> list[Finding]:
        """The accepted findings as recorded in the file."""
        return list(self._entries)

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        p = pathlib.Path(path)
        if not p.exists():
            return cls()
        try:
            data = json.loads(p.read_text())
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise BaselineError(f"baseline {p} is not valid JSON: {exc}") from exc
        if not isinstance(data, dict) or data.get("format_version") != FORMAT_VERSION:
            raise BaselineError(
                f"baseline {p} has unsupported format "
                f"{data.get('format_version') if isinstance(data, dict) else data!r}"
            )
        raw = data.get("findings", [])
        if not isinstance(raw, list):
            raise BaselineError(f"baseline {p} findings must be a list")
        return cls([Finding.from_dict(entry) for entry in raw])

    @classmethod
    def save(
        cls, path: str | pathlib.Path, findings: Sequence[Finding]
    ) -> "Baseline":
        """Write ``findings`` as the new baseline and return it."""
        document = {
            "format_version": FORMAT_VERSION,
            "findings": [f.to_dict() for f in sorted(findings)],
        }
        pathlib.Path(path).write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n"
        )
        return cls(findings)

    def filter(self, findings: Sequence[Finding]) -> tuple[list[Finding], int]:
        """Split findings into (new, baselined-count).

        Each baseline entry absorbs at most one matching finding
        (multiset semantics), so regressions beyond the accepted count
        still surface.
        """
        budget = Counter(self._counts)
        fresh: list[Finding] = []
        absorbed = 0
        for finding in findings:
            if budget[finding.key()] > 0:
                budget[finding.key()] -= 1
                absorbed += 1
            else:
                fresh.append(finding)
        return fresh, absorbed

    def stale(self, findings: Sequence[Finding]) -> list[Finding]:
        """Baseline entries no current finding matches.

        Pass the *raw* (pre-suppression) findings: an entry is stale
        only when the violation it recorded is truly gone, at which
        point the entry should be deleted so it cannot silently absorb
        an unrelated future regression with the same content key.
        Multiset-aware: three entries against two live findings report
        one stale entry.
        """
        remaining = Counter(self._counts)
        for finding in findings:
            if remaining[finding.key()] > 0:
                remaining[finding.key()] -= 1
        stale: list[Finding] = []
        budget = Counter(remaining)
        for entry in sorted(self._entries):
            if budget[entry.key()] > 0:
                budget[entry.key()] -= 1
                stale.append(entry)
        return stale
