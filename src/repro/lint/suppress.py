"""Per-line ``# reprolint: ignore[RULE]`` suppression comments.

A finding is suppressed when the line it points at carries a marker::

    frames = size * 8  # reprolint: ignore[RL001] — protocol framing bits

``ignore[RL001,RL004]`` suppresses the listed rules only; a bare
``ignore`` (no bracket) suppresses every rule on that line.  Markers are
parsed from *comment tokens* (comments never reach the AST), so they
work on any line a checker can point at — but text that merely looks
like a marker inside a string literal or docstring does not count.
"""

from __future__ import annotations

import io
import re
import tokenize

from repro.lint.findings import Finding

_MARKER = re.compile(
    r"#\s*reprolint:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?"
)


def comment_tokens(source: str) -> dict[int, str]:
    """Map 1-indexed line numbers to the comment text on that line.

    Tokenizes the source so string literals containing ``#`` are never
    mistaken for comments.  Falls back to a plain line scan when the
    source cannot be tokenized (the engine reports the syntax error
    separately; suppression parsing should still do its best).
    """
    comments: dict[int, str] = {}
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string
    except (tokenize.TokenError, IndentationError, SyntaxError, ValueError):
        for lineno, line in enumerate(source.splitlines(), start=1):
            if "#" in line:
                comments[lineno] = line[line.index("#") :]
    return comments


def suppressions_for(source: str) -> dict[int, frozenset[str] | None]:
    """Map 1-indexed line numbers to the rules suppressed on that line.

    A value of ``None`` means *all* rules are suppressed (bare
    ``ignore``); otherwise the frozenset lists the rule ids.
    """
    table: dict[int, frozenset[str] | None] = {}
    for lineno, comment in comment_tokens(source).items():
        if "reprolint" not in comment:
            continue
        match = _MARKER.search(comment)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None:
            table[lineno] = None
        else:
            table[lineno] = frozenset(
                token.strip().upper() for token in rules.split(",") if token.strip()
            )
    return table


def is_suppressed(
    finding: Finding, table: dict[int, frozenset[str] | None]
) -> bool:
    """True when ``finding`` is covered by a suppression in ``table``."""
    rules = table.get(finding.line, frozenset())
    if finding.line not in table:
        return False
    return rules is None or finding.rule.upper() in rules
