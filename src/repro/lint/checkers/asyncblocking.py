"""RL006 — blocking calls reachable inside ``async def`` bodies.

One blocking call on the event loop stalls *every* connection the
server is juggling: a warm-tier ``ResultCache`` disk probe, a model
build, or a plain ``time.sleep`` inside a coroutine turns the asyncio
serving tier into a sequential server.  The legal pattern is to cross
an executor boundary first (``await asyncio.to_thread(f, …)`` /
``loop.run_in_executor(pool, f, …)``) — the call graph never records
dispatch targets as call edges, so work behind a boundary is invisible
to this rule by construction.

The rule resolves transitively: a coroutine calling a sync helper that
three frames later probes the disk is flagged at the coroutine's call
site, with the full chain in the message.  Callees that are themselves
``async def`` are skipped (they suspend, their own bodies are checked
separately), and calls whose receiver cannot be typed fall back to a
deliberately short blocking-method-name heuristic
(:data:`~repro.lint.config.DEFAULT_BLOCKING_METHODS`).
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.analysis import analyze
from repro.lint.callgraph import CallGraph, FunctionInfo
from repro.lint.config import LintConfig
from repro.lint.findings import Finding
from repro.lint.project import Project
from repro.lint.registry import register


@register
class AsyncBlockingChecker:
    """Flag blocking work on the event-loop side of coroutines."""

    rule = "RL006"
    title = "coroutines must not reach blocking calls without an executor"

    def check(self, project: Project, config: LintConfig) -> Iterator[Finding]:
        """Scan every ``async def``'s transitive sync call closure."""
        graph = analyze(project).graph
        resolver = _BlockingResolver(graph, config)
        for info in sorted(graph.functions.values(), key=lambda i: i.qualname):
            if not info.is_async:
                continue
            yield from self._check_coroutine(info, graph, resolver, config)

    def _check_coroutine(
        self,
        info: FunctionInfo,
        graph: CallGraph,
        resolver: _BlockingResolver,
        config: LintConfig,
    ) -> Iterator[Finding]:
        seen_lines: set[tuple[int, str]] = set()
        for site in info.call_sites:
            chain = resolver.blocking_chain(site.callee)
            if chain is None:
                continue
            key = (site.line, chain[-1])
            if key in seen_lines:
                continue
            seen_lines.add(key)
            short = info.qualname.rsplit(".", 1)[-1]
            via = " -> ".join(_leaf(step) for step in chain)
            detail = (
                f"calls blocking {_leaf(chain[-1])}()"
                if len(chain) == 1
                else f"reaches blocking {_leaf(chain[-1])}() via {via}"
            )
            yield Finding(
                path=info.module.rel,
                line=site.line,
                rule=self.rule,
                message=(
                    f"async {short}() {detail}; the event loop stalls for "
                    "every connection — cross an executor boundary first "
                    "(await asyncio.to_thread(...) / loop.run_in_executor)"
                ),
                snippet=info.module.line(site.line),
            )
        for call in info.method_calls:
            if call.attr not in config.blocking_methods:
                continue
            key = (call.line, call.attr)
            if key in seen_lines:
                continue
            seen_lines.add(key)
            short = info.qualname.rsplit(".", 1)[-1]
            yield Finding(
                path=info.module.rel,
                line=call.line,
                rule=self.rule,
                message=(
                    f"async {short}() calls .{call.attr}() on an untyped "
                    "receiver — assumed blocking; cross an executor "
                    "boundary first or use a resolvable non-blocking API"
                ),
                snippet=info.module.line(call.line),
            )


def _leaf(qualname: str) -> str:
    return qualname.rsplit(".", 1)[-1]


class _BlockingResolver:
    """Memoized, cycle-safe transitive blocking analysis."""

    def __init__(self, graph: CallGraph, config: LintConfig) -> None:
        self._graph = graph
        self._config = config
        #: qualname → shortest known chain ending in a blocking call,
        #: ``None`` for proven-clean, absent while unknown
        self._memo: dict[str, list[str] | None] = {}

    def blocking_chain(self, callee: str) -> list[str] | None:
        """``[step, …, blocking_call]`` when ``callee`` blocks, else None."""
        if self._is_blocking_name(callee):
            return [callee]
        # A project class constructor runs its __init__ synchronously.
        if callee in self._graph.symbols.classes:
            init = f"{callee}.__init__"
            chain = self._function_chain(init) if init in self._graph.functions else None
            return [callee, *chain] if chain else None
        if callee in self._graph.functions:
            return self._function_chain(callee)
        return None

    def _is_blocking_name(self, name: str) -> bool:
        if name in self._config.blocking_calls:
            return True
        return any(
            name.startswith(prefix) for prefix in self._config.blocking_prefixes
        )

    def _function_chain(self, qualname: str) -> list[str] | None:
        if qualname in self._memo:
            return self._memo[qualname]
        self._memo[qualname] = None  # in-progress: cycles resolve clean
        info = self._graph.functions[qualname]
        result: list[str] | None = None
        if info.is_async:
            # Calling a coroutine function does not run its body; the
            # body is checked on its own.
            self._memo[qualname] = None
            return None
        for site in info.call_sites:
            if self._is_blocking_name(site.callee):
                result = [qualname, site.callee]
                break
            if site.callee in self._graph.functions:
                sub = self._function_chain(site.callee)
                if sub is not None:
                    result = [qualname, *sub]
                    break
        if result is None:
            for call in info.method_calls:
                if call.attr in self._config.blocking_methods:
                    result = [qualname, f"<receiver>.{call.attr}"]
                    break
        self._memo[qualname] = result
        return result
