"""RL003 — module-global mutation reachable from fork workers.

:mod:`repro.core.parallel` forks a persistent worker pool and promises
bit-identical results regardless of worker scheduling.  A function that
runs inside a worker and mutates a module-level global (rebinding via
``global``, ``NAME[...] = …``, or an in-place method like ``.put()``)
writes to the worker's copy-on-write page: the parent and sibling
workers never see it, warm-pool reuse makes it leak *across* sweeps, and
the single-process path silently diverges from the sharded one.

The checker finds worker entry points syntactically — any function
handed to ``.submit(f, …)``, ``.apply_async(f, …)`` or
``Process(target=f)`` — walks the static call graph from them, and flags
every module-global mutation inside the reachable set.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.analysis import analyze
from repro.lint.config import LintConfig
from repro.lint.findings import Finding
from repro.lint.project import Project
from repro.lint.registry import register


@register
class ForkSafetyChecker:
    """Flag global mutation on the worker side of the process pool."""

    rule = "RL003"
    title = "fork workers must not mutate module-level globals"

    def check(self, project: Project, config: LintConfig) -> Iterator[Finding]:
        """Walk the call graph from every pool entry point."""
        graph = analyze(project).graph
        roots = sorted({qual for qual, _, _ in graph.entry_points})
        if not roots:
            return
        reachable = graph.reachable_from(roots)
        root_list = ", ".join(r.rsplit(".", 1)[-1] for r in roots)
        for qualname in sorted(reachable):
            info = graph.functions[qualname]
            for mutation in info.mutations:
                yield Finding(
                    path=info.module.rel,
                    line=mutation.line,
                    rule=self.rule,
                    message=(
                        f"{qualname.rsplit('.', 1)[-1]}() {mutation.how} "
                        f"module-level global '{mutation.name}' while "
                        f"reachable from worker entry point(s) {root_list}; "
                        "workers must stay side-effect free (pass state in, "
                        "return results out)"
                    ),
                    snippet=info.module.line(mutation.line),
                )
