"""RL002 — entropy and wall-clock sources outside :mod:`repro.rng`.

Bit-for-bit reproducibility of a validation campaign requires every
random draw to flow through :func:`repro.rng.derive` named streams, and
every persisted result to be independent of when it was computed.  A
stray ``random.random()``, ``np.random.default_rng()`` or ``time.time()``
silently breaks the PR 3/4 guarantees: checkpoint resume is no longer
bit-identical, and cache fingerprints stop being content-addressed.

Flagged *calls* (annotations such as ``np.random.Generator`` are fine),
outside ``repro/rng.py`` and the configured allowlist:

* anything in the stdlib ``random`` module;
* anything in ``numpy.random`` (legacy global state *and*
  ``default_rng`` — generators must come from named streams);
* ``time.time``/``time.time_ns`` and ``datetime`` "now" constructors
  (``time.perf_counter`` is fine: it times, it never keys results);
* ``os.urandom``, ``uuid.uuid1``/``uuid4`` and the ``secrets`` module.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.analysis import analyze
from repro.lint.config import LintConfig
from repro.lint.findings import Finding
from repro.lint.project import Module, Project, resolve_dotted
from repro.lint.registry import register

#: Fully-qualified call prefixes that are banned wholesale.
_BANNED_PREFIXES = (
    "random.",
    "numpy.random.",
    "secrets.",
)

#: Fully-qualified call names banned exactly.
_BANNED_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "os.urandom",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)


@register
class DeterminismChecker:
    """Flag entropy/wall-clock calls that bypass repro.rng streams."""

    rule = "RL002"
    title = "random draws and timestamps must flow through repro.rng"

    def check(self, project: Project, config: LintConfig) -> Iterator[Finding]:
        """Scan every non-allowlisted module for banned source calls."""
        symbols = analyze(project).symbols
        for module in project.modules:
            if config.path_matches(module.rel, config.determinism_allowed):
                continue
            aliases = symbols.modules[module.name].aliases
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Call):
                    yield from self._check_call(module, node, aliases)

    def _check_call(
        self, module: Module, node: ast.Call, aliases: dict[str, str]
    ) -> Iterator[Finding]:
        func = node.func
        if isinstance(func, ast.Name):
            resolved = aliases.get(func.id)
        elif isinstance(func, ast.Attribute):
            resolved = resolve_dotted(func, aliases)
        else:
            return
        if resolved is None:
            return
        if resolved in _BANNED_CALLS or resolved.startswith(_BANNED_PREFIXES):
            yield Finding(
                path=module.rel,
                line=node.lineno,
                rule=self.rule,
                message=(
                    f"call to {resolved}() breaks determinism; derive a "
                    "named stream via repro.rng.derive(...) instead "
                    "(or pass timestamps in explicitly)"
                ),
                snippet=module.line(node.lineno),
            )
