"""RL008 — lock-acquisition ordering: deadlock cycles and awaits.

Two threads acquiring the same two locks in opposite orders deadlock
the first time their timing overlaps — exactly the latent class that
Guermouche-style realistic-environment variation turns into a hang.
The rule builds the lock-order graph from the whole project: a ``with
A:`` block that (directly, or through any chain of calls) acquires
``B`` adds the edge ``A → B``; a cycle in that graph is a potential
deadlock and fails the build at the acquisition site that closes it.

Two refinements keep the graph honest:

* Call-derived self-edges on *instance* locks are skipped — two
  ``_LRUCache`` objects locking each other's ``_lock`` are different
  mutexes.  Lexical re-acquisition in one function and module-global
  self-edges stay fatal (``threading.Lock`` is not reentrant).
* A function annotated ``# guarded-by: <lock>`` is analyzed with that
  lock already held, so "caller must hold" helpers participate in
  ordering without re-acquiring.

The rule also flags any ``await`` lexically inside a ``with <threading
lock>:`` block: parking the event loop while holding a thread lock
inverts the executor boundary and can deadlock the loop against its
own worker pool.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.analysis import analyze
from repro.lint.callgraph import CallGraph
from repro.lint.config import LintConfig
from repro.lint.findings import Finding
from repro.lint.project import Project
from repro.lint.registry import register


def find_cycles(edges: dict[str, set[str]]) -> list[list[str]]:
    """Elementary cycles of a directed graph (DFS back-edge closure).

    Returns each cycle as the node path ``[a, b, …, a-again-implied]``;
    deterministic (sorted traversal) so findings are stable run to run.
    Exposed for direct unit testing on hand-built graphs.
    """
    cycles: list[list[str]] = []
    seen_keys: set[tuple[str, ...]] = set()
    state: dict[str, int] = {}  # 1 = on stack, 2 = done
    stack: list[str] = []

    def visit(node: str) -> None:
        state[node] = 1
        stack.append(node)
        for nxt in sorted(edges.get(node, ())):
            mark = state.get(nxt)
            if mark == 1:
                cycle = stack[stack.index(nxt) :]
                # canonical rotation so each cycle reports once
                pivot = cycle.index(min(cycle))
                canon = tuple(cycle[pivot:] + cycle[:pivot])
                if canon not in seen_keys:
                    seen_keys.add(canon)
                    cycles.append(list(canon))
            elif mark is None:
                visit(nxt)
        stack.pop()
        state[node] = 2

    for node in sorted(edges):
        if node not in state:
            visit(node)
    return cycles


def _transitive_acquires(
    graph: CallGraph, memo: dict[str, frozenset[str]], qualname: str
) -> frozenset[str]:
    """Locks a call to ``qualname`` may acquire, transitively."""
    if qualname in memo:
        return memo[qualname]
    memo[qualname] = frozenset()  # in-progress: recursion adds nothing
    info = graph.functions[qualname]
    acquired = {acq.lock for acq in info.acquisitions}
    for callee in info.calls:
        if callee in graph.functions:
            acquired |= _transitive_acquires(graph, memo, callee)
    result = frozenset(acquired)
    memo[qualname] = result
    return result


@register
class LockOrderChecker:
    """Fail on lock-order cycles and awaits under a thread lock."""

    rule = "RL008"
    title = "lock acquisition order must be acyclic; no await under a lock"

    def check(self, project: Project, config: LintConfig) -> Iterator[Finding]:
        """Build the project lock-order graph and verify it."""
        analysis = analyze(project)
        graph, symbols = analysis.graph, analysis.symbols
        edges: dict[str, set[str]] = {}
        #: (held, acquired) → first (module, line) witnessing the edge
        witness: dict[tuple[str, str], tuple[str, int, str]] = {}
        memo: dict[str, frozenset[str]] = {}

        def is_instance_lock(lock: str) -> bool:
            return lock.rsplit(".", 1)[0] in symbols.classes

        def add_edge(
            held: str, acquired: str, rel: str, line: int, where: str
        ) -> None:
            edges.setdefault(held, set()).add(acquired)
            witness.setdefault((held, acquired), (rel, line, where))

        for info in sorted(graph.functions.values(), key=lambda i: i.qualname):
            for acq in info.acquisitions:
                for held in acq.held:
                    if held == acq.lock and info.requires_lock == held:
                        continue  # the annotated lock itself, not nesting
                    add_edge(
                        held, acq.lock, info.module.rel, acq.line, info.qualname
                    )
            for site in info.call_sites:
                if not site.held or site.callee not in graph.functions:
                    continue
                callee = graph.functions[site.callee]
                inner = _transitive_acquires(graph, memo, site.callee)
                for held in site.held:
                    for lock in inner:
                        if lock == held:
                            if callee.requires_lock == held:
                                continue  # sanctioned caller-holds contract
                            if is_instance_lock(held):
                                continue  # may be a different instance
                        add_edge(
                            held, lock, info.module.rel, site.line, info.qualname
                        )

        for cycle in find_cycles(edges):
            closing = (cycle[-1], cycle[0]) if len(cycle) > 1 else (
                cycle[0],
                cycle[0],
            )
            rel, line, where = witness.get(
                closing, witness.get((cycle[0], cycle[0]), ("", 1, ""))
            )
            order = " -> ".join(
                lock.rsplit(".", 1)[-1] for lock in [*cycle, cycle[0]]
            )
            module = next(
                (m for m in project.modules if m.rel == rel), None
            )
            yield Finding(
                path=rel or cycle[0],
                line=line,
                rule=self.rule,
                message=(
                    f"lock-order cycle {order} (closed in "
                    f"{where.rsplit('.', 1)[-1]}()): two threads taking "
                    "these locks in opposite orders deadlock; pick one "
                    "global order and acquire in it everywhere"
                ),
                snippet=module.line(line) if module is not None else "",
            )

        for info in sorted(graph.functions.values(), key=lambda i: i.qualname):
            for await_site in info.awaits:
                if not await_site.held:
                    continue
                held_names = ", ".join(
                    lock.rsplit(".", 1)[-1] for lock in await_site.held
                )
                short = info.qualname.rsplit(".", 1)[-1]
                yield Finding(
                    path=info.module.rel,
                    line=await_site.line,
                    rule=self.rule,
                    message=(
                        f"{short}() awaits while holding thread lock(s) "
                        f"{held_names}; the event loop can park behind "
                        "its own workers — release the lock before "
                        "awaiting (or use asyncio.Lock)"
                    ),
                    snippet=info.module.line(await_site.line),
                )
