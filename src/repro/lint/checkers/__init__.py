"""Built-in reprolint rules; importing this package registers them all.

========  =====================================================
RL001     unit-conversion literals outside :mod:`repro.units`
RL002     entropy/wall-clock sources outside :mod:`repro.rng`
RL003     module-global mutation reachable from fork workers
RL004     non-atomic writes of cache/checkpoint files
RL005     pipeline entry points without :mod:`repro.obs` spans
========  =====================================================
"""

from __future__ import annotations

from repro.lint.checkers.units import UnitsChecker
from repro.lint.checkers.determinism import DeterminismChecker
from repro.lint.checkers.forksafety import ForkSafetyChecker
from repro.lint.checkers.atomicio import AtomicIoChecker
from repro.lint.checkers.obscoverage import ObsCoverageChecker

__all__ = [
    "UnitsChecker",
    "DeterminismChecker",
    "ForkSafetyChecker",
    "AtomicIoChecker",
    "ObsCoverageChecker",
]
