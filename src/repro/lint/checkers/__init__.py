"""Built-in reprolint rules; importing this package registers them all.

========  =====================================================
RL001     unit-conversion literals outside :mod:`repro.units`
RL002     entropy/wall-clock sources outside :mod:`repro.rng`
RL003     module-global mutation reachable from fork workers
RL004     non-atomic writes of cache/checkpoint files
RL005     pipeline entry points without :mod:`repro.obs` spans
RL006     blocking calls reachable inside ``async def`` bodies
RL007     guarded state accessed without its declared lock
RL008     lock-order cycles and awaits under a thread lock
========  =====================================================
"""

from __future__ import annotations

from repro.lint.checkers.units import UnitsChecker
from repro.lint.checkers.determinism import DeterminismChecker
from repro.lint.checkers.forksafety import ForkSafetyChecker
from repro.lint.checkers.atomicio import AtomicIoChecker
from repro.lint.checkers.obscoverage import ObsCoverageChecker
from repro.lint.checkers.asyncblocking import AsyncBlockingChecker
from repro.lint.checkers.lockguard import LockGuardChecker
from repro.lint.checkers.lockorder import LockOrderChecker

__all__ = [
    "UnitsChecker",
    "DeterminismChecker",
    "ForkSafetyChecker",
    "AtomicIoChecker",
    "ObsCoverageChecker",
    "AsyncBlockingChecker",
    "LockGuardChecker",
    "LockOrderChecker",
]
