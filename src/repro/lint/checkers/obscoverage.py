"""RL005 — pipeline entry points must open :mod:`repro.obs` spans.

The observability facade (PR 2) is only useful if the pipeline stages a
user actually invokes emit spans: a calibration or search run that shows
up as a blank trace is a debugging dead end.  The contract is a
configured list of entry-point qualified names
(:data:`repro.lint.config.DEFAULT_OBS_ENTRY_POINTS`); each one must call
``repro.obs`` directly, or directly delegate to a resolvable function
that does (depth one — the span must still open on every invocation).

The list itself is also checked: a listed entry point whose module is
scanned but whose function no longer exists is flagged, so renames
cannot silently rot the contract.  Entries whose module is not part of
the scanned tree (e.g. when linting a fixture) are skipped.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.analysis import analyze
from repro.lint.config import LintConfig
from repro.lint.findings import Finding
from repro.lint.project import Module, Project
from repro.lint.registry import register


def _owning_module(project: Project, qualname: str) -> Module | None:
    """Longest module-name prefix of ``qualname`` present in the project."""
    parts = qualname.split(".")
    for cut in range(len(parts) - 1, 0, -1):
        module = project.module(".".join(parts[:cut]))
        if module is not None:
            return module
    return None


@register
class ObsCoverageChecker:
    """Flag configured pipeline entry points that never open a span."""

    rule = "RL005"
    title = "pipeline entry points must carry repro.obs instrumentation"

    def check(self, project: Project, config: LintConfig) -> Iterator[Finding]:
        """Verify every configured entry point exists and is instrumented."""
        graph = analyze(project).graph
        for qualname in config.obs_entry_points:
            module = _owning_module(project, qualname)
            if module is None:
                continue  # module not part of this lint run
            info = graph.functions.get(qualname)
            if info is None:
                yield Finding(
                    path=module.rel,
                    line=1,
                    rule=self.rule,
                    message=(
                        f"configured entry point '{qualname}' not found in "
                        f"module '{module.name}'; update "
                        "repro.lint.config.DEFAULT_OBS_ENTRY_POINTS after "
                        "renaming or removing pipeline stages"
                    ),
                    snippet=module.line(1),
                )
                continue
            if not graph.instrumented(qualname):
                short = qualname.rsplit(".", 1)[-1]
                yield Finding(
                    path=info.module.rel,
                    line=info.node.lineno,
                    rule=self.rule,
                    message=(
                        f"pipeline entry point {short}() has no repro.obs "
                        "span; wrap the body in 'with obs.span(...)' so "
                        "traces cover every user-facing stage"
                    ),
                    snippet=info.module.line(info.node.lineno),
                )
