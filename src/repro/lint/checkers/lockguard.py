"""RL007 — ``# guarded-by:`` lock-discipline on shared mutable state.

Every recent concurrency bug in this repo (the unlocked vectorized LRU,
the racing metrics registry) was a *missing* lock on state whose
discipline lived only in a prose comment.  RL007 makes the comment
checkable: declare the contract where the state is created ::

    self._data = OrderedDict()  # guarded-by: _lock
    self.engine_calls = 0       # guarded-by: _stats_lock
    _POOL = None                # guarded-by: _POOL_LOCK

and every read or write of that attribute/global anywhere in the
project must happen with the named lock held (``with <lock>:`` on the
enclosing statement, transitively through the call graph when a
function is itself annotated ``# guarded-by:`` on its ``def`` line —
meaning *callers* must hold the lock).

Two modifiers cover the real disciplines in this codebase:

* ``# guarded-by: _lock (writes)`` — only writes need the lock; reads
  are deliberately lock-free (the metrics registry's hit path).
* ``# guarded-by: event-loop`` — no lock exists; the state is confined
  to the asyncio event loop, so it must never be reachable from a
  thread/process dispatch target (generalizing RL003's reachability
  to every worker boundary, including ``asyncio.to_thread``).

The declaration line itself and the owning class's ``__init__`` are
exempt — construction happens before the object is shared.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.analysis import analyze
from repro.lint.config import LintConfig
from repro.lint.findings import Finding
from repro.lint.project import Project
from repro.lint.registry import register
from repro.lint.symbols import EVENT_LOOP_GUARD


@register
class LockGuardChecker:
    """Enforce declared lock ownership on shared mutable state."""

    rule = "RL007"
    title = "guarded state must be accessed with its declared lock held"

    def check(self, project: Project, config: LintConfig) -> Iterator[Finding]:
        """Check every guarded access recorded by the call graph."""
        analysis = analyze(project)
        graph, symbols = analysis.graph, analysis.symbols
        dispatch_roots = sorted(
            {d.target for d in graph.dispatches}
        )
        worker_reachable = graph.reachable_from(dispatch_roots)
        for info in sorted(graph.functions.values(), key=lambda i: i.qualname):
            for access in info.accesses:
                spec = symbols.guards[access.target]
                owner = access.target.rsplit(".", 1)[0]
                if info.qualname == f"{owner}.__init__":
                    continue  # construction precedes sharing
                attr = access.target.rsplit(".", 1)[-1]
                short = info.qualname.rsplit(".", 1)[-1]
                verb = "writes" if access.write else "reads"
                if spec.lock == EVENT_LOOP_GUARD:
                    if info.qualname not in worker_reachable:
                        continue
                    yield Finding(
                        path=info.module.rel,
                        line=access.line,
                        rule=self.rule,
                        message=(
                            f"{short}() {verb} '{attr}' (declared "
                            "guarded-by: event-loop) but is reachable from "
                            "a thread/process dispatch target; event-loop-"
                            "confined state must stay on the loop"
                        ),
                        snippet=info.module.line(access.line),
                    )
                    continue
                if spec.writes_only and not access.write:
                    continue
                if spec.lock in access.held:
                    continue
                lock_name = spec.lock.rsplit(".", 1)[-1]
                yield Finding(
                    path=info.module.rel,
                    line=access.line,
                    rule=self.rule,
                    message=(
                        f"{short}() {verb} '{attr}' without holding its "
                        f"declared lock '{lock_name}' (guarded-by: "
                        f"{lock_name}); wrap the access in "
                        f"'with {lock_name}:' or annotate the function "
                        "'# guarded-by:' if callers must hold it"
                    ),
                    snippet=info.module.line(access.line),
                )
            # Functions annotated "callers must hold <lock>" are only
            # honest if every call site actually holds it.
            for site in info.call_sites:
                callee = graph.functions.get(site.callee)
                if callee is None or callee.requires_lock is None:
                    continue
                if callee.requires_lock in site.held:
                    continue
                short = info.qualname.rsplit(".", 1)[-1]
                callee_short = site.callee.rsplit(".", 1)[-1]
                lock_name = callee.requires_lock.rsplit(".", 1)[-1]
                yield Finding(
                    path=info.module.rel,
                    line=site.line,
                    rule=self.rule,
                    message=(
                        f"{short}() calls {callee_short}() without holding "
                        f"'{lock_name}', but {callee_short}() is declared "
                        f"'# guarded-by: {lock_name}' (caller must hold it)"
                    ),
                    snippet=info.module.line(site.line),
                )
