"""RL001 — unit-conversion literals outside :mod:`repro.units`.

The whole library computes in one base unit system (seconds, hertz,
watts, joules, bytes, bytes/second) precisely so the model equations
(paper Eqs. 1–12) carry no conversion factors.  ``repro/units.py`` owns
every conversion; its docstring promises that a ``1e9`` or ``/ 8``
anywhere else indicates a bug.  This rule makes that promise mechanical.

Flagged, outside the allowlisted unit module:

* multiplying/dividing by ``1e6`` or ``1e9`` (GHz/MHz and Mbps/Gbps
  conversion factors), or comparing against them;
* multiplying/dividing by ``8`` (bit/byte conversions);
* ``1024**n`` and ``2**10/20/30/40`` (binary size factors).

Bare magnitudes are deliberately *not* flagged: a workload defining
``instructions_per_iteration=1.0e9`` states a quantity, not a
conversion, so only arithmetic/comparison positions count.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.config import LintConfig
from repro.lint.findings import Finding
from repro.lint.project import Module, Project, import_aliases, resolve_dotted
from repro.lint.registry import register

#: Decimal conversion factors owned by repro.units (GHZ/MHZ, MB/GB, Mbps/Gbps).
_CONVERSION_VALUES = (1e6, 1e9)

#: The bits-per-byte factor owned by mbps()/gbps()/to_mbps().
_BITS_PER_BYTE = 8

#: Exponents that make ``2**n`` a binary size factor (KiB/MiB/GiB/TiB).
_BINARY_EXPONENTS = (10, 20, 30, 40)


def _is_number(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
    )


def _value(node: ast.expr) -> float:
    assert isinstance(node, ast.Constant)
    return float(node.value)


def _is_units_name(node: ast.expr, aliases: dict[str, str]) -> bool:
    """True when ``node`` is a name imported from :mod:`repro.units`.

    ``8 * GIB`` (a *count* of GiB units) is idiomatic, not a bit/byte
    conversion — the conversion already went through the units module.
    """
    if not isinstance(node, (ast.Name, ast.Attribute)):
        return False
    resolved = resolve_dotted(node, aliases)
    return resolved is not None and resolved.startswith("repro.units.")


@register
class UnitsChecker:
    """Flag magic unit-conversion literals outside the units module."""

    rule = "RL001"
    title = "unit conversions must go through repro.units"

    def check(self, project: Project, config: LintConfig) -> Iterator[Finding]:
        """Scan every non-allowlisted module for conversion literals."""
        for module in project.modules:
            if config.path_matches(module.rel, config.units_allowed):
                continue
            yield from self._check_module(module)

    def _check_module(self, module: Module) -> Iterator[Finding]:
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.BinOp):
                yield from self._check_binop(module, node, aliases)
            elif isinstance(node, ast.Compare):
                yield from self._check_compare(module, node)

    def _check_binop(
        self, module: Module, node: ast.BinOp, aliases: dict[str, str]
    ) -> Iterator[Finding]:
        if isinstance(node.op, ast.Pow):
            if (
                _is_number(node.left)
                and _value(node.left) == 1024
                or (
                    _is_number(node.left)
                    and _value(node.left) == 2
                    and _is_number(node.right)
                    and _value(node.right) in _BINARY_EXPONENTS
                )
            ):
                yield self._finding(
                    module,
                    node.lineno,
                    "binary size factor "
                    f"{ast.unparse(node)!r}; use repro.units.KIB/MIB/GIB",
                )
            return
        if not isinstance(node.op, (ast.Mult, ast.Div, ast.FloorDiv)):
            return
        for operand, other in (
            (node.left, node.right),
            (node.right, node.left),
        ):
            if not _is_number(operand):
                continue
            value = _value(operand)
            if value in _CONVERSION_VALUES:
                yield self._finding(
                    module,
                    node.lineno,
                    f"arithmetic with conversion factor {operand.value!r}; "  # type: ignore[attr-defined]
                    "use repro.units helpers (ghz/to_ghz, mbps/gbps, MB/GB)",
                )
            elif value == _BITS_PER_BYTE and not _is_units_name(other, aliases):
                yield self._finding(
                    module,
                    node.lineno,
                    "bit/byte conversion '* 8' or '/ 8'; use "
                    "repro.units.mbps/gbps/to_mbps",
                )

    def _check_compare(self, module: Module, node: ast.Compare) -> Iterator[Finding]:
        for comparator in (node.left, *node.comparators):
            if _is_number(comparator) and _value(comparator) in _CONVERSION_VALUES:
                yield self._finding(
                    module,
                    node.lineno,
                    f"comparison against conversion factor "
                    f"{comparator.value!r}; "  # type: ignore[attr-defined]
                    "convert through repro.units first",
                )

    def _finding(self, module: Module, line: int, message: str) -> Finding:
        return Finding(
            path=module.rel,
            line=line,
            rule=self.rule,
            message=message,
            snippet=module.line(line),
        )
