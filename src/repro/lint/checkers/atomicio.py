"""RL004 — cache/checkpoint files must be written atomically.

The persistent result cache (:mod:`repro.core.cache`) and the
checkpoint layer (:mod:`repro.resilience.checkpoint`) promise that a
reader never observes a torn file: writers build a complete temp file
and race on the final :func:`os.replace`.  A bare ``open(path, "w")``,
``np.save`` or ``json.dump`` straight onto the destination breaks that
promise — a crash mid-write leaves a corrupt entry that the next run
either rejects (losing the work) or, worse, trusts.

Scope: every write in the configured atomic modules, plus any write
anywhere whose target expression mentions a cache/checkpoint path
(``config.atomic_target_markers``).  A write passes when its enclosing
function uses the tmp+rename idiom (an ``os.replace``/``os.rename``/
``Path.rename`` call, with the written target named like a temp file)
or targets an in-memory ``io.BytesIO``/``io.StringIO`` buffer.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.config import LintConfig
from repro.lint.findings import Finding
from repro.lint.project import Module, Project, import_aliases, resolve_dotted
from repro.lint.registry import register

#: ``module.function`` writers whose first argument is the destination.
_PATH_WRITERS = frozenset(
    {
        "numpy.save",
        "numpy.savez",
        "numpy.savez_compressed",
    }
)

#: ``module.function`` writers whose *second* argument is the destination.
_STREAM_WRITERS = frozenset({"json.dump", "pickle.dump"})

#: Method names that write their receiver to disk.
_WRITE_METHODS = frozenset({"write_text", "write_bytes"})

#: Calls that implement the rename half of the tmp+rename idiom.
_RENAME_CALLS = ("os.replace", "os.rename", "pathlib.Path.rename")

#: open() modes that create/truncate/append the destination.
_WRITE_MODES = ("w", "a", "x")


def _call_target(call: ast.Call, resolved: str | None) -> ast.expr | None:
    """The destination expression of a recognized write call."""
    func = call.func
    if isinstance(func, ast.Name) and func.id == "open" or resolved == "open":
        mode: ast.expr | None = call.args[1] if len(call.args) > 1 else None
        for keyword in call.keywords:
            if keyword.arg == "mode":
                mode = keyword.value
        if (
            isinstance(mode, ast.Constant)
            and isinstance(mode.value, str)
            and mode.value.startswith(_WRITE_MODES)
        ):
            return call.args[0] if call.args else None
        return None
    if resolved in _PATH_WRITERS and call.args:
        return call.args[0]
    if resolved in _STREAM_WRITERS and len(call.args) > 1:
        return call.args[1]
    if isinstance(func, ast.Attribute) and func.attr in _WRITE_METHODS:
        return func.value
    return None


@register
class AtomicIoChecker:
    """Flag non-atomic writes of cache/checkpoint data."""

    rule = "RL004"
    title = "cache/checkpoint writes must use the tmp+rename idiom"

    def check(self, project: Project, config: LintConfig) -> Iterator[Finding]:
        """Scan atomic-scoped modules and marker-matching writes."""
        for module in project.modules:
            scoped = config.path_matches(module.rel, config.atomic_modules)
            yield from self._check_module(module, scoped, config)

    def _check_module(
        self, module: Module, scoped: bool, config: LintConfig
    ) -> Iterator[Finding]:
        aliases = import_aliases(module.tree)
        for func_node, calls in _functions_with_calls(module.tree):
            buffers = _memory_buffers(func_node, aliases)
            has_rename = _has_rename(calls, aliases)
            for call in calls:
                resolved = (
                    resolve_dotted(call.func, aliases)
                    if isinstance(call.func, (ast.Attribute, ast.Name))
                    else None
                )
                target = _call_target(call, resolved)
                if target is None:
                    continue
                target_text = ast.unparse(target)
                in_scope = scoped or any(
                    marker in target_text.lower()
                    for marker in config.atomic_target_markers
                )
                if not in_scope:
                    continue
                if isinstance(target, ast.Name) and target.id in buffers:
                    continue  # in-memory staging buffer, not a file
                if has_rename and "tmp" in target_text.lower():
                    continue  # the tmp half of tmp+rename
                yield Finding(
                    path=module.rel,
                    line=call.lineno,
                    rule=self.rule,
                    message=(
                        f"non-atomic write to {target_text!r}: write a "
                        "temp file and os.replace() it over the "
                        "destination (see repro.resilience.checkpoint."
                        "atomic_write_json)"
                    ),
                    snippet=module.line(call.lineno),
                )


def _functions_with_calls(
    tree: ast.Module,
) -> Iterator[tuple[ast.AST, list[ast.Call]]]:
    """Yield (scope node, calls) for each function plus the module body.

    Module-level writes get the module itself as their scope so the
    tmp+rename detection still has something to look at.
    """
    function_nodes: list[ast.FunctionDef | ast.AsyncFunctionDef] = [
        node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    claimed: set[int] = set()
    for func in function_nodes:
        calls = [n for n in ast.walk(func) if isinstance(n, ast.Call)]
        nested = {
            id(n)
            for sub in function_nodes
            if sub is not func and _contains(func, sub)
            for n in ast.walk(sub)
            if isinstance(n, ast.Call)
        }
        own = [c for c in calls if id(c) not in nested]
        claimed.update(id(c) for c in calls)
        yield func, own
    module_calls = [
        n
        for n in ast.walk(tree)
        if isinstance(n, ast.Call) and id(n) not in claimed
    ]
    if module_calls:
        yield tree, module_calls


def _contains(outer: ast.AST, inner: ast.AST) -> bool:
    return any(node is inner for node in ast.walk(outer))


def _memory_buffers(scope: ast.AST, aliases: dict[str, str]) -> set[str]:
    """Names bound to io.BytesIO()/io.StringIO() within ``scope``."""
    buffers: set[str] = set()
    for node in ast.walk(scope):
        if (
            isinstance(node, ast.Assign)
            and isinstance(node.value, ast.Call)
            and isinstance(node.value.func, (ast.Attribute, ast.Name))
        ):
            resolved = resolve_dotted(node.value.func, aliases)
            if resolved in ("io.BytesIO", "io.StringIO"):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        buffers.add(target.id)
    return buffers


def _has_rename(calls: list[ast.Call], aliases: dict[str, str]) -> bool:
    """True when any call in the scope performs the rename step.

    Recognized: ``os.replace``/``os.rename``, and ``.rename()``/
    ``.replace()`` on a receiver that looks like a temp path (so
    ``text.replace("a", "b")`` string munging does not count).
    """
    for call in calls:
        func = call.func
        if not (
            isinstance(func, ast.Attribute) and func.attr in ("replace", "rename")
        ):
            continue
        resolved = resolve_dotted(func, aliases)
        if resolved in ("os.replace", "os.rename"):
            return True
        receiver = ast.unparse(func.value).lower()
        if "tmp" in receiver or "temp" in receiver:
            return True
    return False
