"""Repository file discovery shared by reprolint and the repo tools.

Before this module existed, ``tools/check_docstrings.py`` and the linter
each re-implemented "walk ``src/`` for Python files" with slightly
different exclusion rules, so a file could be docstring-checked but not
linted (or vice versa).  Both now call :func:`iter_python_files`; any
future exclusion change applies to every tool at once.
"""

from __future__ import annotations

import pathlib
from typing import Iterable, Iterator

#: Directory names never descended into while walking for sources.
EXCLUDED_DIRS = frozenset(
    {
        "__pycache__",
        ".git",
        ".hypothesis",
        ".pytest_cache",
        ".ruff_cache",
        ".mypy_cache",
        "node_modules",
    }
)


def is_excluded(path: pathlib.Path) -> bool:
    """True when any path component is an excluded or hidden directory."""
    return any(
        part in EXCLUDED_DIRS or (part.startswith(".") and part not in (".", ".."))
        for part in path.parts
    )


def iter_python_files(
    targets: Iterable[str | pathlib.Path],
) -> Iterator[pathlib.Path]:
    """Yield every Python source file under ``targets``, sorted per target.

    Each target may be a file (yielded as-is when it is a ``.py`` file)
    or a directory (recursively walked).  Cache, VCS and hidden
    directories are skipped — the one exclusion policy shared by
    reprolint and ``tools/check_docstrings.py``.
    """
    for target in targets:
        root = pathlib.Path(target)
        if root.is_dir():
            for path in sorted(root.rglob("*.py")):
                if not is_excluded(path.relative_to(root)):
                    yield path
        elif root.suffix == ".py":
            yield root


def module_name_for(path: pathlib.Path, root: pathlib.Path) -> str:
    """Dotted module name of ``path`` relative to the repository ``root``.

    The ``src/`` layout prefix is stripped, so
    ``src/repro/core/cache.py`` maps to ``repro.core.cache`` and
    ``tools/check_docs.py`` maps to ``tools.check_docs``.  Package
    ``__init__.py`` files map to the package name itself.
    """
    try:
        rel = path.resolve().relative_to(root.resolve())
    except ValueError:
        rel = pathlib.Path(path.name)
    parts = list(rel.with_suffix("").parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else rel.stem


def relative_posix(path: pathlib.Path, root: pathlib.Path) -> str:
    """Repository-relative POSIX form of ``path`` (used in findings)."""
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()
