"""Checker registry — the plugin point of the lint framework.

A checker is a class with a ``rule`` id, a one-line ``title``, and a
``check(project, config)`` method yielding
:class:`~repro.lint.findings.Finding` objects.  Decorating it with
:func:`register` makes the engine run it; the built-in rules live in
:mod:`repro.lint.checkers` and register themselves on import.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Protocol, TypeVar

from repro.lint.config import LintConfig
from repro.lint.findings import Finding
from repro.lint.project import Project


class Checker(Protocol):
    """Structural interface every registered checker satisfies."""

    rule: str
    title: str

    def check(self, project: Project, config: LintConfig) -> Iterator[Finding]:
        """Yield every violation of this rule found in ``project``."""
        ...  # pragma: no cover - protocol definition


_REGISTRY: dict[str, type[Any]] = {}

C = TypeVar("C", bound=type[Any])


def register(cls: C) -> C:
    """Class decorator adding a checker to the global registry.

    The class must define a unique ``rule`` id; re-registering an id
    raises so two plugins cannot silently shadow each other.
    """
    rule = getattr(cls, "rule", None)
    if not isinstance(rule, str) or not rule:
        raise ValueError(f"checker {cls.__name__} must define a rule id")
    if rule in _REGISTRY and _REGISTRY[rule] is not cls:
        raise ValueError(f"rule {rule} is already registered")
    _REGISTRY[rule] = cls
    return cls


def all_checkers(rules: Iterable[str] | None = None) -> list[Checker]:
    """Instantiate the registered checkers, optionally a subset of rules."""
    wanted = None if rules is None else {r.upper() for r in rules}
    selected: list[Checker] = []
    for rule in sorted(_REGISTRY):
        if wanted is None or rule.upper() in wanted:
            selected.append(_REGISTRY[rule]())
    if wanted is not None:
        unknown = wanted - {r.upper() for r in _REGISTRY}
        if unknown:
            raise ValueError(f"unknown rule(s): {', '.join(sorted(unknown))}")
    return selected


def get_checker(rule: str) -> Checker:
    """Instantiate the checker registered for ``rule``."""
    try:
        return _REGISTRY[rule]()
    except KeyError:
        raise ValueError(f"unknown rule {rule!r}") from None


def registered_rules() -> list[tuple[str, str]]:
    """(rule id, title) for every registered checker, sorted by id."""
    return [(rule, _REGISTRY[rule].title) for rule in sorted(_REGISTRY)]


def checker_factory(rule: str) -> Callable[[], Checker]:
    """The class registered for ``rule`` (for tests and tooling)."""
    if rule not in _REGISTRY:
        raise ValueError(f"unknown rule {rule!r}")
    return _REGISTRY[rule]
