"""The lint engine: parse once, run every checker, filter, summarize.

:func:`lint_paths` is the single entry point used by the CLI, the test
suite and the benchmark.  It loads a :class:`~repro.lint.project.Project`
(one parse per file), runs the registered checkers over it, then applies
the two escape hatches in order: per-line ``# reprolint: ignore[...]``
suppressions, then the committed baseline.  Files that fail to parse are
not skipped silently — they surface as rule ``RL000`` findings.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.lint.baseline import Baseline
from repro.lint.config import LintConfig
from repro.lint.findings import Finding
from repro.lint.project import Project, load_project
from repro.lint.registry import all_checkers
from repro.lint.suppress import is_suppressed

#: Pseudo-rule id for files the engine could not parse.
PARSE_RULE = "RL000"


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: list[Finding]  #: violations after suppression + baseline
    files_scanned: int  #: files parsed (including unparsable ones)
    suppressed: int = 0  #: findings dropped by per-line markers
    baselined: int = 0  #: findings absorbed by the baseline
    rules: tuple[str, ...] = field(default_factory=tuple)  #: rule ids run

    @property
    def ok(self) -> bool:
        """True when no finding survived the filters."""
        return not self.findings


def lint_paths(
    paths: Iterable[str | pathlib.Path],
    root: str | pathlib.Path,
    config: LintConfig | None = None,
    baseline: Baseline | None = None,
) -> LintResult:
    """Lint every Python file under ``paths`` and return the result.

    ``root`` anchors repository-relative finding paths and dotted module
    names.  ``baseline=None`` disables baseline filtering (per-line
    suppressions always apply).
    """
    cfg = config if config is not None else LintConfig()
    project = load_project(list(paths), pathlib.Path(root))
    raw = collect_findings(project, cfg)
    kept, suppressed = apply_suppressions(project, raw)
    baselined = 0
    if baseline is not None:
        kept, baselined = baseline.filter(kept)
    checkers = all_checkers(cfg.rules)
    return LintResult(
        findings=kept,
        files_scanned=len(project.modules) + len(project.broken),
        suppressed=suppressed,
        baselined=baselined,
        rules=tuple(checker.rule for checker in checkers),
    )


def collect_findings(project: Project, config: LintConfig) -> list[Finding]:
    """Run every selected checker over ``project``; sorted, unfiltered."""
    findings: list[Finding] = []
    for checker in all_checkers(config.rules):
        findings.extend(checker.check(project, config))
    for rel, error, line in project.broken:
        findings.append(
            Finding(
                path=rel,
                line=line,
                rule=PARSE_RULE,
                message=f"file could not be parsed: {error}",
            )
        )
    return sorted(findings)


def apply_suppressions(
    project: Project, findings: Sequence[Finding]
) -> tuple[list[Finding], int]:
    """Drop findings covered by ``# reprolint: ignore`` markers.

    Returns the surviving findings and the number suppressed.
    """
    tables = {module.rel: module.suppressions for module in project.modules}
    kept: list[Finding] = []
    suppressed = 0
    for finding in findings:
        if is_suppressed(finding, tables.get(finding.path, {})):
            suppressed += 1
        else:
            kept.append(finding)
    return kept, suppressed
