"""The lint engine: parse once, analyze once, run every checker.

:func:`lint_paths` is the single entry point used by the CLI, the test
suite and the benchmark.  It loads a :class:`~repro.lint.project.Project`
(one parse per file), eagerly builds the shared interprocedural
analysis (symbol table + call graph — see :mod:`repro.lint.analysis`)
so its cost is measured, runs the registered checkers over it, then
applies the two escape hatches in order: per-line ``# reprolint:
ignore[...]`` suppressions, then the committed baseline.  Files that
fail to parse are not skipped silently — they surface as rule ``RL000``
findings.

The engine also audits the escape hatches themselves: suppression
markers that no longer match any finding and baseline entries whose
content key no longer matches any file are reported on the result
(``stale_suppressions`` / ``stale_baseline``) so ignores cannot rot in
place — see ``repro lint --check-ignores``.
"""

from __future__ import annotations

import pathlib
import time
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.lint.analysis import analyze
from repro.lint.baseline import Baseline
from repro.lint.config import LintConfig
from repro.lint.findings import Finding
from repro.lint.project import Project, load_project
from repro.lint.registry import all_checkers
from repro.lint.suppress import is_suppressed

#: Pseudo-rule id for files the engine could not parse.
PARSE_RULE = "RL000"


@dataclass(frozen=True)
class StaleSuppression:
    """A ``# reprolint: ignore`` marker that suppresses nothing."""

    path: str  #: repository-relative file path
    line: int  #: 1-indexed marker line
    rules: str  #: the marker's rule list ("all" for a bare ignore)


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: list[Finding]  #: violations after suppression + baseline
    files_scanned: int  #: files parsed (including unparsable ones)
    suppressed: int = 0  #: findings dropped by per-line markers
    baselined: int = 0  #: findings absorbed by the baseline
    rules: tuple[str, ...] = field(default_factory=tuple)  #: rule ids run
    #: wall-clock seconds per phase: ``parse``, ``symbol_table``,
    #: ``call_graph``, and one ``rule:RLxxx`` entry per checker
    timings: dict[str, float] = field(default_factory=dict)
    #: markers that suppressed nothing this run (see ``--check-ignores``)
    stale_suppressions: list[StaleSuppression] = field(default_factory=list)
    #: baseline entries whose key matched no current finding
    stale_baseline: list[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no finding survived the filters."""
        return not self.findings


def lint_paths(
    paths: Iterable[str | pathlib.Path],
    root: str | pathlib.Path,
    config: LintConfig | None = None,
    baseline: Baseline | None = None,
) -> LintResult:
    """Lint every Python file under ``paths`` and return the result.

    ``root`` anchors repository-relative finding paths and dotted module
    names.  ``baseline=None`` disables baseline filtering (per-line
    suppressions always apply).
    """
    cfg = config if config is not None else LintConfig()
    timings: dict[str, float] = {}
    start = time.perf_counter()
    project = load_project(list(paths), pathlib.Path(root))
    timings["parse"] = time.perf_counter() - start
    # Build the shared symbol table + call graph eagerly so the phase
    # cost lands here instead of inside whichever rule runs first.
    timings.update(analyze(project).timings)
    raw = collect_findings(project, cfg, timings=timings)
    kept, suppressed = apply_suppressions(project, raw)
    baselined = 0
    stale_baseline: list[Finding] = []
    if baseline is not None:
        kept, baselined = baseline.filter(kept)
        stale_baseline = baseline.stale(raw)
    checkers = all_checkers(cfg.rules)
    return LintResult(
        findings=kept,
        files_scanned=len(project.modules) + len(project.broken),
        suppressed=suppressed,
        baselined=baselined,
        rules=tuple(checker.rule for checker in checkers),
        timings=timings,
        stale_suppressions=find_stale_suppressions(project, raw),
        stale_baseline=stale_baseline,
    )


def collect_findings(
    project: Project,
    config: LintConfig,
    timings: dict[str, float] | None = None,
) -> list[Finding]:
    """Run every selected checker over ``project``; sorted, unfiltered.

    When ``timings`` is given, each rule's wall-clock cost is recorded
    under ``rule:<id>``.
    """
    findings: list[Finding] = []
    for checker in all_checkers(config.rules):
        start = time.perf_counter()
        findings.extend(checker.check(project, config))
        if timings is not None:
            timings[f"rule:{checker.rule}"] = time.perf_counter() - start
    for rel, error, line in project.broken:
        findings.append(
            Finding(
                path=rel,
                line=line,
                rule=PARSE_RULE,
                message=f"file could not be parsed: {error}",
            )
        )
    return sorted(findings)


def apply_suppressions(
    project: Project, findings: Sequence[Finding]
) -> tuple[list[Finding], int]:
    """Drop findings covered by ``# reprolint: ignore`` markers.

    Returns the surviving findings and the number suppressed.
    """
    tables = {module.rel: module.suppressions for module in project.modules}
    kept: list[Finding] = []
    suppressed = 0
    for finding in findings:
        if is_suppressed(finding, tables.get(finding.path, {})):
            suppressed += 1
        else:
            kept.append(finding)
    return kept, suppressed


def find_stale_suppressions(
    project: Project, raw_findings: Sequence[Finding]
) -> list[StaleSuppression]:
    """Markers that matched no (pre-suppression) finding this run.

    A stale ``# reprolint: ignore[RULE]`` is worse than dead weight: it
    silently re-arms if the flagged code ever comes back, and it makes
    the next reader believe a violation exists.  ``raw_findings`` must
    be the unsuppressed findings — a marker is *not* stale when it is
    doing its job.
    """
    covered: set[tuple[str, int]] = set()
    for finding in raw_findings:
        covered.add((finding.path, finding.line))
    stale: list[StaleSuppression] = []
    for module in project.modules:
        for line, rules in sorted(module.suppressions.items()):
            hits = [
                f
                for f in raw_findings
                if f.path == module.rel
                and f.line == line
                and (rules is None or f.rule.upper() in rules)
            ]
            if hits:
                continue
            stale.append(
                StaleSuppression(
                    path=module.rel,
                    line=line,
                    rules="all" if rules is None else ",".join(sorted(rules)),
                )
            )
    return stale
