"""Command-line front end: ``repro lint`` and ``python -m repro.lint``.

Exit codes: ``0`` clean, ``1`` findings (or unparsable files), ``2``
usage or baseline errors — so CI can distinguish "violations" from
"the linter itself is broken".
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Sequence

from repro.lint.baseline import Baseline, BaselineError
from repro.lint.config import DEFAULT_BASELINE_NAME, LintConfig
from repro.lint.engine import apply_suppressions, collect_findings, lint_paths
from repro.lint.project import load_project
from repro.lint.registry import registered_rules
from repro.lint.report import render_json, render_text

#: Directories linted when no explicit paths are given.
DEFAULT_TARGETS = ("src", "tools")


def find_repo_root(start: pathlib.Path | None = None) -> pathlib.Path:
    """Nearest ancestor containing ``pyproject.toml`` or ``.git``."""
    cursor = (start or pathlib.Path.cwd()).resolve()
    for candidate in (cursor, *cursor.parents):
        if (candidate / "pyproject.toml").exists() or (candidate / ".git").exists():
            return candidate
    return cursor


def build_parser(prog: str = "reprolint") -> argparse.ArgumentParser:
    """The argument parser, reusable by the ``repro`` CLI subcommand."""
    parser = argparse.ArgumentParser(
        prog=prog,
        description=(
            "AST-based invariant checker for this repository: units "
            "(RL001), determinism (RL002), fork safety (RL003), atomic "
            "IO (RL004), observability coverage (RL005), async-blocking "
            "(RL006), lock-guard discipline (RL007) and lock ordering "
            "(RL008)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=(
            "files or directories to lint (default: src/ and tools/ "
            "under the repository root)"
        ),
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable JSON report instead of text",
    )
    parser.add_argument(
        "--rules",
        action="append",
        metavar="RULES",
        help="comma-separated rule ids to run (repeatable; default: all)",
    )
    parser.add_argument(
        "--root",
        type=pathlib.Path,
        default=None,
        help="repository root (default: auto-detected from the cwd)",
    )
    parser.add_argument(
        "--baseline",
        type=pathlib.Path,
        default=None,
        metavar="PATH",
        help=f"baseline file (default: <root>/{DEFAULT_BASELINE_NAME})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file (report every finding)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="accept all current findings into the baseline and exit 0",
    )
    parser.add_argument(
        "--no-snippets",
        action="store_true",
        help="omit source snippets from the text report",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    parser.add_argument(
        "--check-ignores",
        action="store_true",
        help=(
            "fail (exit 1) on stale '# reprolint: ignore' markers that "
            "no longer suppress anything"
        ),
    )
    return parser


def _selected_rules(raw: list[str] | None) -> tuple[str, ...] | None:
    if not raw:
        return None
    rules: list[str] = []
    for chunk in raw:
        rules.extend(
            token.strip().upper() for token in chunk.split(",") if token.strip()
        )
    return tuple(rules) or None


def run(argv: Sequence[str] | None = None, prog: str = "reprolint") -> int:
    """Parse ``argv``, lint, print a report, return the exit code."""
    parser = build_parser(prog=prog)
    args = parser.parse_args(list(argv) if argv is not None else None)

    if args.list_rules:
        for rule, title in registered_rules():
            print(f"{rule}  {title}")
        return 0

    root = (args.root or find_repo_root()).resolve()
    paths = [pathlib.Path(p) for p in args.paths] or [
        root / target for target in DEFAULT_TARGETS if (root / target).exists()
    ]
    if not paths:
        print(f"{prog}: nothing to lint under {root}", file=sys.stderr)
        return 2

    try:
        config = LintConfig(rules=_selected_rules(args.rules))
    except ValueError as exc:
        print(f"{prog}: {exc}", file=sys.stderr)
        return 2

    baseline_path = args.baseline or (root / DEFAULT_BASELINE_NAME)

    if args.update_baseline:
        project = load_project(list(paths), root)
        try:
            kept, _ = apply_suppressions(project, collect_findings(project, config))
        except ValueError as exc:
            print(f"{prog}: {exc}", file=sys.stderr)
            return 2
        Baseline.save(baseline_path, kept)
        print(f"{prog}: wrote {len(kept)} finding(s) to {baseline_path}")
        return 0

    baseline: Baseline | None = None
    if not args.no_baseline:
        try:
            baseline = Baseline.load(baseline_path)
        except BaselineError as exc:
            print(f"{prog}: {exc}", file=sys.stderr)
            return 2

    try:
        result = lint_paths(paths, root, config=config, baseline=baseline)
    except ValueError as exc:
        print(f"{prog}: {exc}", file=sys.stderr)
        return 2

    # Stale-baseline entries never fail the build (the fix is simply to
    # delete them) but they do rot, so every run warns about them.
    for entry in result.stale_baseline:
        print(
            f"{prog}: warning: baseline entry {entry.rule} for "
            f"{entry.path} no longer matches any finding; delete it "
            f"(or rerun --update-baseline)",
            file=sys.stderr,
        )

    ignores_ok = True
    if args.check_ignores and result.stale_suppressions:
        ignores_ok = False
        for marker in result.stale_suppressions:
            print(
                f"{marker.path}:{marker.line}: stale suppression "
                f"'# reprolint: ignore[{marker.rules}]' — it no longer "
                "suppresses anything; remove it",
                file=sys.stderr,
            )

    if args.json:
        print(render_json(result))
    else:
        print(render_text(result, show_snippets=not args.no_snippets))
    return 0 if result.ok and ignores_ok else 1


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``python -m repro.lint``."""
    return run(argv)
