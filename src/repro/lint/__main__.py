"""Module entry point: ``python -m repro.lint``."""

from __future__ import annotations

from repro.lint.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
