"""``repro.lint`` ("reprolint") — AST-based invariant checker.

The model's credibility rests on repository-wide contracts that are
documented but, before this package, unenforced:

* **Units** — every equation assumes the single unit system of
  :mod:`repro.units`; a ``1e9`` or ``/ 8`` anywhere else indicates a bug
  (rule ``RL001``).
* **Determinism** — every random draw and every timestamp that can reach
  a result must flow through :mod:`repro.rng` named streams, or cache
  fingerprints and checkpoint resume silently break (rule ``RL002``).
* **Fork safety** — worker processes forked by :mod:`repro.core.parallel`
  must not mutate module-level globals: the mutation is invisible to the
  parent and to sibling workers (rule ``RL003``).
* **Atomic IO** — cache entries and checkpoints must be written with the
  temp-file + :func:`os.replace` idiom so readers never observe a torn
  file (rule ``RL004``).
* **Observability** — the public pipeline entry points must be covered
  by :mod:`repro.obs` span instrumentation (rule ``RL005``).
* **Async hygiene** — ``async def`` bodies must not reach blocking calls
  (``time.sleep``, file IO, ``subprocess``) except through an executor
  boundary such as ``asyncio.to_thread`` (rule ``RL006``).
* **Lock discipline** — state annotated ``# guarded-by: <lock>`` must
  only be touched while holding that lock (or only from the event loop,
  for ``guarded-by: event-loop``) (rule ``RL007``).
* **Lock order** — locks must be acquired in a consistent global order,
  and coroutines must not ``await`` while holding a thread lock
  (rule ``RL008``).

The framework is plugin-based: checkers register themselves in
:mod:`repro.lint.registry`, the engine (:mod:`repro.lint.engine`) parses
every file once into a shared :class:`~repro.lint.project.Project`,
builds the interprocedural analysis core (:mod:`repro.lint.analysis`:
symbol table + call graph, computed once and shared), and hands both to
each checker; findings flow through per-line
``# reprolint: ignore[RULE]`` suppressions and the committed baseline
file before they reach a reporter.  Run it as ``repro lint`` or
``python -m repro.lint``; see ``docs/LINTING.md``.
"""

from __future__ import annotations

from repro.lint.baseline import Baseline
from repro.lint.config import DEFAULT_BASELINE_NAME, LintConfig
from repro.lint.engine import LintResult, lint_paths
from repro.lint.findings import Finding
from repro.lint.registry import all_checkers, get_checker, register

# Importing the checkers package registers every built-in rule.
from repro.lint import checkers as _checkers  # noqa: F401

__all__ = [
    "Baseline",
    "DEFAULT_BASELINE_NAME",
    "Finding",
    "LintConfig",
    "LintResult",
    "all_checkers",
    "get_checker",
    "lint_paths",
    "register",
]
