"""Text and JSON reporters for a :class:`~repro.lint.engine.LintResult`.

The text form is for humans and CI logs; the JSON form is a stable
machine interface (``repro lint --json``) whose findings round-trip
through :func:`parse_json` — the docs/CI self-check depends on that.
"""

from __future__ import annotations

import json
from typing import Any

from repro.lint.engine import LintResult
from repro.lint.findings import Finding

#: Schema version of the ``--json`` report document.
REPORT_VERSION = 1


def render_text(result: LintResult, *, show_snippets: bool = True) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines: list[str] = []
    for finding in result.findings:
        lines.append(finding.render())
        if show_snippets and finding.snippet:
            lines.append(f"    {finding.snippet}")
    lines.append(_summary_line(result))
    return "\n".join(lines)


def _summary_line(result: LintResult) -> str:
    extras = []
    if result.suppressed:
        extras.append(f"{result.suppressed} suppressed")
    if result.baselined:
        extras.append(f"{result.baselined} baselined")
    suffix = f" ({', '.join(extras)})" if extras else ""
    count = len(result.findings)
    noun = "finding" if count == 1 else "findings"
    if result.ok:
        return (
            f"reprolint: clean — {result.files_scanned} files scanned, "
            f"0 findings{suffix}"
        )
    return (
        f"reprolint: {count} {noun} in {result.files_scanned} files "
        f"scanned{suffix}"
    )


def render_json(result: LintResult) -> str:
    """Machine-readable report (stable schema, see :data:`REPORT_VERSION`)."""
    document: dict[str, Any] = {
        "report_version": REPORT_VERSION,
        "summary": {
            "ok": result.ok,
            "files_scanned": result.files_scanned,
            "findings": len(result.findings),
            "suppressed": result.suppressed,
            "baselined": result.baselined,
            "rules": list(result.rules),
            "stale_suppressions": len(result.stale_suppressions),
            "stale_baseline": len(result.stale_baseline),
        },
        "timings": {
            phase: round(seconds, 6)
            for phase, seconds in sorted(result.timings.items())
        },
        "findings": [finding.to_dict() for finding in result.findings],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def parse_json(text: str) -> list[Finding]:
    """Findings from a :func:`render_json` document (round-trip helper)."""
    document = json.loads(text)
    if document.get("report_version") != REPORT_VERSION:
        raise ValueError(
            f"unsupported report version {document.get('report_version')!r}"
        )
    return [Finding.from_dict(entry) for entry in document["findings"]]
