"""Project-wide symbol table — the shared cross-module analysis core.

One :class:`SymbolTable` is built per lint run (see
``repro.lint.analysis``) and answers the questions every
interprocedural checker keeps re-asking:

* *What does this name mean here?*  Import aliases, module-level
  definitions and class methods resolve to canonical dotted names
  (``repro.core.cache.ResultCache.get``) via :meth:`SymbolTable.resolve`.
* *What type is this attribute?*  ``self.result_cache = ResultCache(d)``
  records attribute ownership, so ``self.result_cache.get(...)`` in any
  method of that class resolves through the owning class.  Module-level
  singletons (``_EVALUATION_CACHE = _LRUCache(...)``) and
  class-annotated parameters work the same way.
* *Which names are locks, and what do they guard?*  Assignments of
  ``threading.Lock()`` / ``RLock()`` register canonical lock ids, and
  ``# guarded-by: <lock>`` comments declare the lock-discipline
  contract checked by RL007 (see docs/LINTING.md).

Everything here is conservative and syntactic: when a name cannot be
resolved confidently the table says so (``None``) rather than guessing,
so downstream rules stay quiet instead of wrong.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

from repro.lint.project import Module, Project, dotted_parts
from repro.lint.project import import_aliases as module_import_aliases
from repro.lint.suppress import comment_tokens

#: Special ``guarded-by`` value for state confined to the asyncio event
#: loop: no lock is required, but the state must never be reached from a
#: thread or process dispatch target.
EVENT_LOOP_GUARD = "event-loop"

#: Canonical constructors whose result is treated as a mutex.
LOCK_CONSTRUCTORS = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "multiprocessing.Lock",
        "multiprocessing.RLock",
    }
)

_GUARD_MARKER = re.compile(
    r"#\s*guarded-by:\s*(?P<lock>event-loop|[A-Za-z_][\w.]*)"
    r"(?:\s*\((?P<mode>writes)\))?"
)


@dataclass(frozen=True)
class GuardSpec:
    """One ``# guarded-by:`` declaration attached to a shared name."""

    target: str  #: canonical guarded name (``mod.Class.attr`` / ``mod.NAME``)
    lock: str  #: canonical lock id, or :data:`EVENT_LOOP_GUARD`
    writes_only: bool  #: only writes need the lock (lock-free read path)
    line: int  #: declaration line (itself exempt from checking)
    module: str  #: dotted name of the declaring module


@dataclass
class FunctionSymbol:
    """One function or method definition."""

    qualname: str  #: canonical dotted name (``mod.Class.meth`` / ``mod.fn``)
    module: Module
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: str | None = None  #: unqualified owning class, if a method
    #: parameter name → canonical class qualname (from annotations that
    #: resolve to a project class)
    param_types: dict[str, str] = field(default_factory=dict)
    #: lock the *caller* must hold when invoking this function
    #: (function-level ``# guarded-by:`` on the ``def`` line)
    requires_lock: str | None = None

    @property
    def is_async(self) -> bool:
        """True for ``async def`` functions."""
        return isinstance(self.node, ast.AsyncFunctionDef)


@dataclass
class ClassSymbol:
    """One class definition with its methods and attribute types."""

    qualname: str  #: canonical dotted name (``mod.Class``)
    module: Module
    node: ast.ClassDef
    methods: dict[str, FunctionSymbol] = field(default_factory=dict)
    #: attribute name → canonical constructor qualname inferred from
    #: ``self.x = Ctor(...)`` in any method (or a class-body assignment)
    attr_types: dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleSymbols:
    """Per-module slice of the symbol table."""

    module: Module
    aliases: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionSymbol] = field(default_factory=dict)
    classes: dict[str, ClassSymbol] = field(default_factory=dict)
    #: every name assigned at module level (shadow-detection and
    #: canonicalization of module globals)
    global_names: set[str] = field(default_factory=set)
    #: module-level name → canonical constructor qualname
    global_types: dict[str, str] = field(default_factory=dict)


def _class_like(name: str) -> bool:
    """Heuristic: does the final dotted segment look like a class name?

    ``ResultCache`` and ``_LRUCache`` qualify; ``get_metrics`` does not.
    Keeps attribute-ownership inference from recording factory-function
    return values it cannot see into.
    """
    leaf = name.rsplit(".", 1)[-1].lstrip("_")
    return bool(leaf) and leaf[0].isupper()


def _annotation_name(node: ast.expr) -> ast.expr | None:
    """Unwrap ``X | None`` / ``Optional[X]`` annotations to the bare name."""
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left_none = isinstance(node.left, ast.Constant) and node.left.value is None
        right_none = isinstance(node.right, ast.Constant) and node.right.value is None
        if left_none and not right_none:
            return _annotation_name(node.right)
        if right_none and not left_none:
            return _annotation_name(node.left)
        return None
    if isinstance(node, ast.Subscript):
        parts = dotted_parts(node.value)
        if parts and parts[-1] == "Optional":
            if isinstance(node.slice, ast.expr):
                return _annotation_name(node.slice)
        return None
    if isinstance(node, (ast.Name, ast.Attribute)):
        return node
    return None


def _ctor_name(
    value: ast.expr, aliases: dict[str, str], module_name: str
) -> str | None:
    """Constructor qualname for ``Ctor(...)`` expressions, else ``None``.

    A bare class-like name not covered by an import alias is assumed to
    be defined in the same module.  Follows both arms of a conditional
    expression (``A(...) if cond else B(...)``) as long as they agree.
    """
    if isinstance(value, ast.IfExp):
        body = _ctor_name(value.body, aliases, module_name)
        orelse = _ctor_name(value.orelse, aliases, module_name)
        if body is not None and (orelse is None or orelse == body):
            return body
        return orelse
    if not isinstance(value, ast.Call):
        return None
    parts = dotted_parts(value.func)
    if parts is None:
        return None
    head, rest = parts[0], parts[1:]
    if head in aliases:
        resolved = ".".join([aliases[head], *rest])
    elif not rest:
        resolved = f"{module_name}.{head}"
    else:
        resolved = ".".join(parts)
    return resolved if _class_like(resolved) else None


class SymbolTable:
    """All definitions of a :class:`Project`, with name resolution."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.modules: dict[str, ModuleSymbols] = {}
        #: every function and method, keyed by canonical qualname
        self.functions: dict[str, FunctionSymbol] = {}
        #: every class, keyed by canonical qualname
        self.classes: dict[str, ClassSymbol] = {}
        #: canonical ids of names bound to :data:`LOCK_CONSTRUCTORS`
        self.locks: set[str] = set()
        #: guard target → declaration (the RL007 contract)
        self.guards: dict[str, GuardSpec] = {}
        for module in project.modules:
            self._index_module(module)
        # Parameter annotations can only be typed once every class is
        # known, so this runs as a second pass.
        for symbol in self.functions.values():
            self._type_parameters(symbol)

    # -- construction ------------------------------------------------

    def _index_module(self, module: Module) -> None:
        syms = ModuleSymbols(module=module, aliases=module_import_aliases(module.tree))
        self.modules[module.name] = syms
        comments = comment_tokens(module.source)
        for stmt in module.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._index_function(syms, stmt, class_name=None, comments=comments)
            elif isinstance(stmt, ast.ClassDef):
                self._index_class(syms, stmt, comments)
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                self._index_global(syms, stmt, comments)
        # Imported names are module-level bindings too (``import_aliases``
        # already walks nested ``if TYPE_CHECKING:`` / ``try:`` blocks).
        for name in syms.aliases:
            syms.global_names.add(name)

    def _index_function(
        self,
        syms: ModuleSymbols,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        class_name: str | None,
        comments: dict[int, str],
    ) -> FunctionSymbol:
        mod = syms.module.name
        qual = (
            f"{mod}.{class_name}.{node.name}" if class_name else f"{mod}.{node.name}"
        )
        symbol = FunctionSymbol(
            qualname=qual, module=syms.module, node=node, class_name=class_name
        )
        guard = _GUARD_MARKER.search(comments.get(node.lineno, ""))
        if guard is not None:
            symbol.requires_lock = self._canonical_lock(
                guard.group("lock"), mod, class_name
            )
        self.functions[qual] = symbol
        if class_name is None:
            syms.functions[node.name] = symbol
            syms.global_names.add(node.name)
        return symbol

    def _index_class(
        self, syms: ModuleSymbols, node: ast.ClassDef, comments: dict[int, str]
    ) -> None:
        mod = syms.module.name
        qual = f"{mod}.{node.name}"
        cls = ClassSymbol(qualname=qual, module=syms.module, node=node)
        self.classes[qual] = cls
        syms.classes[node.name] = cls
        syms.global_names.add(node.name)
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                cls.methods[stmt.name] = self._index_function(
                    syms, stmt, class_name=node.name, comments=comments
                )
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                self._index_class_attr(syms, cls, stmt, comments)
        # ``self.x = Ctor(...)`` inside any method fills attribute types
        # and ``# guarded-by`` declarations on instance state.
        for method in cls.methods.values():
            for sub in ast.walk(method.node):
                if isinstance(sub, (ast.Assign, ast.AnnAssign)):
                    self._index_self_assign(syms, cls, sub, comments)

    def _index_class_attr(
        self,
        syms: ModuleSymbols,
        cls: ClassSymbol,
        stmt: ast.Assign | ast.AnnAssign,
        comments: dict[int, str],
    ) -> None:
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            canonical = f"{cls.qualname}.{target.id}"
            if stmt.value is not None:
                ctor = _ctor_name(stmt.value, syms.aliases, syms.module.name)
                if ctor is not None:
                    cls.attr_types.setdefault(target.id, ctor)
                    if ctor in LOCK_CONSTRUCTORS:
                        self.locks.add(canonical)
            self._maybe_guard(
                syms,
                stmt.lineno,
                canonical,
                comments,
                class_name=cls.node.name,
                end_lineno=stmt.end_lineno,
            )

    def _index_self_assign(
        self,
        syms: ModuleSymbols,
        cls: ClassSymbol,
        stmt: ast.Assign | ast.AnnAssign,
        comments: dict[int, str],
    ) -> None:
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        for target in targets:
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            canonical = f"{cls.qualname}.{target.attr}"
            if stmt.value is not None:
                ctor = _ctor_name(stmt.value, syms.aliases, syms.module.name)
                if ctor is not None:
                    cls.attr_types.setdefault(target.attr, ctor)
                    if ctor in LOCK_CONSTRUCTORS:
                        self.locks.add(canonical)
            self._maybe_guard(
                syms,
                stmt.lineno,
                canonical,
                comments,
                class_name=cls.node.name,
                end_lineno=stmt.end_lineno,
            )

    def _index_global(
        self,
        syms: ModuleSymbols,
        stmt: ast.Assign | ast.AnnAssign | ast.AugAssign,
        comments: dict[int, str],
    ) -> None:
        if isinstance(stmt, ast.Assign):
            targets: list[ast.expr] = list(stmt.targets)
        else:
            targets = [stmt.target]
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            syms.global_names.add(target.id)
            canonical = f"{syms.module.name}.{target.id}"
            value = stmt.value if not isinstance(stmt, ast.AugAssign) else None
            if value is not None:
                ctor = _ctor_name(value, syms.aliases, syms.module.name)
                if ctor is not None:
                    syms.global_types.setdefault(target.id, ctor)
                    if ctor in LOCK_CONSTRUCTORS:
                        self.locks.add(canonical)
            self._maybe_guard(
                syms,
                stmt.lineno,
                canonical,
                comments,
                class_name=None,
                end_lineno=stmt.end_lineno,
            )

    def _maybe_guard(
        self,
        syms: ModuleSymbols,
        lineno: int,
        canonical: str,
        comments: dict[int, str],
        class_name: str | None,
        end_lineno: int | None = None,
    ) -> None:
        # Formatters may wrap the assignment, pushing the trailing
        # comment onto the statement's last physical line — accept the
        # marker anywhere in the statement's line span.
        match = None
        for line in range(lineno, (end_lineno or lineno) + 1):
            match = _GUARD_MARKER.search(comments.get(line, ""))
            if match is not None:
                break
        if match is None:
            return
        lock = self._canonical_lock(match.group("lock"), syms.module.name, class_name)
        self.guards.setdefault(
            canonical,
            GuardSpec(
                target=canonical,
                lock=lock,
                writes_only=match.group("mode") == "writes",
                line=lineno,
                module=syms.module.name,
            ),
        )

    def _canonical_lock(
        self, lock: str, module_name: str, class_name: str | None
    ) -> str:
        """Canonical id for a ``guarded-by`` lock name.

        ``event-loop`` passes through; already-dotted names resolve via
        the module's aliases; a bare name binds to the enclosing class
        attribute when one exists, else to the module global.
        """
        if lock == EVENT_LOOP_GUARD:
            return lock
        syms = self.modules.get(module_name)
        if "." in lock:
            head, _, rest = lock.partition(".")
            if syms is not None and head in syms.aliases:
                return f"{syms.aliases[head]}.{rest}"
            return lock
        if class_name is not None:
            candidate = f"{module_name}.{class_name}.{lock}"
            if (
                syms is None
                or lock not in syms.global_names
                or candidate in self.locks
            ):
                return candidate
        return f"{module_name}.{lock}"

    def _type_parameters(self, symbol: FunctionSymbol) -> None:
        syms = self.modules[symbol.module.name]
        args = symbol.node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if arg.annotation is None:
                continue
            name_node = _annotation_name(arg.annotation)
            if name_node is None:
                continue
            resolved = self.resolve_parts(dotted_parts(name_node), syms)
            if resolved is not None and resolved in self.classes:
                symbol.param_types[arg.arg] = resolved

    # -- resolution --------------------------------------------------

    def resolve_parts(
        self, parts: list[str] | None, syms: ModuleSymbols
    ) -> str | None:
        """Resolve a dotted-name chain in a module's top-level scope."""
        if not parts:
            return None
        head, rest = parts[0], parts[1:]
        if head in syms.aliases:
            return ".".join([syms.aliases[head], *rest])
        if head in syms.global_names:
            return ".".join([syms.module.name, head, *rest])
        if head == "open" and not rest:
            return "open"
        return None

    def resolve(
        self,
        node: ast.expr,
        syms: ModuleSymbols,
        fn: FunctionSymbol | None = None,
        local_names: frozenset[str] = frozenset(),
    ) -> str | None:
        """Canonical dotted name of ``node`` as seen from ``fn``.

        Handles ``self.attr`` chains via attribute ownership, annotated
        parameters, module-level singletons and import aliases.  Names
        shadowed by function locals (``local_names``) resolve to
        ``None`` — a local binding hides the module global.
        """
        parts = dotted_parts(node)
        if parts is None:
            return None
        head = parts[0]
        if fn is not None:
            if head == "self" and fn.class_name is not None:
                cls = self.classes.get(f"{fn.module.name}.{fn.class_name}")
                return self._resolve_instance(cls, parts[1:])
            if head in fn.param_types:
                cls = self.classes.get(fn.param_types[head])
                return self._resolve_instance(cls, parts[1:])
            if head in local_names:
                return None
        if head in syms.global_types and len(parts) > 1:
            owner = syms.global_types[head]
            cls = self.classes.get(owner)
            resolved = self._resolve_instance(cls, parts[1:])
            if resolved is not None:
                return resolved
            return ".".join([owner, *parts[1:]])
        return self.resolve_parts(parts, syms)

    def _resolve_instance(
        self, cls: ClassSymbol | None, attrs: list[str]
    ) -> str | None:
        """Resolve ``.a.b`` attribute access on an instance of ``cls``."""
        if cls is None:
            return None
        if not attrs:
            return cls.qualname
        first, rest = attrs[0], attrs[1:]
        if not rest:
            return f"{cls.qualname}.{first}"
        owner = cls.attr_types.get(first)
        if owner is None:
            return None
        nested = self.classes.get(owner)
        if nested is not None:
            return self._resolve_instance(nested, rest)
        return ".".join([owner, *rest])

    def resolve_type(
        self,
        node: ast.expr,
        syms: ModuleSymbols,
        fn: FunctionSymbol | None = None,
    ) -> str | None:
        """Best-effort *type* (constructor qualname) of a value expression.

        ``self._engine_pool`` types as whatever ``__init__`` assigned to
        it; an annotated parameter types as its annotation; a
        module-level singleton types as its constructor.
        """
        parts = dotted_parts(node)
        if not parts:
            return None
        head, chain = parts[0], parts[1:]
        owner: str | None = None
        if fn is not None and head == "self" and fn.class_name is not None:
            owner = f"{fn.module.name}.{fn.class_name}"
        elif fn is not None and head in fn.param_types:
            owner = fn.param_types[head]
        elif head in syms.global_types:
            owner = syms.global_types[head]
        else:
            return None
        for attr in chain:
            cls = self.classes.get(owner) if owner is not None else None
            if cls is None:
                return None
            owner = cls.attr_types.get(attr)
            if owner is None:
                return None
        return owner

    def guard_for(self, target: str) -> GuardSpec | None:
        """The ``guarded-by`` declaration covering ``target``, if any."""
        return self.guards.get(target)
