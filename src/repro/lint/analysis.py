"""The per-run shared analysis: symbol table + call graph, built once.

Five of the eight rules are interprocedural; without sharing, each one
would re-walk every AST in the project.  :func:`analyze` builds the
:class:`~repro.lint.symbols.SymbolTable` and
:class:`~repro.lint.callgraph.CallGraph` exactly once per
:class:`~repro.lint.project.Project` and caches the result on the
project object itself, so checkers can call it independently (unit
tests lint tiny synthetic projects) while a full engine run pays one
build.  The engine triggers the build eagerly so its cost is visible
in the per-phase timings (``bench_lint_runtime.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.lint.callgraph import CallGraph
from repro.lint.project import Project
from repro.lint.symbols import SymbolTable

_CACHE_ATTR = "_reprolint_analysis"


@dataclass
class ProjectAnalysis:
    """The shared analysis products for one lint run."""

    symbols: SymbolTable
    graph: CallGraph
    #: wall-clock seconds per build phase (``symbol_table``, ``call_graph``)
    timings: dict[str, float] = field(default_factory=dict)


def analyze(project: Project) -> ProjectAnalysis:
    """The (cached) :class:`ProjectAnalysis` for ``project``."""
    cached = getattr(project, _CACHE_ATTR, None)
    if isinstance(cached, ProjectAnalysis):
        return cached
    start = time.perf_counter()
    symbols = SymbolTable(project)
    symbols_done = time.perf_counter()
    graph = CallGraph(project, symbols)
    graph_done = time.perf_counter()
    analysis = ProjectAnalysis(
        symbols=symbols,
        graph=graph,
        timings={
            "symbol_table": symbols_done - start,
            "call_graph": graph_done - symbols_done,
        },
    )
    setattr(project, _CACHE_ATTR, analysis)
    return analysis
