"""Lint configuration: scanned paths, allowlists and rule parameters.

The defaults encode this repository's contracts; tests point the same
checkers at fixture trees by passing a customized :class:`LintConfig`.
Path allowlists match by repository-relative POSIX *suffix*, so they
keep working when the repo root moves or when a fixture copies a real
module under a scratch directory.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: File name of the committed baseline at the repository root.
DEFAULT_BASELINE_NAME = ".reprolint-baseline.json"

#: Pipeline entry points that must carry repro.obs span instrumentation
#: (rule RL005), as dotted qualified names.  An entry applies only when
#: its module is part of the scanned project; a listed function missing
#: from a scanned module is itself a finding (the list must not rot).
DEFAULT_OBS_ENTRY_POINTS: tuple[str, ...] = (
    "repro.analysis.compare.ClusterComparison.combined_frontier",
    "repro.analysis.validation.validate_program",
    "repro.core.batch.plan_batch",
    "repro.core.calibrate.calibrate",
    "repro.core.configspace.evaluate_space",
    "repro.core.dvfs.advise_stall_dvfs",
    "repro.core.inputs.characterize",
    "repro.core.model.HybridProgramModel.predict",
    "repro.core.pareto.pareto_frontier",
    "repro.core.planner.decide",
    "repro.core.planner.evaluate_space_streamed",
    "repro.core.scaling.strong_scaling",
    "repro.core.scaling.weak_scaling",
    "repro.core.search.search_min_energy_within_deadline",
    "repro.core.search.search_min_time_within_budget",
    "repro.core.whatif.WhatIf.compare",
    "repro.pipeline.runner.run_pipeline",
    "repro.serve.app.ServeApp.handle",
)


#: Calls that block the calling thread (rule RL006), as canonical
#: dotted names after symbol-table resolution.  ``ResultCache`` probes
#: hit disk, ``evaluate_configs``/``from_measurements``/``execute`` are
#: the engine and model-build hot paths, and a ``threading`` lock
#: acquire can park the event loop behind a worker thread.
DEFAULT_BLOCKING_CALLS: tuple[str, ...] = (
    "open",
    "io.open",
    "os.listdir",
    "os.makedirs",
    "os.mkdir",
    "os.remove",
    "os.rename",
    "os.replace",
    "os.rmdir",
    "os.scandir",
    "os.stat",
    "os.unlink",
    "repro.core.cache.ResultCache.contains",
    "repro.core.cache.ResultCache.get",
    "repro.core.cache.ResultCache.put",
    "repro.core.model.HybridProgramModel.from_measurements",
    "repro.core.planner.execute",
    "repro.core.vectorized.evaluate_configs",
    "socket.create_connection",
    "threading.Barrier.wait",
    "threading.Condition.wait",
    "threading.Event.wait",
    "threading.Lock.acquire",
    "threading.RLock.acquire",
    "time.sleep",
    "urllib.request.urlopen",
)

#: Dotted-name prefixes whose every call blocks (rule RL006).
DEFAULT_BLOCKING_PREFIXES: tuple[str, ...] = (
    "requests.",
    "shutil.",
    "subprocess.",
)

#: Method names treated as blocking when the receiver cannot be typed
#: (rule RL006) — the unresolved-call heuristic.  Deliberately short:
#: only names that are IO in every library this repo touches.
DEFAULT_BLOCKING_METHODS: tuple[str, ...] = (
    "acquire",
    "read_bytes",
    "read_text",
    "write_bytes",
    "write_text",
)


@dataclass(frozen=True)
class LintConfig:
    """Knobs for one lint run (defaults = this repository's contracts)."""

    #: Rule ids to run; ``None`` runs every registered rule.
    rules: tuple[str, ...] | None = None

    #: RL001 — modules allowed to contain raw conversion literals (the
    #: single unit-system module; everything else must call its helpers).
    units_allowed: tuple[str, ...] = ("repro/units.py",)

    #: RL002 — modules allowed to touch entropy/wall-clock sources
    #: directly (the named-stream module itself).
    determinism_allowed: tuple[str, ...] = ("repro/rng.py",)

    #: RL004 — modules whose *every* write must use tmp+rename (the
    #: cache and checkpoint layers).  Writes elsewhere are checked only
    #: when their target expression mentions a cache/checkpoint path.
    atomic_modules: tuple[str, ...] = (
        "repro/core/cache.py",
        "repro/pipeline/store.py",
        "repro/resilience/checkpoint.py",
    )

    #: RL004 — substrings that mark a write target as cache/checkpoint
    #: data in modules outside :attr:`atomic_modules`.
    atomic_target_markers: tuple[str, ...] = ("cache", "checkpoint")

    #: RL005 — qualified names of pipeline entry points requiring spans.
    obs_entry_points: tuple[str, ...] = field(
        default=DEFAULT_OBS_ENTRY_POINTS
    )

    #: RL006 — canonical dotted names of calls that block the thread.
    blocking_calls: tuple[str, ...] = field(default=DEFAULT_BLOCKING_CALLS)

    #: RL006 — dotted-name prefixes whose every call blocks.
    blocking_prefixes: tuple[str, ...] = field(
        default=DEFAULT_BLOCKING_PREFIXES
    )

    #: RL006 — method names assumed blocking on untyped receivers.
    blocking_methods: tuple[str, ...] = field(default=DEFAULT_BLOCKING_METHODS)

    def path_matches(self, rel_path: str, suffixes: tuple[str, ...]) -> bool:
        """True when ``rel_path`` ends with any allowlisted suffix."""
        return any(
            rel_path == suffix or rel_path.endswith("/" + suffix)
            for suffix in suffixes
        )
