"""``repro`` command-line interface.

Subcommands mirror the paper's workflow:

* ``repro systems``   — print the Table 3 system specs.
* ``repro netpipe``   — network characterization sweep (Fig. 3).
* ``repro predict``   — predict time/energy/UCR at one configuration.
* ``repro validate``  — measured-vs-predicted campaign (Table 2 rows).
* ``repro pareto``    — time-energy Pareto frontier (Figs. 8-9).
* ``repro ucr``       — UCR across configurations (Figs. 10-11).
* ``repro whatif``    — resource-scaling what-if (§V-B).
* ``repro pipeline``  — incremental reproduction DAG (run/status/repro).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis.report import ascii_table, format_series
from repro.analysis.figures import ascii_chart
from repro.analysis.validation import validate_program
from repro.core.configspace import ConfigSpace, evaluate_space
from repro.core.model import HybridProgramModel
from repro.core.pareto import pareto_frontier
from repro.core.planner import PLAN_MODES
from repro.core.whatif import WhatIf
from repro.machines.registry import get_cluster, list_clusters
from repro.machines.spec import Configuration
from repro.measure.netpipe import run_netpipe
from repro.simulate.backend import SIM_BACKENDS
from repro.simulate.cluster import SimulatedCluster
from repro.units import ghz, joules_to_kj, to_ghz
from repro.workloads.registry import get_program, list_programs


def _parse_config(text: str) -> Configuration:
    """Parse ``n,c,f`` with f in GHz, e.g. ``1,8,1.8``."""
    try:
        n_s, c_s, f_s = text.split(",")
        return Configuration(
            nodes=int(n_s), cores=int(c_s), frequency_hz=ghz(float(f_s))
        )
    except (ValueError, TypeError) as exc:
        raise argparse.ArgumentTypeError(
            f"expected n,c,f[GHz] like 1,8,1.8 — got {text!r}"
        ) from exc


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Time-energy modeling of hybrid MPI+OpenMP programs "
        "(IPDPS 2015 reproduction).",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="TRACE.jsonl",
        help="record pipeline spans and write a JSONL trace dump here "
        "('-' for stdout)",
    )
    parser.add_argument(
        "--metrics",
        default=None,
        metavar="METRICS.txt",
        help="collect counters/histograms and write them in Prometheus "
        "text format here ('-' for stdout)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="shard large configuration-space sweeps across N worker "
        "processes (results stay bit-identical — see docs/SCALING.md)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help="persist configuration-space results in a fingerprinted "
        "on-disk cache at PATH; warm sweeps are served from it and any "
        "model/space change invalidates the entry (docs/SCALING.md)",
    )
    parser.add_argument(
        "--plan",
        choices=PLAN_MODES,
        default=None,
        metavar="MODE",
        help="execution planner mode for configuration-space sweeps: "
        "'auto' picks scalar/vectorized/sharded/cached from a calibrated "
        "cost model, the others force one strategy — results stay within "
        "the pinned tolerances either way (docs/PLANNER.md)",
    )
    parser.add_argument(
        "--max-block-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help="stream huge sweeps in blocks whose working set fits BYTES; "
        "streamed results are bit-identical to materialized ones "
        "(docs/PLANNER.md)",
    )
    parser.add_argument(
        "--sim-backend",
        choices=SIM_BACKENDS,
        default="auto",
        help="simulator execution core: 'batched' stacks replication runs "
        "through one NumPy pipeline, 'scalar' loops the reference core, "
        "'auto' picks per call — results are bit-identical either way "
        "(docs/SIMULATOR.md)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="enable the resilience layer: retry each lost instrument "
        "sample up to N times (default 3 when --chaos/--timeout is given)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-attempt instrument timeout; a sample delayed past it "
        "counts as lost (enables the resilience layer)",
    )
    parser.add_argument(
        "--chaos",
        default=None,
        metavar="SCHEDULE.json",
        help="inject a deterministic chaos schedule (drops/delays/"
        "corruptions) into every instrument call — see docs/RESILIENCE.md",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("systems", help="print the validation cluster specs (Table 3)")

    p = sub.add_parser("netpipe", help="network characterization (Fig. 3)")
    p.add_argument("--cluster", choices=list_clusters(), default="arm")

    p = sub.add_parser(
        "characterize",
        help="run the measurement campaigns and save the model inputs",
    )
    p.add_argument("--cluster", choices=list_clusters(), required=True)
    p.add_argument("--program", choices=list_programs(), required=True)
    p.add_argument("--output", required=True, metavar="INPUTS.json")
    p.add_argument("--repetitions", type=int, default=3)
    p.add_argument(
        "--checkpoint",
        default=None,
        metavar="CHECKPOINT.json",
        help="persist the baseline sweep's progress here and resume an "
        "interrupted campaign from it",
    )

    p = sub.add_parser("predict", help="predict one configuration")
    p.add_argument("--cluster", choices=list_clusters(), required=True)
    p.add_argument("--program", choices=list_programs(), required=True)
    p.add_argument("--config", type=_parse_config, required=True, metavar="n,c,fGHz")
    p.add_argument("--input-class", default=None)
    p.add_argument(
        "--inputs",
        default=None,
        metavar="INPUTS.json",
        help="reuse saved model inputs instead of re-characterizing",
    )

    p = sub.add_parser("validate", help="measured-vs-predicted campaign")
    p.add_argument("--cluster", choices=list_clusters(), required=True)
    p.add_argument("--program", choices=list_programs(), required=True)
    p.add_argument("--repetitions", type=int, default=3)

    p = sub.add_parser("pareto", help="time-energy Pareto frontier")
    p.add_argument("--cluster", choices=list_clusters(), required=True)
    p.add_argument("--program", choices=list_programs(), required=True)
    p.add_argument("--inputs", default=None, metavar="INPUTS.json")
    p.add_argument(
        "--extrapolate",
        action="store_true",
        help="use the paper's extrapolated space (Figs. 8-9) instead of the "
        "physical one",
    )
    p.add_argument("--deadline", type=float, default=None, metavar="SECONDS")
    p.add_argument("--budget", type=float, default=None, metavar="KILOJOULES")
    p.add_argument(
        "--checkpoint",
        default=None,
        metavar="CHECKPOINT.json",
        help="persist the space evaluation's progress here and resume an "
        "interrupted sweep from it",
    )

    p = sub.add_parser("ucr", help="UCR across configurations (Figs. 10-11)")
    p.add_argument("--cluster", choices=list_clusters(), required=True)
    p.add_argument("--program", choices=list_programs(), required=True)
    p.add_argument("--inputs", default=None, metavar="INPUTS.json")

    p = sub.add_parser("whatif", help="resource-scaling what-if (§V-B)")
    p.add_argument("--cluster", choices=list_clusters(), required=True)
    p.add_argument("--program", choices=list_programs(), required=True)
    p.add_argument("--config", type=_parse_config, required=True, metavar="n,c,fGHz")
    p.add_argument("--mem-bandwidth", type=float, default=1.0)
    p.add_argument("--net-bandwidth", type=float, default=1.0)

    p = sub.add_parser(
        "advise", help="phase-aware DVFS advice for one configuration"
    )
    p.add_argument("--cluster", choices=list_clusters(), required=True)
    p.add_argument("--program", choices=list_programs(), required=True)
    p.add_argument("--inputs", default=None, metavar="INPUTS.json")
    p.add_argument("--config", type=_parse_config, required=True, metavar="n,c,fGHz")
    p.add_argument("--max-slowdown", type=float, default=0.05)

    p = sub.add_parser("roofline", help="roofline placement of a program")
    p.add_argument("--cluster", choices=list_clusters(), required=True)
    p.add_argument("--program", choices=list_programs(), required=True)

    p = sub.add_parser(
        "compare", help="combined cross-cluster Pareto comparison"
    )
    p.add_argument("--program", choices=list_programs(), required=True)
    p.add_argument("--deadline", type=float, default=None, metavar="SECONDS")
    p.add_argument("--budget", type=float, default=None, metavar="KILOJOULES")

    p = sub.add_parser(
        "batch", help="plan a deadline queue of jobs (EDF + min energy)"
    )
    p.add_argument("--cluster", choices=list_clusters(), required=True)
    p.add_argument(
        "--job",
        action="append",
        required=True,
        metavar="PROGRAM:DEADLINE_S",
        help="repeatable, e.g. --job SP:60 --job BT:120",
    )
    p.add_argument("--nodes", type=int, default=None)

    p = sub.add_parser(
        "trace", help="run one traced execution and print its phase profile"
    )
    p.add_argument("--cluster", choices=list_clusters(), required=True)
    p.add_argument("--program", choices=list_programs(), required=True)
    p.add_argument("--config", type=_parse_config, required=True, metavar="n,c,fGHz")

    p = sub.add_parser(
        "plan",
        help="execution planner utilities: calibrate the cost model from "
        "bench reports, or explain a decision (docs/PLANNER.md)",
    )
    plan_sub = p.add_subparsers(dest="plan_command", required=True)
    pc = plan_sub.add_parser(
        "calibrate",
        help="fit the planner cost model from the committed bench JSONs",
    )
    pc.add_argument(
        "--bench-dir",
        default="benchmarks/out",
        metavar="DIR",
        help="directory holding vectorized_speedup.json (+ optional "
        "parallel_speedup.json)",
    )
    pc.add_argument(
        "--output",
        default="planner_calibration.json",
        metavar="CALIBRATION.json",
        help="where to write the calibration (point "
        "REPRO_PLANNER_CALIBRATION here to use it)",
    )
    pe = plan_sub.add_parser(
        "explain",
        help="print the strategy the planner would pick and why",
    )
    pe.add_argument(
        "--configs", type=int, required=True, metavar="N",
        help="sweep size in configurations",
    )
    pe.add_argument(
        "--plan-workers", type=int, default=1, metavar="N",
        help="worker count of the ambient plan being considered",
    )
    pe.add_argument(
        "--calibration",
        default=None,
        metavar="CALIBRATION.json",
        help="use this saved calibration instead of "
        "REPRO_PLANNER_CALIBRATION / the fallback table",
    )

    p = sub.add_parser(
        "pipeline",
        help="content-addressed reproduction DAG: run stages incrementally, "
        "inspect staleness, or reproduce the whole paper (docs/PIPELINE.md)",
    )
    pipe_sub = p.add_subparsers(dest="pipeline_command", required=True)

    def _pipeline_common(sp: argparse.ArgumentParser) -> None:
        sp.add_argument(
            "--store",
            default=".repro-pipeline",
            metavar="DIR",
            help="artifact store directory (default: .repro-pipeline); "
            "entries are content-addressed, so one store serves any "
            "sequence of edits",
        )
        sp.add_argument(
            "--stages",
            nargs="+",
            default=None,
            metavar="NAME",
            help="restrict to these stages plus their transitive "
            "dependencies (default: the whole DAG)",
        )
        sp.add_argument(
            "--json",
            action="store_true",
            help="machine-readable JSON output instead of the table",
        )

    pr = pipe_sub.add_parser(
        "run",
        help="execute stages whose content fingerprint changed; everything "
        "else is served from the store",
    )
    _pipeline_common(pr)
    pr.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        metavar="N",
        help="run up to N independent stages concurrently (each stage's "
        "internal sweeps still honor the global --workers plan)",
    )
    pr.add_argument(
        "--force",
        action="store_true",
        help="re-execute selected stages even when their entry exists "
        "(outputs land at the same fingerprints)",
    )
    ps = pipe_sub.add_parser(
        "status",
        help="report each stage as fresh/stale/missing with the concrete "
        "reason, without executing anything",
    )
    _pipeline_common(ps)
    pp = pipe_sub.add_parser(
        "repro",
        help="reproduce the paper end to end (characterize -> calibrate -> "
        "validate -> Fig. 8 -> extensions) and print the summary report",
    )
    _pipeline_common(pp)
    pp.add_argument("--jobs", "-j", type=int, default=1, metavar="N")

    p = sub.add_parser(
        "serve",
        help="run the asyncio HTTP/JSON prediction service "
        "(evaluate_space/search/pareto/whatif/ucr — see docs/SERVING.md)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8765)
    p.add_argument(
        "--rate",
        type=float,
        default=0.0,
        metavar="REQ_PER_S",
        help="sustained admission rate for the token bucket "
        "(0 = unlimited); excess requests get 429 + Retry-After",
    )
    p.add_argument(
        "--burst",
        type=float,
        default=None,
        metavar="N",
        help="token-bucket burst capacity (default: max(1, rate))",
    )
    p.add_argument(
        "--client-rate",
        type=float,
        default=0.0,
        metavar="REQ_PER_S",
        help="per-client sustained admission rate (0 = unlimited); "
        "clients are keyed by X-Client-Id, else the peer address",
    )
    p.add_argument(
        "--client-burst",
        type=float,
        default=None,
        metavar="N",
        help="per-client burst capacity (default: max(1, client-rate))",
    )
    p.add_argument(
        "--engine-workers",
        type=int,
        default=None,
        metavar="N",
        help="size of the bounded thread pool engine evaluations run in "
        "(default: 4); excess flights queue instead of growing threads",
    )

    # The real parser lives in repro.lint.cli; main() forwards to it
    # before global options are parsed.  This stub only provides the
    # --help listing.
    sub.add_parser(
        "lint",
        help="check repository invariants (units, determinism, fork "
        "safety, atomic IO, observability) — see 'repro lint --help'",
        add_help=False,
    )
    return parser


def _cmd_systems() -> int:
    rows = []
    keys = None
    for name in list_clusters():
        spec_row = get_cluster(name).spec_table()
        keys = list(spec_row.keys())
        rows.append(list(spec_row.values()))
    # transpose to the paper's orientation: attributes as rows
    assert keys is not None
    table_rows = [[keys[i]] + [r[i] for r in rows] for i in range(len(keys))]
    print(ascii_table(["Attribute"] + list_clusters(), table_rows, "Table 3: systems"))
    return 0


def _cmd_netpipe(args: argparse.Namespace) -> int:
    spec = get_cluster(args.cluster)
    result = run_netpipe(spec)
    print(format_series("latency vs message size", result.message_bytes, result.latency_s, "s"))
    print(format_series("throughput vs message size", result.message_bytes, result.throughput_mbps, "Mbps"))
    print(f"peak throughput: {result.peak_throughput_mbps:.1f} Mbps")
    return 0


def _simulated(cluster_name: str, backend: str = "auto") -> SimulatedCluster:
    """A simulated cluster honoring the global ``--sim-backend`` choice."""
    return SimulatedCluster(get_cluster(cluster_name), sim_backend=backend)


def _model_for(
    cluster_name: str,
    program_name: str,
    inputs_path: str | None = None,
    backend: str = "auto",
) -> tuple[SimulatedCluster, HybridProgramModel]:
    sim = _simulated(cluster_name, backend)
    program = get_program(program_name)
    if inputs_path is not None:
        from repro.io import load_model_inputs

        inputs = load_model_inputs(inputs_path)
        if inputs.program != program.name or inputs.cluster != cluster_name:
            raise SystemExit(
                f"saved inputs are for {inputs.program} on {inputs.cluster}, "
                f"not {program.name} on {cluster_name}"
            )
        return sim, HybridProgramModel(program=program, inputs=inputs)
    return sim, HybridProgramModel.from_measurements(sim, program)


def _cmd_characterize(args: argparse.Namespace) -> int:
    from repro import resilience
    from repro.core.inputs import characterize
    from repro.io import save_model_inputs
    from repro.resilience.pipeline import coverage_report

    sim = _simulated(args.cluster, args.sim_backend)
    inputs = characterize(
        sim,
        get_program(args.program),
        repetitions=args.repetitions,
        baseline_checkpoint=args.checkpoint,
    )
    save_model_inputs(inputs, args.output)
    print(
        f"characterized {args.program} on {args.cluster} "
        f"({len(inputs.baseline)} baseline points) -> {args.output}"
    )
    report = coverage_report(resilience.get_context())
    if report.degraded:
        print("degraded calibration — surviving coverage per instrument:")
        for line in report.summary_lines():
            print(f"  {line}")
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    if args.inputs is not None:
        from repro.core.model import HybridProgramModel as _Model
        from repro.io import load_model_inputs

        inputs = load_model_inputs(args.inputs)
        if inputs.program != args.program or inputs.cluster != args.cluster:
            raise SystemExit(
                f"saved inputs are for {inputs.program} on {inputs.cluster}, "
                f"not {args.program} on {args.cluster}"
            )
        model = _Model(program=get_program(args.program), inputs=inputs)
    else:
        _, model = _model_for(args.cluster, args.program, backend=args.sim_backend)
    pred = model.predict(args.config, args.input_class)
    t = pred.time
    print(f"configuration {pred.config}: class {pred.class_name}")
    print(f"  T      = {pred.time_s:10.2f} s")
    print(f"    T_CPU   = {t.t_cpu_s:10.2f} s")
    print(f"    T_mem   = {t.t_mem_s:10.2f} s")
    print(f"    T_net   = {t.t_net_s:10.2f} s (service {t.t_net_service_s:.2f}, wait {t.t_net_wait_s:.2f})")
    print(f"  E      = {joules_to_kj(pred.energy_j):10.2f} kJ")
    print(f"  UCR    = {pred.ucr:10.3f}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    sim = _simulated(args.cluster, args.sim_backend)
    program = get_program(args.program)
    campaign = validate_program(sim, program, repetitions=args.repetitions)
    rows = [
        [
            r.config.label(),
            f"{r.measured_time_s:.1f}",
            f"{r.predicted_time_s:.1f}",
            f"{r.time_error_percent:+.1f}",
            f"{joules_to_kj(r.measured_energy_j):.2f}",
            f"{joules_to_kj(r.predicted_energy_j):.2f}",
            f"{r.energy_error_percent:+.1f}",
        ]
        for r in campaign.records
    ]
    print(
        ascii_table(
            ["(n,c,f)", "T meas[s]", "T pred[s]", "T err[%]", "E meas[kJ]", "E pred[kJ]", "E err[%]"],
            rows,
            f"Validation: {program.name} on {args.cluster}",
        )
    )
    print(f"time:   {campaign.time_errors}")
    print(f"energy: {campaign.energy_errors}")
    return 0


def _cmd_pareto(args: argparse.Namespace) -> int:
    sim, model = _model_for(
        args.cluster, args.program, getattr(args, "inputs", None), args.sim_backend
    )
    if args.extrapolate:
        space = (
            ConfigSpace.xeon_pareto(sim.spec)
            if args.cluster == "xeon"
            else ConfigSpace.arm_pareto(sim.spec)
        )
    else:
        space = ConfigSpace.physical(sim.spec)
    if getattr(args, "checkpoint", None) is not None:
        from repro.resilience.pipeline import evaluate_space_checkpointed

        evaluation = evaluate_space_checkpointed(
            model, space, checkpoint_path=args.checkpoint
        )
    else:
        evaluation = evaluate_space(model, space)
    frontier = pareto_frontier(evaluation)
    rows = [
        [p.label, f"{p.time_s:.1f}", f"{joules_to_kj(p.energy_j):.2f}", f"{p.ucr:.2f}"]
        for p in frontier
    ]
    print(
        ascii_table(
            ["(n,c,f)", "T[s]", "E[kJ]", "UCR"],
            rows,
            f"Pareto frontier: {args.program} on {args.cluster} "
            f"({len(evaluation)} configurations)",
        )
    )
    frontier_set = {id(p.prediction) for p in frontier}
    marks = ["*" if id(p) in frontier_set else "." for p in evaluation.predictions]
    print(
        ascii_chart(
            evaluation.times_s,
            evaluation.energies_j / 1e3,
            logx=True,
            marks=marks,
            title="energy [kJ] vs time [s]  (* = Pareto-optimal)",
        )
    )
    if args.deadline is not None:
        from repro.core.optimizer import min_energy_within_deadline

        best = min_energy_within_deadline(evaluation, args.deadline)
        if best is None:
            print(f"deadline {args.deadline}s: infeasible")
        else:
            print(
                f"deadline {args.deadline}s: {best.config} "
                f"T={best.time_s:.1f}s E={joules_to_kj(best.energy_j):.2f}kJ"
            )
    if args.budget is not None:
        from repro.core.optimizer import min_time_within_budget

        best = min_time_within_budget(evaluation, args.budget * 1e3)
        if best is None:
            print(f"budget {args.budget}kJ: infeasible")
        else:
            print(
                f"budget {args.budget}kJ: {best.config} "
                f"T={best.time_s:.1f}s E={joules_to_kj(best.energy_j):.2f}kJ"
            )
    return 0


def _cmd_ucr(args: argparse.Namespace) -> int:
    sim, model = _model_for(
        args.cluster, args.program, getattr(args, "inputs", None), args.sim_backend
    )
    space = ConfigSpace.physical(sim.spec)
    evaluation = evaluate_space(model, space)
    rows = [
        [p.config.label(), f"{p.ucr:.3f}", f"{p.time_s:.1f}", f"{joules_to_kj(p.energy_j):.2f}"]
        for p in evaluation.predictions
    ]
    print(
        ascii_table(
            ["(n,c,f)", "UCR", "T[s]", "E[kJ]"],
            rows,
            f"UCR: {args.program} on {args.cluster}",
        )
    )
    return 0


def _cmd_whatif(args: argparse.Namespace) -> int:
    _, model = _model_for(args.cluster, args.program, backend=args.sim_backend)
    base = model.predict(args.config)
    tuned = model
    if args.mem_bandwidth != 1.0:
        tuned = WhatIf(tuned).memory_bandwidth(args.mem_bandwidth)
    if args.net_bandwidth != 1.0:
        tuned = WhatIf(tuned).network_bandwidth(args.net_bandwidth)
    after = tuned.predict(args.config)
    print(f"configuration {args.config}")
    print(
        f"  before: T={base.time_s:.1f}s E={joules_to_kj(base.energy_j):.2f}kJ UCR={base.ucr:.2f}"
    )
    print(
        f"  after:  T={after.time_s:.1f}s E={joules_to_kj(after.energy_j):.2f}kJ UCR={after.ucr:.2f}"
    )
    print(
        f"  delta:  T {after.time_s - base.time_s:+.1f}s "
        f"E {(after.energy_j - base.energy_j):+.0f}J UCR {after.ucr - base.ucr:+.2f}"
    )
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    from repro.core.dvfs import advise_stall_dvfs

    _, model = _model_for(
        args.cluster, args.program, getattr(args, "inputs", None), args.sim_backend
    )
    advice = advise_stall_dvfs(
        model, args.config, max_slowdown=args.max_slowdown
    )
    static, best = advice.static, advice.best
    print(f"configuration {args.config} (max slowdown {args.max_slowdown:.0%})")
    print(
        f"  static:            T={static.time_s:8.1f}s "
        f"E={joules_to_kj(static.energy_j):7.2f}kJ"
    )
    print(
        f"  stall DVFS @ {to_ghz(best.stall_frequency_hz):g}GHz: "
        f"T={best.time_s:8.1f}s E={joules_to_kj(best.energy_j):7.2f}kJ"
    )
    if advice.worthwhile:
        print(
            f"  -> saves {advice.energy_saving_j:.0f} J "
            f"({advice.energy_saving_j / static.energy_j:.1%}) at "
            f"{advice.slowdown:+.1%} time"
        )
    else:
        print("  -> static execution is already energy-optimal here")
    return 0


def _cmd_roofline(args: argparse.Namespace) -> int:
    from repro.core.roofline import node_roofline, place_workload
    from repro.workloads.registry import get_program as _get_program

    spec = get_cluster(args.cluster)
    program = _get_program(args.program)
    roof = node_roofline(spec, spec.node.max_cores, spec.node.core.fmax)
    placement = place_workload(spec, program)
    print(
        f"node roofline ({args.cluster}, c={roof.cores}, "
        f"f={to_ghz(roof.frequency_hz):g}GHz):"
    )
    print(f"  compute peak     : {roof.compute_peak:.3g} instr/s")
    print(f"  memory bandwidth : {roof.memory_bandwidth:.3g} B/s")
    print(f"  balance point    : AI = {roof.balance_ai:.2f} instr/B")
    print(f"{program.name}: AI = {placement.ai:.2f} instr/B -> {placement.bound}-bound")
    print(
        f"  single-node bounds: T >= {placement.min_time_s:.1f} s, "
        f"E >= {joules_to_kj(placement.min_energy_j):.2f} kJ"
    )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.analysis.compare import ClusterComparison
    from repro.core.configspace import ConfigSpace

    evaluations = {}
    for name in list_clusters():
        sim, model = _model_for(name, args.program, backend=args.sim_backend)
        evaluations[name] = evaluate_space(model, ConfigSpace.physical(sim.spec))
    comparison = ClusterComparison(evaluations)
    rows = [
        [
            p.cluster,
            p.prediction.config.label(),
            f"{p.time_s:.1f}",
            f"{joules_to_kj(p.energy_j):.2f}",
        ]
        for p in comparison.combined_frontier()
    ]
    print(
        ascii_table(
            ["cluster", "(n,c,f)", "T[s]", "E[kJ]"],
            rows,
            f"Combined Pareto frontier: {args.program} across "
            f"{', '.join(list_clusters())}",
        )
    )
    share = comparison.frontier_share()
    print("frontier share: " + ", ".join(f"{k}: {v}" for k, v in share.items()))
    crossover = comparison.crossover_deadline()
    if crossover is not None:
        print(f"winning cluster flips at deadline ~ {crossover:.1f}s")
    if args.deadline is not None:
        winner = comparison.winner_for_deadline(args.deadline)
        print(
            f"deadline {args.deadline}s -> "
            + (
                f"{winner.cluster} {winner.prediction.config} "
                f"E={joules_to_kj(winner.energy_j):.2f}kJ"
                if winner
                else "infeasible"
            )
        )
    if args.budget is not None:
        winner = comparison.winner_for_budget(args.budget * 1e3)
        print(
            f"budget {args.budget}kJ -> "
            + (
                f"{winner.cluster} {winner.prediction.config} "
                f"T={winner.time_s:.1f}s"
                if winner
                else "infeasible"
            )
        )
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    from repro.core.batch import Job, plan_batch

    spec = get_cluster(args.cluster)
    total_nodes = args.nodes if args.nodes is not None else spec.max_nodes
    sim = SimulatedCluster(spec, sim_backend=args.sim_backend)
    jobs = []
    for i, text in enumerate(args.job):
        try:
            prog_name, deadline_text = text.split(":")
            deadline = float(deadline_text)
        except ValueError:
            raise SystemExit(f"bad --job {text!r}; expected PROGRAM:DEADLINE_S")
        model = HybridProgramModel.from_measurements(sim, get_program(prog_name))
        jobs.append(Job(name=f"{prog_name}#{i}", model=model, deadline_s=deadline))
    try:
        plan = plan_batch(jobs, total_nodes=total_nodes)
    except ValueError as exc:
        raise SystemExit(str(exc))
    rows = [
        [
            p.job.name,
            p.prediction.config.label(),
            f"{p.start_s:.1f}",
            f"{p.end_s:.1f}",
            f"{p.job.deadline_s:.0f}",
            f"{joules_to_kj(p.prediction.energy_j):.2f}",
        ]
        for p in sorted(plan.placements, key=lambda p: p.start_s)
    ]
    print(
        ascii_table(
            ["job", "(n,c,f)", "start[s]", "end[s]", "deadline[s]", "E[kJ]"],
            rows,
            f"Batch plan on {args.cluster} ({total_nodes} nodes)",
        )
    )
    print(
        f"total energy {joules_to_kj(plan.total_energy_j):.2f} kJ, "
        f"makespan {plan.makespan_s:.1f} s, feasible: {plan.feasible}"
    )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.measure.powertrace import synthesize_power_trace

    sim = _simulated(args.cluster, args.sim_backend)
    run = sim.run(get_program(args.program), args.config, collect_trace=True)
    trace = run.trace
    assert trace is not None
    compute = float(np.mean(trace.compute_s))
    memory = float(np.mean(trace.memory_s))
    network = float(np.mean(trace.network_s))
    iteration = float(np.mean(trace.iteration_s))
    other = max(0.0, iteration - compute - memory - network)
    print(f"{args.program} on {args.cluster} at {args.config}:")
    print(f"  wall time {run.wall_time_s:.1f}s over {trace.iterations} iterations")
    print(
        f"  mean iteration {iteration * 1e3:.1f} ms: "
        f"compute {compute / iteration:.0%}, memory {memory / iteration:.0%}, "
        f"network {network / iteration:.0%}, sync/other {other / iteration:.0%}"
    )
    power = synthesize_power_trace(run)
    print(
        f"  wall power: mean {power.mean_w:.1f} W, peak {power.peak_w:.1f} W, "
        f"energy {joules_to_kj(power.energy_j()):.2f} kJ"
    )
    print(f"  UCR {run.ucr:.2f}")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.core import planner

    if args.plan_command == "calibrate":
        try:
            cost_model = planner.calibrate(args.bench_dir)
        except planner.CalibrationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        path = planner.save_cost_model(cost_model, args.output)
        print(f"wrote calibration -> {path}")
        print(
            f"  scalar {cost_model.scalar_per_config_s:.3e} s/config, "
            f"vectorized {cost_model.vectorized_base_s:.3e} s + "
            f"{cost_model.vectorized_per_config_s:.3e} s/config"
        )
        print(
            f"  shard dispatch {cost_model.shard_dispatch_s:.3e} s + "
            f"{cost_model.shard_overhead_per_config_s:.3e} s/config, "
            f"calibration host cpus {cost_model.cpus}"
        )
        return 0
    assert args.plan_command == "explain"
    cost_model = None
    if args.calibration is not None:
        try:
            cost_model = planner.load_cost_model(args.calibration)
        except planner.CalibrationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    decision = planner.decide(
        args.configs,
        workers=args.plan_workers,
        mode=args.plan or "auto",
        cost_model=cost_model,
        max_block_bytes=args.max_block_bytes,
    )
    print(f"strategy: {decision.strategy}")
    print(f"  configs {decision.size}, effective workers {decision.workers}")
    print(f"  streamed: {decision.streamed}")
    print(f"  reason: {decision.reason}")
    for name, estimate in decision.estimates:
        print(f"  estimate {name}: {estimate:.3e} s")
    return 0


def _cmd_pipeline(args: argparse.Namespace) -> int:
    import json as _json

    from repro.pipeline import (
        ArtifactStore,
        PipelineError,
        paper_pipeline,
        pipeline_status,
        run_pipeline,
    )

    pipeline = paper_pipeline()
    store = ArtifactStore(args.store)
    try:
        if args.pipeline_command == "status":
            statuses = pipeline_status(pipeline, store, stages=args.stages)
            if args.json:
                print(
                    _json.dumps(
                        [
                            {
                                "stage": s.name,
                                "state": s.state,
                                "reasons": list(s.reasons),
                                "fingerprint": s.fingerprint,
                            }
                            for s in statuses
                        ],
                        indent=2,
                    )
                )
                return 0
            rows = [
                [s.name, s.state, "; ".join(s.reasons) or "-"]
                for s in statuses
            ]
            print(ascii_table(["stage", "state", "why"], rows, "pipeline status"))
            stale = [s for s in statuses if s.state != "fresh"]
            print(
                f"{len(statuses) - len(stale)}/{len(statuses)} fresh; "
                + (
                    f"{len(stale)} would run on 'repro pipeline run'"
                    if stale
                    else "nothing to do"
                )
            )
            return 0

        run = run_pipeline(
            pipeline,
            store,
            stages=args.stages,
            workers=args.jobs,
            force=getattr(args, "force", False),
        )
    except PipelineError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if args.json:
        print(
            _json.dumps(
                [
                    {
                        "stage": r.name,
                        "action": r.action,
                        "fingerprint": r.fingerprint,
                        "seconds": r.seconds,
                    }
                    for r in run.reports
                ],
                indent=2,
            )
        )
        return 0
    for r in run.reports:
        if r.action == "executed":
            print(f"  ran     {r.name}  ({r.seconds:.2f}s)")
        else:
            print(f"  cached  {r.name}")
    print(
        f"{len(run.executed)} executed, {len(run.cached)} cached "
        f"-> store {store.directory}"
    )

    if args.pipeline_command == "repro":
        arts = run.artifacts
        print()
        print("reproduction summary")
        for name in ("validation_xeon_sp", "validation_arm_cp"):
            s = arts[name]["summary"]
            print(
                f"  {name}: |T err| mean {s['time_mean_abs_err_pct']:.1f}% "
                f"max {s['time_max_abs_err_pct']:.1f}%, "
                f"|E err| mean {s['energy_mean_abs_err_pct']:.1f}% "
                f"max {s['energy_max_abs_err_pct']:.1f}%"
            )
        fig8 = arts["fig8_pareto_xeon_sp"]
        print(
            f"  fig8_pareto_xeon_sp: {fig8['configurations']} configs, "
            f"{len(fig8['frontier'])} frontier points, UCR "
            f"{fig8['ucr_min']:.2f}..{fig8['ucr_max']:.2f}"
        )
        modern = arts["ext_modern_machine"]
        print(
            f"  ext_modern_machine: spot-check |T err| "
            f"{modern['spot_check_time_mean_abs_err_pct']:.1f}%, "
            f"energy-min at n={modern['energy_min_nodes']}"
        )
        dvfs = arts["ext_dvfs_advice"]
        print(
            f"  ext_dvfs_advice: {dvfs['confirmed_configs']}/"
            f"{dvfs['advised_configs']} advised configs confirmed by the "
            "testbed"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.app import DEFAULT_ENGINE_WORKERS, run_server

    # The service owns its warm tier directly (the global --cache-dir is
    # reused as its ResultCache directory); --workers still installs the
    # ambient plan around it, so large per-request sweeps shard as usual.
    return run_server(
        host=args.host,
        port=args.port,
        rate=args.rate,
        burst=args.burst,
        cache_dir=args.cache_dir,
        plan=args.plan or "auto",
        max_block_bytes=args.max_block_bytes,
        client_rate=args.client_rate,
        client_burst=args.client_burst,
        engine_workers=(
            args.engine_workers
            if args.engine_workers is not None
            else DEFAULT_ENGINE_WORKERS
        ),
    )


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "systems":
        return _cmd_systems()
    if args.command == "characterize":
        return _cmd_characterize(args)
    if args.command == "netpipe":
        return _cmd_netpipe(args)
    if args.command == "predict":
        return _cmd_predict(args)
    if args.command == "validate":
        return _cmd_validate(args)
    if args.command == "pareto":
        return _cmd_pareto(args)
    if args.command == "ucr":
        return _cmd_ucr(args)
    if args.command == "whatif":
        return _cmd_whatif(args)
    if args.command == "advise":
        return _cmd_advise(args)
    if args.command == "roofline":
        return _cmd_roofline(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "batch":
        return _cmd_batch(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "plan":
        return _cmd_plan(args)
    if args.command == "pipeline":
        return _cmd_pipeline(args)
    if args.command == "serve":
        return _cmd_serve(args)
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


def _dispatch_planned(args: argparse.Namespace) -> int:
    """Run the command under execution plan/planner contexts when requested.

    ``--workers``/``--cache-dir`` install an ambient
    :class:`~repro.core.parallel.ExecutionPlan`, so every
    configuration-space sweep the command performs (pareto, ucr, batch,
    search, what-if) is sharded across worker processes and/or served
    from the persistent result cache.  ``--plan``/``--max-block-bytes``
    additionally activate a :class:`~repro.core.planner.PlannerConfig`,
    putting strategy selection (and block streaming) under the
    calibrated cost model.
    """
    import contextlib

    wants_plan = args.workers != 1 or args.cache_dir is not None
    wants_planner = args.plan is not None or args.max_block_bytes is not None
    if not wants_plan and not wants_planner:
        return _dispatch_resilient(args)
    with contextlib.ExitStack() as stack:
        if wants_plan:
            from repro.core.parallel import parallel_plan

            stack.enter_context(
                parallel_plan(workers=args.workers, cache_dir=args.cache_dir)
            )
        if wants_planner:
            from repro.core.planner import planner_config

            stack.enter_context(
                planner_config(
                    mode=args.plan or "auto",
                    max_block_bytes=args.max_block_bytes,
                )
            )
        return _dispatch_resilient(args)


def _dispatch_resilient(args: argparse.Namespace) -> int:
    """Run the command, optionally inside a resilience context.

    The context is enabled when any of ``--retries``/``--timeout``/
    ``--chaos`` is given; resilience-layer failures (unusable checkpoints,
    campaigns lost beyond recovery, bad policies or schedules) exit
    nonzero with an actionable message instead of a traceback.
    """
    from repro import resilience

    wanted = (
        args.retries is not None
        or args.timeout is not None
        or args.chaos is not None
    )
    if not wanted:
        return _dispatch(args)
    policy = resilience.RetryPolicy(
        max_retries=args.retries if args.retries is not None else 3,
        timeout_s=args.timeout,
    )
    chaos = resilience.ChaosSchedule.load(args.chaos) if args.chaos else None
    with resilience.enabled(policy, chaos):
        return _dispatch(args)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    from repro.resilience import ResilienceError
    from repro.resilience.checkpoint import CheckpointError

    raw = list(argv) if argv is not None else sys.argv[1:]
    if raw[:1] == ["lint"]:
        # The linter has its own option surface (and none of the global
        # trace/workers/resilience machinery applies to static analysis).
        from repro.lint.cli import run as lint_run

        return lint_run(raw[1:], prog="repro lint")

    args = _build_parser().parse_args(argv)
    try:
        return _run(args)
    except (CheckpointError, ResilienceError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        # bad resilience policy or chaos schedule (e.g. --timeout 0)
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _run(args: argparse.Namespace) -> int:
    if args.trace is None and args.metrics is None:
        return _dispatch_planned(args)

    from repro import obs

    tracer = obs.enable_tracing() if args.trace is not None else None
    registry = obs.enable_metrics() if args.metrics is not None else None
    try:
        return _dispatch_planned(args)
    finally:
        obs.disable()
        if tracer is not None:
            if args.trace == "-":
                sys.stdout.write(tracer.to_jsonl())
            else:
                tracer.write_jsonl(args.trace)
                print(
                    f"wrote {len(tracer.spans)} spans -> {args.trace}",
                    file=sys.stderr,
                )
        if registry is not None:
            if args.metrics == "-":
                sys.stdout.write(registry.to_prometheus_text())
            else:
                with open(args.metrics, "w", encoding="utf-8") as fh:
                    fh.write(registry.to_prometheus_text())
                print(f"wrote metrics -> {args.metrics}", file=sys.stderr)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
