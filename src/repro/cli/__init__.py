"""Command-line interface: ``repro <subcommand>`` (see ``repro --help``)."""

from repro.cli.main import main

__all__ = ["main"]
