"""One-call porcelain: the paper's Fig. 2 workflow end to end.

Figure 2's approach overview is a pipeline — baseline executions, power
and network characterization, the analytical model, Pareto-optimal
configuration selection.  :func:`recommend` runs the whole pipeline in
one call and returns a :class:`Recommendation` that also *explains* its
choice (UCR decomposition, the binding resource, and — when profitable —
a stall-phase DVFS schedule), which is how the paper envisions users
consuming the approach.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass

from repro.core.configspace import ConfigSpace, evaluate_space
from repro.core.dvfs import DvfsAdvice, advise_stall_dvfs
from repro.core.model import HybridProgramModel, Prediction
from repro.core.optimizer import (
    knee_point,
    min_energy_within_deadline,
    min_time_within_budget,
)
from repro.core.pareto import ParetoPoint, pareto_frontier
from repro.core.ucr import UCRDecomposition, ucr_decomposition
from repro.simulate.cluster import SimulatedCluster
from repro.units import joules_to_kj, to_ghz
from repro.workloads.base import HybridProgram


@dataclass(frozen=True)
class Recommendation:
    """A configuration choice with its explanation."""

    choice: Prediction
    frontier: tuple[ParetoPoint, ...]
    decomposition: UCRDecomposition
    dvfs: DvfsAdvice
    objective: str

    @property
    def binding_resource(self) -> str:
        """Where the chosen configuration loses its time (the co-design
        hint of §V-B)."""
        d = self.decomposition
        losses = {
            "memory contention": d.t_mem_contention_s,
            "data dependency": d.t_data_dep_s,
            "network": d.t_net_contention_s,
        }
        worst, value = max(losses.items(), key=lambda kv: kv[1])
        if value < 0.05 * d.total_s:
            return "none (compute-dominated)"
        return worst

    def summary(self) -> str:
        """Human-readable recommendation."""
        c = self.choice
        lines = [
            f"run at {c.config} ({self.objective}):",
            f"  T = {c.time_s:.1f} s, E = {joules_to_kj(c.energy_j):.2f} kJ, "
            f"UCR = {c.ucr:.2f}",
            f"  binding resource: {self.binding_resource}",
        ]
        if self.dvfs.worthwhile:
            lines.append(
                f"  stall-phase DVFS at "
                f"{to_ghz(self.dvfs.best.stall_frequency_hz):g} GHz saves a "
                f"further {self.dvfs.energy_saving_j:.0f} J "
                f"({self.dvfs.slowdown:+.1%} time)"
            )
        return "\n".join(lines)


def recommend(
    testbed: SimulatedCluster,
    program: HybridProgram,
    deadline_s: float | None = None,
    budget_j: float | None = None,
    class_name: str | None = None,
    model: HybridProgramModel | None = None,
    checkpoint_dir: str | pathlib.Path | None = None,
) -> Recommendation:
    """Run the Fig. 2 pipeline and recommend a configuration.

    With a deadline: minimum energy meeting it.  With a budget: minimum
    time within it.  With neither: the frontier knee.  (Both constraints
    together: the deadline governs, the budget is verified.)

    With ``checkpoint_dir``, the two long campaigns persist their progress
    there (``baseline.json`` for the measurement sweep, ``space.json`` for
    the space evaluation) and a re-invocation resumes them; combined with
    an enabled :mod:`repro.resilience` context the pipeline also survives
    lost samples.

    Raises :class:`ValueError` if the constraints are infeasible on the
    physical space.
    """
    if checkpoint_dir is not None:
        checkpoint_dir = pathlib.Path(checkpoint_dir)
        checkpoint_dir.mkdir(parents=True, exist_ok=True)
    if model is None:
        if checkpoint_dir is not None:
            from repro.core.inputs import characterize

            inputs = characterize(
                testbed,
                program,
                baseline_checkpoint=checkpoint_dir / "baseline.json",
            )
            model = HybridProgramModel(program=program, inputs=inputs)
        else:
            model = HybridProgramModel.from_measurements(testbed, program)
    space = ConfigSpace.physical(testbed.spec)
    if checkpoint_dir is not None:
        from repro.resilience.pipeline import evaluate_space_checkpointed

        evaluation = evaluate_space_checkpointed(
            model, space, class_name, checkpoint_path=checkpoint_dir / "space.json"
        )
    else:
        evaluation = evaluate_space(model, space, class_name)
    frontier = tuple(pareto_frontier(evaluation))

    if deadline_s is not None:
        choice = min_energy_within_deadline(evaluation, deadline_s)
        objective = f"min energy within {deadline_s:g}s deadline"
        if choice is None:
            raise ValueError(f"no configuration meets the {deadline_s}s deadline")
        if budget_j is not None and choice.energy_j > budget_j:
            raise ValueError(
                "deadline and budget are jointly infeasible: meeting "
                f"{deadline_s}s needs {choice.energy_j:.0f} J > {budget_j:.0f} J"
            )
    elif budget_j is not None:
        choice = min_time_within_budget(evaluation, budget_j)
        objective = f"min time within {budget_j / 1e3:g}kJ budget"
        if choice is None:
            raise ValueError(f"no configuration fits the {budget_j} J budget")
    else:
        choice = knee_point(evaluation)
        objective = "time-energy knee (no constraints given)"

    return Recommendation(
        choice=choice,
        frontier=frontier,
        decomposition=ucr_decomposition(model, choice),
        dvfs=advise_stall_dvfs(model, choice.config, class_name),
        objective=objective,
    )
