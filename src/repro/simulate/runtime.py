"""Hybrid MPI+OpenMP execution semantics on the simulated cluster.

Per iteration (paper Listing 1):

1. the OpenMP region: each process's ``c`` threads execute their compute
   shares and contend for the node memory controller
   (:mod:`repro.simulate.cpu` + :mod:`repro.simulate.memory`); the process's
   compute phase ends when its slowest thread finishes (fork/join);
2. the MPI block: processes exchange messages through NIC and the shared
   switch (:mod:`repro.simulate.network`), overlapping transfers with the
   tail of computation;
3. a bulk-synchronous barrier (with skew noise) closes the iteration; the
   OS daemon model can steal time from any node first.

Wall time is the sum of iteration times plus an MPI/OpenMP start-up cost.
Energy is the exact integral of the true node power model over the state
occupancy.  Hardware counters and the message log are accumulated exactly.

The run is staged as *draw* steps (which consume the run's named RNG
stream in a fixed order) and *resolve* steps (pure array arithmetic);
:mod:`repro.simulate.batched` replays the same stages with a leading lane
axis, sharing :func:`finalize_run` so the two backends cannot drift.
"""

from __future__ import annotations

import numpy as np

from repro.machines.spec import ClusterSpec, Configuration
from repro.simulate.cpu import ComputeDemand, demand_from_draws, draw_compute
from repro.simulate.faults import FaultModel
from repro.simulate.memory import MemoryOutcome, draw_memory, memory_from_draws
from repro.simulate.network import (
    NetworkOutcome,
    _message_counts,
    draw_network,
    network_from_draws,
)
from repro.simulate.noise import NoiseModel
from repro.simulate.power import integrate_energy
from repro.simulate.results import (
    CounterTotals,
    IterationTrace,
    MessageStats,
    PhaseBreakdown,
    RunResult,
)
from repro.workloads.base import HybridProgram


def _startup_time_s(config: Configuration, rng: np.random.Generator, noise: NoiseModel) -> float:
    """MPI launch + OpenMP runtime initialization cost."""
    base = 0.5 + 0.1 * config.nodes
    if not noise.enabled:
        return base
    return base * rng.lognormal(0.0, 0.1)


def apply_straggler(
    compute_time_s: np.ndarray,
    stall_time_s: np.ndarray,
    faults: FaultModel | None,
    nodes: int,
) -> None:
    """Throttle the straggler node's compute and memory time in place.

    ``compute_time_s``/``stall_time_s`` are the ``(S, n, c)`` views of one
    run (a lane slice, in the batched core); thermal throttling slows
    both the pipeline and the memory subsystem of the victim node.
    """
    if faults is not None and faults.active and faults.straggler_node < nodes:
        k = faults.straggler_node
        compute_time_s[:, k, :] *= faults.straggler_factor
        stall_time_s[:, k, :] *= faults.straggler_factor


def finalize_run(
    program: HybridProgram,
    class_name: str,
    cluster: ClusterSpec,
    config: Configuration,
    demand: ComputeDemand,
    mem: MemoryOutcome,
    net: NetworkOutcome,
    thread_time: np.ndarray,
    iteration_time: np.ndarray,
    wall_time: float,
    stall_frequency_hz: float | None,
    collect_trace: bool,
) -> RunResult:
    """Accumulate one run's observables from its resolved phase arrays.

    All arrays are the single-run ``(S, n, c)`` / ``(S, n)`` / ``(S,)``
    shapes; the batched core calls this once per lane on contiguous lane
    views, so counters, phases and energy are reduced in exactly the
    scalar order (bit-identical results).
    """
    n, c = config.nodes, config.cores
    total_cores = n * c

    # ------------------------------------------------------------------
    # hardware counters (per-core averages, paper Eq. 2-7 form)
    # ------------------------------------------------------------------
    busy = float(thread_time.sum()) + float(net.cpu_cost_s.sum())
    counters = CounterTotals(
        instructions=float(demand.instructions.sum()),
        work_cycles=float(demand.work_cycles.sum()) / total_cores,
        nonmem_stall_cycles=float(demand.hazard_cycles.sum()) / total_cores,
        mem_stall_cycles=float(mem.stall_cycles.sum()) / total_cores,
        utilization=min(1.0, busy / (wall_time * total_cores)),
    )

    messages = MessageStats(
        total_messages=float(net.messages.sum()),
        total_bytes=float(net.bytes_sent.sum()),
    )

    # ------------------------------------------------------------------
    # phase breakdown (per-core averages)
    # ------------------------------------------------------------------
    t_cpu = float(demand.compute_time_s.sum()) / total_cores
    t_mem = float(mem.stall_time_s.sum()) / total_cores
    t_net = float(net.net_time_s.sum()) / n
    phases = PhaseBreakdown(
        t_cpu_s=t_cpu,
        t_mem_s=t_mem,
        t_net_s=t_net,
        t_other_s=max(0.0, wall_time - t_cpu - t_mem - t_net),
    )

    # ------------------------------------------------------------------
    # energy: exact integral of the true power model
    # ------------------------------------------------------------------
    active_per_thread = demand.compute_time_s.sum(axis=0)  # (n, c)
    active_per_thread = active_per_thread.copy()
    active_per_thread[:, 0] += net.cpu_cost_s.sum(axis=0)  # MPI thread
    stall_per_thread = mem.stall_time_s.sum(axis=0)  # (n, c)
    net_per_process = net.net_time_s.sum(axis=0)  # (n,)
    mem_busy_per_node = mem.stall_time_s.sum(axis=(0, 2)) / c  # (n,)

    energy = integrate_energy(
        cluster,
        config,
        wall_time,
        active_per_thread,
        stall_per_thread,
        net_per_process,
        mem_busy_per_node,
        stall_frequency_hz=stall_frequency_hz,
    )

    trace = None
    if collect_trace:
        trace = IterationTrace(
            compute_s=demand.compute_time_s.mean(axis=(1, 2)),
            memory_s=mem.stall_time_s.mean(axis=(1, 2)),
            network_s=net.net_time_s.mean(axis=1),
            iteration_s=iteration_time,
        )

    return RunResult(
        program=program.name,
        class_name=class_name,
        cluster=cluster.name,
        config=config,
        wall_time_s=wall_time,
        energy=energy,
        counters=counters,
        messages=messages,
        phases=phases,
        trace=trace,
    )


def execute(
    program: HybridProgram,
    class_name: str,
    cluster: ClusterSpec,
    config: Configuration,
    rng: np.random.Generator,
    noise: NoiseModel | None = None,
    stall_frequency_hz: float | None = None,
    collect_trace: bool = False,
    faults: "FaultModel | None" = None,
) -> RunResult:
    """Execute one run and return everything the testbed can observe.

    ``stall_frequency_hz`` enables phase-aware DVFS (cores throttle to it
    while stalled on memory); ``collect_trace`` attaches the per-iteration
    phase timeline to the result; ``faults`` injects degraded-hardware
    behaviour (see :mod:`repro.simulate.faults`).
    """
    cluster.validate_configuration(config)
    if stall_frequency_hz is not None:
        cluster.validate_configuration(
            Configuration(config.nodes, config.cores, stall_frequency_hz)
        )
    noise = noise if noise is not None else NoiseModel()
    n, c = config.nodes, config.cores
    s_iters = program.iterations(class_name)

    # --- draw + resolve the compute and memory phases -------------------
    cpu_draws = draw_compute(program, class_name, config, noise, rng)
    demand = demand_from_draws(
        program, class_name, cluster, n, c, config.frequency_hz, cpu_draws
    )
    arrival_fractions = draw_memory(rng, s_iters, n, c)
    mem = memory_from_draws(
        demand, cluster, n, c, config.frequency_hz, stall_frequency_hz,
        arrival_fractions,
    )

    # fault injection: a throttled node runs its compute and memory slower
    apply_straggler(demand.compute_time_s, mem.stall_time_s, faults, n)

    # fork/join: per-process compute phase ends with its slowest thread
    thread_time = demand.compute_time_s + mem.stall_time_s  # (S, n, c)
    compute_end = thread_time.max(axis=2)  # (S, n)

    # --- draw + resolve the communication phase -------------------------
    msgs = _message_counts(program, n)
    sizes = offsets = None
    if msgs > 0:
        nu = program.bytes_per_message(class_name, n)
        sizes, offsets = draw_network(rng, s_iters, n, msgs, nu)
    net = network_from_draws(cluster, n, msgs, compute_end, sizes, offsets)

    # protocol stack processing extends the process's critical path
    process_end = net.complete_s + net.cpu_cost_s  # (S, n)
    # background OS daemons steal time from individual nodes
    process_end = process_end + noise.daemon_time(rng, process_end)
    # bulk-synchronous barrier closes the iteration
    iteration_time = process_end.max(axis=1) + noise.barrier_skews(rng, (s_iters,))

    wall_time = float(iteration_time.sum()) + _startup_time_s(config, rng, noise)

    return finalize_run(
        program,
        class_name,
        cluster,
        config,
        demand,
        mem,
        net,
        thread_time,
        iteration_time,
        wall_time,
        stall_frequency_hz,
        collect_trace,
    )
