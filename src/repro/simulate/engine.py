"""Minimal discrete-event simulation core.

The fast path of the simulator resolves whole iterations with vectorized
queueing (:mod:`repro.simulate.queueing`); this module provides the
classic event-heap engine used where per-event sequencing matters:

* the NetPIPE-style ping-pong characterization (:mod:`repro.measure.netpipe`),
  which is inherently request/response;
* cross-checks in the test suite that the closed-form Lindley solution and
  an actual FIFO server simulation agree event-for-event.

The engine is deliberately small: a time-ordered heap of callbacks plus a
FIFO single-server resource.  Determinism is guaranteed by a monotone
sequence number breaking ties in event time.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro import obs


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple[Any, ...] = field(compare=False, default=())


class Simulator:
    """A time-ordered event loop.

    Events scheduled at equal times fire in scheduling order.  Scheduling in
    the past raises, which catches causality bugs early.
    """

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[_Event] = []
        self._seq = itertools.count()
        self._events_processed = 0

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (diagnostics)."""
        return self._events_processed

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> None:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(
            self._heap, _Event(self.now + delay, next(self._seq), callback, args)
        )

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> None:
        """Schedule ``callback(*args)`` at an absolute time."""
        self.schedule(time - self.now, callback, *args)

    def run(self, until: float | None = None) -> float:
        """Process events until the heap drains (or ``until`` is reached).

        Returns the final simulation time.
        """
        # counters are aggregated once per run() call, not per event, so
        # the event loop itself stays instrumentation-free
        processed_before = self._events_processed
        try:
            while self._heap:
                if until is not None and self._heap[0].time > until:
                    self.now = until
                    return self.now
                event = heapq.heappop(self._heap)
                self.now = event.time
                self._events_processed += 1
                event.callback(*event.args)
            return self.now
        finally:
            if obs.metrics_enabled():
                obs.add(
                    "simulate.events_processed",
                    self._events_processed - processed_before,
                )


class FifoServer:
    """A single FIFO server (memory controller / switch port analogue).

    Requests are served one at a time in submission order; each completed
    request is reported through its completion callback with the request's
    waiting time and completion time.
    """

    def __init__(self, sim: Simulator) -> None:
        self._sim = sim
        self._busy_until = 0.0
        self.total_busy = 0.0
        self.requests_served = 0

    def submit(
        self,
        service_time: float,
        on_complete: Callable[[float, float], None] | None = None,
    ) -> tuple[float, float]:
        """Submit a request now; returns ``(wait_time, completion_time)``.

        ``on_complete(wait, completion)`` additionally fires as an event at
        the completion time if given.
        """
        if service_time < 0:
            raise ValueError("service time must be non-negative")
        start = max(self._sim.now, self._busy_until)
        wait = start - self._sim.now
        completion = start + service_time
        self._busy_until = completion
        self.total_busy += service_time
        self.requests_served += 1
        if on_complete is not None:
            self._sim.schedule_at(completion, on_complete, wait, completion)
        return wait, completion
