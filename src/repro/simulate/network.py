"""Inter-node communication: NIC serialization + output-queued switch.

The communication phase of each iteration (paper Listing 1: the MPI_Send /
MPI_Recv block after the OpenMP region) is resolved structurally:

* each logical process posts its ``η_iter`` messages during the tail of its
  compute burst (non-blocking sends progressed by the MPI runtime — the
  computation/communication *overlap* the model's Eq. 6 captures with
  ``max((1-U)·T_CPU, η·ν/B)``);
* a process's NIC serializes its own messages (per-message protocol
  overhead + bytes at the link's effective MPI-over-TCP bandwidth, the
  Fig. 3 plateau);
* the switch is a modern non-blocking fabric: contention happens at the
  *output ports*.  Each message carries a destination (round-robin over
  the peers — halo neighborhoods and all-to-all transposes both spread
  traffic this way), and every destination port is a FIFO server resolved
  with an exact Lindley pass per iteration.  This is the paper's Eq. 5
  queue: messages from multiple senders converging on one receiver wait
  behind each other;
* the iteration ends with a cluster-wide barrier once every process's
  sends and receives have completed (bulk-synchronous exchange).

CPU-side protocol cost (per-message and per-byte) is charged to the
sending process and returned separately so the runtime can add it to busy
time — it is the reason measured CPU utilization ``U`` exceeds the pure-
compute share.

Everything vectorizes with iterations as independent rows; NIC queues are
resolved as a batched Lindley over ``(S*n, M)`` and each output port over
``(S, K_port)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machines.spec import ClusterSpec, Configuration
from repro.simulate.noise import NoiseModel
from repro.simulate.queueing import lindley_waits
from repro.workloads.base import HybridProgram

#: Fraction of the compute burst during which sends are posted (the tail).
#: The MPI block follows the OpenMP region (Listing 1), so only a small
#: tail of computation overlaps with message progression.
POST_WINDOW = 0.1

#: Coefficient of variation of individual message sizes around ν.
SIZE_CV = 0.30


@dataclass(frozen=True)
class NetworkOutcome:
    """Communication results per (iteration, process).

    ``complete_s`` — absolute time (within the iteration, relative to the
    iteration start) at which each process's communication — sends accepted
    and inbound messages received — finished;
    ``net_time_s`` — non-overlapped network time per process (wait beyond
    its own compute end);
    ``cpu_cost_s`` — CPU time burned in the protocol stack per process;
    ``port_wait_s`` / ``wire_time_s`` — queueing vs service diagnostics
    (attributed to the receiving process);
    ``messages`` / ``bytes_sent`` — per-process message-log totals for the
    mpiP-style profiler.
    """

    complete_s: np.ndarray
    net_time_s: np.ndarray
    cpu_cost_s: np.ndarray
    port_wait_s: np.ndarray
    wire_time_s: np.ndarray
    messages: np.ndarray
    bytes_sent: np.ndarray


def _message_counts(program: HybridProgram, nodes: int) -> int:
    """Integer messages per process per iteration (>=1 when communicating)."""
    eta = program.messages_per_process(nodes)
    return max(1, int(round(eta))) if nodes > 1 else 0


def _destinations(nodes: int, msgs: int) -> np.ndarray:
    """Destination matrix (n, M): round-robin over the other nodes.

    Models both halo neighborhoods and all-to-all transposes: traffic is
    spread evenly across peers, never self-addressed.
    """
    senders = np.arange(nodes)[:, None]
    k = np.arange(msgs)[None, :]
    return (senders + 1 + (k % (nodes - 1))) % nodes


def draw_network(
    rng: np.random.Generator,
    s_iters: int,
    nodes: int,
    msgs: int,
    nu: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Consume one run's communication draws from ``rng``.

    Returns ``(sizes, offsets)``, both ``(S, n, M)``: lognormal message
    sizes around the mean ``nu`` and sorted posting offsets within the
    compute-burst tail.  Only called when the run communicates
    (``msgs > 0``) — a single-node run consumes nothing, exactly like
    the historical inline draws.
    """
    sizes = nu * rng.lognormal(
        mean=-0.5 * np.log1p(SIZE_CV**2),
        sigma=np.sqrt(np.log1p(SIZE_CV**2)),
        size=(s_iters, nodes, msgs),
    )
    offsets = np.sort(
        rng.uniform(1.0 - POST_WINDOW, 1.0, size=(s_iters, nodes, msgs)),
        axis=-1,
    )
    return sizes, offsets


def network_from_draws(
    cluster: ClusterSpec,
    nodes: int,
    msgs: int,
    compute_end_s: np.ndarray,
    sizes: np.ndarray | None,
    offsets: np.ndarray | None,
) -> NetworkOutcome:
    """Pure arithmetic of the communication phase, shape-agnostic over lanes.

    ``compute_end_s`` is ``(..., S, n)`` and ``sizes``/``offsets`` are
    ``(..., S, n, M)`` (``None`` when ``msgs == 0``); leading axes are
    independent lanes.  All operations are row-independent, so a lane of
    a stacked batch is bit-identical to a standalone scalar run.
    """
    nic = cluster.node.nic
    switch = cluster.switch
    n = nodes

    if msgs == 0:
        zeros = np.zeros(compute_end_s.shape)
        return NetworkOutcome(
            complete_s=compute_end_s.copy(),
            net_time_s=zeros,
            cpu_cost_s=zeros.copy(),
            port_wait_s=zeros.copy(),
            wire_time_s=zeros.copy(),
            messages=zeros.copy(),
            bytes_sent=zeros.copy(),
        )
    assert sizes is not None and offsets is not None

    # --- posting times: sends issued during the tail of the compute burst
    span = compute_end_s[..., None]
    posts = span * offsets

    # --- NIC egress serialization (per-sender FIFO) ----------------------
    nic_service = nic.per_message_overhead_s + sizes / nic.effective_bandwidth
    posts_flat = posts.reshape(-1, msgs)
    nic_service_flat = nic_service.reshape(-1, msgs)
    nic_waits = lindley_waits(posts_flat, nic_service_flat)
    egress = (posts_flat + nic_waits + nic_service_flat).reshape(posts.shape)
    send_complete = egress.max(axis=-1)  # (..., S, n): last send accepted

    # --- output-port queueing at the switch ------------------------------
    dests_flat = _destinations(n, msgs).ravel()  # (n*M,)
    port_service = switch.forwarding_latency_s + sizes / switch.port_bytes_per_s
    egress_flat = egress.reshape(egress.shape[:-2] + (n * msgs,))
    service_flat = port_service.reshape(egress_flat.shape)

    receive_complete = np.zeros(compute_end_s.shape)
    port_wait = np.zeros(compute_end_s.shape)
    wire_time = np.zeros(compute_end_s.shape)
    # Ports are independent queues; round-robin traffic gives (almost)
    # every port the same message count, so ports with equal occupancy
    # stack as extra rows of one Lindley pass.  Each port's messages are
    # gathered in ascending flat (sender, message) order — exactly the
    # order a per-port boolean mask would produce — so per-row results
    # are bit-identical to resolving ports one at a time.
    port_indices = [np.nonzero(dests_flat == q)[0] for q in range(n)]
    by_count: dict[int, list[int]] = {}
    for q, idx in enumerate(port_indices):
        if idx.size:
            by_count.setdefault(idx.size, []).append(q)
    for ports in by_count.values():
        gather = np.stack([port_indices[q] for q in ports])  # (P, K)
        arr_q = egress_flat[..., gather]  # (..., S, P, K)
        svc_q = service_flat[..., gather]
        order = np.argsort(arr_q, axis=-1, kind="stable")
        sorted_arr = np.take_along_axis(arr_q, order, axis=-1)
        sorted_svc = np.take_along_axis(svc_q, order, axis=-1)
        waits = lindley_waits(sorted_arr, sorted_svc)
        completions = sorted_arr + waits + sorted_svc
        receive_complete[..., ports] = completions.max(axis=-1)
        port_wait[..., ports] = waits.sum(axis=-1)
        wire_time[..., ports] = sorted_svc.sum(axis=-1)

    complete = np.maximum(
        np.maximum(send_complete, receive_complete), compute_end_s
    )

    cpu_cost = (
        msgs * nic.cpu_cost_per_message_s
        + sizes.sum(axis=-1) * nic.cpu_cost_per_byte_s
    )

    net_time = complete - compute_end_s
    return NetworkOutcome(
        complete_s=complete,
        net_time_s=net_time,
        cpu_cost_s=cpu_cost,
        port_wait_s=port_wait,
        wire_time_s=wire_time,
        messages=np.full(compute_end_s.shape, float(msgs)),
        bytes_sent=sizes.sum(axis=-1),
    )


def resolve_network(
    program: HybridProgram,
    class_name: str,
    cluster: ClusterSpec,
    config: Configuration,
    compute_end_s: np.ndarray,
    noise: NoiseModel,
    rng: np.random.Generator,
) -> NetworkOutcome:
    """Resolve the communication phase for every (iteration, process).

    ``compute_end_s`` has shape ``(S, n)``: per-process compute completion
    (including memory stalls) relative to the iteration start.
    """
    s_iters, n = compute_end_s.shape
    msgs = _message_counts(program, n)
    sizes = offsets = None
    if msgs > 0:
        nu = program.bytes_per_message(class_name, n)
        sizes, offsets = draw_network(rng, s_iters, n, msgs, nu)
    return network_from_draws(cluster, n, msgs, compute_end_s, sizes, offsets)
