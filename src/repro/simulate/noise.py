"""Run-to-run irregularity model (paper §IV-C error source #1).

The paper attributes its largest validation error to "irregularities during
different executions of the same program from the operating system
overheads", quantified as up to 10% spread between runs.  The simulator
reproduces that spread with three effects:

* **phase jitter** — every compute/communication phase duration is scaled by
  a lognormal factor (OS preemptions, cache/TLB pollution, interrupt
  delivery);
* **barrier skew** — threads do not leave a barrier simultaneously;
  per-iteration additive skew on the slowest participant;
* **background daemons** — occasional longer preemptions that steal whole
  scheduling quanta from one node.

All draws come from a named :mod:`repro.rng` stream, so a run is
reproducible given ``(root_seed, run_index)``, while distinct run indices
give the independent repetitions that validation campaigns average over.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class NoiseModel:
    """Parameters of the irregularity model.

    ``phase_jitter_sigma`` is the sigma of the lognormal phase multiplier
    (0.025 yields the paper's <=10% run-to-run spread at the run level);
    ``barrier_skew_s`` the mean additive skew per barrier; ``daemon_rate_hz``
    and ``daemon_quantum_s`` the Poisson rate and cost of background-task
    preemptions.  ``enabled=False`` turns the simulator deterministic, which
    unit tests use.
    """

    phase_jitter_sigma: float = 0.025
    barrier_skew_s: float = 120e-6
    daemon_rate_hz: float = 0.5
    daemon_quantum_s: float = 4e-3
    enabled: bool = True

    def phase_multipliers(
        self, rng: np.random.Generator, shape: tuple[int, ...]
    ) -> np.ndarray:
        """Lognormal multiplicative jitter for phase durations."""
        if not self.enabled:
            return np.ones(shape)
        return rng.lognormal(mean=0.0, sigma=self.phase_jitter_sigma, size=shape)

    def barrier_skews(
        self, rng: np.random.Generator, shape: tuple[int, ...]
    ) -> np.ndarray:
        """Additive per-barrier skew (exponential, mean ``barrier_skew_s``)."""
        if not self.enabled:
            return np.zeros(shape)
        return rng.exponential(self.barrier_skew_s, size=shape)

    def daemon_time(
        self, rng: np.random.Generator, span_s: np.ndarray
    ) -> np.ndarray:
        """OS background-task time stolen from spans of the given lengths.

        For each span, the number of preemptions is Poisson with rate
        ``daemon_rate_hz`` and each costs ``daemon_quantum_s`` (with
        exponential spread).
        """
        span_s = np.asarray(span_s, dtype=np.float64)
        if not self.enabled:
            return np.zeros_like(span_s)
        counts = rng.poisson(np.maximum(self.daemon_rate_hz * span_s, 0.0))
        return counts * rng.exponential(self.daemon_quantum_s, size=span_s.shape)

    @classmethod
    def disabled(cls) -> "NoiseModel":
        """A noise-free model (deterministic simulator for unit tests)."""
        return cls(enabled=False)
