"""Batched simulator core: lane-stacked runs over one NumPy pipeline.

A validation campaign executes the same program at many ``(config,
run_index)`` points; the scalar :func:`repro.simulate.runtime.execute`
pays the fixed cost of every NumPy call (~1600 per run) once *per run*.
This core executes a whole replication batch at once by stacking runs as
**lanes** along a leading axis:

* draws are consumed per lane from each lane's own named
  :mod:`repro.rng` stream, in exactly the scalar order — lane ``k`` of a
  batch therefore sees the *identical* variates as a standalone run;
* the resolve stages (:func:`repro.simulate.cpu.demand_from_draws`,
  :func:`repro.simulate.memory.memory_from_draws`,
  :func:`repro.simulate.network.network_from_draws`) are shared with the
  scalar backend and operate on ``(L, S, n, c)`` stacks — every
  operation is row-independent (elementwise, per-row stable sort,
  per-row Lindley scan), so each lane's floats are **bit-identical** to
  the scalar backend, not merely close;
* value-dependent tail draws (OS daemon preemptions, whose Poisson
  parameter is the lane's own ``process_end``) resume each lane's
  generator after the stacked resolve, keeping the stream aligned for
  the barrier-skew and startup draws that follow.

Bit-identity is a hard requirement, not a nicety: the resilience layer
keys chaos decisions and cache fingerprints by exact float values
(``resilience.value_token``), so a backend that was "only" 1e-9-close
would silently divert chaos schedules and invalidate golden pins.

Lanes may mix frequencies, DVFS throttle points and fault models freely;
lanes with different ``(program, class, n, c)`` shapes are grouped, and
each group is resolved in cache-sized chunks (see :func:`_lanes_per_chunk`)
— stacking beyond the last-level-cache working set trades the NumPy
call-overhead savings for DRAM-bound element work and loses.  Results
come back in request order.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.machines.spec import ClusterSpec, Configuration
from repro.simulate.cpu import ComputeDemand, ComputeDraws, demand_from_draws, draw_compute
from repro.simulate.faults import FaultModel
from repro.simulate.memory import BATCHES, MemoryOutcome, draw_memory, memory_from_draws
from repro.simulate.network import (
    NetworkOutcome,
    _message_counts,
    draw_network,
    network_from_draws,
)
from repro.simulate.noise import NoiseModel
from repro.simulate.results import RunResult
from repro.simulate.runtime import (
    _startup_time_s,
    apply_straggler,
    execute,
    finalize_run,
)
from repro.workloads.base import HybridProgram

__all__ = ["LaneRequest", "execute_batch"]

#: Target byte size of the largest per-chunk work array (the memory stage's
#: ``(chunk, S, n, c*BATCHES)`` float64 stack).  Roughly the effective
#: per-core cache budget: beyond it, elementwise throughput on this class
#: of host drops ~2-3x (DRAM-bound), which outweighs any call-overhead
#: amortization from stacking more lanes.
CHUNK_TARGET_BYTES = 1 << 20

#: Environment override for lanes-per-chunk (perf tuning / benchmarks).
CHUNK_ENV_VAR = "REPRO_SIM_CHUNK_LANES"


def _lanes_per_chunk(s_iters: int, nodes: int, cores: int) -> int:
    """How many lanes to stack per resolve pass for this run shape.

    Sized so the widest stacked array (the memory stage's request matrix)
    stays near :data:`CHUNK_TARGET_BYTES` — small shapes stack tens of
    lanes (amortizing fixed NumPy call costs, where the batched core
    wins), big shapes fall back toward one lane per pass (where the
    element work already dominates and bigger stacks only thrash cache).
    ``REPRO_SIM_CHUNK_LANES`` overrides the heuristic when set.
    """
    override = os.environ.get(CHUNK_ENV_VAR)
    if override:
        return max(1, int(override))
    float64_bytes = np.dtype(np.float64).itemsize
    lane_bytes = float64_bytes * s_iters * nodes * cores * BATCHES
    return max(1, CHUNK_TARGET_BYTES // max(1, lane_bytes))


@dataclass(frozen=True)
class LaneRequest:
    """One lane of a batch: a fully specified run plus its RNG stream.

    ``rng`` must be the same named stream a scalar
    :meth:`repro.simulate.cluster.SimulatedCluster.run` would use for
    this run — the determinism contract is per lane, not per batch.
    """

    program: HybridProgram
    class_name: str
    config: Configuration
    rng: np.random.Generator
    stall_frequency_hz: float | None = None
    faults: FaultModel | None = None
    collect_trace: bool = False


def _lane_demand(demand: ComputeDemand, i: int) -> ComputeDemand:
    """Lane ``i``'s contiguous ``(S, n, c)`` view of a stacked demand."""
    return ComputeDemand(
        instructions=demand.instructions[i],
        work_cycles=demand.work_cycles[i],
        hazard_cycles=demand.hazard_cycles[i],
        cache_stall_cycles=demand.cache_stall_cycles[i],
        dram_bytes=demand.dram_bytes[i],
        compute_time_s=demand.compute_time_s[i],
    )


def _lane_memory(mem: MemoryOutcome, i: int) -> MemoryOutcome:
    """Lane ``i``'s view of a stacked memory outcome."""
    return MemoryOutcome(
        stall_time_s=mem.stall_time_s[i],
        wait_time_s=mem.wait_time_s[i],
        service_time_s=mem.service_time_s[i],
        stall_cycles=mem.stall_cycles[i],
    )


def _lane_network(net: NetworkOutcome, i: int) -> NetworkOutcome:
    """Lane ``i``'s view of a stacked network outcome."""
    return NetworkOutcome(
        complete_s=net.complete_s[i],
        net_time_s=net.net_time_s[i],
        cpu_cost_s=net.cpu_cost_s[i],
        port_wait_s=net.port_wait_s[i],
        wire_time_s=net.wire_time_s[i],
        messages=net.messages[i],
        bytes_sent=net.bytes_sent[i],
    )


def _group_key(lane: LaneRequest) -> tuple[str, str, int, int]:
    """Lanes sharing this key stack into one ``(L, S, n, c)`` resolve."""
    return (
        lane.program.name,
        lane.class_name,
        lane.config.nodes,
        lane.config.cores,
    )


def _execute_group(
    cluster: ClusterSpec, lanes: list[LaneRequest], noise: NoiseModel
) -> list[RunResult]:
    """Resolve one shape-homogeneous group of lanes in a single pass."""
    if len(lanes) == 1:
        # a single-lane chunk gains nothing from stacking (and would pay
        # the stack copies); the scalar core is the same arithmetic
        lane = lanes[0]
        return [
            execute(
                lane.program,
                lane.class_name,
                cluster,
                lane.config,
                lane.rng,
                noise,
                stall_frequency_hz=lane.stall_frequency_hz,
                collect_trace=lane.collect_trace,
                faults=lane.faults,
            )
        ]
    program = lanes[0].program
    class_name = lanes[0].class_name
    n, c = lanes[0].config.nodes, lanes[0].config.cores
    s_iters = program.iterations(class_name)
    lane_count = len(lanes)

    # --- per-lane draws, each in the exact scalar generator order -------
    cpu_draws = [
        draw_compute(program, class_name, lane.config, noise, lane.rng)
        for lane in lanes
    ]
    mem_u = [draw_memory(lane.rng, s_iters, n, c) for lane in lanes]
    msgs = _message_counts(program, n)
    sizes = offsets = None
    if msgs > 0:
        nu = program.bytes_per_message(class_name, n)
        net_draws = [
            draw_network(lane.rng, s_iters, n, msgs, nu) for lane in lanes
        ]
        sizes = np.stack([d[0] for d in net_draws])
        offsets = np.stack([d[1] for d in net_draws])

    draws = ComputeDraws(
        proc_shares=np.stack([d.proc_shares for d in cpu_draws]),
        thread_shares=np.stack([d.thread_shares for d in cpu_draws]),
        jitter=np.stack([d.jitter for d in cpu_draws]),
    )
    # lane frequencies (and DVFS throttle points) broadcast over (L,S,n,c)
    freqs = np.array(
        [lane.config.frequency_hz for lane in lanes]
    ).reshape(lane_count, 1, 1, 1)
    stall_freqs = np.array(
        [
            lane.stall_frequency_hz
            if lane.stall_frequency_hz is not None
            else lane.config.frequency_hz
            for lane in lanes
        ]
    ).reshape(lane_count, 1, 1, 1)

    # --- stacked resolve: one NumPy pipeline across all lanes -----------
    demand = demand_from_draws(
        program, class_name, cluster, n, c, freqs, draws
    )
    arrival_fractions = np.stack(mem_u, axis=1)  # (n, L, S, c*B)
    mem = memory_from_draws(
        demand, cluster, n, c, freqs, stall_freqs, arrival_fractions
    )

    for i, lane in enumerate(lanes):
        apply_straggler(
            demand.compute_time_s[i], mem.stall_time_s[i], lane.faults, n
        )

    thread_time = demand.compute_time_s + mem.stall_time_s  # (L, S, n, c)
    compute_end = thread_time.max(axis=-1)  # (L, S, n)
    net = network_from_draws(cluster, n, msgs, compute_end, sizes, offsets)
    process_end = net.complete_s + net.cpu_cost_s  # (L, S, n)

    # --- per-lane tails: value-dependent draws resume each stream -------
    results = []
    for i, lane in enumerate(lanes):
        lane_end = process_end[i] + noise.daemon_time(lane.rng, process_end[i])
        iteration_time = lane_end.max(axis=1) + noise.barrier_skews(
            lane.rng, (s_iters,)
        )
        wall_time = float(iteration_time.sum()) + _startup_time_s(
            lane.config, lane.rng, noise
        )
        results.append(
            finalize_run(
                program,
                class_name,
                cluster,
                lane.config,
                _lane_demand(demand, i),
                _lane_memory(mem, i),
                _lane_network(net, i),
                thread_time[i],
                iteration_time,
                wall_time,
                lane.stall_frequency_hz,
                lane.collect_trace,
            )
        )
    return results


def execute_batch(
    cluster: ClusterSpec,
    lanes: "list[LaneRequest] | tuple[LaneRequest, ...]",
    noise: NoiseModel | None = None,
) -> list[RunResult]:
    """Execute every lane and return results in request order.

    Lanes are grouped by ``(program, class, nodes, cores)``; each group
    resolves as stacked NumPy passes over cache-sized lane chunks, so
    throughput grows with batch homogeneity while results stay
    bit-identical to the scalar backend lane by lane.
    """
    noise = noise if noise is not None else NoiseModel()
    for lane in lanes:
        cluster.validate_configuration(lane.config)
        if lane.stall_frequency_hz is not None:
            cluster.validate_configuration(
                Configuration(
                    lane.config.nodes, lane.config.cores, lane.stall_frequency_hz
                )
            )

    groups: dict[tuple[str, str, int, int], list[int]] = {}
    for idx, lane in enumerate(lanes):
        groups.setdefault(_group_key(lane), []).append(idx)

    with obs.span(
        "sim_batch",
        cluster=cluster.name,
        lanes=len(lanes),
        groups=len(groups),
    ):
        results: list[RunResult | None] = [None] * len(lanes)
        chunk_count = 0
        for indices in groups.values():
            first = lanes[indices[0]]
            per = _lanes_per_chunk(
                first.program.iterations(first.class_name),
                first.config.nodes,
                first.config.cores,
            )
            for start in range(0, len(indices), per):
                chunk = indices[start : start + per]
                chunk_results = _execute_group(
                    cluster, [lanes[i] for i in chunk], noise
                )
                chunk_count += 1
                for i, result in zip(chunk, chunk_results):
                    results[i] = result
        if obs.metrics_enabled():
            obs.add("sim.batched.lanes", len(lanes))
            obs.add("sim.batched.groups", len(groups))
            obs.add("sim.batched.chunks", chunk_count)
            obs.add("sim.batched.batches")
    return [r for r in results if r is not None]
