"""Compute-phase demand translation: program -> per-thread cycles.

For a run of program ``P`` at input class ``K`` on configuration
``(n, c, f)``, this module materializes the per-(iteration, process, thread)
compute demand:

* native instruction counts — the abstract per-iteration instructions split
  across ``n`` processes and ``c`` threads, plus the program's serial
  fraction (executed on thread 0 only) and its synchronization-overhead
  instructions (which grow superlinearly with ``n*c`` for programs like LB);
* useful work cycles ``w`` and non-memory pipeline stall cycles ``b`` from
  the core's ISA translation;
* frequency-invariant cache-hierarchy stall cycles (part of the paper's
  ``m``; the DRAM part is added by :mod:`repro.simulate.memory`);
* DRAM traffic per thread after cache-miss amplification for this node's
  hierarchy.

Thread and process imbalance are multiplicative lognormal factors drawn per
(iteration, process[, thread]) and normalized to preserve each iteration's
total work — imbalance moves work between threads, it does not create it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machines.spec import ClusterSpec, Configuration
from repro.simulate.noise import NoiseModel
from repro.workloads.base import HybridProgram


@dataclass(frozen=True)
class ComputeDemand:
    """Per-(iteration, process, thread) compute-phase demand arrays.

    All arrays have shape ``(S, n, c)``; times are seconds at the run's
    frequency, cycle counts are raw cycles.
    """

    instructions: np.ndarray
    work_cycles: np.ndarray
    hazard_cycles: np.ndarray
    cache_stall_cycles: np.ndarray
    dram_bytes: np.ndarray
    compute_time_s: np.ndarray  # (work + hazard) / f, jittered

    @property
    def shape(self) -> tuple[int, int, int]:
        """``(S, n, c)``."""
        return self.instructions.shape


def _normalized_imbalance(
    rng: np.random.Generator, cv: float, shape: tuple[int, ...], axis: int
) -> np.ndarray:
    """Lognormal share multipliers with mean 1 along ``axis``.

    A coefficient of variation of 0 (or a single element along the axis)
    yields exact ones.
    """
    if cv <= 0 or shape[axis] == 1:
        return np.ones(shape)
    sigma = np.sqrt(np.log1p(cv * cv))
    draw = rng.lognormal(mean=0.0, sigma=sigma, size=shape)
    return draw / draw.mean(axis=axis, keepdims=True)


def compute_demand(
    program: HybridProgram,
    class_name: str,
    cluster: ClusterSpec,
    config: Configuration,
    noise: NoiseModel,
    rng: np.random.Generator,
) -> ComputeDemand:
    """Materialize compute-phase demand for one run."""
    core = cluster.node.core
    memory = cluster.node.memory
    s_iters = program.iterations(class_name)
    n, c, f = config.nodes, config.cores, config.frequency_hz
    shape = (s_iters, n, c)

    # --- abstract instructions per thread ------------------------------
    total_instr = program.instructions(class_name)
    sync_instr = program.sync_instructions(class_name, n, c)
    seq_instr = total_instr * program.sequential_fraction
    par_instr = total_instr - seq_instr

    # parallel share: split across n processes, then c threads, imbalanced
    proc_shares = _normalized_imbalance(
        rng, program.process_imbalance, (s_iters, n, 1), axis=1
    )
    thread_shares = _normalized_imbalance(
        rng, program.thread_imbalance, shape, axis=2
    )
    abstract = (par_instr / (n * c)) * proc_shares * thread_shares
    # serial fraction runs on thread 0 of process 0
    abstract = np.ascontiguousarray(abstract)
    abstract[:, 0, 0] += seq_instr
    # sync overhead is spread across all threads (it is busy-work everywhere)
    abstract += sync_instr / (n * c)

    # --- ISA translation ------------------------------------------------
    native = abstract * core.instruction_scale
    work = native * core.base_cpi
    hazard = native * core.hazard_cpi(program.mix)
    cache_stall = native * program.mix.mem * core.cache_stall_cpi

    # --- DRAM traffic ----------------------------------------------------
    amplification = memory.miss_amplification(program.working_set(class_name))
    dram_total = program.dram_bytes(class_name) * amplification
    dram = (dram_total / (n * c)) * proc_shares * thread_shares

    # --- wall time of the compute burst ---------------------------------
    jitter = noise.phase_multipliers(rng, shape)
    compute_time = (work + hazard) / f * jitter

    return ComputeDemand(
        instructions=native,
        work_cycles=work,
        hazard_cycles=hazard,
        cache_stall_cycles=cache_stall,
        dram_bytes=dram,
        compute_time_s=compute_time,
    )
