"""Compute-phase demand translation: program -> per-thread cycles.

For a run of program ``P`` at input class ``K`` on configuration
``(n, c, f)``, this module materializes the per-(iteration, process, thread)
compute demand:

* native instruction counts — the abstract per-iteration instructions split
  across ``n`` processes and ``c`` threads, plus the program's serial
  fraction (executed on thread 0 only) and its synchronization-overhead
  instructions (which grow superlinearly with ``n*c`` for programs like LB);
* useful work cycles ``w`` and non-memory pipeline stall cycles ``b`` from
  the core's ISA translation;
* frequency-invariant cache-hierarchy stall cycles (part of the paper's
  ``m``; the DRAM part is added by :mod:`repro.simulate.memory`);
* DRAM traffic per thread after cache-miss amplification for this node's
  hierarchy.

Thread and process imbalance are multiplicative lognormal factors drawn per
(iteration, process[, thread]) and normalized to preserve each iteration's
total work — imbalance moves work between threads, it does not create it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machines.spec import ClusterSpec, Configuration
from repro.simulate.noise import NoiseModel
from repro.workloads.base import HybridProgram


@dataclass(frozen=True)
class ComputeDemand:
    """Per-(iteration, process, thread) compute-phase demand arrays.

    All arrays have shape ``(S, n, c)`` for a single run (the batched
    core stacks lanes in front: ``(L, S, n, c)``); times are seconds at
    the run's frequency, cycle counts are raw cycles.
    """

    instructions: np.ndarray
    work_cycles: np.ndarray
    hazard_cycles: np.ndarray
    cache_stall_cycles: np.ndarray
    dram_bytes: np.ndarray
    compute_time_s: np.ndarray  # (work + hazard) / f, jittered

    @property
    def shape(self) -> tuple[int, ...]:
        """``(S, n, c)`` — or ``(L, S, n, c)`` for a lane-stacked batch."""
        return self.instructions.shape


@dataclass(frozen=True)
class ComputeDraws:
    """Stochastic inputs of one run's compute phase, pre-drawn.

    Splitting the draws from the arithmetic is what lets the batched
    core (:mod:`repro.simulate.batched`) consume each lane's generator
    in exactly the scalar order, then stack the draws and run the
    arithmetic once across lanes.  Shapes are ``(S, n, 1)`` /
    ``(S, n, c)`` per lane; the batch core stacks a leading lane axis.
    """

    proc_shares: np.ndarray
    thread_shares: np.ndarray
    jitter: np.ndarray


def _normalized_imbalance(
    rng: np.random.Generator, cv: float, shape: tuple[int, ...], axis: int
) -> np.ndarray:
    """Lognormal share multipliers with mean 1 along ``axis``.

    A coefficient of variation of 0 (or a single element along the axis)
    yields exact ones.
    """
    if cv <= 0 or shape[axis] == 1:
        return np.ones(shape)
    sigma = np.sqrt(np.log1p(cv * cv))
    draw = rng.lognormal(mean=0.0, sigma=sigma, size=shape)
    return draw / draw.mean(axis=axis, keepdims=True)


def draw_compute(
    program: HybridProgram,
    class_name: str,
    config: Configuration,
    noise: NoiseModel,
    rng: np.random.Generator,
) -> ComputeDraws:
    """Consume one run's compute-phase draws from ``rng``, in the fixed
    scalar order (process shares, thread shares, phase jitter)."""
    s_iters = program.iterations(class_name)
    n, c = config.nodes, config.cores
    shape = (s_iters, n, c)
    proc_shares = _normalized_imbalance(
        rng, program.process_imbalance, (s_iters, n, 1), axis=1
    )
    thread_shares = _normalized_imbalance(
        rng, program.thread_imbalance, shape, axis=2
    )
    jitter = noise.phase_multipliers(rng, shape)
    return ComputeDraws(
        proc_shares=proc_shares, thread_shares=thread_shares, jitter=jitter
    )


def demand_from_draws(
    program: HybridProgram,
    class_name: str,
    cluster: ClusterSpec,
    nodes: int,
    cores: int,
    frequency_hz: "float | np.ndarray",
    draws: ComputeDraws,
) -> ComputeDemand:
    """Pure arithmetic of the compute phase, shape-agnostic over lanes.

    ``draws`` arrays may carry leading batch axes (``(L, S, n, c)``) and
    ``frequency_hz`` may be an array broadcastable against them (lane
    frequencies); each lane's results are bit-identical to a standalone
    scalar run because every operation is elementwise per lane.
    """
    core = cluster.node.core
    memory = cluster.node.memory
    n, c = nodes, cores

    # --- abstract instructions per thread ------------------------------
    total_instr = program.instructions(class_name)
    sync_instr = program.sync_instructions(class_name, n, c)
    seq_instr = total_instr * program.sequential_fraction
    par_instr = total_instr - seq_instr

    # parallel share: split across n processes, then c threads, imbalanced
    abstract = (par_instr / (n * c)) * draws.proc_shares * draws.thread_shares
    # serial fraction runs on thread 0 of process 0
    abstract = np.ascontiguousarray(abstract)
    abstract[..., 0, 0] += seq_instr
    # sync overhead is spread across all threads (it is busy-work everywhere)
    abstract += sync_instr / (n * c)

    # --- ISA translation ------------------------------------------------
    native = abstract * core.instruction_scale
    work = native * core.base_cpi
    hazard = native * core.hazard_cpi(program.mix)
    cache_stall = native * program.mix.mem * core.cache_stall_cpi

    # --- DRAM traffic ----------------------------------------------------
    amplification = memory.miss_amplification(program.working_set(class_name))
    dram_total = program.dram_bytes(class_name) * amplification
    dram = (dram_total / (n * c)) * draws.proc_shares * draws.thread_shares

    # --- wall time of the compute burst ---------------------------------
    compute_time = (work + hazard) / frequency_hz * draws.jitter

    return ComputeDemand(
        instructions=native,
        work_cycles=work,
        hazard_cycles=hazard,
        cache_stall_cycles=cache_stall,
        dram_bytes=dram,
        compute_time_s=compute_time,
    )


def compute_demand(
    program: HybridProgram,
    class_name: str,
    cluster: ClusterSpec,
    config: Configuration,
    noise: NoiseModel,
    rng: np.random.Generator,
) -> ComputeDemand:
    """Materialize compute-phase demand for one run."""
    draws = draw_compute(program, class_name, config, noise, rng)
    return demand_from_draws(
        program,
        class_name,
        cluster,
        config.nodes,
        config.cores,
        config.frequency_hz,
        draws,
    )
