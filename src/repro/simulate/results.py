"""Result records produced by the simulator (the "testbed outputs").

A :class:`RunResult` is everything the measurement layer can observe about
one execution: wall time (the ``time`` command), per-component energy (the
WattsUp meter sees only the total), hardware-counter totals, the message
log (mpiP's raw input), and a phase-time breakdown used for UCR-style
diagnostics and for tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machines.spec import Configuration


@dataclass(frozen=True)
class CounterTotals:
    """Hardware performance counter totals for one run.

    Cycle quantities are *per-core averages* over the active cores (the
    form the paper's Eqs. 2-7 consume); ``instructions`` is the cluster-wide
    total.  ``utilization`` is busy time over ``T * n * c``.
    """

    instructions: float
    work_cycles: float
    nonmem_stall_cycles: float
    mem_stall_cycles: float
    utilization: float

    @property
    def useful_cycles(self) -> float:
        """``w + b`` — the paper's Eq. 3 useful cycles."""
        return self.work_cycles + self.nonmem_stall_cycles


@dataclass(frozen=True)
class MessageStats:
    """mpiP-style aggregate message log for one run."""

    total_messages: float
    total_bytes: float

    @property
    def mean_message_bytes(self) -> float:
        """``ν`` — mean bytes per message."""
        return self.total_bytes / self.total_messages if self.total_messages else 0.0


@dataclass(frozen=True)
class ComponentEnergy:
    """True per-component energy (J) for the whole cluster run.

    The physical meter only sees ``total``; the breakdown exists so tests
    and diagnostics can check accounting invariants.
    """

    cpu_active_j: float
    cpu_stall_j: float
    mem_j: float
    net_j: float
    idle_j: float

    @property
    def total_j(self) -> float:
        """Total wall energy in joules."""
        return (
            self.cpu_active_j
            + self.cpu_stall_j
            + self.mem_j
            + self.net_j
            + self.idle_j
        )


@dataclass(frozen=True)
class PhaseBreakdown:
    """Per-core-average phase times (s) — the simulator's ground truth
    decomposition mirroring the paper's Eq. 1 terms."""

    t_cpu_s: float
    t_mem_s: float
    t_net_s: float
    t_other_s: float

    @property
    def total_s(self) -> float:
        """Sum of all phase components."""
        return self.t_cpu_s + self.t_mem_s + self.t_net_s + self.t_other_s


@dataclass(frozen=True)
class IterationTrace:
    """Per-iteration phase timeline of one run (optional, trace mode).

    Arrays are indexed by iteration; per-iteration values are cluster-wide:
    ``compute_s``/``memory_s`` are per-core means over that iteration,
    ``network_s`` the per-process mean, ``iteration_s`` the wall duration
    (barrier to barrier).  The profile view in
    ``examples/phase_profile.py`` renders this as a phase timeline, the
    role HPCToolkit-style profilers play on the paper's testbed.
    """

    compute_s: "object"
    memory_s: "object"
    network_s: "object"
    iteration_s: "object"

    def __post_init__(self) -> None:
        lengths = {
            len(self.compute_s),
            len(self.memory_s),
            len(self.network_s),
            len(self.iteration_s),
        }
        if len(lengths) != 1:
            raise ValueError("trace arrays must be equally long")

    @property
    def iterations(self) -> int:
        """Number of traced iterations."""
        return len(self.iteration_s)


@dataclass(frozen=True)
class RunResult:
    """Complete observable outcome of one simulated execution."""

    program: str
    class_name: str
    cluster: str
    config: Configuration
    wall_time_s: float
    energy: ComponentEnergy
    counters: CounterTotals
    messages: MessageStats
    phases: PhaseBreakdown
    trace: IterationTrace | None = None

    @property
    def ucr(self) -> float:
        """Ground-truth useful computation ratio of this run (Eq. 13)."""
        return self.phases.t_cpu_s / self.wall_time_s
