"""Discrete-event cluster simulator — the testbed substitute.

The paper validates its analytical model against *direct measurement* on
physical Xeon and ARM clusters.  Having no hardware, this package plays the
testbed's role: it executes a :class:`~repro.workloads.base.HybridProgram`
on a :class:`~repro.machines.spec.ClusterSpec` configuration with
*structural* resolution — per-request queueing at the memory controller and
the Ethernet switch (vectorized Lindley recursions), per-thread imbalance,
bulk-synchronous barriers, OS jitter, and power-state accounting — none of
which reuses the analytical model's closed-form M/G/1 expressions, so
model-vs-simulator validation error is a real quantity.

Entry point: :class:`SimulatedCluster` (``cluster.py``), which returns
:class:`RunResult` records carrying wall time, a per-component energy
breakdown, hardware-counter totals and an mpiP-style message log.

Two execution cores back it: the scalar reference
(:mod:`repro.simulate.runtime`) and the lane-stacked batched core
(:mod:`repro.simulate.batched`), selected per call through
:func:`resolve_backend` — bit-identical per run, so the choice is purely
a throughput knob (see ``docs/SIMULATOR.md``).
"""

from repro.simulate.backend import SIM_BACKENDS, resolve_backend
from repro.simulate.cluster import RunRequest, SimulatedCluster
from repro.simulate.results import (
    ComponentEnergy,
    CounterTotals,
    IterationTrace,
    MessageStats,
    RunResult,
)
from repro.simulate.noise import NoiseModel
from repro.simulate.faults import FaultModel, degraded_memory, degraded_network

__all__ = [
    "SimulatedCluster",
    "RunRequest",
    "SIM_BACKENDS",
    "resolve_backend",
    "RunResult",
    "ComponentEnergy",
    "CounterTotals",
    "IterationTrace",
    "MessageStats",
    "NoiseModel",
    "FaultModel",
    "degraded_memory",
    "degraded_network",
]
