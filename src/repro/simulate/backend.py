"""Simulator backend selection (``auto`` / ``scalar`` / ``batched``).

Mirrors the scalar/vectorized split of the analytical model (PR 1): the
scalar backend (:func:`repro.simulate.runtime.execute`) is the readable
bit-exact reference, the batched backend
(:mod:`repro.simulate.batched`) stacks replication lanes through one
NumPy pipeline.  Because the two are bit-identical lane for lane, the
selector is a pure performance knob — ``auto`` picks the batched core
whenever a call supplies more than one lane.

Selection precedence: explicit argument > ``REPRO_SIM_BACKEND``
environment variable > ``auto``.  The environment override exists for
CI and for A/B-ing a whole campaign without threading a flag through
every entry point.
"""

from __future__ import annotations

import os

__all__ = ["SIM_BACKENDS", "resolve_backend"]

#: The recognized backend names.
SIM_BACKENDS = ("auto", "scalar", "batched")

#: Environment override consulted when no explicit backend is requested.
ENV_VAR = "REPRO_SIM_BACKEND"


def resolve_backend(requested: str | None = None, lanes: int = 1) -> str:
    """Resolve a backend request to ``"scalar"`` or ``"batched"``.

    ``requested`` is an entry-point setting (``None``/``"auto"`` defer to
    the ``REPRO_SIM_BACKEND`` environment variable, then to the lane
    heuristic); ``lanes`` is how many runs the call site wants at once —
    ``auto`` only picks the batched core when stacking is possible
    (``lanes > 1``), since a single lane gains nothing from it.
    """
    name = requested if requested not in (None, "auto") else None
    if name is None:
        env = os.environ.get(ENV_VAR, "").strip().lower()
        name = env if env and env != "auto" else None
    if name is None:
        return "batched" if lanes > 1 else "scalar"
    if name not in ("scalar", "batched"):
        raise ValueError(
            f"unknown sim backend {name!r}; expected one of {SIM_BACKENDS}"
        )
    return name
