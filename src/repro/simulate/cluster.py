"""`SimulatedCluster`: the facade standing in for a physical testbed.

Owns a :class:`~repro.machines.spec.ClusterSpec`, a noise model and a root
seed, and exposes exactly what an experimenter with SSH access and a wall
meter could do: run a program at a configuration (repeatedly, with
run-to-run variation) and read back wall time, energy, counters and the
message log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro import rng as rng_mod
from repro.machines.spec import ClusterSpec, Configuration
from repro.simulate.backend import resolve_backend
from repro.simulate.batched import LaneRequest, execute_batch
from repro.simulate.faults import FaultModel
from repro.simulate.noise import NoiseModel
from repro.simulate.results import RunResult
from repro.simulate.runtime import execute
from repro.workloads.base import HybridProgram


@dataclass(frozen=True)
class RunRequest:
    """One run of a batch submission (see `SimulatedCluster.run_batch`).

    The same knobs as `SimulatedCluster.run`, as data — a batch is a
    list of these, freely mixing configurations, repetition indices and
    DVFS throttle points.
    """

    program: HybridProgram
    config: Configuration
    class_name: str | None = None
    run_index: int = 0
    stall_frequency_hz: float | None = None
    collect_trace: bool = False


@dataclass
class SimulatedCluster:
    """A runnable cluster: spec + noise + seed discipline.

    Each ``(program, class, config, run_index)`` tuple maps to a unique,
    reproducible random stream, so repeated calls with the same arguments
    return identical results while distinct ``run_index`` values model
    genuinely different executions (the paper's §IV-C "different runs of
    the same program" irregularity).

    ``sim_backend`` selects the execution core (``auto``/``scalar``/
    ``batched``, see :mod:`repro.simulate.backend`); the backends are
    bit-identical per run, so the knob only affects throughput.
    """

    spec: ClusterSpec
    noise: NoiseModel = field(default_factory=NoiseModel)
    root_seed: int = rng_mod.DEFAULT_ROOT_SEED
    faults: "FaultModel | None" = None
    sim_backend: str = "auto"

    def _stream(
        self,
        program: HybridProgram,
        class_name: str,
        config: Configuration,
        run_index: int,
    ) -> np.random.Generator:
        """The named RNG stream owning this run's randomness."""
        return rng_mod.derive(
            self.root_seed,
            self.spec.name,
            program.name,
            class_name,
            f"n={config.nodes},c={config.cores},f={config.frequency_hz:.0f}",
            f"run={run_index}",
        )

    def run(
        self,
        program: HybridProgram,
        config: Configuration,
        class_name: str | None = None,
        run_index: int = 0,
        stall_frequency_hz: float | None = None,
        collect_trace: bool = False,
    ) -> RunResult:
        """Execute one run and return the observable result.

        ``stall_frequency_hz`` throttles stalled cores (phase-aware DVFS);
        ``collect_trace`` attaches the per-iteration phase timeline.
        """
        cls = class_name or program.reference_class
        # the DVFS knob deliberately does NOT enter the stream name: a
        # throttled and an unthrottled run with the same run_index share
        # identical workload randomness, so schedule comparisons are paired
        stream = self._stream(program, cls, config, run_index)
        return execute(
            program,
            cls,
            self.spec,
            config,
            stream,
            self.noise,
            stall_frequency_hz=stall_frequency_hz,
            collect_trace=collect_trace,
            faults=self.faults,
        )

    def run_batch(
        self,
        requests: Sequence[RunRequest],
        backend: str | None = None,
    ) -> list[RunResult]:
        """Execute a batch of runs, results in request order.

        Routes through the backend selector: the batched core stacks
        shape-compatible requests into one NumPy pipeline, the scalar
        core loops — either way each run is bit-identical to the
        equivalent `run` call (same named stream, same arithmetic).
        """
        resolved = resolve_backend(
            backend if backend is not None else self.sim_backend,
            lanes=len(requests),
        )
        if resolved == "scalar":
            return [
                self.run(
                    r.program,
                    r.config,
                    r.class_name,
                    run_index=r.run_index,
                    stall_frequency_hz=r.stall_frequency_hz,
                    collect_trace=r.collect_trace,
                )
                for r in requests
            ]
        lanes = []
        for r in requests:
            cls = r.class_name or r.program.reference_class
            lanes.append(
                LaneRequest(
                    program=r.program,
                    class_name=cls,
                    config=r.config,
                    rng=self._stream(r.program, cls, r.config, r.run_index),
                    stall_frequency_hz=r.stall_frequency_hz,
                    faults=self.faults,
                    collect_trace=r.collect_trace,
                )
            )
        return execute_batch(self.spec, lanes, self.noise)

    def run_many(
        self,
        program: HybridProgram,
        config: Configuration,
        class_name: str | None = None,
        repetitions: int = 3,
    ) -> list[RunResult]:
        """Repeat a run with independent noise draws (measurement practice)."""
        return self.run_batch(
            [
                RunRequest(program, config, class_name, run_index=i)
                for i in range(repetitions)
            ]
        )

    def deterministic(self) -> "SimulatedCluster":
        """A noise-free copy (unit tests / debugging)."""
        return SimulatedCluster(
            spec=self.spec,
            noise=NoiseModel.disabled(),
            root_seed=self.root_seed,
            sim_backend=self.sim_backend,
        )
