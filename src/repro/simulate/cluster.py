"""`SimulatedCluster`: the facade standing in for a physical testbed.

Owns a :class:`~repro.machines.spec.ClusterSpec`, a noise model and a root
seed, and exposes exactly what an experimenter with SSH access and a wall
meter could do: run a program at a configuration (repeatedly, with
run-to-run variation) and read back wall time, energy, counters and the
message log.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import rng as rng_mod
from repro.machines.spec import ClusterSpec, Configuration
from repro.simulate.faults import FaultModel
from repro.simulate.noise import NoiseModel
from repro.simulate.results import RunResult
from repro.simulate.runtime import execute
from repro.workloads.base import HybridProgram


@dataclass
class SimulatedCluster:
    """A runnable cluster: spec + noise + seed discipline.

    Each ``(program, class, config, run_index)`` tuple maps to a unique,
    reproducible random stream, so repeated calls with the same arguments
    return identical results while distinct ``run_index`` values model
    genuinely different executions (the paper's §IV-C "different runs of
    the same program" irregularity).
    """

    spec: ClusterSpec
    noise: NoiseModel = field(default_factory=NoiseModel)
    root_seed: int = rng_mod.DEFAULT_ROOT_SEED
    faults: "FaultModel | None" = None

    def run(
        self,
        program: HybridProgram,
        config: Configuration,
        class_name: str | None = None,
        run_index: int = 0,
        stall_frequency_hz: float | None = None,
        collect_trace: bool = False,
    ) -> RunResult:
        """Execute one run and return the observable result.

        ``stall_frequency_hz`` throttles stalled cores (phase-aware DVFS);
        ``collect_trace`` attaches the per-iteration phase timeline.
        """
        cls = class_name or program.reference_class
        stream = rng_mod.derive(
            self.root_seed,
            self.spec.name,
            program.name,
            cls,
            f"n={config.nodes},c={config.cores},f={config.frequency_hz:.0f}",
            f"run={run_index}",
        )
        # the DVFS knob deliberately does NOT enter the stream name: a
        # throttled and an unthrottled run with the same run_index share
        # identical workload randomness, so schedule comparisons are paired
        return execute(
            program,
            cls,
            self.spec,
            config,
            stream,
            self.noise,
            stall_frequency_hz=stall_frequency_hz,
            collect_trace=collect_trace,
            faults=self.faults,
        )

    def run_many(
        self,
        program: HybridProgram,
        config: Configuration,
        class_name: str | None = None,
        repetitions: int = 3,
    ) -> list[RunResult]:
        """Repeat a run with independent noise draws (measurement practice)."""
        return [
            self.run(program, config, class_name, run_index=i)
            for i in range(repetitions)
        ]

    def deterministic(self) -> "SimulatedCluster":
        """A noise-free copy (unit tests / debugging)."""
        return SimulatedCluster(
            spec=self.spec, noise=NoiseModel.disabled(), root_seed=self.root_seed
        )
