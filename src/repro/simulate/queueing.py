"""Vectorized single-server queue resolution (Lindley recursion).

Both shared resources the paper models — the per-node memory controller and
the cluster's Ethernet switch — are contended single servers.  The simulator
resolves their waiting times *per request* with the Lindley recursion

    W[0] = 0;  W[k] = max(0, W[k-1] + S[k-1] - A[k])

where ``S`` are service times and ``A`` inter-arrival gaps.  Solved naively
this is a Python-speed sequential loop; we use the prefix-form closed
solution instead:

    W[k] = C[k] - min(C[0..k]),   C[k] = cumsum(S[k-1] - A[k])

which is two :func:`numpy.cumsum`-class scans, fully vectorized, and — since
consecutive program iterations are separated by barriers that drain the
queues — batches across iterations as independent rows of a 2D array.

The guide's advice ("vectorize for loops", "beware of cache effects") is
what makes a ~900-run validation campaign take seconds instead of hours.
"""

from __future__ import annotations

import numpy as np

# The analytical Pollaczek-Khinchine counterpart the model uses lives in
# :mod:`repro.mg1` — the single shared definition for the scalar model,
# the vectorized engine and these property tests.  Re-exported here so the
# simulator-facing import path keeps working; with the default
# ``rho_max=None`` it returns ``inf`` for a saturated queue (ρ >= 1),
# exactly the theory convention the empirical-convergence tests expect.
from repro.mg1 import mg1_mean_wait

__all__ = [
    "lindley_waits",
    "lindley_wait_sums",
    "lindley_waits_loop",
    "merge_request_streams",
    "per_owner_totals",
    "mg1_mean_wait",
]


def _lindley_cumulative(
    arrivals: np.ndarray, services: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Prefix sums ``C`` and running minima for the closed-form recursion.

    ``W[k] = C[k] - min(0, running_min(C)[k])`` for ``k >= 1``; the first
    request of every row never waits.  Rows are independent queues; any
    leading batch axes are flattened into rows, so the per-row arithmetic
    (and therefore the bit pattern of every wait) is identical no matter
    how many lanes are stacked in front.

    Also validates arrival ordering (on the gaps it needs anyway) and
    reuses the gap buffer for the scan — the kernel sits on the hot path
    of every simulated run, so it is one diff, one cumsum, one
    accumulate, with no extra temporaries.
    """
    gaps = np.diff(arrivals, axis=-1)
    if np.any(gaps < -1e-12):
        raise ValueError("each arrival row must be sorted ascending")
    # X[k] = S[k-1] - A_gap[k]; first request never waits.
    np.subtract(services[..., :-1], gaps, out=gaps)
    c = np.cumsum(gaps, axis=-1, out=gaps)
    running_min = np.minimum(c, 0.0)
    np.minimum.accumulate(running_min, axis=-1, out=running_min)
    return c, running_min


def lindley_waits(arrivals: np.ndarray, services: np.ndarray) -> np.ndarray:
    """Waiting times at a FIFO single server, one row per independent batch.

    Parameters
    ----------
    arrivals:
        Arrival times, shape ``(R,)``, ``(B, R)`` or any ``(..., R)`` —
        the last axis is the request axis, every leading axis an
        independent batch lane.  Each row must be sorted ascending
        (requests are served in arrival order).
    services:
        Service times aligned with ``arrivals``.

    Returns
    -------
    Waiting times (time between arrival and start of service), same shape.
    """
    arrivals = np.asarray(arrivals, dtype=np.float64)
    services = np.asarray(services, dtype=np.float64)
    if arrivals.shape != services.shape:
        raise ValueError("arrivals and services must have identical shapes")
    if arrivals.size == 0:
        return np.zeros_like(arrivals)
    if arrivals.ndim == 0:
        raise ValueError("arrivals must have a request axis")

    c, running_min = _lindley_cumulative(arrivals, services)
    np.subtract(c, running_min, out=c)
    # guard fp noise: waits are non-negative by construction
    np.maximum(c, 0.0, out=c)
    waits = np.zeros_like(arrivals)
    waits[..., 1:] = c
    return waits


def lindley_wait_sums(arrivals: np.ndarray, services: np.ndarray) -> np.ndarray:
    """Per-row total waiting time — ``lindley_waits(...).sum(axis=-1)``.

    The memory-controller queue only consumes the *total* wait of each
    (iteration, node) row (it is re-attributed to threads by traffic
    share), so the full wait matrix never needs to materialize.  The sum
    is taken over the same per-element values the full recursion yields
    (each ``max(0, C[k] - running_min)`` term), keeping results
    bit-identical to summing :func:`lindley_waits` along the last axis.
    """
    arrivals = np.asarray(arrivals, dtype=np.float64)
    services = np.asarray(services, dtype=np.float64)
    if arrivals.shape != services.shape:
        raise ValueError("arrivals and services must have identical shapes")
    if arrivals.size == 0 or arrivals.shape[-1] < 2:
        return np.zeros(arrivals.shape[:-1], dtype=np.float64)
    c, running_min = _lindley_cumulative(arrivals, services)
    np.subtract(c, running_min, out=c)
    np.maximum(c, 0.0, out=c)
    # mirror lindley_waits(...).sum(axis=-1): the leading zero of every
    # row participates in the pairwise sum there, so keep it here too
    full = np.zeros(arrivals.shape, dtype=np.float64)
    full[..., 1:] = c
    return full.sum(axis=-1)


def lindley_waits_loop(arrivals: np.ndarray, services: np.ndarray) -> np.ndarray:
    """Reference O(R) scalar-loop Lindley recursion (for property tests)."""
    arrivals = np.asarray(arrivals, dtype=np.float64)
    services = np.asarray(services, dtype=np.float64)
    waits = np.zeros_like(arrivals)
    for k in range(1, arrivals.size):
        depart_prev = arrivals[k - 1] + waits[k - 1] + services[k - 1]
        waits[k] = max(0.0, depart_prev - arrivals[k])
    return waits


def merge_request_streams(
    arrivals: np.ndarray, services: np.ndarray, owners: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Merge per-owner request streams into one FIFO arrival order.

    Used to interleave the memory-request batches of ``c`` threads (or the
    messages of ``n`` processes) before resolving the shared queue.

    Parameters
    ----------
    arrivals, services, owners:
        Flat, same-length arrays; ``owners`` tags each request with the
        issuing thread/process index.

    Returns
    -------
    ``(sorted_arrivals, sorted_services, sorted_owners, order)`` where
    ``order`` is the permutation applied (so results can be scattered back).
    """
    arrivals = np.asarray(arrivals, dtype=np.float64)
    order = np.argsort(arrivals, kind="stable")
    return arrivals[order], np.asarray(services, dtype=np.float64)[order], np.asarray(
        owners
    )[order], order


def per_owner_totals(
    values: np.ndarray, owners: np.ndarray, n_owners: int
) -> np.ndarray:
    """Sum ``values`` by owner index (e.g. per-thread total queue wait)."""
    return np.bincount(
        np.asarray(owners, dtype=np.intp), weights=values, minlength=n_owners
    )
