"""Shared-memory contention: per-node memory-controller queueing.

Within a node, the ``c`` OpenMP threads of the compute phase contend for one
UMA memory controller (paper §III-C: "the parallel threads within a logical
process contend for shared-memory").  The simulator resolves this
structurally rather than with the model's closed form:

* each thread's per-iteration DRAM traffic is split into ``BATCHES``
  request batches whose arrival instants are spread randomly across the
  thread's compute burst;
* all batches of one (iteration, node) meet at the controller, a FIFO
  server with the spec's sustained bandwidth — waits come from the exact
  Lindley recursion over the merged arrival order;
* a batch's core-visible cost is its queue wait plus the larger of its
  bandwidth term and its latency-exposure term (``lines * latency / mlp``) —
  bandwidth-bound on wide machines, latency-bound on the ARM node;
* the out-of-order engine hides ``memory_overlap`` of that cost under
  computation; the remainder is memory stall time, which the counters
  report as stall *cycles* ``m = stall_time * f`` plus the
  frequency-invariant cache-stall cycles from :mod:`repro.simulate.cpu`.

Everything is vectorized with iterations as independent rows (queues drain
at each barrier).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machines.spec import ClusterSpec, Configuration
from repro.simulate.cpu import ComputeDemand
from repro.simulate.queueing import lindley_wait_sums

#: Request batches per thread per iteration.  Large enough to interleave
#: threads realistically, small enough to keep arrays tiny.
BATCHES = 8


@dataclass(frozen=True)
class MemoryOutcome:
    """Memory-phase results, all arrays shaped ``(S, n, c)`` in seconds.

    ``stall_time_s`` is the core-visible non-overlapped memory time (the
    paper's ``T_w,mem + T_s,mem`` contribution of each thread);
    ``wait_time_s`` / ``service_time_s`` split it into contention and
    service for UCR-style diagnostics; ``stall_cycles`` is what the
    hardware counters report (includes cache-hierarchy stalls).
    """

    stall_time_s: np.ndarray
    wait_time_s: np.ndarray
    service_time_s: np.ndarray
    stall_cycles: np.ndarray


def draw_memory(
    rng: np.random.Generator, s_iters: int, nodes: int, cores: int
) -> np.ndarray:
    """Consume one run's memory arrival fractions from ``rng``.

    Returns shape ``(n, S, c * BATCHES)`` — uniform [0, 1) positions of
    each request batch within its thread's compute burst, node-major.
    One bulk ``uniform`` call fills the output in the same generator
    order as the historical per-node calls, so the stream stays aligned.
    """
    return rng.uniform(0.0, 1.0, size=(nodes, s_iters, cores * BATCHES))


def memory_from_draws(
    demand: ComputeDemand,
    cluster: ClusterSpec,
    nodes: int,
    cores: int,
    frequency_hz: "float | np.ndarray",
    stall_frequency_hz: "float | np.ndarray | None",
    arrival_fractions: np.ndarray,
) -> MemoryOutcome:
    """Pure arithmetic of the memory phase, shape-agnostic over lanes.

    ``arrival_fractions`` is node-major — ``(n, ..., S, c*B)``, with the
    middle axes matching ``demand``'s leading (lane) axes; every
    operation below is row-independent (elementwise, per-row sort,
    per-row scan), so a lane sliced out of a stacked batch is
    bit-identical to a standalone scalar run.
    """
    memory = cluster.node.memory
    core = cluster.node.core
    n, c = nodes, cores
    f = frequency_hz
    f_stall = stall_frequency_hz if stall_frequency_hz is not None else f

    bandwidth = memory.bandwidth_bytes_per_s
    latency_per_line = memory.latency_s / core.mlp
    lines_per_byte = 1.0 / core.line_bytes

    # Controllers are independent per node, so every (iteration, node) row
    # is its own queue — the demand arrays' natural ``(..., S, n, c)``
    # layout already exposes them as rows.  Only the draws arrive
    # node-major (generator-order constraint); transpose them once into
    # that layout and every later op runs on C-contiguous arrays.  Row
    # content and per-row arithmetic are unchanged, so results stay
    # bit-identical to resolving nodes one at a time.
    fractions = np.ascontiguousarray(
        np.moveaxis(arrival_fractions, 0, -2)
    )  # (..., S, n, c*B)

    batch_bytes = np.repeat(demand.dram_bytes / BATCHES, BATCHES, axis=-1)
    spans = np.repeat(demand.compute_time_s, BATCHES, axis=-1)
    arrivals = fractions * spans  # (..., S, n, c*B)

    # bandwidth term occupies the controller; latency term is exposed
    # at the core but pipelined through the controller.
    bw_service = batch_bytes / bandwidth
    lat_exposure = batch_bytes * lines_per_byte * latency_per_line

    order = np.argsort(arrivals, axis=-1, kind="stable")
    sorted_arrivals = np.take_along_axis(arrivals, order, axis=-1)
    sorted_service = np.take_along_axis(bw_service, order, axis=-1)

    # Real contention interleaves at cache-line granularity, so every
    # thread sees the same *average* queue — the per-iteration total
    # waiting (from the exact Lindley pass over the batch arrival
    # pattern) is attributed to threads in proportion to their traffic.
    total_wait = lindley_wait_sums(sorted_arrivals, sorted_service)
    total_wait = total_wait[..., None]  # (..., S, n, 1)
    bytes_total = demand.dram_bytes.sum(axis=-1, keepdims=True)
    share = np.divide(
        demand.dram_bytes,
        bytes_total,
        out=np.full(demand.dram_bytes.shape, 1.0 / c),
        where=bytes_total > 0,
    )
    wait = total_wait * share  # (..., S, n, c)
    # per-thread core-visible service: bandwidth vs latency exposure,
    # whichever binds, summed over the thread's batches
    core_cost = np.maximum(bw_service, lat_exposure)  # (..., S, n, c*B)
    service = core_cost.reshape(
        core_cost.shape[:-1] + (c, BATCHES)
    ).sum(axis=-1)

    exposed = 1.0 - core.memory_overlap
    stall_time = (wait + service) * exposed
    stall_cycles = stall_time * f + demand.cache_stall_cycles
    # cache stalls also consume wall time, at the (possibly throttled)
    # stall-phase frequency
    stall_time_total = stall_time + demand.cache_stall_cycles / f_stall

    return MemoryOutcome(
        stall_time_s=stall_time_total,
        wait_time_s=wait * exposed,
        service_time_s=service * exposed + demand.cache_stall_cycles / f_stall,
        stall_cycles=stall_cycles,
    )


def resolve_memory(
    demand: ComputeDemand,
    cluster: ClusterSpec,
    config: Configuration,
    rng: np.random.Generator,
    stall_frequency_hz: float | None = None,
) -> MemoryOutcome:
    """Resolve memory contention for every (iteration, node, thread).

    ``stall_frequency_hz`` supports phase-aware DVFS (the related-work
    technique the paper says composes with its approach): cores clock down
    to this frequency while stalled on memory.  DRAM waits are time-bound
    and unaffected, but the pipeline-coupled cache stalls take
    ``cycles / f_stall`` of wall time instead of ``cycles / f``.
    """
    s_iters, n, c = demand.shape
    arrival_fractions = draw_memory(rng, s_iters, n, c)
    return memory_from_draws(
        demand,
        cluster,
        n,
        c,
        config.frequency_hz,
        stall_frequency_hz,
        arrival_fractions,
    )
