"""Shared-memory contention: per-node memory-controller queueing.

Within a node, the ``c`` OpenMP threads of the compute phase contend for one
UMA memory controller (paper §III-C: "the parallel threads within a logical
process contend for shared-memory").  The simulator resolves this
structurally rather than with the model's closed form:

* each thread's per-iteration DRAM traffic is split into ``BATCHES``
  request batches whose arrival instants are spread randomly across the
  thread's compute burst;
* all batches of one (iteration, node) meet at the controller, a FIFO
  server with the spec's sustained bandwidth — waits come from the exact
  Lindley recursion over the merged arrival order;
* a batch's core-visible cost is its queue wait plus the larger of its
  bandwidth term and its latency-exposure term (``lines * latency / mlp``) —
  bandwidth-bound on wide machines, latency-bound on the ARM node;
* the out-of-order engine hides ``memory_overlap`` of that cost under
  computation; the remainder is memory stall time, which the counters
  report as stall *cycles* ``m = stall_time * f`` plus the
  frequency-invariant cache-stall cycles from :mod:`repro.simulate.cpu`.

Everything is vectorized with iterations as independent rows (queues drain
at each barrier).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machines.spec import ClusterSpec, Configuration
from repro.simulate.cpu import ComputeDemand
from repro.simulate.queueing import lindley_waits

#: Request batches per thread per iteration.  Large enough to interleave
#: threads realistically, small enough to keep arrays tiny.
BATCHES = 8


@dataclass(frozen=True)
class MemoryOutcome:
    """Memory-phase results, all arrays shaped ``(S, n, c)`` in seconds.

    ``stall_time_s`` is the core-visible non-overlapped memory time (the
    paper's ``T_w,mem + T_s,mem`` contribution of each thread);
    ``wait_time_s`` / ``service_time_s`` split it into contention and
    service for UCR-style diagnostics; ``stall_cycles`` is what the
    hardware counters report (includes cache-hierarchy stalls).
    """

    stall_time_s: np.ndarray
    wait_time_s: np.ndarray
    service_time_s: np.ndarray
    stall_cycles: np.ndarray


def resolve_memory(
    demand: ComputeDemand,
    cluster: ClusterSpec,
    config: Configuration,
    rng: np.random.Generator,
    stall_frequency_hz: float | None = None,
) -> MemoryOutcome:
    """Resolve memory contention for every (iteration, node, thread).

    ``stall_frequency_hz`` supports phase-aware DVFS (the related-work
    technique the paper says composes with its approach): cores clock down
    to this frequency while stalled on memory.  DRAM waits are time-bound
    and unaffected, but the pipeline-coupled cache stalls take
    ``cycles / f_stall`` of wall time instead of ``cycles / f``.
    """
    memory = cluster.node.memory
    core = cluster.node.core
    s_iters, n, c = demand.shape
    f = config.frequency_hz
    f_stall = stall_frequency_hz if stall_frequency_hz is not None else f

    bandwidth = memory.bandwidth_bytes_per_s
    latency_per_line = memory.latency_s / core.mlp
    lines_per_byte = 1.0 / core.line_bytes

    wait = np.zeros(demand.shape)
    service = np.zeros(demand.shape)

    requests = c * BATCHES
    for node in range(n):
        bytes_nt = demand.dram_bytes[:, node, :]  # (S, c)
        span_nt = demand.compute_time_s[:, node, :]  # (S, c)

        batch_bytes = np.repeat(bytes_nt / BATCHES, BATCHES, axis=1)  # (S, c*B)
        spans = np.repeat(span_nt, BATCHES, axis=1)
        arrivals = rng.uniform(0.0, 1.0, size=(s_iters, requests)) * spans

        # bandwidth term occupies the controller; latency term is exposed
        # at the core but pipelined through the controller.
        bw_service = batch_bytes / bandwidth
        lat_exposure = batch_bytes * lines_per_byte * latency_per_line

        order = np.argsort(arrivals, axis=1, kind="stable")
        sorted_arrivals = np.take_along_axis(arrivals, order, axis=1)
        sorted_service = np.take_along_axis(bw_service, order, axis=1)
        waits = lindley_waits(sorted_arrivals, sorted_service)

        # Real contention interleaves at cache-line granularity, so every
        # thread sees the same *average* queue — the per-iteration total
        # waiting (from the exact Lindley pass over the batch arrival
        # pattern) is attributed to threads in proportion to their traffic.
        total_wait = waits.sum(axis=1, keepdims=True)  # (S, 1)
        bytes_total = bytes_nt.sum(axis=1, keepdims=True)  # (S, 1)
        share = np.divide(
            bytes_nt,
            bytes_total,
            out=np.full_like(bytes_nt, 1.0 / c),
            where=bytes_total > 0,
        )
        wait_nt = total_wait * share  # (S, c)
        # per-thread core-visible service: bandwidth vs latency exposure,
        # whichever binds, summed over the thread's batches
        core_cost = np.maximum(bw_service, lat_exposure)  # (S, c*B)
        service_nt = core_cost.reshape(s_iters, c, BATCHES).sum(axis=2)

        wait[:, node, :] = wait_nt
        service[:, node, :] = service_nt

    exposed = 1.0 - core.memory_overlap
    stall_time = (wait + service) * exposed
    stall_cycles = stall_time * f + demand.cache_stall_cycles
    # cache stalls also consume wall time, at the (possibly throttled)
    # stall-phase frequency
    stall_time_total = stall_time + demand.cache_stall_cycles / f_stall

    return MemoryOutcome(
        stall_time_s=stall_time_total,
        wait_time_s=wait * exposed,
        service_time_s=service * exposed + demand.cache_stall_cycles / f_stall,
        stall_cycles=stall_cycles,
    )
