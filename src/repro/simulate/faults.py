"""Fault injection: degraded-hardware scenarios for the testbed.

Real clusters degrade quietly — a node thermally throttles, a DIMM drops
to a slower speed, a flaky switch port retransmits.  The model then
*disagrees* with measurement by far more than its validation error, which
turns it into a health check (see :mod:`repro.analysis.anomaly`).  This
module provides the injection side:

* :class:`FaultModel` — a straggler node whose execution (compute and
  memory alike, as thermal throttling does) runs slower by a factor;
* :class:`FaultSchedule` — a *seeded* schedule that decides, per run,
  whether a straggler appears and how slow it is;
* :func:`degraded_memory` / :func:`degraded_network` — spec-level
  degradations (a cluster whose DRAM or links run below nameplate),
  applied by rebuilding the `ClusterSpec`.

Every stochastic decision a schedule makes draws through
:func:`schedule_rng`, a named :mod:`repro.rng` stream keyed by the
schedule seed and the decision's identity tokens.  Nothing here touches a
process-local global generator, so a schedule replays bit-identically
across processes and regardless of the order decisions are requested in —
the property the chaos-injection layer (:mod:`repro.resilience.chaos`)
builds on.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro import rng as rng_mod
from repro.machines.spec import ClusterSpec, NetworkSpec


def schedule_rng(seed: int, *tokens: str) -> np.random.Generator:
    """The one generator factory for fault/chaos schedule draws.

    Routes through :func:`repro.rng.derive` so every draw is addressed by
    ``(seed, tokens)`` alone: reproducible across processes, insensitive
    to how many other draws happened first.
    """
    return rng_mod.derive(seed, "fault-schedule", *tokens)


@dataclass(frozen=True)
class FaultModel:
    """Run-time fault configuration.

    ``straggler_node`` picks the victim (ignored if the run uses fewer
    nodes); ``straggler_factor`` multiplies its compute and memory time —
    1.0 means healthy, 1.5 models a node throttled to ~2/3 speed.
    """

    straggler_node: int | None = None
    straggler_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.straggler_factor < 1.0:
            raise ValueError("straggler_factor below 1 would be a speedup")
        if self.straggler_node is not None and self.straggler_node < 0:
            raise ValueError("straggler_node must be non-negative")

    @property
    def active(self) -> bool:
        """True if any fault is configured."""
        return self.straggler_node is not None and self.straggler_factor > 1.0

    @classmethod
    def healthy(cls) -> "FaultModel":
        """No faults."""
        return cls()


@dataclass(frozen=True)
class FaultSchedule:
    """A seeded, replayable schedule of straggler faults across runs.

    ``straggler_p`` is the per-run probability that one node throttles;
    the victim and its slowdown factor are drawn from the same named
    stream.  Because the stream is keyed by the run's identity tokens
    (not by draw order), the same run always sees the same fault — in
    any process, after any number of unrelated draws.
    """

    seed: int
    straggler_p: float = 0.0
    factor_min: float = 1.2
    factor_max: float = 1.8

    def __post_init__(self) -> None:
        if not 0.0 <= self.straggler_p <= 1.0:
            raise ValueError("straggler_p must be a probability")
        if not 1.0 <= self.factor_min <= self.factor_max:
            raise ValueError("need 1 <= factor_min <= factor_max")

    def fault_for(self, nodes: int, *run_tokens: str) -> FaultModel:
        """The fault (possibly none) this schedule assigns to one run."""
        if nodes < 1:
            raise ValueError("nodes must be >= 1")
        if self.straggler_p == 0.0:
            return FaultModel.healthy()
        stream = schedule_rng(self.seed, "straggler", *run_tokens)
        if float(stream.uniform()) >= self.straggler_p:
            return FaultModel.healthy()
        victim = int(stream.integers(0, nodes))
        factor = float(stream.uniform(self.factor_min, self.factor_max))
        if factor <= 1.0:
            return FaultModel.healthy()
        return FaultModel(straggler_node=victim, straggler_factor=factor)


def degraded_memory(spec: ClusterSpec, factor: float) -> ClusterSpec:
    """A cluster whose DRAM runs at ``factor`` of nameplate bandwidth.

    Models a memory subsystem fallback (single-channel operation, slow
    DIMM training).  ``factor`` in (0, 1].
    """
    if not 0 < factor <= 1:
        raise ValueError("memory degradation factor must be in (0, 1]")
    node = replace(spec.node, memory=spec.node.memory.scaled(factor))
    return replace(spec, node=node, name=f"{spec.name}-mem{factor:g}")


def degraded_network(spec: ClusterSpec, factor: float) -> ClusterSpec:
    """A cluster whose links deliver ``factor`` of nameplate throughput.

    Models duplex mismatches / retransmission storms as a bandwidth
    derating of every NIC (the switch fabric keeps its rate — the port
    serves what the link delivers).
    """
    if not 0 < factor <= 1:
        raise ValueError("network degradation factor must be in (0, 1]")
    nic = spec.node.nic
    new_nic = NetworkSpec(
        link_bytes_per_s=nic.link_bytes_per_s * factor,
        per_message_overhead_s=nic.per_message_overhead_s,
        protocol_efficiency=nic.protocol_efficiency,
        cpu_cost_per_message_s=nic.cpu_cost_per_message_s,
        cpu_cost_per_byte_s=nic.cpu_cost_per_byte_s,
        mtu_bytes=nic.mtu_bytes,
    )
    node = replace(spec.node, nic=new_nic)
    return replace(spec, node=node, name=f"{spec.name}-net{factor:g}")
