"""Fault injection: degraded-hardware scenarios for the testbed.

Real clusters degrade quietly — a node thermally throttles, a DIMM drops
to a slower speed, a flaky switch port retransmits.  The model then
*disagrees* with measurement by far more than its validation error, which
turns it into a health check (see :mod:`repro.analysis.anomaly`).  This
module provides the injection side:

* :class:`FaultModel` — a straggler node whose execution (compute and
  memory alike, as thermal throttling does) runs slower by a factor;
* :func:`degraded_memory` / :func:`degraded_network` — spec-level
  degradations (a cluster whose DRAM or links run below nameplate),
  applied by rebuilding the `ClusterSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.machines.spec import ClusterSpec, NetworkSpec


@dataclass(frozen=True)
class FaultModel:
    """Run-time fault configuration.

    ``straggler_node`` picks the victim (ignored if the run uses fewer
    nodes); ``straggler_factor`` multiplies its compute and memory time —
    1.0 means healthy, 1.5 models a node throttled to ~2/3 speed.
    """

    straggler_node: int | None = None
    straggler_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.straggler_factor < 1.0:
            raise ValueError("straggler_factor below 1 would be a speedup")
        if self.straggler_node is not None and self.straggler_node < 0:
            raise ValueError("straggler_node must be non-negative")

    @property
    def active(self) -> bool:
        """True if any fault is configured."""
        return self.straggler_node is not None and self.straggler_factor > 1.0

    @classmethod
    def healthy(cls) -> "FaultModel":
        """No faults."""
        return cls()


def degraded_memory(spec: ClusterSpec, factor: float) -> ClusterSpec:
    """A cluster whose DRAM runs at ``factor`` of nameplate bandwidth.

    Models a memory subsystem fallback (single-channel operation, slow
    DIMM training).  ``factor`` in (0, 1].
    """
    if not 0 < factor <= 1:
        raise ValueError("memory degradation factor must be in (0, 1]")
    node = replace(spec.node, memory=spec.node.memory.scaled(factor))
    return replace(spec, node=node, name=f"{spec.name}-mem{factor:g}")


def degraded_network(spec: ClusterSpec, factor: float) -> ClusterSpec:
    """A cluster whose links deliver ``factor`` of nameplate throughput.

    Models duplex mismatches / retransmission storms as a bandwidth
    derating of every NIC (the switch fabric keeps its rate — the port
    serves what the link delivers).
    """
    if not 0 < factor <= 1:
        raise ValueError("network degradation factor must be in (0, 1]")
    nic = spec.node.nic
    new_nic = NetworkSpec(
        link_bytes_per_s=nic.link_bytes_per_s * factor,
        per_message_overhead_s=nic.per_message_overhead_s,
        protocol_efficiency=nic.protocol_efficiency,
        cpu_cost_per_message_s=nic.cpu_cost_per_message_s,
        cpu_cost_per_byte_s=nic.cpu_cost_per_byte_s,
        mtu_bytes=nic.mtu_bytes,
    )
    node = replace(spec.node, nic=new_nic)
    return replace(spec, node=node, name=f"{spec.name}-net{factor:g}")
