"""Energy accounting: integrate the node power model over phase times.

The simulator knows exactly how long every core spent in each power state
(active, memory-stalled, idle-waiting) and how long the DRAM and NIC were
busy, so energy is an exact integral of the *true* :class:`~repro.machines.
power.NodePowerModel` — unlike the analytical model, which must work from
characterized (perturbed) power tables.  Core active/stall powers are
incremental over the node idle floor; the floor itself is charged for the
full wall time (paper Eq. 12's ``P_sys,idle * T``).
"""

from __future__ import annotations

import numpy as np

from repro.machines.spec import ClusterSpec, Configuration
from repro.simulate.results import ComponentEnergy


def integrate_energy(
    cluster: ClusterSpec,
    config: Configuration,
    wall_time_s: float,
    active_time_per_thread: np.ndarray,
    stall_time_per_thread: np.ndarray,
    net_time_per_process: np.ndarray,
    mem_busy_per_node: np.ndarray,
    stall_frequency_hz: float | None = None,
) -> ComponentEnergy:
    """Integrate true node power over the run's state occupancy.

    Parameters
    ----------
    active_time_per_thread / stall_time_per_thread:
        Shape ``(n, c)`` — total seconds each core spent executing work
        cycles / stalled on memory.
    net_time_per_process:
        Shape ``(n,)`` — total non-overlapped network time per node.
    mem_busy_per_node:
        Shape ``(n,)`` — total seconds the DRAM subsystem serviced requests.
    stall_frequency_hz:
        Phase-aware DVFS: cores stalled on memory are clocked at this
        frequency, so stall power is priced at it.
    """
    power = cluster.node.power
    f = config.frequency_hz
    f_stall = stall_frequency_hz if stall_frequency_hz is not None else f
    n, c = config.nodes, config.cores

    p_act = power.core_active_w(f)
    p_stall = power.core_stall_w(f_stall)

    cpu_active = float(active_time_per_thread.sum()) * p_act
    cpu_stall = float(stall_time_per_thread.sum()) * p_stall

    # shared uncore: powered while any core on the node is busy; busy span
    # per node approximated by the busiest core's occupied time.
    node_busy = (active_time_per_thread + stall_time_per_thread).max(axis=1)
    cpu_active += float(node_busy.sum()) * power.uncore_w(c)

    mem = float(mem_busy_per_node.sum()) * power.mem_active_w
    net = float(net_time_per_process.sum()) * power.net_active_w
    idle = power.sys_idle_w * wall_time_s * n

    return ComponentEnergy(
        cpu_active_j=cpu_active,
        cpu_stall_j=cpu_stall,
        mem_j=mem,
        net_j=net,
        idle_j=idle,
    )
