"""Validation error statistics (paper Table 2's mean and std. dev.)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


def percent_error(predicted: float, measured: float) -> float:
    """Signed prediction error in percent of the measured value."""
    if measured == 0:
        raise ValueError("measured value must be non-zero")
    return 100.0 * (predicted - measured) / measured


@dataclass(frozen=True)
class ErrorSummary:
    """Mean and standard deviation of absolute percent errors.

    Matches Table 2's reporting: the error magnitude averaged over all
    validated configurations, plus its spread.
    """

    mean_abs: float
    std_abs: float
    max_abs: float
    mean_signed: float
    count: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"|err| mean={self.mean_abs:.1f}% std={self.std_abs:.1f}% "
            f"max={self.max_abs:.1f}% (bias {self.mean_signed:+.1f}%, "
            f"n={self.count})"
        )


def summarize_errors(errors_percent: Sequence[float]) -> ErrorSummary:
    """Summarize a set of signed percent errors."""
    arr = np.asarray(list(errors_percent), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("no errors to summarize")
    mags = np.abs(arr)
    return ErrorSummary(
        mean_abs=float(mags.mean()),
        std_abs=float(mags.std()),
        max_abs=float(mags.max()),
        mean_signed=float(arr.mean()),
        count=int(arr.size),
    )
