"""Monte-Carlo uncertainty propagation through the model.

The tornado analysis (:mod:`repro.analysis.sensitivity`) perturbs one
input at a time; this module propagates *joint* input uncertainty into
predictive distributions: each sample draws independent relative errors
for every input group (counters, communication, network, power), rebuilds
the model inputs, and predicts.  The resulting time/energy quantiles are
the error bars a practitioner should put on any single prediction — and
they can be checked against actual measurements (the prediction interval
should cover the measured value at roughly its nominal rate, which an
integration test verifies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro import rng as rng_mod
from repro.analysis.sensitivity import INPUT_GROUPS
from repro.core.model import HybridProgramModel
from repro.machines.spec import Configuration

#: Default 1-sigma relative uncertainties per input group, set from the
#: instrument error models in :mod:`repro.measure` (PMU multiplexing ~1%,
#: comm-law fit ~2%, NetPIPE ~2%, power characterization ~3-5%).
DEFAULT_SIGMAS: dict[str, float] = {
    "work cycles (w_s)": 0.015,
    "non-memory stalls (b_s)": 0.02,
    "memory stalls (m_s)": 0.03,
    "CPU utilization (U_s)": 0.01,
    "message count (eta)": 0.02,
    "comm volume": 0.02,
    "network bandwidth (B)": 0.02,
    "active power (P_act)": 0.04,
    "stall power (P_stall)": 0.05,
    "memory power (P_mem)": 0.03,
    "network power (P_net)": 0.05,
    "idle power (P_idle)": 0.02,
}


@dataclass(frozen=True)
class PredictiveDistribution:
    """Sampled predictive distribution at one configuration."""

    config: Configuration
    times_s: np.ndarray
    energies_j: np.ndarray

    def time_quantile(self, q: float) -> float:
        """Quantile of the time distribution."""
        return float(np.quantile(self.times_s, q))

    def energy_quantile(self, q: float) -> float:
        """Quantile of the energy distribution."""
        return float(np.quantile(self.energies_j, q))

    def time_interval(self, coverage: float = 0.9) -> tuple[float, float]:
        """Central prediction interval for time."""
        tail = (1.0 - coverage) / 2.0
        return self.time_quantile(tail), self.time_quantile(1.0 - tail)

    def energy_interval(self, coverage: float = 0.9) -> tuple[float, float]:
        """Central prediction interval for energy."""
        tail = (1.0 - coverage) / 2.0
        return self.energy_quantile(tail), self.energy_quantile(1.0 - tail)

    @property
    def time_cv(self) -> float:
        """Coefficient of variation of the predicted time."""
        return float(self.times_s.std() / self.times_s.mean())

    @property
    def energy_cv(self) -> float:
        """Coefficient of variation of the predicted energy."""
        return float(self.energies_j.std() / self.energies_j.mean())


def propagate_uncertainty(
    model: HybridProgramModel,
    config: Configuration,
    samples: int = 200,
    sigmas: Mapping[str, float] | None = None,
    class_name: str | None = None,
    root_seed: int = rng_mod.DEFAULT_ROOT_SEED,
) -> PredictiveDistribution:
    """Sample the predictive distribution at one configuration.

    Each sample scales every input group by an independent lognormal
    factor with the group's sigma (lognormal keeps scales positive and is
    symmetric in log space).
    """
    if samples < 2:
        raise ValueError("need at least two samples")
    sigma_map = dict(DEFAULT_SIGMAS)
    if sigmas:
        unknown = set(sigmas) - set(INPUT_GROUPS)
        if unknown:
            raise ValueError(f"unknown input groups: {sorted(unknown)}")
        sigma_map.update(sigmas)

    rng = rng_mod.derive(
        root_seed, "uncertainty", model.inputs.cluster, model.inputs.program,
        config.label(),
    )
    times = np.empty(samples)
    energies = np.empty(samples)
    groups = list(INPUT_GROUPS.items())
    for i in range(samples):
        inputs = model.inputs
        for name, transform in groups:
            factor = float(rng.lognormal(0.0, sigma_map[name]))
            inputs = transform(inputs, factor)
        pred = model.with_inputs(inputs).predict(config, class_name)
        times[i] = pred.time_s
        energies[i] = pred.energy_j
    return PredictiveDistribution(
        config=config, times_s=times, energies_j=energies
    )
