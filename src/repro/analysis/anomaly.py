"""Model-based cluster health checks (anomaly detection).

A validated model doubles as a performance regression detector: measure a
few canary configurations, compare against predictions, and flag
deviations beyond the model's validation error band.  Because the model
is white-box, the *pattern* of deviations localizes the fault class:

* a throttled (straggler) node inflates every multi-node measurement but
  leaves the single-node canary on another node untouched — and hits
  compute-bound and memory-bound canaries alike;
* a degraded memory subsystem inflates memory-bound canaries much more
  than compute-bound ones;
* degraded links inflate only the multi-node, communication-heavy
  canaries.

:func:`health_check` runs the canaries; :func:`diagnose` applies the
pattern rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.model import HybridProgramModel
from repro.machines.spec import Configuration
from repro.measure.timecmd import measure_wall_time
from repro.simulate.cluster import SimulatedCluster


@dataclass(frozen=True)
class CanaryResult:
    """One canary configuration's measured-vs-expected outcome."""

    config: Configuration
    expected_time_s: float
    measured_time_s: float
    threshold: float

    @property
    def deviation(self) -> float:
        """Relative measured-over-expected excess (positive = slower)."""
        return self.measured_time_s / self.expected_time_s - 1.0

    @property
    def flagged(self) -> bool:
        """True when the deviation exceeds the health threshold."""
        return self.deviation > self.threshold


@dataclass(frozen=True)
class HealthReport:
    """All canaries of one health check."""

    canaries: tuple[CanaryResult, ...]

    @property
    def healthy(self) -> bool:
        """True when no canary is flagged."""
        return not any(c.flagged for c in self.canaries)

    @property
    def worst(self) -> CanaryResult:
        """The canary with the largest deviation."""
        return max(self.canaries, key=lambda c: c.deviation)


def health_check(
    model: HybridProgramModel,
    testbed: SimulatedCluster,
    configs: Sequence[Configuration],
    threshold: float = 0.15,
    repetitions: int = 2,
    class_name: str | None = None,
) -> HealthReport:
    """Run canary configurations and compare against model predictions.

    ``threshold`` should sit above the model's validation error for the
    canary set (the paper's 15% bound is the natural default).
    """
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    canaries = []
    for cfg in configs:
        measured = float(
            np.mean(
                [
                    measure_wall_time(r)
                    for r in testbed.run_many(
                        model.program, cfg, class_name, repetitions=repetitions
                    )
                ]
            )
        )
        canaries.append(
            CanaryResult(
                config=cfg,
                expected_time_s=model.predict(cfg, class_name).time_s,
                measured_time_s=measured,
                threshold=threshold,
            )
        )
    return HealthReport(canaries=tuple(canaries))


def diagnose(
    single_node: HealthReport,
    multi_node: HealthReport,
) -> str:
    """Classify the fault from the canary pattern.

    ``single_node`` holds single-node canaries (which cannot see network
    faults and, on a multi-node cluster, may dodge a straggler);
    ``multi_node`` holds multi-node canaries.  Returns one of
    ``"healthy"``, ``"node-local slowdown"``, ``"cluster-wide slowdown"``
    or ``"interconnect degradation"``.
    """
    single_bad = not single_node.healthy
    multi_bad = not multi_node.healthy
    if not single_bad and not multi_bad:
        return "healthy"
    if single_bad and multi_bad:
        return "cluster-wide slowdown"
    if multi_bad and not single_bad:
        # the single-node canary is clean: either a straggler elsewhere or
        # the interconnect; a straggler drags *all* multi-node canaries,
        # while link problems track communication share — without per-
        # canary metadata the safe call is the superset label
        return "node-local slowdown or interconnect degradation"
    return "node-local slowdown"
