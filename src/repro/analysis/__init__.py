"""Validation and reporting: measured-vs-predicted campaigns (paper §IV)
and the text rendering of the paper's tables and figures."""

from repro.analysis.errors import ErrorSummary, percent_error, summarize_errors
from repro.analysis.validation import (
    ValidationCampaign,
    ValidationRecord,
    validate_program,
)
from repro.analysis.report import ascii_table, format_series
from repro.analysis.figures import ascii_chart
from repro.analysis.compare import ClusterComparison, LabeledPrediction
from repro.analysis.sensitivity import Sensitivity, render_tornado, tornado
from repro.analysis.uncertainty import PredictiveDistribution, propagate_uncertainty
from repro.analysis.anomaly import HealthReport, diagnose, health_check
from repro.analysis.regression import RegressionVerdict, compare_campaigns

__all__ = [
    "ClusterComparison",
    "LabeledPrediction",
    "Sensitivity",
    "tornado",
    "render_tornado",
    "PredictiveDistribution",
    "propagate_uncertainty",
    "HealthReport",
    "health_check",
    "diagnose",
    "RegressionVerdict",
    "compare_campaigns",
    "ErrorSummary",
    "percent_error",
    "summarize_errors",
    "ValidationCampaign",
    "ValidationRecord",
    "validate_program",
    "ascii_table",
    "format_series",
    "ascii_chart",
]
