"""Plain-text table/series rendering for benches, examples and the CLI."""

from __future__ import annotations

from typing import Sequence


def ascii_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table.

    Cells are stringified; numeric alignment is right, text is left.
    """
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(headers[i])
        for i in range(len(headers))
    ]
    numeric = [
        all(_is_number(r[i]) for r in str_rows) if str_rows else False
        for i in range(len(headers))
    ]

    def render_row(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            parts.append(cell.rjust(widths[i]) if numeric[i] else cell.ljust(widths[i]))
        return "| " + " | ".join(parts) + " |"

    sep = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    lines = []
    if title:
        lines.append(title)
    lines.append(sep)
    lines.append(render_row(list(headers)))
    lines.append(sep)
    lines.extend(render_row(r) for r in str_rows)
    lines.append(sep)
    return "\n".join(lines)


def format_series(
    name: str, xs: Sequence[object], ys: Sequence[float], unit: str = ""
) -> str:
    """Render an (x, y) series as aligned columns (a figure's data)."""
    lines = [f"# {name}" + (f" [{unit}]" if unit else "")]
    for x, y in zip(xs, ys):
        lines.append(f"{_fmt(x):>14}  {y:>12.4g}")
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3g}"
        return f"{value:.2f}".rstrip("0").rstrip(".")
    return str(value)


def _is_number(text: str) -> bool:
    try:
        float(text)
        return True
    except ValueError:
        return False
