"""Campaign-to-campaign regression tracking.

Model accuracy is an asset worth guarding in CI: a change to the model
(or to a machine/workload constant) should not silently degrade the
validation errors.  With :mod:`repro.io`'s campaign persistence, a
baseline campaign can be committed and every build compared against it:

    baseline = load_campaign("baseline_sp_xeon.json")
    current  = validate_program(...)
    verdict  = compare_campaigns(baseline, current)

The comparison is per-configuration (paired), so it detects localized
regressions that aggregate means smear out.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.validation import ValidationCampaign


@dataclass(frozen=True)
class RegressionVerdict:
    """Outcome of comparing a campaign against its baseline."""

    baseline_mean_abs: float
    current_mean_abs: float
    mean_delta: float
    worst_config: str
    worst_delta: float
    regressed: bool

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        status = "REGRESSED" if self.regressed else "ok"
        return (
            f"[{status}] mean |err| {self.baseline_mean_abs:.1f}% -> "
            f"{self.current_mean_abs:.1f}% (delta {self.mean_delta:+.1f}pp); "
            f"worst {self.worst_config}: {self.worst_delta:+.1f}pp"
        )


def compare_campaigns(
    baseline: ValidationCampaign,
    current: ValidationCampaign,
    quantity: str = "time",
    mean_tolerance_pp: float = 1.0,
    point_tolerance_pp: float = 5.0,
) -> RegressionVerdict:
    """Compare two campaigns of the same program/cluster, paired by config.

    Flags a regression when the mean absolute error worsens by more than
    ``mean_tolerance_pp`` percentage points, or any single configuration
    worsens by more than ``point_tolerance_pp``.
    """
    if quantity not in ("time", "energy"):
        raise ValueError("quantity must be 'time' or 'energy'")
    if (baseline.program, baseline.cluster) != (current.program, current.cluster):
        raise ValueError(
            "campaigns target different program/cluster pairs: "
            f"{(baseline.program, baseline.cluster)} vs "
            f"{(current.program, current.cluster)}"
        )

    def err(record) -> float:
        return abs(
            record.time_error_percent
            if quantity == "time"
            else record.energy_error_percent
        )

    base_by_cfg = {r.config: err(r) for r in baseline.records}
    cur_by_cfg = {r.config: err(r) for r in current.records}
    shared = sorted(
        set(base_by_cfg) & set(cur_by_cfg),
        key=lambda c: (c.nodes, c.cores, c.frequency_hz),
    )
    if not shared:
        raise ValueError("campaigns share no configurations")

    base_errs = np.array([base_by_cfg[c] for c in shared])
    cur_errs = np.array([cur_by_cfg[c] for c in shared])
    deltas = cur_errs - base_errs
    worst_idx = int(np.argmax(deltas))

    mean_delta = float(cur_errs.mean() - base_errs.mean())
    regressed = (
        mean_delta > mean_tolerance_pp
        or float(deltas[worst_idx]) > point_tolerance_pp
    )
    return RegressionVerdict(
        baseline_mean_abs=float(base_errs.mean()),
        current_mean_abs=float(cur_errs.mean()),
        mean_delta=mean_delta,
        worst_config=shared[worst_idx].label(),
        worst_delta=float(deltas[worst_idx]),
        regressed=regressed,
    )
