"""ASCII chart rendering — terminal-friendly versions of the paper's plots.

Benchmarks regenerate each figure's *data*; these helpers additionally draw
a rough chart so the shape (crossovers, frontiers, plateaus) is visible in
the bench output without any plotting dependency.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np


def ascii_chart(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 72,
    height: int = 18,
    logx: bool = False,
    logy: bool = False,
    marks: Sequence[str] | None = None,
    title: str | None = None,
    xlabel: str = "",
    ylabel: str = "",
) -> str:
    """Render a scatter/line chart as ASCII.

    ``marks`` can tag each point with its own glyph (e.g. ``"*"`` for
    Pareto-optimal points and ``"."`` for dominated ones).
    """
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    if xs.size == 0 or xs.shape != ys.shape:
        raise ValueError("xs and ys must be non-empty and equal length")
    if marks is not None and len(marks) != xs.size:
        raise ValueError("marks must align with the points")

    def transform(v: np.ndarray, log: bool) -> np.ndarray:
        if log:
            if np.any(v <= 0):
                raise ValueError("log axis requires positive values")
            return np.log10(v)
        return v

    tx = transform(xs, logx)
    ty = transform(ys, logy)
    x_lo, x_hi = float(tx.min()), float(tx.max())
    y_lo, y_hi = float(ty.min()), float(ty.max())
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for i in range(xs.size):
        col = int(round((tx[i] - x_lo) / x_span * (width - 1)))
        row = int(round((ty[i] - y_lo) / y_span * (height - 1)))
        glyph = marks[i] if marks is not None else "o"
        current = grid[height - 1 - row][col]
        # Pareto stars win collisions so the frontier stays visible.
        if current == " " or glyph == "*":
            grid[height - 1 - row][col] = glyph

    def label(v: float, log: bool) -> str:
        raw = 10**v if log else v
        return f"{raw:.3g}"

    lines = []
    if title:
        lines.append(title)
    top = f"{label(y_hi, logy)} {ylabel}".rstrip()
    lines.append(top)
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(
        f"{label(x_lo, logx)}"
        + " " * max(1, width - len(label(x_lo, logx)) - len(label(x_hi, logx)))
        + f"{label(x_hi, logx)}  {xlabel}"
    )
    lines.append(f"(y min: {label(y_lo, logy)})")
    return "\n".join(lines)


def log_ticks(lo: float, hi: float) -> list[float]:
    """Decade tick positions covering [lo, hi] (for axis annotations)."""
    if lo <= 0 or hi < lo:
        raise ValueError("need 0 < lo <= hi")
    first = math.floor(math.log10(lo))
    last = math.ceil(math.log10(hi))
    return [10.0**k for k in range(first, last + 1)]
