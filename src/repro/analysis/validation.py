"""Measured-vs-predicted validation campaigns (paper §IV).

A campaign mirrors the paper's procedure exactly:

1. characterize the program on the cluster (baseline sweep, mpiP, NetPIPE,
   power micro-benchmarks) and build the analytical model;
2. for every configuration in the validation space, *measure* execution
   time (``time`` command) and energy (WattsUp meter) as the mean over
   repeated runs;
3. predict both with the model and record the percent errors.

The result feeds Table 2 (error summary per program and cluster) and
Figs. 5-7 (measured-vs-predicted series).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro import obs
from repro.analysis.errors import ErrorSummary, percent_error, summarize_errors
from repro.core.configspace import ConfigSpace
from repro.core.model import HybridProgramModel
from repro.machines.spec import Configuration
from repro.measure.timecmd import measure_wall_time
from repro.measure.wattsup import read_meter
from repro.simulate.cluster import SimulatedCluster
from repro.workloads.base import HybridProgram


@dataclass(frozen=True)
class ValidationRecord:
    """Measured vs predicted values at one configuration.

    ``predicted_saturated`` carries the model's saturation flag: the
    Eq. 5 fixed point converged with the switch load clamped at
    :data:`repro.mg1.RHO_MAX`, so the prediction is a capacity-limited
    extrapolation.  Error summaries keep such records but they can be
    excluded via :meth:`ValidationCampaign.stable_records`.
    """

    program: str
    cluster: str
    class_name: str
    config: Configuration
    measured_time_s: float
    measured_energy_j: float
    predicted_time_s: float
    predicted_energy_j: float
    predicted_saturated: bool = False

    @property
    def time_error_percent(self) -> float:
        """Signed time prediction error (%)."""
        return percent_error(self.predicted_time_s, self.measured_time_s)

    @property
    def energy_error_percent(self) -> float:
        """Signed energy prediction error (%)."""
        return percent_error(self.predicted_energy_j, self.measured_energy_j)


@dataclass(frozen=True)
class ValidationCampaign:
    """All records of one program × cluster validation."""

    program: str
    cluster: str
    records: tuple[ValidationRecord, ...]

    @property
    def time_errors(self) -> ErrorSummary:
        """Summary of time errors (a Table 2 cell pair)."""
        return summarize_errors([r.time_error_percent for r in self.records])

    @property
    def energy_errors(self) -> ErrorSummary:
        """Summary of energy errors (a Table 2 cell pair)."""
        return summarize_errors([r.energy_error_percent for r in self.records])

    def stable_records(self) -> list[ValidationRecord]:
        """Records whose prediction did not hit the saturation clamp."""
        return [r for r in self.records if not r.predicted_saturated]

    def saturated_records(self) -> list[ValidationRecord]:
        """Records flagged saturated (capacity-limited extrapolations)."""
        return [r for r in self.records if r.predicted_saturated]

    def select(self, **axes: Iterable[float]) -> list[ValidationRecord]:
        """Filter records by configuration axes (nodes / cores / frequency).

        Example: ``campaign.select(nodes=[2, 4, 8], cores=[1, 4, 8])``.
        """
        records = list(self.records)
        if "nodes" in axes:
            wanted = set(axes["nodes"])
            records = [r for r in records if r.config.nodes in wanted]
        if "cores" in axes:
            wanted = set(axes["cores"])
            records = [r for r in records if r.config.cores in wanted]
        if "frequency_hz" in axes:
            wanted = list(axes["frequency_hz"])
            records = [
                r
                for r in records
                if any(abs(r.config.frequency_hz - f) < 1e-3 for f in wanted)
            ]
        return records


def measure_configuration(
    cluster: SimulatedCluster,
    program: HybridProgram,
    config: Configuration,
    class_name: str | None = None,
    repetitions: int = 3,
) -> tuple[float, float]:
    """Measured (time, energy) at one configuration: mean over runs."""
    runs = cluster.run_many(program, config, class_name, repetitions=repetitions)
    times = [measure_wall_time(r) for r in runs]
    energies = [read_meter(r).energy_j for r in runs]
    return float(np.mean(times)), float(np.mean(energies))


def validate_program(
    cluster: SimulatedCluster,
    program: HybridProgram,
    space: ConfigSpace | Sequence[Configuration] | None = None,
    class_name: str | None = None,
    repetitions: int = 3,
    model: HybridProgramModel | None = None,
) -> ValidationCampaign:
    """Run a full validation campaign for one program on one cluster."""
    cls = class_name or program.reference_class
    if model is None:
        model = HybridProgramModel.from_measurements(cluster, program)
    configs = list(space if space is not None else ConfigSpace.validation(cluster.spec))
    with obs.span(
        "validate_program",
        program=program.name,
        cluster=cluster.spec.name,
        configs=len(configs),
    ):
        records = []
        for config in configs:
            t_meas, e_meas = measure_configuration(
                cluster, program, config, cls, repetitions=repetitions
            )
            pred = model.predict(config, cls)
            records.append(
                ValidationRecord(
                    program=program.name,
                    cluster=cluster.spec.name,
                    class_name=cls,
                    config=config,
                    measured_time_s=t_meas,
                    measured_energy_j=e_meas,
                    predicted_time_s=pred.time_s,
                    predicted_energy_j=pred.energy_j,
                    predicted_saturated=pred.time.saturated,
                )
            )
        return ValidationCampaign(
            program=program.name,
            cluster=cluster.spec.name,
            records=tuple(records),
        )
