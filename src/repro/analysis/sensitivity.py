"""Input-sensitivity (tornado) analysis of the model (paper §IV-C, swept).

The paper discusses three sources of inaccuracy qualitatively; this module
quantifies how uncertainty in *each* model input propagates into the
time/energy predictions: every input group is perturbed by ±δ around its
measured value and the prediction swing recorded.  Sorting by swing gives
the classic tornado diagram — which tells an experimenter where better
measurement effort pays (e.g. on the ARM node, stall power barely matters
next to memory-stall cycles).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from repro.core.model import HybridProgramModel
from repro.core.params import ModelInputs, NetworkCharacteristics
from repro.machines.spec import Configuration


def _scale_baseline(inputs: ModelInputs, field: str, factor: float) -> ModelInputs:
    new_baseline = {
        key: replace(art, **{field: getattr(art, field) * factor})
        for key, art in inputs.baseline.items()
    }
    return replace(inputs, baseline=new_baseline)


def _scale_utilization(inputs: ModelInputs, factor: float) -> ModelInputs:
    new_baseline = {
        key: replace(art, utilization=min(1.0, art.utilization * factor))
        for key, art in inputs.baseline.items()
    }
    return replace(inputs, baseline=new_baseline)


def _scale_comm(inputs: ModelInputs, field: str, factor: float) -> ModelInputs:
    return replace(
        inputs,
        comm=replace(inputs.comm, **{field: getattr(inputs.comm, field) * factor}),
    )


def _scale_bandwidth(inputs: ModelInputs, factor: float) -> ModelInputs:
    net = inputs.network
    return replace(
        inputs,
        network=NetworkCharacteristics(
            bandwidth_bytes_per_s=net.bandwidth_bytes_per_s * factor,
            latency_floor_s=net.latency_floor_s,
        ),
    )


def _scale_power(inputs: ModelInputs, field: str, factor: float) -> ModelInputs:
    power = inputs.power
    if field == "core_active_w":
        new = replace(
            power, core_active_w={k: v * factor for k, v in power.core_active_w.items()}
        )
    elif field == "core_stall_w":
        new = replace(
            power, core_stall_w={k: v * factor for k, v in power.core_stall_w.items()}
        )
    else:
        new = replace(power, **{field: getattr(power, field) * factor})
    return replace(inputs, power=new)


#: The perturbable input groups: name -> transformation(inputs, factor).
INPUT_GROUPS: dict[str, Callable[[ModelInputs, float], ModelInputs]] = {
    "work cycles (w_s)": lambda i, k: _scale_baseline(i, "work_cycles", k),
    "non-memory stalls (b_s)": lambda i, k: _scale_baseline(
        i, "nonmem_stall_cycles", k
    ),
    "memory stalls (m_s)": lambda i, k: _scale_baseline(i, "mem_stall_cycles", k),
    "CPU utilization (U_s)": _scale_utilization,
    "message count (eta)": lambda i, k: _scale_comm(i, "eta_ref", k),
    "comm volume": lambda i, k: _scale_comm(i, "volume_ref", k),
    "network bandwidth (B)": _scale_bandwidth,
    "active power (P_act)": lambda i, k: _scale_power(i, "core_active_w", k),
    "stall power (P_stall)": lambda i, k: _scale_power(i, "core_stall_w", k),
    "memory power (P_mem)": lambda i, k: _scale_power(i, "mem_w", k),
    "network power (P_net)": lambda i, k: _scale_power(i, "net_w", k),
    "idle power (P_idle)": lambda i, k: _scale_power(i, "sys_idle_w", k),
}


@dataclass(frozen=True)
class Sensitivity:
    """Prediction swing for one input group perturbed by ±δ."""

    parameter: str
    time_low_s: float
    time_high_s: float
    energy_low_j: float
    energy_high_j: float
    base_time_s: float
    base_energy_j: float

    @property
    def time_swing(self) -> float:
        """Relative time swing across the ±δ interval."""
        return (self.time_high_s - self.time_low_s) / self.base_time_s

    @property
    def energy_swing(self) -> float:
        """Relative energy swing across the ±δ interval."""
        return (self.energy_high_j - self.energy_low_j) / self.base_energy_j


def tornado(
    model: HybridProgramModel,
    config: Configuration,
    delta: float = 0.10,
    class_name: str | None = None,
) -> list[Sensitivity]:
    """Tornado analysis: per-input ±δ prediction swings, largest first.

    Sorted by energy swing (the paper's energy predictions are the ones
    the §IV-C error sources threaten most).
    """
    if not 0 < delta < 1:
        raise ValueError("delta must be in (0, 1)")
    base = model.predict(config, class_name)
    results = []
    for name, transform in INPUT_GROUPS.items():
        lo = model.with_inputs(transform(model.inputs, 1.0 - delta)).predict(
            config, class_name
        )
        hi = model.with_inputs(transform(model.inputs, 1.0 + delta)).predict(
            config, class_name
        )
        t_lo, t_hi = sorted((lo.time_s, hi.time_s))
        e_lo, e_hi = sorted((lo.energy_j, hi.energy_j))
        results.append(
            Sensitivity(
                parameter=name,
                time_low_s=t_lo,
                time_high_s=t_hi,
                energy_low_j=e_lo,
                energy_high_j=e_hi,
                base_time_s=base.time_s,
                base_energy_j=base.energy_j,
            )
        )
    return sorted(results, key=lambda s: s.energy_swing, reverse=True)


def render_tornado(results: list[Sensitivity], width: int = 40) -> str:
    """Render tornado bars (energy swing) as ASCII."""
    if not results:
        raise ValueError("nothing to render")
    max_swing = max(s.energy_swing for s in results) or 1.0
    lines = ["tornado: energy swing per ±10% input perturbation"]
    for s in results:
        bar = "#" * max(1, round(width * s.energy_swing / max_swing))
        lines.append(
            f"  {s.parameter:<24} {bar:<{width}} {s.energy_swing:6.1%}"
        )
    return "\n".join(lines)
