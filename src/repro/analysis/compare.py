"""Cross-cluster comparison: which machine for which constraint?

The paper motivates its two validation clusters by their "diverse
time-energy performance": the Xeon nodes are fast but power-hungry, the
ARM nodes slow but frugal.  Given models of the same program on several
clusters, this module answers the procurement-style questions that
diversity raises:

* the **combined Pareto frontier** across all machines — which cluster
  owns which stretch of the time-energy trade-off;
* the **winner for a deadline / an energy budget**;
* the **crossover deadline** — the deadline below which the fast cluster
  is mandatory and above which the frugal one wins on energy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro import obs
from repro.core.configspace import SpaceEvaluation
from repro.core.model import Prediction
from repro.core.pareto import pareto_mask


@dataclass(frozen=True)
class LabeledPrediction:
    """A prediction tagged with the cluster it belongs to."""

    cluster: str
    prediction: Prediction

    @property
    def time_s(self) -> float:
        """Predicted execution time."""
        return self.prediction.time_s

    @property
    def energy_j(self) -> float:
        """Predicted energy."""
        return self.prediction.energy_j


@dataclass(frozen=True)
class ClusterComparison:
    """Joint view over per-cluster space evaluations of one program."""

    evaluations: Mapping[str, SpaceEvaluation]

    def __post_init__(self) -> None:
        if len(self.evaluations) < 2:
            raise ValueError("comparison needs at least two clusters")

    def _all_points(self) -> list[LabeledPrediction]:
        return [
            LabeledPrediction(cluster=name, prediction=p)
            for name, ev in self.evaluations.items()
            for p in ev.predictions
        ]

    def combined_frontier(self) -> list[LabeledPrediction]:
        """Pareto frontier over the union of all clusters' spaces."""
        points = self._all_points()
        with obs.span(
            "combined_frontier",
            clusters=len(self.evaluations),
            points=len(points),
        ):
            times = np.array([p.time_s for p in points])
            energies = np.array([p.energy_j for p in points])
            mask = pareto_mask(times, energies)
            frontier = [p for p, keep in zip(points, mask) if keep]
            return sorted(frontier, key=lambda p: p.time_s)

    def winner_for_deadline(self, deadline_s: float) -> LabeledPrediction | None:
        """Min-energy point across clusters meeting the deadline."""
        feasible = [p for p in self._all_points() if p.time_s <= deadline_s]
        if not feasible:
            return None
        return min(feasible, key=lambda p: p.energy_j)

    def winner_for_budget(self, budget_j: float) -> LabeledPrediction | None:
        """Min-time point across clusters within the energy budget."""
        feasible = [p for p in self._all_points() if p.energy_j <= budget_j]
        if not feasible:
            return None
        return min(feasible, key=lambda p: p.time_s)

    def frontier_share(self) -> dict[str, int]:
        """How many combined-frontier points each cluster owns."""
        share = {name: 0 for name in self.evaluations}
        for point in self.combined_frontier():
            share[point.cluster] += 1
        return share

    def crossover_deadline(self) -> float | None:
        """The deadline at which the winning cluster flips, if it does.

        Scans the combined frontier from tight to loose deadlines; returns
        the time of the first frontier point whose cluster differs from the
        fastest point's cluster, or ``None`` if one cluster owns the whole
        frontier.
        """
        frontier = self.combined_frontier()
        first = frontier[0].cluster
        for point in frontier[1:]:
            if point.cluster != first:
                return point.time_s
        return None
