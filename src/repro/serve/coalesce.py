"""Single-flight request coalescing for the prediction service.

Concurrent queries with the same content fingerprint share one in-flight
computation: the first caller starts it, every later caller awaits the
same task and receives the *same object* — for response bodies, the same
``bytes``, which is what makes coalesced responses bit-identical by
construction rather than by re-serialization.

The coalescer is confined to the event loop (all bookkeeping happens in
coroutines scheduled on one loop), so its state needs no lock.  Awaiting
callers are shielded from each other: one caller's cancellation must not
cancel the shared flight other callers are still waiting on.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable

from repro import obs


class Coalescer:
    """Deduplicate concurrent computations by key (asyncio single-flight)."""

    def __init__(self) -> None:
        """Create an empty coalescer (no flights in progress)."""
        self._inflight: dict[object, asyncio.Task] = {}  # guarded-by: event-loop
        self.flights = 0  # guarded-by: event-loop
        self.merged = 0  # guarded-by: event-loop

    def inflight(self, key: object) -> bool:
        """Whether a flight for ``key`` is currently in progress."""
        return key in self._inflight

    @property
    def inflight_count(self) -> int:
        """Number of distinct flights currently in progress."""
        return len(self._inflight)

    async def get(
        self, key: object, compute: Callable[[], Awaitable[Any]]
    ) -> Any:
        """The result for ``key``, computing it at most once concurrently.

        The first caller for a key launches ``compute()`` as a task;
        callers arriving while it runs await that same task (counted in
        :attr:`merged` and the ``serve.coalesced`` counter).  Once a
        flight finishes — successfully or not — the key is released and
        the next request computes afresh: coalescing is a concurrency
        dedup, not a cache.
        """
        task = self._inflight.get(key)
        if task is None:
            self.flights += 1
            task = asyncio.ensure_future(compute())
            self._inflight[key] = task
            task.add_done_callback(lambda _t: self._inflight.pop(key, None))
        else:
            self.merged += 1
            obs.add("serve.coalesced")
        # Shield: cancelling one awaiting caller must not cancel the
        # flight out from under the others.
        return await asyncio.shield(task)
