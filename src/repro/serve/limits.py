"""Token-bucket admission control for the prediction service.

Two layers guard the query surface.  The **global** bucket caps the
service's total admission rate: tokens refill continuously at ``rate``
per second up to a ``burst`` capacity, each admitted request spends one,
and an empty bucket yields the number of seconds until the next token —
which the HTTP layer renders as ``429`` with a ``Retry-After`` header.
:class:`KeyedTokenBuckets` adds **per-client** fairness on top: one
bucket per client key (``X-Client-Id`` header, else the peer address),
so a single chatty client exhausts its own budget instead of everyone
else's; requests with no derivable key are covered by the global bucket
alone.

Both are used from the event loop only (admission happens before a
request is handed to a worker thread), so they need no lock; the clock
is injectable for deterministic tests.
"""

from __future__ import annotations

import math
import time
from collections import OrderedDict
from typing import Callable


class TokenBucket:
    """A continuously refilling token bucket.

    ``rate`` is the sustained admission rate (tokens per second) and
    ``burst`` the bucket capacity — the largest instantaneous spike
    admitted from a full bucket.  A ``rate`` of 0 disables limiting
    entirely (every :meth:`try_acquire` succeeds).
    """

    def __init__(
        self,
        rate: float,
        burst: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        """Create a bucket admitting ``rate``/s with ``burst`` capacity."""
        if rate < 0:
            raise ValueError("rate must be >= 0 (0 disables limiting)")
        self.rate = float(rate)
        self.capacity = float(burst) if burst is not None else max(1.0, self.rate)
        if self.rate > 0 and self.capacity < 1.0:
            raise ValueError("burst must admit at least one request")
        self._clock = clock
        self._tokens = self.capacity  # guarded-by: event-loop
        self._refilled_at = clock()  # guarded-by: event-loop

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._refilled_at
        self._refilled_at = now
        if elapsed > 0:
            self._tokens = min(self.capacity, self._tokens + elapsed * self.rate)

    def try_acquire(self, n: float = 1.0) -> float:
        """Spend ``n`` tokens; 0.0 on success, else seconds until refill.

        A non-zero return means the request must be rejected now and may
        be retried after that many seconds (the 429 ``Retry-After``).
        """
        if self.rate == 0:
            return 0.0
        self._refill()
        if self._tokens >= n:
            self._tokens -= n
            return 0.0
        return (n - self._tokens) / self.rate

    def retry_after_header(self, wait_s: float) -> str:
        """``Retry-After`` header value for a rejected request."""
        return str(max(1, math.ceil(wait_s)))

    @property
    def tokens(self) -> float:
        """Tokens available right now (refreshes the refill clock)."""
        self._refill()
        return self._tokens


#: Per-client bucket table bound — oldest-used buckets are evicted past
#: this (an evicted client simply starts over with a full bucket).
DEFAULT_MAX_CLIENTS = 1024


class KeyedTokenBuckets:
    """One :class:`TokenBucket` per client key, LRU-bounded.

    Every key gets an independent bucket with the same ``rate``/``burst``
    the moment it first appears; the table keeps at most ``max_clients``
    buckets, evicting the least recently used.  A ``rate`` of 0 disables
    per-client limiting entirely.
    """

    def __init__(
        self,
        rate: float,
        burst: float | None = None,
        clock: Callable[[], float] = time.monotonic,
        max_clients: int = DEFAULT_MAX_CLIENTS,
    ) -> None:
        """Configure the per-key bucket template and the table bound."""
        if rate < 0:
            raise ValueError("rate must be >= 0 (0 disables limiting)")
        if max_clients < 1:
            raise ValueError("max_clients must be >= 1")
        self.rate = float(rate)
        self.burst = burst
        self._clock = clock
        self.max_clients = max_clients
        self._buckets: OrderedDict[str, TokenBucket] = (
            OrderedDict()
        )  # guarded-by: event-loop

    def bucket(self, key: str) -> TokenBucket:
        """The (possibly new) bucket for ``key``, marked recently used."""
        b = self._buckets.get(key)
        if b is None:
            b = TokenBucket(self.rate, self.burst, clock=self._clock)
            self._buckets[key] = b
        self._buckets.move_to_end(key)
        while len(self._buckets) > self.max_clients:
            self._buckets.popitem(last=False)
        return b

    def try_acquire(self, key: str | None, n: float = 1.0) -> float:
        """Spend ``n`` of ``key``'s tokens; 0.0 admits, else retry-after.

        ``None`` (no derivable client identity) always admits — such
        requests are governed by the service-wide bucket alone.
        """
        if self.rate == 0 or key is None:
            return 0.0
        return self.bucket(key).try_acquire(n)

    def retry_after_header(self, wait_s: float) -> str:
        """``Retry-After`` header value for a rejected request."""
        return str(max(1, math.ceil(wait_s)))

    def __len__(self) -> int:
        """How many client buckets are currently tracked."""
        return len(self._buckets)
