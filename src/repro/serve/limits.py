"""Token-bucket admission control for the prediction service.

One bucket guards the whole query surface: tokens refill continuously at
``rate`` per second up to a ``burst`` capacity, each admitted request
spends one, and an empty bucket yields the number of seconds until the
next token — which the HTTP layer renders as ``429`` with a
``Retry-After`` header.

The bucket is used from the event loop only (admission happens before a
request is handed to a worker thread), so it needs no lock; the clock is
injectable for deterministic tests.
"""

from __future__ import annotations

import math
import time
from typing import Callable


class TokenBucket:
    """A continuously refilling token bucket.

    ``rate`` is the sustained admission rate (tokens per second) and
    ``burst`` the bucket capacity — the largest instantaneous spike
    admitted from a full bucket.  A ``rate`` of 0 disables limiting
    entirely (every :meth:`try_acquire` succeeds).
    """

    def __init__(
        self,
        rate: float,
        burst: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        """Create a bucket admitting ``rate``/s with ``burst`` capacity."""
        if rate < 0:
            raise ValueError("rate must be >= 0 (0 disables limiting)")
        self.rate = float(rate)
        self.capacity = float(burst) if burst is not None else max(1.0, self.rate)
        if self.rate > 0 and self.capacity < 1.0:
            raise ValueError("burst must admit at least one request")
        self._clock = clock
        self._tokens = self.capacity
        self._refilled_at = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._refilled_at
        self._refilled_at = now
        if elapsed > 0:
            self._tokens = min(self.capacity, self._tokens + elapsed * self.rate)

    def try_acquire(self, n: float = 1.0) -> float:
        """Spend ``n`` tokens; 0.0 on success, else seconds until refill.

        A non-zero return means the request must be rejected now and may
        be retried after that many seconds (the 429 ``Retry-After``).
        """
        if self.rate == 0:
            return 0.0
        self._refill()
        if self._tokens >= n:
            self._tokens -= n
            return 0.0
        return (n - self._tokens) / self.rate

    def retry_after_header(self, wait_s: float) -> str:
        """``Retry-After`` header value for a rejected request."""
        return str(max(1, math.ceil(wait_s)))

    @property
    def tokens(self) -> float:
        """Tokens available right now (refreshes the refill clock)."""
        self._refill()
        return self._tokens
