"""Request schemas for the prediction service.

Every POST endpoint receives a JSON object and parses it into a frozen
:class:`Query`.  Parsing is *strict* — unknown keys, wrong types and
out-of-range values are :class:`SchemaError`\\ s (HTTP 400), never
silently ignored — so that a query's :meth:`Query.identity` document is
canonical: two requests that mean the same thing produce the same
identity, hence the same fingerprint, hence one coalesced computation
and one cached response.

Frequencies cross the API boundary in GHz (the human unit the paper and
the CLI use) and are converted exactly once, through
:func:`repro.units.ghz` / :func:`repro.units.to_ghz`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.machines.registry import list_clusters
from repro.resilience.checkpoint import fingerprint
from repro.units import ghz
from repro.workloads.registry import list_programs

#: POST endpoints the service answers (path suffix under ``/v1/``).
ENDPOINTS = ("evaluate_space", "search", "pareto", "whatif", "ucr")

#: Named configuration spaces (beyond an explicit grid).
SPACE_NAMES = ("physical", "pareto")

#: Queueing variants, mirroring :func:`repro.core.vectorized.evaluate_configs`.
QUEUEING_VARIANTS = ("bracketed", "mg1", "none")

#: Search objectives and the constraint each one requires.
OBJECTIVES = ("min_energy", "min_time")

#: What-if knobs, each a positive scale factor applied to the model.
WHATIF_KNOBS = (
    "memory_bandwidth",
    "network_bandwidth",
    "network_latency",
    "idle_power",
)


class SchemaError(ValueError):
    """A request body failed validation (rendered as HTTP 400)."""


@dataclass(frozen=True)
class Query:
    """One parsed, canonical service query.

    ``space`` is either a name from :data:`SPACE_NAMES` or an explicit
    grid triple ``(nodes, cores, frequencies_hz)`` with frequencies
    already converted to Hz.  ``factors`` is the sorted what-if knob
    table (empty for every other endpoint).
    """

    endpoint: str
    cluster: str
    program: str
    space: str | tuple
    class_name: str | None = None
    queueing: str = "bracketed"
    service_overlap: bool = True
    objective: str | None = None
    deadline_s: float | None = None
    budget_j: float | None = None
    factors: tuple[tuple[str, float], ...] = field(default=())

    def identity(self) -> dict[str, Any]:
        """The JSON-able document this query is fingerprinted on."""
        return {
            "kind": "repro_serve_query",
            "endpoint": self.endpoint,
            "cluster": self.cluster,
            "program": self.program,
            "space": (
                self.space
                if isinstance(self.space, str)
                else [list(axis) for axis in self.space]
            ),
            "class_name": self.class_name,
            "queueing": self.queueing,
            "service_overlap": self.service_overlap,
            "objective": self.objective,
            "deadline_s": self.deadline_s,
            "budget_j": self.budget_j,
            "factors": [list(pair) for pair in self.factors],
        }

    def digest(self) -> str:
        """Content fingerprint of the canonical identity document."""
        return fingerprint(self.identity())


def _require_str(payload: Mapping, key: str, choices: tuple[str, ...]) -> str:
    value = payload.get(key)
    if not isinstance(value, str) or value not in choices:
        raise SchemaError(
            f"{key!r} must be one of {', '.join(choices)} — got {value!r}"
        )
    return value


def _positive_number(value: object, what: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SchemaError(f"{what} must be a number — got {value!r}")
    if not value > 0:
        raise SchemaError(f"{what} must be positive — got {value!r}")
    return float(value)


def _parse_axis(value: object, what: str, integral: bool) -> tuple:
    if not isinstance(value, (list, tuple)) or not value:
        raise SchemaError(f"{what} must be a non-empty list")
    out = []
    for item in value:
        n = _positive_number(item, f"{what} entry")
        if integral:
            if n != int(n):
                raise SchemaError(f"{what} entry must be an integer — got {item!r}")
            out.append(int(n))
        else:
            out.append(n)
    return tuple(out)


def _parse_space(value: object) -> str | tuple:
    if value is None:
        return "physical"
    if isinstance(value, str):
        if value not in SPACE_NAMES:
            raise SchemaError(
                f"'space' must be one of {', '.join(SPACE_NAMES)} or a grid "
                f"object — got {value!r}"
            )
        return value
    if isinstance(value, Mapping):
        unknown = set(value) - {"nodes", "cores", "frequencies_ghz"}
        if unknown:
            raise SchemaError(
                f"unknown grid keys: {', '.join(sorted(map(str, unknown)))}"
            )
        nodes = _parse_axis(value.get("nodes"), "'space.nodes'", integral=True)
        cores = _parse_axis(value.get("cores"), "'space.cores'", integral=True)
        freqs = _parse_axis(
            value.get("frequencies_ghz"), "'space.frequencies_ghz'", integral=False
        )
        return (nodes, cores, tuple(ghz(f) for f in freqs))
    raise SchemaError(f"'space' must be a name or a grid object — got {value!r}")


def _parse_factors(value: object) -> tuple[tuple[str, float], ...]:
    if not isinstance(value, Mapping) or not value:
        raise SchemaError(
            "'factors' must be a non-empty object of "
            f"{{{', '.join(WHATIF_KNOBS)}}} scale factors"
        )
    unknown = set(value) - set(WHATIF_KNOBS)
    if unknown:
        raise SchemaError(
            f"unknown what-if knobs: {', '.join(sorted(map(str, unknown)))}"
        )
    return tuple(
        sorted((k, _positive_number(v, f"factor {k!r}")) for k, v in value.items())
    )


#: Keys every endpoint accepts.
_COMMON_KEYS = {"cluster", "program", "space", "class_name", "queueing",
                "service_overlap"}

#: Extra keys per endpoint.
_EXTRA_KEYS = {
    "evaluate_space": set(),
    "pareto": set(),
    "ucr": set(),
    "search": {"objective", "deadline_s", "budget_j"},
    "whatif": {"factors"},
}


def parse_query(endpoint: str, payload: object) -> Query:
    """Parse one endpoint's JSON body into a canonical :class:`Query`.

    Raises :class:`SchemaError` on any validation failure; the message is
    safe to return to the caller verbatim.
    """
    if endpoint not in ENDPOINTS:
        raise SchemaError(f"unknown endpoint {endpoint!r}")
    if not isinstance(payload, Mapping):
        raise SchemaError("request body must be a JSON object")
    allowed = _COMMON_KEYS | _EXTRA_KEYS[endpoint]
    unknown = set(payload) - allowed
    if unknown:
        raise SchemaError(
            f"unknown keys for {endpoint}: {', '.join(sorted(map(str, unknown)))}"
        )

    cluster = _require_str(payload, "cluster", tuple(list_clusters()))
    program = _require_str(payload, "program", tuple(list_programs()))
    space = _parse_space(payload.get("space"))
    class_name = payload.get("class_name")
    if class_name is not None and not isinstance(class_name, str):
        raise SchemaError(f"'class_name' must be a string — got {class_name!r}")
    queueing = "bracketed"
    if "queueing" in payload:
        queueing = _require_str(payload, "queueing", QUEUEING_VARIANTS)
    service_overlap = payload.get("service_overlap", True)
    if not isinstance(service_overlap, bool):
        raise SchemaError(
            f"'service_overlap' must be a boolean — got {service_overlap!r}"
        )

    objective = deadline_s = budget_j = None
    factors: tuple[tuple[str, float], ...] = ()
    if endpoint == "search":
        objective = _require_str(payload, "objective", OBJECTIVES)
        if objective == "min_energy":
            if "budget_j" in payload:
                raise SchemaError("'budget_j' does not apply to min_energy")
            deadline_s = _positive_number(payload.get("deadline_s"), "'deadline_s'")
        else:
            if "deadline_s" in payload:
                raise SchemaError("'deadline_s' does not apply to min_time")
            budget_j = _positive_number(payload.get("budget_j"), "'budget_j'")
    elif endpoint == "whatif":
        factors = _parse_factors(payload.get("factors"))

    return Query(
        endpoint=endpoint,
        cluster=cluster,
        program=program,
        space=space,
        class_name=class_name,
        queueing=queueing,
        service_overlap=service_overlap,
        objective=objective,
        deadline_s=deadline_s,
        budget_j=budget_j,
        factors=factors,
    )
