"""The prediction-service request core and its asyncio HTTP transport.

:class:`ServeApp` is the transport-independent heart: it routes parsed
HTTP requests to the query endpoints, layers the caching tiers, applies
admission control, and supports a graceful drain.  The surrounding
module provides a minimal HTTP/1.1 server over ``asyncio`` streams — no
framework, no threads for IO — and :func:`run_server`, the blocking
entry point the ``repro serve`` CLI subcommand calls.

Request path for the five query endpoints (``POST /v1/<endpoint>``):

1. **Parse** the JSON body into a canonical
   :class:`~repro.serve.schemas.Query` (strict — unknown keys are 400s).
2. **Admit** through the token bucket; a dry bucket is a 429 with
   ``Retry-After``.
3. **Response LRU**: a hit returns the previously serialized bytes —
   repeated queries are bit-identical by construction.
4. **Coalesce**: concurrent identical queries share one in-flight
   computation keyed by the query's content fingerprint; every waiter
   receives the same bytes object.
5. **Compute** in a worker thread: models are built once per
   ``(cluster, program)``, evaluations check the persistent
   :class:`~repro.core.cache.ResultCache` warm tier before calling the
   vectorized engine, and fresh results are written back to it.

Every stage is observable: spans on each request, counters for
coalescing/caching/admission, and the Prometheus text exposition at
``GET /metrics``.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import math
import signal
import threading
import time
from collections import OrderedDict
from typing import Any, Callable

import numpy as np

from repro import obs
from repro.core.cache import ResultCache, entry_identity
from repro.core.configspace import ConfigSpace
from repro.core.model import HybridProgramModel
from repro.core.pareto import pareto_mask
from repro.core.planner import PlannerConfig, planner_config
from repro.core.vectorized import VectorizedEvaluation, evaluate_configs
from repro.core.whatif import WhatIf
from repro.machines.registry import get_cluster
from repro.serve.coalesce import Coalescer
from repro.serve.limits import KeyedTokenBuckets, TokenBucket
from repro.units import KIB, MIB
from repro.serve.schemas import ENDPOINTS, Query, SchemaError, parse_query
from repro.simulate.cluster import SimulatedCluster
from repro.units import to_ghz
from repro.workloads.registry import get_program

#: Response LRU capacity (serialized bodies; entries are small relative
#: to the evaluations they summarize).
DEFAULT_RESPONSE_CACHE_SIZE = 256

#: Default graceful-drain budget (seconds).
DEFAULT_DRAIN_TIMEOUT_S = 30.0

#: Default size of the bounded engine worker pool.  Engine evaluations
#: are memory-hungry (block-streamed spaces); running one per accepted
#: request on the loop's default executor lets a burst multiply peak
#: memory by the thread cap, so computes go through a dedicated small
#: pool instead and excess flights queue.
DEFAULT_ENGINE_WORKERS = 4

_JSON = "application/json"
_TEXT = "text/plain; version=0.0.4"  # Prometheus exposition content type


class QueryError(Exception):
    """A request that parsed but cannot be answered (client error)."""

    def __init__(self, status: int, message: str) -> None:
        """Record the HTTP ``status`` and client-safe ``message``."""
        super().__init__(message)
        self.status = status
        self.message = message


def canonical_json(doc: Any) -> bytes:
    """Canonical JSON bytes: sorted keys, no whitespace, no NaN/Inf.

    Every cached or coalesced response is serialized exactly once through
    this function, which is what "bit-identical responses" means.
    """
    return json.dumps(
        doc, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")


def _num(value: float) -> float | None:
    """A JSON-safe float: non-finite values become ``null``."""
    f = float(value)
    return f if math.isfinite(f) else None


def _series(values: np.ndarray) -> list:
    """A JSON-safe list from a float array (non-finite become ``null``)."""
    return [_num(v) for v in values]


class _ResponseCache:
    """A tiny LRU over serialized response bodies (event-loop confined)."""

    def __init__(self, maxsize: int) -> None:
        self.maxsize = maxsize
        self._data: OrderedDict[str, bytes] = OrderedDict()

    def get(self, key: str) -> bytes | None:
        body = self._data.get(key)
        if body is not None:
            self._data.move_to_end(key)
        return body

    def put(self, key: str, body: bytes) -> None:
        self._data[key] = body
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def __len__(self) -> int:
        return len(self._data)


class ServeApp:
    """Transport-independent request core of the prediction service.

    One instance owns the model registry, the caching tiers, the
    coalescer and the rate limiter; the HTTP layer (or a test) calls
    :meth:`handle` per request.  Constructing an app enables the global
    metrics registry so endpoint counters and ``/metrics`` work out of
    the box.
    """

    def __init__(
        self,
        cache_dir: str | None = None,
        rate: float = 0.0,
        burst: float | None = None,
        response_cache_size: int = DEFAULT_RESPONSE_CACHE_SIZE,
        clock: Callable[[], float] = time.monotonic,
        plan: str = "auto",
        max_block_bytes: int | None = None,
        client_rate: float = 0.0,
        client_burst: float | None = None,
        engine_workers: int = DEFAULT_ENGINE_WORKERS,
    ) -> None:
        """Wire the caching tiers, limiter and metrics for one service."""
        if engine_workers < 1:
            raise ValueError("engine_workers must be >= 1")
        # Per-query strategy selection (recorded in /metrics as
        # plan_selected_total{strategy=…}).  Scalar is excluded: its
        # results match the vectorized engine only to 1e-9, and response
        # bytes must not depend on which strategy answered a query.
        self._planner_config = PlannerConfig(
            mode=plan, max_block_bytes=max_block_bytes, allow_scalar=False
        )
        self.result_cache = ResultCache(cache_dir) if cache_dir else None
        self.limiter = TokenBucket(rate, burst, clock=clock)
        self.client_limiter = KeyedTokenBuckets(
            client_rate, client_burst, clock=clock
        )
        self.coalescer = Coalescer()
        self.responses = _ResponseCache(
            response_cache_size
        )  # guarded-by: event-loop
        self.registry = (
            obs.get_metrics() if obs.metrics_enabled() else obs.enable_metrics()
        )
        self.engine_calls = 0  # guarded-by: _stats_lock
        self.draining = False  # guarded-by: event-loop
        #: Test hook: called (with the query) in the worker thread right
        #: before an engine evaluation — lets tests hold the first flight
        #: open while concurrent identical requests pile up behind it.
        self.pre_compute: Callable[[Query], None] | None = None
        self._models: dict[
            tuple[str, str], HybridProgramModel
        ] = {}  # guarded-by: _model_lock
        self._specs: dict[str, Any] = {}  # guarded-by: _model_lock
        self._model_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._inflight = 0  # guarded-by: event-loop
        self._idle = asyncio.Event()
        self._idle.set()
        # The bounded worker pool every engine evaluation runs in (the
        # ROADMAP "serve under load" item): back-pressure comes from the
        # pool queue instead of unbounded thread growth.
        self._engine_pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=engine_workers, thread_name_prefix="repro-engine"
        )

    # -- request entry --------------------------------------------------

    async def handle(
        self, method: str, path: str, body: bytes, client: str | None = None
    ) -> tuple[int, str, bytes]:
        """Answer one request: ``(status, content_type, body_bytes)``.

        This is the single obs-instrumented entry point for every
        endpoint (span ``serve_request``); the HTTP transport and the
        tests call it directly.  ``client`` is the per-client limiter key
        the transport derived (``X-Client-Id`` header, else the peer
        address); ``None`` leaves admission to the global bucket alone.
        """
        self._inflight += 1
        self._idle.clear()
        t0 = time.perf_counter()
        try:
            with obs.span("serve_request", method=method, path=path) as sp:
                status, ctype, payload = await self._route(
                    method, path, body, client
                )
                sp.set(status=status)
            obs.add("serve.requests")
            obs.add(f"serve.status.{status}")
            obs.observe("serve.request_seconds", time.perf_counter() - t0)
            return status, ctype, payload
        finally:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.set()

    async def _route(
        self, method: str, path: str, body: bytes, client: str | None = None
    ) -> tuple[int, str, bytes]:
        if path == "/healthz":
            if method != "GET":
                return self._error(405, "use GET")
            status = "draining" if self.draining else "ok"
            return 200, _JSON, canonical_json({"status": status})
        if path == "/metrics":
            if method != "GET":
                return self._error(405, "use GET")
            return 200, _TEXT, self.registry.to_prometheus_text().encode()
        if path.startswith("/v1/"):
            endpoint = path[len("/v1/"):]
            if endpoint not in ENDPOINTS:
                return self._error(404, f"unknown endpoint {endpoint!r}")
            if method != "POST":
                return self._error(405, "use POST")
            return await self._query(endpoint, body, client)
        return self._error(404, f"no route for {path!r}")

    def _error(self, status: int, message: str) -> tuple[int, str, bytes]:
        return status, _JSON, canonical_json({"error": message})

    # -- the query path -------------------------------------------------

    async def _query(
        self, endpoint: str, body: bytes, client: str | None = None
    ) -> tuple[int, str, bytes]:
        if self.draining:
            obs.add("serve.rejected.draining")
            return self._error(503, "server is draining")
        try:
            payload = json.loads(body or b"null")
        except json.JSONDecodeError as exc:
            return self._error(400, f"invalid JSON body: {exc}")
        try:
            query = parse_query(endpoint, payload)
        except SchemaError as exc:
            obs.add("serve.rejected.schema")
            return self._error(400, str(exc))

        wait_s = self.limiter.try_acquire()
        if wait_s > 0:
            obs.add("serve.rejected.rate_limited")
            doc = {"error": "rate limited", "retry_after_s": math.ceil(wait_s)}
            return 429, _JSON, canonical_json(doc)
        client_wait_s = self.client_limiter.try_acquire(client)
        if client_wait_s > 0:
            obs.add("serve.rejected.rate_limited_client")
            doc = {
                "error": "client rate limited",
                "retry_after_s": math.ceil(client_wait_s),
            }
            return 429, _JSON, canonical_json(doc)

        key = query.digest()
        cached = self.responses.get(key)
        if cached is not None:
            obs.add("serve.cache.response_hits")
            return 200, _JSON, cached

        try:
            response = await self.coalescer.get(
                key, lambda: self._compute(query)
            )
        except QueryError as exc:
            return self._error(exc.status, exc.message)
        self.responses.put(key, response)
        return 200, _JSON, response

    async def _compute(self, query: Query) -> bytes:
        """One coalesced flight: evaluate in the engine pool, serialize."""
        loop = asyncio.get_running_loop()
        doc = await loop.run_in_executor(
            self._engine_pool, self._compute_sync, query
        )
        return canonical_json(doc)

    # -- model / evaluation tiers (worker-thread side) ------------------

    def _model_for(self, cluster: str, program: str) -> HybridProgramModel:
        key = (cluster, program)
        with self._model_lock:
            model = self._models.get(key)
            if model is None:
                sim = SimulatedCluster(get_cluster(cluster))
                self._specs[cluster] = sim.spec
                model = HybridProgramModel.from_measurements(
                    sim, get_program(program)
                )
                self._models[key] = model
                obs.add("serve.models_built")
            return model

    def _space_for(self, query: Query) -> ConfigSpace:
        # _model_for populates _specs from concurrent pool threads; an
        # unlocked read here can miss the entry a parallel first-build
        # for the same cluster just wrote.
        with self._model_lock:
            spec = self._specs[query.cluster]
        if query.space == "physical":
            return ConfigSpace.physical(spec)
        if query.space == "pareto":
            if query.cluster == "xeon":
                return ConfigSpace.xeon_pareto(spec)
            return ConfigSpace.arm_pareto(spec)
        nodes, cores, freqs = query.space
        return ConfigSpace(
            node_counts=nodes, core_counts=cores, frequencies_hz=freqs
        )

    def _evaluate(
        self, query: Query, model: HybridProgramModel, space: ConfigSpace
    ) -> VectorizedEvaluation:
        """Warm tier first, then the engine (recorded as an engine call)."""
        cls = query.class_name or model.inputs.baseline_class
        if cls not in model.program.classes:
            raise QueryError(
                400,
                f"unknown input class {cls!r} for {query.program}; "
                f"choose from {', '.join(sorted(model.program.classes))}",
            )
        identity = None
        if self.result_cache is not None:
            identity = entry_identity(
                model, space, cls, query.queueing, query.service_overlap
            )
            warm = self.result_cache.get(identity)
            if warm is not None:
                obs.add("serve.cache.warm_hits")
                return warm
        if self.pre_compute is not None:
            self.pre_compute(query)
        with self._stats_lock:
            self.engine_calls += 1
        obs.add("serve.engine_calls")
        with planner_config(self._planner_config):
            result = evaluate_configs(
                model,
                space,
                cls,
                queueing=query.queueing,
                service_overlap=query.service_overlap,
            )
        if identity is not None:
            self.result_cache.put(identity, result)
        return result

    def _compute_sync(self, query: Query) -> dict:
        model = self._model_for(query.cluster, query.program)
        space = self._space_for(query)
        evaluation = self._evaluate(query, model, space)
        builder = {
            "evaluate_space": self._doc_evaluate,
            "pareto": self._doc_pareto,
            "search": self._doc_search,
            "ucr": self._doc_ucr,
            "whatif": self._doc_whatif,
        }[query.endpoint]
        doc = builder(query, model, space, evaluation)
        doc.update(
            endpoint=query.endpoint,
            cluster=query.cluster,
            program=query.program,
            class_name=evaluation.class_name,
            queueing=query.queueing,
            service_overlap=query.service_overlap,
            configs=len(evaluation),
        )
        return doc

    # -- response documents ---------------------------------------------

    @staticmethod
    def _arrays(ev: VectorizedEvaluation, mask: np.ndarray | None = None) -> dict:
        def pick(a: np.ndarray) -> np.ndarray:
            return a if mask is None else a[mask]

        return {
            "nodes": [int(n) for n in pick(ev.nodes)],
            "cores": [int(c) for c in pick(ev.cores)],
            "frequencies_ghz": [to_ghz(f) for f in pick(ev.frequencies_hz)],
            "times_s": _series(pick(ev.times_s)),
            "energies_j": _series(pick(ev.energies_j)),
            "ucrs": _series(pick(ev.ucrs)),
            "saturated": [bool(s) for s in pick(ev.saturated)],
        }

    @staticmethod
    def _point(ev: VectorizedEvaluation, i: int) -> dict:
        return {
            "nodes": int(ev.nodes[i]),
            "cores": int(ev.cores[i]),
            "frequency_ghz": to_ghz(float(ev.frequencies_hz[i])),
            "time_s": _num(ev.times_s[i]),
            "energy_j": _num(ev.energies_j[i]),
            "ucr": _num(ev.ucrs[i]),
        }

    def _doc_evaluate(self, query, model, space, ev) -> dict:
        return {"results": self._arrays(ev)}

    def _doc_pareto(self, query, model, space, ev) -> dict:
        mask = pareto_mask(ev.times_s, ev.energies_j)
        order = np.argsort(ev.times_s[mask], kind="stable")
        indices = np.flatnonzero(mask)[order]
        return {
            "frontier": self._arrays(ev, indices),
            "frontier_size": int(mask.sum()),
        }

    def _doc_search(self, query, model, space, ev) -> dict:
        # Mirrors repro.core.optimizer semantics on the evaluation arrays.
        if query.objective == "min_energy":
            feasible = ev.times_s <= query.deadline_s
            scores = np.where(feasible, ev.energies_j, np.inf)
        else:
            feasible = ev.energies_j <= query.budget_j
            scores = np.where(feasible, ev.times_s, np.inf)
        doc = {
            "objective": query.objective,
            "deadline_s": query.deadline_s,
            "budget_j": query.budget_j,
            "feasible": int(feasible.sum()),
        }
        doc["best"] = (
            self._point(ev, int(np.argmin(scores))) if feasible.any() else None
        )
        return doc

    def _doc_ucr(self, query, model, space, ev) -> dict:
        return {
            "results": self._arrays(ev),
            "best": self._point(ev, int(np.argmax(ev.ucrs))),
        }

    def _doc_whatif(self, query, model, space, ev) -> dict:
        tuned_model = model
        for knob, factor in query.factors:
            tuned_model = getattr(WhatIf(tuned_model), knob)(factor)
        tuned = self._evaluate(query, tuned_model, space)

        def summary(delta: np.ndarray) -> dict:
            return {
                "min": _num(delta.min()),
                "max": _num(delta.max()),
                "mean": _num(delta.mean()),
            }

        t_delta = tuned.times_s - ev.times_s
        e_delta = tuned.energies_j - ev.energies_j
        return {
            "factors": dict(query.factors),
            "time_delta_s": summary(t_delta),
            "energy_delta_j": summary(e_delta),
            "ucr_delta": summary(tuned.ucrs - ev.ucrs),
            "best_energy_saving_j": _num(max(0.0, float(-e_delta.min()))),
        }

    # -- lifecycle ------------------------------------------------------

    async def drain(self, timeout_s: float = DEFAULT_DRAIN_TIMEOUT_S) -> bool:
        """Stop admitting queries and wait for in-flight ones to finish.

        Returns ``True`` when the service went idle within the budget;
        ``False`` means requests were still running at the deadline (the
        caller may shut down anyway).
        """
        self.draining = True
        try:
            await asyncio.wait_for(self._idle.wait(), timeout=timeout_s)
            return True
        except asyncio.TimeoutError:
            return False

    def close(self) -> None:
        """Shut the engine worker pool down (idempotent; after drain)."""
        self._engine_pool.shutdown(wait=True, cancel_futures=True)


# ----------------------------------------------------------------------
# the HTTP/1.1 transport
# ----------------------------------------------------------------------

_MAX_HEADER_BYTES = 32 * KIB
_MAX_BODY_BYTES = 8 * MIB

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _BadRequest(Exception):
    """A malformed HTTP request (connection-level 400)."""


async def _read_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, dict[str, str], bytes] | None:
    """Parse one HTTP/1.1 request; ``None`` on a cleanly closed socket."""
    line = await reader.readline()
    if not line:
        return None
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise _BadRequest(f"malformed request line {line!r}")
    method, target, _version = parts
    headers: dict[str, str] = {}
    total = 0
    while True:
        raw = await reader.readline()
        total += len(raw)
        if total > _MAX_HEADER_BYTES:
            raise _BadRequest("header section too large")
        if raw in (b"\r\n", b"\n"):
            break
        if not raw:
            raise _BadRequest("connection closed mid-headers")
        name, _, value = raw.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError as exc:
        raise _BadRequest("bad Content-Length") from exc
    if length < 0 or length > _MAX_BODY_BYTES:
        raise _BadRequest("body too large")
    body = await reader.readexactly(length) if length else b""
    # strip any query string: routing is path-only
    path = target.split("?", 1)[0]
    return method, path, headers, body


def _render(
    status: int,
    ctype: str,
    body: bytes,
    extra_headers: tuple[tuple[str, str], ...] = (),
    close: bool = False,
) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {ctype}",
        f"Content-Length: {len(body)}",
        f"Connection: {'close' if close else 'keep-alive'}",
    ]
    lines += [f"{name}: {value}" for name, value in extra_headers]
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


async def _serve_connection(
    app: ServeApp, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
) -> None:
    """One client connection: keep-alive request/response loop."""
    try:
        await _connection_loop(app, reader, writer)
    except asyncio.CancelledError:
        # server teardown cancels idle connection handlers; exit quietly
        pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError, asyncio.CancelledError):
            # racy close, or a second cancellation during loop shutdown
            pass


def _peer_key(writer: asyncio.StreamWriter) -> str | None:
    """The connection's peer address as a client key (``None`` if unknown).

    Only the host part participates — one client's connections share a
    bucket regardless of ephemeral source port.
    """
    peer = writer.get_extra_info("peername")
    if not peer:
        return None
    return str(peer[0]) if isinstance(peer, tuple) else str(peer)


async def _connection_loop(
    app: ServeApp, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
) -> None:
    """Body of :func:`_serve_connection` (split for clean cancellation)."""
    while True:
        try:
            request = await _read_request(reader)
        except _BadRequest as exc:
            writer.write(
                _render(
                    400, _JSON, canonical_json({"error": str(exc)}), close=True
                )
            )
            return
        except (asyncio.IncompleteReadError, ConnectionError):
            return
        if request is None:
            return
        method, path, headers, body = request
        client = headers.get("x-client-id") or _peer_key(writer)
        try:
            status, ctype, payload = await app.handle(
                method, path, body, client
            )
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            obs.add("serve.errors.internal")
            status, ctype, payload = (
                500,
                _JSON,
                canonical_json({"error": f"internal error: {exc}"}),
            )
        extra: tuple[tuple[str, str], ...] = ()
        if status == 429:
            retry = json.loads(payload).get("retry_after_s", 1)
            extra = (("Retry-After", str(int(retry))),)
        close = headers.get("connection", "").lower() == "close"
        writer.write(_render(status, ctype, payload, extra, close=close))
        await writer.drain()
        if close:
            return


async def start_server(
    app: ServeApp, host: str, port: int
) -> asyncio.AbstractServer:
    """Bind the HTTP transport for ``app`` (port 0 picks a free port)."""
    return await asyncio.start_server(
        lambda r, w: _serve_connection(app, r, w), host, port
    )


async def _serve_forever(app: ServeApp, host: str, port: int) -> int:
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stop.set)
        except NotImplementedError:  # pragma: no cover - non-Unix loops
            pass
    server = await start_server(app, host, port)
    addr = server.sockets[0].getsockname()
    print(f"repro serve listening on http://{addr[0]}:{addr[1]}")
    async with server:
        await stop.wait()
        print("shutting down: draining in-flight requests")
        drained = await app.drain()
        if not drained:  # pragma: no cover - only on a wedged request
            print("drain timed out; closing anyway")
    return 0


def run_server(
    host: str = "127.0.0.1",
    port: int = 8765,
    rate: float = 0.0,
    burst: float | None = None,
    cache_dir: str | None = None,
    plan: str = "auto",
    max_block_bytes: int | None = None,
    client_rate: float = 0.0,
    client_burst: float | None = None,
    engine_workers: int = DEFAULT_ENGINE_WORKERS,
) -> int:
    """Run the prediction service until SIGINT/SIGTERM; returns exit code.

    ``rate``/``burst`` configure the service-wide token bucket and
    ``client_rate``/``client_burst`` the per-client buckets (0 disables
    either layer); ``cache_dir`` enables the persistent
    :class:`ResultCache` warm tier; ``plan``/``max_block_bytes``
    configure the per-query execution planner
    (``repro serve --plan/--max-block-bytes``); ``engine_workers`` sizes
    the bounded thread pool engine evaluations run in
    (``repro serve --engine-workers``).
    """
    app = ServeApp(
        cache_dir=cache_dir,
        rate=rate,
        burst=burst,
        plan=plan,
        max_block_bytes=max_block_bytes,
        client_rate=client_rate,
        client_burst=client_burst,
        engine_workers=engine_workers,
    )
    try:
        return asyncio.run(_serve_forever(app, host, port))
    except KeyboardInterrupt:  # pragma: no cover - signal race on teardown
        return 0
    finally:
        app.close()
