"""``repro serve`` — an asyncio HTTP/JSON prediction service.

The package turns the vectorized configuration-space engine into an
online query service: the endpoints mirror the CLI's analyses
(``evaluate_space`` / ``search`` / ``pareto`` / ``whatif`` / ``ucr``)
but answer concurrent requests from a single process.

Layers, bottom-up:

* :mod:`repro.serve.schemas` — strict JSON request parsing into a
  canonical, fingerprintable :class:`~repro.serve.schemas.Query`.
* :mod:`repro.serve.coalesce` — asyncio single-flight: concurrent
  identical queries share one in-flight computation and every caller
  receives the same (bit-identical) response bytes.
* :mod:`repro.serve.limits` — a token-bucket rate limiter backing the
  429 + ``Retry-After`` admission path.
* :mod:`repro.serve.app` — the :class:`~repro.serve.app.ServeApp`
  request core (routing, caching tiers, graceful drain), the minimal
  HTTP/1.1 transport and :func:`~repro.serve.app.run_server`.

See ``docs/SERVING.md`` for endpoint semantics and operations notes.
"""

from repro.serve.app import ServeApp, run_server
from repro.serve.coalesce import Coalescer
from repro.serve.limits import TokenBucket
from repro.serve.schemas import Query, SchemaError, parse_query

__all__ = [
    "Coalescer",
    "Query",
    "SchemaError",
    "ServeApp",
    "TokenBucket",
    "parse_query",
    "run_server",
]
