"""The single shared M/G/1 mean-wait implementation (paper Eq. 5).

Every place the repo needs the Pollaczek-Khinchine mean waiting time —
the scalar time model (:mod:`repro.core.time_model`), the vectorized
engine (:mod:`repro.core.vectorized`) and the simulator-side queueing
theory helpers (:mod:`repro.simulate.queueing`) — routes through
:func:`mg1_mean_wait` below.  There is deliberately **exactly one**
definition of the formula in the code base; the regression tests pin the
three call sites to each other at 1e-9 relative tolerance.

Which convention is the paper's Eq. 5?
--------------------------------------

The paper writes the switch waiting time as ``T_w = λ·ŷ² / (1 − ρ)``.
The textbook Pollaczek-Khinchine result is

    W = λ·E[y²] / (2·(1 − ρ)),        ρ = λ·E[y]

with ``E[y²]`` the *second moment* of the service time.  The two agree
exactly when service times are **exponentially distributed**, where
``E[y²] = 2·ŷ²``:

    W = λ·(2·ŷ²) / (2·(1 − ρ)) = λ·ŷ² / (1 − ρ).

So Eq. 5 is P-K under exponential (M/M/1) service, *not* deterministic
service (``E[y²] = ŷ²`` would introduce a genuine ½ factor).  The model
call sites therefore pass ``second_moment = 2·ŷ²`` — numerically
identical to the paper's form, bit-for-bit, because scaling numerator
and denominator by two is exact in floating point.

Saturation semantics
--------------------

The predictor's fixed point needs a *finite* wait even when the offered
load transiently exceeds capacity, so the model clamps ``ρ`` at
``RHO_MAX`` and reports a ``saturated`` flag instead of diverging.  Pure
queueing theory (property tests validating the simulator's empirical
waits) wants the honest divergence.  Both behaviours live behind the
same formula: pass ``rho_max=RHO_MAX`` to clamp (the model convention),
or ``rho_max=None`` to get ``inf`` at ρ ≥ 1 (the theory convention).
"""

from __future__ import annotations

from typing import cast

import numpy as np
from numpy.typing import NDArray

#: Scalar-or-array input/output type: every helper below is elementwise.
FloatLike = float | NDArray[np.float64]

#: Elementwise boolean result of :func:`mg1_saturated`.
BoolLike = bool | NDArray[np.bool_]

#: Utilization clamp used by the predictor: an offered load above this
#: stretches T through the fixed point rather than producing a negative
#: (or infinite) waiting time.  Shared by the scalar and vectorized paths.
RHO_MAX = 0.985


def exponential_second_moment(mean_service: FloatLike) -> FloatLike:
    """``E[y²] = 2·ŷ²`` for exponentially distributed service times.

    This is the convention the paper's Eq. 5 corresponds to (see the
    module docstring); the model call sites use it so the P-K form below
    reproduces the paper's ``λ·ŷ²/(1−ρ)`` exactly.
    """
    return cast("FloatLike", 2.0 * mean_service**2)


def mg1_utilization(arrival_rate: FloatLike, mean_service: FloatLike) -> FloatLike:
    """Offered load ``ρ = λ·E[y]`` (unclamped; works elementwise)."""
    return cast("FloatLike", arrival_rate * mean_service)


def mg1_saturated(
    arrival_rate: FloatLike, mean_service: FloatLike, rho_max: float = RHO_MAX
) -> BoolLike:
    """True where the offered load reaches the clamp (``ρ ≥ rho_max``)."""
    return cast("BoolLike", mg1_utilization(arrival_rate, mean_service) >= rho_max)


def mg1_mean_wait(
    arrival_rate: FloatLike,
    mean_service: FloatLike,
    second_moment: FloatLike,
    rho_max: float | None = None,
) -> FloatLike:
    """Pollaczek-Khinchine M/G/1 mean waiting time (paper Eq. 5).

    ``T_w = λ·E[y²] / (2·(1−ρ))`` with ``ρ = λ·E[y]``.  Accepts floats or
    ``numpy`` arrays (elementwise); scalar inputs return a ``float``.

    Parameters
    ----------
    arrival_rate:
        ``λ`` — request arrival rate (1/s).
    mean_service:
        ``E[y] = ŷ`` — mean service time (s).
    second_moment:
        ``E[y²]`` — second moment of the service time (s²).  Pass
        :func:`exponential_second_moment` of ``ŷ`` for the paper's Eq. 5
        convention, ``ŷ²`` for deterministic service.
    rho_max:
        ``None`` (default) is the pure-theory convention: the wait is
        ``inf`` for a saturated queue (ρ ≥ 1).  A float clamps ρ at that
        value — the predictor convention, which always yields a finite
        wait; pair with :func:`mg1_saturated` to surface the clamp.
    """
    lam = np.asarray(arrival_rate, dtype=np.float64)
    y = np.asarray(mean_service, dtype=np.float64)
    m2 = np.asarray(second_moment, dtype=np.float64)
    if np.any(lam < 0) or np.any(y < 0) or np.any(m2 < 0):
        raise ValueError("rates, service times and moments must be non-negative")
    rho = lam * y
    if rho_max is not None:
        rho = np.minimum(rho, rho_max)
        wait = lam * m2 / (2.0 * (1.0 - rho))
    else:
        saturated = rho >= 1.0
        # evaluate the quotient only where it is well defined
        safe_rho = np.where(saturated, 0.0, rho)
        wait = np.where(saturated, np.inf, lam * m2 / (2.0 * (1.0 - safe_rho)))
    if wait.ndim == 0:
        return float(wait)
    return cast("NDArray[np.float64]", wait)
