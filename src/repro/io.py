"""Persistence: save/load model inputs and validation results as JSON.

Characterization is the expensive step on a real testbed (hours of
baseline runs); a production workflow characterizes once and reuses the
inputs.  This module round-trips :class:`~repro.core.params.ModelInputs`
and validation campaigns through plain JSON — no pickle, so files are
portable, diffable and safe to load.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any

from repro.analysis.validation import ValidationCampaign, ValidationRecord
from repro.core.params import (
    BaselineArtefacts,
    CommCharacteristics,
    ModelInputs,
    NetworkCharacteristics,
)
from repro.machines.power import PowerTable
from repro.machines.spec import Configuration

#: Format version written into every file; bump on schema changes.
FORMAT_VERSION = 1


def _key_to_str(key: tuple[int, float]) -> str:
    return f"{key[0]}@{key[1]:.0f}"


def _str_to_key(text: str) -> tuple[int, float]:
    cores, f = text.split("@")
    return int(cores), float(f)


def model_inputs_to_dict(inputs: ModelInputs) -> dict[str, Any]:
    """Convert model inputs to a JSON-serializable dict."""
    return {
        "format_version": FORMAT_VERSION,
        "kind": "model_inputs",
        "program": inputs.program,
        "cluster": inputs.cluster,
        "baseline_class": inputs.baseline_class,
        "baseline_iterations": inputs.baseline_iterations,
        "baseline": {
            _key_to_str(key): {
                "instructions": art.instructions,
                "work_cycles": art.work_cycles,
                "nonmem_stall_cycles": art.nonmem_stall_cycles,
                "mem_stall_cycles": art.mem_stall_cycles,
                "utilization": art.utilization,
            }
            for key, art in inputs.baseline.items()
        },
        "comm": {
            "eta_ref": inputs.comm.eta_ref,
            "volume_ref": inputs.comm.volume_ref,
            "eta_exponent": inputs.comm.eta_exponent,
            "volume_exponent": inputs.comm.volume_exponent,
        },
        "network": {
            "bandwidth_bytes_per_s": inputs.network.bandwidth_bytes_per_s,
            "latency_floor_s": inputs.network.latency_floor_s,
        },
        "power": {
            "core_active_w": {
                _key_to_str(k): v for k, v in inputs.power.core_active_w.items()
            },
            "core_stall_w": {
                _key_to_str(k): v for k, v in inputs.power.core_stall_w.items()
            },
            "mem_w": inputs.power.mem_w,
            "net_w": inputs.power.net_w,
            "sys_idle_w": inputs.power.sys_idle_w,
        },
    }


def model_inputs_from_dict(data: dict[str, Any]) -> ModelInputs:
    """Rebuild model inputs from a dict produced by
    :func:`model_inputs_to_dict`."""
    if data.get("kind") != "model_inputs":
        raise ValueError("not a model-inputs document")
    if data.get("format_version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported format version {data.get('format_version')!r}"
        )
    return ModelInputs(
        program=data["program"],
        cluster=data["cluster"],
        baseline_class=data["baseline_class"],
        baseline_iterations=int(data["baseline_iterations"]),
        baseline={
            _str_to_key(key): BaselineArtefacts(**art)
            for key, art in data["baseline"].items()
        },
        comm=CommCharacteristics(**data["comm"]),
        network=NetworkCharacteristics(**data["network"]),
        power=PowerTable(
            core_active_w={
                _str_to_key(k): v for k, v in data["power"]["core_active_w"].items()
            },
            core_stall_w={
                _str_to_key(k): v for k, v in data["power"]["core_stall_w"].items()
            },
            mem_w=data["power"]["mem_w"],
            net_w=data["power"]["net_w"],
            sys_idle_w=data["power"]["sys_idle_w"],
        ),
    )


def save_model_inputs(inputs: ModelInputs, path: str | pathlib.Path) -> None:
    """Write model inputs to a JSON file."""
    pathlib.Path(path).write_text(
        json.dumps(model_inputs_to_dict(inputs), indent=2, sort_keys=True) + "\n"
    )


def load_model_inputs(path: str | pathlib.Path) -> ModelInputs:
    """Read model inputs from a JSON file."""
    return model_inputs_from_dict(json.loads(pathlib.Path(path).read_text()))


def campaign_to_dict(campaign: ValidationCampaign) -> dict[str, Any]:
    """Convert a validation campaign to a JSON-serializable dict."""
    return {
        "format_version": FORMAT_VERSION,
        "kind": "validation_campaign",
        "program": campaign.program,
        "cluster": campaign.cluster,
        "records": [
            {
                "class_name": r.class_name,
                "nodes": r.config.nodes,
                "cores": r.config.cores,
                "frequency_hz": r.config.frequency_hz,
                "measured_time_s": r.measured_time_s,
                "measured_energy_j": r.measured_energy_j,
                "predicted_time_s": r.predicted_time_s,
                "predicted_energy_j": r.predicted_energy_j,
            }
            for r in campaign.records
        ],
    }


def campaign_from_dict(data: dict[str, Any]) -> ValidationCampaign:
    """Rebuild a validation campaign from its dict form."""
    if data.get("kind") != "validation_campaign":
        raise ValueError("not a validation-campaign document")
    if data.get("format_version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported format version {data.get('format_version')!r}"
        )
    records = tuple(
        ValidationRecord(
            program=data["program"],
            cluster=data["cluster"],
            class_name=rec["class_name"],
            config=Configuration(
                nodes=rec["nodes"],
                cores=rec["cores"],
                frequency_hz=rec["frequency_hz"],
            ),
            measured_time_s=rec["measured_time_s"],
            measured_energy_j=rec["measured_energy_j"],
            predicted_time_s=rec["predicted_time_s"],
            predicted_energy_j=rec["predicted_energy_j"],
        )
        for rec in data["records"]
    )
    return ValidationCampaign(
        program=data["program"], cluster=data["cluster"], records=records
    )


def save_campaign(campaign: ValidationCampaign, path: str | pathlib.Path) -> None:
    """Write a validation campaign to a JSON file."""
    pathlib.Path(path).write_text(
        json.dumps(campaign_to_dict(campaign), indent=2, sort_keys=True) + "\n"
    )


def load_campaign(path: str | pathlib.Path) -> ValidationCampaign:
    """Read a validation campaign from a JSON file."""
    return campaign_from_dict(json.loads(pathlib.Path(path).read_text()))
