"""Deterministic random-stream management.

Every stochastic component of the simulator (OS jitter, barrier skew, meter
noise, power-characterization error) draws from a :class:`numpy.random.
Generator` seeded through this module, so a full validation campaign is
reproducible bit-for-bit from a single root seed.

Streams are derived by *name* with :func:`numpy.random.SeedSequence.spawn`
semantics: ``derive(root, "xeon", "SP", "n=4,c=8,f=1.8e9", "run=0")`` always
yields the same generator regardless of the order other streams were created
in.  This avoids the classic pitfall of a shared global generator where adding
one extra draw in an unrelated module perturbs every downstream measurement.
"""

from __future__ import annotations

import zlib
from typing import Iterable

import numpy as np

DEFAULT_ROOT_SEED = 20150525  # IPDPS 2015 conference date


def _token_entropy(token: str) -> int:
    """Map an arbitrary string token to a stable 32-bit entropy word."""
    return zlib.crc32(token.encode("utf-8"))


def seed_sequence(root_seed: int, *tokens: str) -> np.random.SeedSequence:
    """Build a :class:`numpy.random.SeedSequence` for a named stream.

    Parameters
    ----------
    root_seed:
        Campaign-level root seed.
    tokens:
        Hierarchical stream name, e.g. ``("xeon", "SP", "baseline", "c=4")``.
    """
    return np.random.SeedSequence(
        entropy=root_seed, spawn_key=tuple(_token_entropy(t) for t in tokens)
    )


def derive(root_seed: int, *tokens: str) -> np.random.Generator:
    """Return a generator for the named stream under ``root_seed``."""
    return np.random.default_rng(seed_sequence(root_seed, *tokens))


def derive_many(
    root_seed: int, tokens: Iterable[str], *prefix: str
) -> dict[str, np.random.Generator]:
    """Return one independent generator per token, all under ``prefix``."""
    return {t: derive(root_seed, *prefix, t) for t in tokens}
