"""Resilient pipeline stages: checkpointed evaluation, degraded coverage.

Two pieces live here, both sitting *above* the measurement / model layers:

* :func:`evaluate_space_checkpointed` — the configuration-space sweep cut
  into fixed chunks, each chunk persisted to a :class:`~repro.resilience.
  checkpoint.Checkpoint` as it completes.  An interrupted sweep resumed
  from its checkpoint is bit-identical to an uninterrupted one: chunking
  is deterministic, each chunk is evaluated by the same
  :func:`~repro.core.vectorized.evaluate_many` call, and Python floats
  round-trip JSON exactly.

* the **coverage record** — when a chaos-afflicted campaign loses samples
  permanently, calibration proceeds on the surviving points (graceful
  degradation) and :func:`coverage_report` states exactly what survived.
  :meth:`CoverageReport.sigmas` turns that into inflated per-group input
  uncertainties for :func:`repro.analysis.uncertainty.propagate_uncertainty`:
  losing half an instrument's samples widens its groups' error bars by
  ``1/sqrt(coverage)`` (the standard-error argument), and corrupted-but-
  delivered samples widen them further in proportion to the corrupted
  fraction.
"""

from __future__ import annotations

import math
import pathlib
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro import obs
from repro import resilience
from repro.core.configspace import SpaceEvaluation
from repro.core.model import HybridProgramModel
from repro.core.vectorized import (
    VectorizedEvaluation,
    evaluate_many,
    model_fingerprint,
)
from repro.machines.spec import Configuration
from repro.resilience import InstrumentStats, ResilienceContext
from repro.resilience.checkpoint import Checkpoint, fingerprint

#: Default number of configurations evaluated (and persisted) per chunk.
DEFAULT_CHUNK_SIZE = 64

#: The VectorizedEvaluation arrays persisted per chunk.  All of them are
#: stored (rather than recomputing the derived ones) so a resumed sweep
#: reproduces an uninterrupted one bit for bit without re-deriving.
_ARRAY_FIELDS = (
    "nodes",
    "cores",
    "frequencies_hz",
    "t_cpu_s",
    "t_mem_s",
    "t_net_service_s",
    "t_net_wait_s",
    "utilization_baseline",
    "rho_network",
    "saturated",
    "cpu_j",
    "mem_j",
    "net_j",
    "idle_j",
    "times_s",
    "energies_j",
    "ucrs",
)


def _readonly(a: np.ndarray) -> np.ndarray:
    a.setflags(write=False)
    return a


def space_digest(
    model: HybridProgramModel,
    configs: tuple[Configuration, ...],
    class_name: str,
    chunk_size: int,
) -> str:
    """Fingerprint of one space-evaluation campaign's full identity."""
    return fingerprint(
        {
            "model": repr(model_fingerprint(model)),
            "space": [(c.nodes, c.cores, c.frequency_hz) for c in configs],
            "class_name": class_name,
            "chunk_size": chunk_size,
        }
    )


def evaluate_space_checkpointed(
    model: HybridProgramModel,
    space: object,
    class_name: str | None = None,
    checkpoint_path: str | pathlib.Path | None = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> SpaceEvaluation:
    """Evaluate a configuration space in checkpointed chunks.

    Equivalent to :func:`repro.core.configspace.evaluate_space` (every
    chunk runs through the same vectorized engine), but progress persists:
    re-invoking with the same model/space/options and an existing
    checkpoint file skips completed chunks and recomputes only the rest.
    A resumed sweep's arrays are bit-identical to an uninterrupted one's.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    configs = tuple(space)
    if not configs:
        raise ValueError("configuration space is empty")
    cls = class_name or model.inputs.baseline_class

    checkpoint: Checkpoint | None = None
    if checkpoint_path is not None:
        checkpoint = Checkpoint.open(
            checkpoint_path,
            "evaluate_space",
            space_digest(model, configs, cls, chunk_size),
        )

    parts: dict[str, list[np.ndarray]] = {name: [] for name in _ARRAY_FIELDS}
    for index, pos in enumerate(range(0, len(configs), chunk_size)):
        chunk = configs[pos : pos + chunk_size]
        key = f"chunk{index}"
        payload = checkpoint.get(key) if checkpoint is not None else None
        if payload is not None:
            obs.add("resilience.checkpoint.chunks_skipped")
            for name in _ARRAY_FIELDS:
                dtype = bool if name == "saturated" else np.float64
                parts[name].append(np.asarray(payload[name], dtype=dtype))
            continue
        vec = evaluate_many(model, chunk, cls)
        for name in _ARRAY_FIELDS:
            parts[name].append(getattr(vec, name))
        if checkpoint is not None:
            checkpoint.record(
                key,
                {
                    name: [
                        bool(v) if name == "saturated" else float(v)
                        for v in getattr(vec, name)
                    ]
                    for name in _ARRAY_FIELDS
                },
            )

    arrays = {
        name: _readonly(np.concatenate(parts[name])) for name in _ARRAY_FIELDS
    }
    result = VectorizedEvaluation(class_name=cls, space=configs, **arrays)
    return SpaceEvaluation(predictions=result.predictions, vectorized=result)


# ----------------------------------------------------------------------
# degraded-calibration coverage
# ----------------------------------------------------------------------

#: Which uncertainty input groups (see ``repro.analysis.sensitivity.
#: INPUT_GROUPS``) each instrument's samples calibrate.  Instruments
#: absent here (``timecmd``, ``wattsup``, ``powertrace``) feed validation
#: rather than calibration, so their losses do not widen model error bars.
INSTRUMENT_GROUPS: dict[str, tuple[str, ...]] = {
    "counters": (
        "work cycles (w_s)",
        "non-memory stalls (b_s)",
        "memory stalls (m_s)",
        "CPU utilization (U_s)",
    ),
    "mpip": ("message count (eta)", "comm volume"),
    "netpipe": ("network bandwidth (B)",),
    "powerbench": (
        "active power (P_act)",
        "stall power (P_stall)",
        "memory power (P_mem)",
        "network power (P_net)",
        "idle power (P_idle)",
    ),
}


@dataclass(frozen=True)
class InstrumentCoverage:
    """One instrument's survival record for a campaign."""

    instrument: str
    requested: int
    succeeded: int
    lost: int
    retries: int
    corrupted: int
    lost_units: tuple[str, ...] = ()

    @property
    def coverage(self) -> float:
        """Fraction of requested samples that survived."""
        if self.requested == 0:
            return 1.0
        return self.succeeded / self.requested

    @property
    def degraded(self) -> bool:
        """True when the calibration rests on imperfect data."""
        return self.lost > 0 or self.corrupted > 0

    def sigma_factor(self) -> float:
        """Multiplier on this instrument's input-group uncertainties.

        Standard-error inflation for lost samples (``1/sqrt(coverage)``)
        plus proportional widening for corrupted-but-delivered ones.
        """
        factor = 1.0
        if 0.0 < self.coverage < 1.0:
            factor /= math.sqrt(self.coverage)
        if self.succeeded > 0 and self.corrupted > 0:
            factor *= 1.0 + self.corrupted / self.succeeded
        return factor


@dataclass(frozen=True)
class CoverageReport:
    """Per-instrument survival of one measurement campaign."""

    instruments: tuple[InstrumentCoverage, ...]

    @property
    def degraded(self) -> bool:
        """True when any instrument lost or corrupted samples."""
        return any(c.degraded for c in self.instruments)

    def coverage_for(self, instrument: str) -> InstrumentCoverage | None:
        """The record for one instrument, or ``None`` if it never ran."""
        for c in self.instruments:
            if c.instrument == instrument:
                return c
        return None

    def sigmas(self) -> dict[str, float]:
        """Inflated per-group uncertainties for degraded instruments.

        Returns only the groups whose instrument degraded, scaled from
        :data:`repro.analysis.uncertainty.DEFAULT_SIGMAS` — pass the
        result straight to ``propagate_uncertainty(sigmas=...)``.
        """
        from repro.analysis.uncertainty import DEFAULT_SIGMAS

        inflated: dict[str, float] = {}
        for cov in self.instruments:
            factor = cov.sigma_factor()
            if factor <= 1.0:
                continue
            for group in INSTRUMENT_GROUPS.get(cov.instrument, ()):
                inflated[group] = DEFAULT_SIGMAS[group] * factor
        return inflated

    def summary_lines(self) -> list[str]:
        """Human-readable per-instrument coverage, degraded first."""
        lines = []
        ordered = sorted(
            self.instruments, key=lambda c: (not c.degraded, c.instrument)
        )
        for c in ordered:
            line = (
                f"{c.instrument}: {c.succeeded}/{c.requested} samples "
                f"({c.coverage:.0%} coverage)"
            )
            details = []
            if c.retries:
                details.append(f"{c.retries} retries")
            if c.corrupted:
                details.append(f"{c.corrupted} corrupted")
            if c.lost_units:
                details.append(f"lost: {', '.join(c.lost_units)}")
            if details:
                line += " — " + "; ".join(details)
            lines.append(line)
        return lines

    def to_dict(self) -> dict[str, dict[str, object]]:
        """JSON-serializable form (reports, traces)."""
        return {
            c.instrument: {
                "requested": c.requested,
                "succeeded": c.succeeded,
                "lost": c.lost,
                "retries": c.retries,
                "corrupted": c.corrupted,
                "coverage": c.coverage,
                "lost_units": list(c.lost_units),
            }
            for c in self.instruments
        }


def coverage_report(context: ResilienceContext | None) -> CoverageReport:
    """Build the coverage record of a campaign from its context.

    With no context (resilience disabled) the report is empty — and, by
    construction, not degraded.
    """
    if context is None:
        return CoverageReport(instruments=())
    stats: Mapping[str, InstrumentStats] = context.stats
    instruments = tuple(
        InstrumentCoverage(
            instrument=name,
            requested=s.requested,
            succeeded=s.succeeded,
            lost=s.lost,
            retries=s.retries,
            corrupted=s.corrupted,
            lost_units=tuple(context.lost_units.get(name, ())),
        )
        for name, s in sorted(stats.items())
    )
    return CoverageReport(instruments=instruments)


def characterize_resilient(
    cluster,
    program,
    class_name: str | None = None,
    repetitions: int = 3,
    comm_node_counts: tuple[int, ...] = (2, 4),
    baseline_checkpoint: str | pathlib.Path | None = None,
):
    """Characterize under the active resilience context, with coverage.

    Runs :func:`repro.core.inputs.characterize` (which degrades gracefully
    on lost samples when a context is enabled) and returns the resulting
    :class:`~repro.core.params.ModelInputs` together with the campaign's
    :class:`CoverageReport`.
    """
    from repro.core.inputs import characterize

    inputs = characterize(
        cluster,
        program,
        class_name=class_name,
        repetitions=repetitions,
        comm_node_counts=comm_node_counts,
        baseline_checkpoint=baseline_checkpoint,
    )
    return inputs, coverage_report(resilience.get_context())
