"""``repro.resilience`` — fault-tolerant execution of the measurement pipeline.

Every simulated instrument read in :mod:`repro.measure` routes its result
through :func:`call`.  The default backend is **off**: with no context
enabled a call costs one module-global ``None`` check plus one closure
invocation, so the wrappers stay compiled-in everywhere (the benchmark
gate in ``benchmarks/bench_resilience_overhead.py`` pins the disabled-path
overhead under 2%, mirroring the ``repro.obs`` gate).

With a context enabled (:func:`enable` / :func:`enabled`), each call runs
under the :class:`~repro.resilience.policy.RetryPolicy`: a chaos schedule
(:class:`~repro.resilience.chaos.ChaosSchedule`) may drop, delay or
corrupt individual attempts; failed attempts are retried with
deterministic jittered exponential backoff; a sample still missing after
the last retry raises :class:`~repro.resilience.policy.SampleLost`, which
degradation-aware call sites (the baseline sweep, NetPIPE, the power
micro-benchmarks) catch and survive.

Retries, failures, losses and resumes are mirrored into the
:mod:`repro.obs` counters (``resilience.*``) whenever metrics are on, and
tallied per instrument in the context's :class:`InstrumentStats` so a
post-campaign :func:`repro.resilience.pipeline.coverage_report` can state
exactly what the surviving calibration is based on.

Instruments are *idempotent*: re-reading a lost sample returns the same
underlying value (re-reading a meter does not change the past), so a run
that needed retries is bit-identical to one that did not — unless the
chaos schedule corrupted or permanently lost samples, which is precisely
what the coverage record reports.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro import obs
from repro.resilience.chaos import ChaosDecision, ChaosRule, ChaosSchedule
from repro.resilience.policy import ResilienceError, RetryPolicy, SampleLost

__all__ = [
    "ChaosDecision",
    "ChaosRule",
    "ChaosSchedule",
    "InstrumentStats",
    "ResilienceContext",
    "ResilienceError",
    "RetryPolicy",
    "SampleLost",
    "active",
    "call",
    "disable",
    "enable",
    "enabled",
    "get_context",
    "value_token",
]


@dataclass
class InstrumentStats:
    """Per-instrument tally of one campaign's measurement outcomes."""

    attempts: int = 0
    retries: int = 0
    corrupted: int = 0
    delayed: int = 0
    lost: int = 0
    succeeded: int = 0
    backoff_s: float = 0.0

    @property
    def requested(self) -> int:
        """Distinct samples asked of this instrument."""
        return self.succeeded + self.lost

    @property
    def coverage(self) -> float:
        """Fraction of requested samples that survived."""
        if self.requested == 0:
            return 1.0
        return self.succeeded / self.requested


@dataclass
class ResilienceContext:
    """An enabled resilience backend: policy + optional chaos + stats."""

    policy: RetryPolicy
    chaos: ChaosSchedule | None = None
    stats: dict[str, InstrumentStats] = field(default_factory=dict)
    lost_units: dict[str, list[str]] = field(default_factory=dict)

    def _stats(self, instrument: str) -> InstrumentStats:
        s = self.stats.get(instrument)
        if s is None:
            s = self.stats[instrument] = InstrumentStats()
        return s

    def note_lost_unit(self, instrument: str, unit: str) -> None:
        """Record a named unit (e.g. a baseline point) as permanently lost."""
        self.lost_units.setdefault(instrument, []).append(unit)

    def call(
        self,
        instrument: str,
        tokens: tuple[str, ...],
        fn: Callable[[], Any],
        corrupt: Callable[[Any, float], Any] | None = None,
    ) -> Any:
        """Run one instrument read under the policy and chaos schedule."""
        policy = self.policy
        stats = self._stats(instrument)
        attempts = policy.attempts
        for attempt in range(attempts):
            stats.attempts += 1
            obs.add("resilience.attempts")
            decision = (
                self.chaos.decide(instrument, tokens, attempt)
                if self.chaos is not None
                else None
            )
            failed = False
            if decision is not None and decision.failed:
                obs.add("resilience.chaos.drops")
                failed = True
            elif (
                decision is not None
                and decision.outcome == "delay"
                and policy.timeout_s is not None
                and decision.delay_s >= policy.timeout_s
            ):
                obs.add("resilience.chaos.timeouts")
                failed = True
            if not failed:
                value = fn()
                if decision is not None and decision.outcome == "delay":
                    stats.delayed += 1
                    obs.add("resilience.chaos.delays")
                    obs.observe("resilience.delay_seconds", decision.delay_s)
                if decision is not None and decision.outcome == "corrupt":
                    stats.corrupted += 1
                    obs.add("resilience.chaos.corruptions")
                    if corrupt is not None:
                        value = corrupt(value, decision.factor)
                stats.succeeded += 1
                return value
            if attempt + 1 < attempts:
                stats.retries += 1
                obs.add("resilience.retries")
                backoff = policy.backoff_s(instrument, tokens, attempt)
                stats.backoff_s += backoff
                obs.observe("resilience.backoff_seconds", backoff)
        stats.lost += 1
        obs.add("resilience.losses")
        raise SampleLost(instrument, tokens, attempts)


#: The enabled backend; ``None`` means "off" (the zero-overhead default).
_context: ResilienceContext | None = None


def enable(
    policy: RetryPolicy | None = None, chaos: ChaosSchedule | None = None
) -> ResilienceContext:
    """Turn the resilience layer on and return its context."""
    global _context
    _context = ResilienceContext(policy=policy or RetryPolicy(), chaos=chaos)
    return _context


def disable() -> None:
    """Back to the pass-through backend."""
    global _context
    _context = None


@contextmanager
def enabled(
    policy: RetryPolicy | None = None, chaos: ChaosSchedule | None = None
) -> Iterator[ResilienceContext]:
    """Enable the layer for a ``with`` block, then restore what was active."""
    global _context
    prev = _context
    ctx = enable(policy, chaos)
    try:
        yield ctx
    finally:
        _context = prev


def active() -> bool:
    """True while a resilience context is enabled."""
    return _context is not None


def get_context() -> ResilienceContext | None:
    """The enabled context, or ``None``."""
    return _context


def call(
    instrument: str,
    tokens: tuple[str, ...],
    fn: Callable[[], Any],
    corrupt: Callable[[Any, float], Any] | None = None,
) -> Any:
    """Route one instrument read through the resilience layer.

    With no context enabled this is a direct ``fn()`` call — the hot path
    the overhead gate pins.  ``fn`` must be idempotent: retries re-invoke
    it and expect the same underlying value.
    """
    ctx = _context
    if ctx is None:
        return fn()
    return ctx.call(instrument, tokens, fn, corrupt)


def value_token(value: float) -> str:
    """A stable identity token derived from a reading's own value.

    Simulated runs carry no global sample counter, so repeated readings of
    the same ``(program, config)`` point are distinguished by the value
    their run produced — deterministic across processes, distinct across
    run indices (run-to-run noise makes values differ).
    """
    return f"v={value:.17g}"
