"""Retry/timeout/backoff policies for simulated instrument calls.

Real counter and power instruments drop samples and time out; the papers
this layer leans on (Guermouche et al., Hofmann et al.) show that exactly
this measurement noise dominates model error in practice.  A
:class:`RetryPolicy` describes how the pipeline reacts: how many times a
failed sample is re-read, when a slow sample counts as timed out, and how
long the (simulated) exponential backoff between attempts is.

Backoff jitter is *deterministic*: the jitter draw for attempt ``k`` of a
given instrument call comes from a :mod:`repro.rng` stream named by the
call's identity tokens, so two processes replaying the same campaign
produce bit-identical backoff schedules.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import rng as rng_mod


class ResilienceError(RuntimeError):
    """A measurement campaign cannot proceed even with degradation."""


class SampleLost(ResilienceError):
    """An instrument sample stayed lost after every retry.

    Call sites that can degrade gracefully catch this and continue on the
    surviving samples; required samples let it propagate with an
    actionable message.
    """

    def __init__(self, instrument: str, tokens: tuple[str, ...], attempts: int):
        self.instrument = instrument
        self.tokens = tokens
        self.attempts = attempts
        super().__init__(
            f"instrument {instrument!r} lost sample "
            f"({'/'.join(tokens) or 'unnamed'}) after {attempts} "
            f"attempt{'s' if attempts != 1 else ''}; raise --retries or "
            "relax the chaos schedule"
        )


@dataclass(frozen=True)
class RetryPolicy:
    """How instrument failures are retried.

    ``max_retries`` counts *additional* attempts after the first read, so
    a policy with ``max_retries=3`` reads at most four times.
    ``timeout_s`` is the per-attempt budget: an attempt whose (injected)
    delay reaches it fails like a drop.  ``None`` disables timeouts —
    ``0`` is rejected because it would fail every sample.
    """

    max_retries: int = 3
    timeout_s: float | None = None
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    jitter: float = 0.1
    root_seed: int = rng_mod.DEFAULT_ROOT_SEED

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(
                "timeout must be positive (a 0s timeout would fail every "
                "sample); omit it for no timeout"
            )
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor below 1 would shrink the backoff")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be a fraction in [0, 1]")

    @property
    def attempts(self) -> int:
        """Total attempts per sample (first read + retries)."""
        return self.max_retries + 1

    def backoff_s(self, instrument: str, tokens: tuple[str, ...], attempt: int) -> float:
        """Deterministic jittered backoff before retry ``attempt + 1``.

        The jitter draw is a named :mod:`repro.rng` stream, so it depends
        only on the call identity and attempt index — never on process
        history or draw order.
        """
        base = self.backoff_base_s * self.backoff_factor**attempt
        if base == 0.0 or self.jitter == 0.0:
            return base
        stream = rng_mod.derive(
            self.root_seed, "resilience-backoff", instrument, *tokens,
            f"attempt={attempt}",
        )
        return base * (1.0 + self.jitter * float(stream.uniform(-1.0, 1.0)))

    @classmethod
    def aggressive(cls) -> "RetryPolicy":
        """Many fast retries — for chaos-heavy test campaigns."""
        return cls(max_retries=8, backoff_base_s=0.01)
