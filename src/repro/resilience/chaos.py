"""Deterministic chaos injection for the measurement pipeline.

A :class:`ChaosSchedule` decides, per instrument call and attempt,
whether the sample is dropped, delayed, corrupted or delivered clean.
Decisions draw through :func:`repro.simulate.faults.schedule_rng` — the
same seeded stream factory the simulator's fault schedules use — keyed by
``(schedule seed, instrument, call tokens, attempt)``.  A schedule
therefore replays bit-identically across processes: tests and benchmarks
can drop/delay/corrupt any instrument on a pinned schedule and still pin
their outputs.

Schedules round-trip through plain JSON (see ``docs/RESILIENCE.md`` for
the format), so chaos campaigns are checked into fixtures and shared with
CI.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from typing import Any, Mapping

from repro.simulate.faults import schedule_rng

#: Format version written into every schedule file; bump on schema changes.
FORMAT_VERSION = 1

#: Rule key that applies to any instrument without its own rule.
WILDCARD = "*"

#: Chaos outcomes (``ChaosDecision.outcome`` values).
OK, DROP, DELAY, CORRUPT = "ok", "drop", "delay", "corrupt"


@dataclass(frozen=True)
class ChaosDecision:
    """What chaos does to one instrument-call attempt."""

    outcome: str
    delay_s: float = 0.0
    factor: float = 1.0

    @property
    def failed(self) -> bool:
        """True when the attempt yields no sample at all."""
        return self.outcome == DROP


_CLEAN = ChaosDecision(outcome=OK)


@dataclass(frozen=True)
class ChaosRule:
    """Per-instrument fault mix.

    ``drop_p`` loses the sample outright; ``delay_p`` delivers it after
    ``delay_s``-scaled latency (which the retry policy may convert into a
    timeout); ``corrupt_p`` delivers it scaled by a lognormal factor with
    sigma ``corrupt_sigma``.  The three probabilities partition the unit
    interval; the remainder is a clean read.
    """

    drop_p: float = 0.0
    delay_p: float = 0.0
    corrupt_p: float = 0.0
    delay_s: float = 1.0
    corrupt_sigma: float = 0.05

    def __post_init__(self) -> None:
        for name in ("drop_p", "delay_p", "corrupt_p"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability, got {p}")
        if self.drop_p + self.delay_p + self.corrupt_p > 1.0 + 1e-12:
            raise ValueError("drop_p + delay_p + corrupt_p must be <= 1")
        if self.delay_s < 0:
            raise ValueError("delay_s must be non-negative")
        if self.corrupt_sigma < 0:
            raise ValueError("corrupt_sigma must be non-negative")

    @property
    def active(self) -> bool:
        """True when any outcome other than a clean read is possible."""
        return (self.drop_p + self.delay_p + self.corrupt_p) > 0.0


@dataclass(frozen=True)
class ChaosSchedule:
    """A seeded schedule of instrument faults.

    ``rules`` maps instrument names (``"counters"``, ``"netpipe"``, …) to
    their :class:`ChaosRule`; the ``"*"`` key, when present, applies to
    every instrument without its own rule.
    """

    seed: int
    rules: Mapping[str, ChaosRule]

    def rule_for(self, instrument: str) -> ChaosRule | None:
        """The rule governing ``instrument`` (wildcard-aware)."""
        rule = self.rules.get(instrument)
        if rule is None:
            rule = self.rules.get(WILDCARD)
        return rule

    def decide(
        self, instrument: str, tokens: tuple[str, ...], attempt: int
    ) -> ChaosDecision:
        """The (deterministic) fate of one instrument-call attempt."""
        rule = self.rule_for(instrument)
        if rule is None or not rule.active:
            return _CLEAN
        stream = schedule_rng(
            self.seed, "chaos", instrument, *tokens, f"attempt={attempt}"
        )
        u = float(stream.uniform())
        if u < rule.drop_p:
            return ChaosDecision(outcome=DROP)
        if u < rule.drop_p + rule.delay_p:
            # delay between 0.5x and 1.5x the nominal latency
            delay = rule.delay_s * (0.5 + float(stream.uniform()))
            return ChaosDecision(outcome=DELAY, delay_s=delay)
        if u < rule.drop_p + rule.delay_p + rule.corrupt_p:
            factor = float(stream.lognormal(0.0, rule.corrupt_sigma)) if (
                rule.corrupt_sigma > 0
            ) else 1.0
            return ChaosDecision(outcome=CORRUPT, factor=factor)
        return _CLEAN

    # ------------------------------------------------------------------
    # JSON round-trip
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form of this schedule."""
        return {
            "format_version": FORMAT_VERSION,
            "kind": "chaos_schedule",
            "seed": self.seed,
            "rules": {
                name: {
                    "drop_p": rule.drop_p,
                    "delay_p": rule.delay_p,
                    "corrupt_p": rule.corrupt_p,
                    "delay_s": rule.delay_s,
                    "corrupt_sigma": rule.corrupt_sigma,
                }
                for name, rule in self.rules.items()
            },
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ChaosSchedule":
        """Rebuild a schedule from its dict form."""
        if data.get("kind") != "chaos_schedule":
            raise ValueError("not a chaos-schedule document")
        if data.get("format_version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported chaos-schedule format version "
                f"{data.get('format_version')!r}"
            )
        return cls(
            seed=int(data["seed"]),
            rules={
                name: ChaosRule(**rule) for name, rule in data["rules"].items()
            },
        )

    def save(self, path: str | pathlib.Path) -> None:
        """Write the schedule to a JSON file."""
        pathlib.Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "ChaosSchedule":
        """Read a schedule from a JSON file (with an actionable error)."""
        p = pathlib.Path(path)
        try:
            data = json.loads(p.read_text())
        except FileNotFoundError:
            raise ValueError(f"chaos schedule {p} does not exist") from None
        except json.JSONDecodeError as exc:
            raise ValueError(f"chaos schedule {p} is not valid JSON: {exc}") from exc
        return cls.from_dict(data)
