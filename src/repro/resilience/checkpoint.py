"""Checkpoint/resume for long measurement and evaluation campaigns.

A checkpoint is one JSON file recording which units of a campaign (baseline
``(c, f)`` points, evaluation chunks, search chunks) completed and what
they produced.  Guarantees:

* **Atomic writes** — the file is rewritten through a temp file +
  :func:`os.replace`, so a crash mid-write leaves the previous valid
  checkpoint, never a torn one.
* **Fingerprinted identity** — every checkpoint embeds a digest of the
  campaign's full identity (model parameters, space, seeds, options).
  Resuming against a different campaign is refused with an actionable
  :class:`CheckpointError` instead of silently mixing results.
* **Exact resume** — payloads are plain JSON; Python floats round-trip
  JSON exactly, so values read back from a checkpoint are bit-identical
  to the values written, and a resumed campaign reproduces an
  uninterrupted one bit for bit (pinned by the golden chaos fixtures).
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from typing import Any

from repro import obs

#: Format version written into every checkpoint; bump on schema changes.
FORMAT_VERSION = 1

KIND = "repro_checkpoint"


class CheckpointError(RuntimeError):
    """A checkpoint file is unusable for the requested campaign."""


def fingerprint(identity: object) -> str:
    """Stable digest of a JSON-serializable campaign identity."""
    text = json.dumps(identity, sort_keys=True, default=str)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def atomic_write_json(path: pathlib.Path, document: dict[str, Any]) -> None:
    """Write ``document`` to ``path`` atomically (temp file + rename)."""
    tmp = path.with_name(f".{path.name}.tmp{os.getpid()}")
    tmp.write_text(json.dumps(document, sort_keys=True) + "\n")
    os.replace(tmp, path)


class Checkpoint:
    """One campaign's completed-unit ledger, persisted after every unit."""

    def __init__(
        self,
        path: str | pathlib.Path,
        task: str,
        digest: str,
        completed: dict[str, Any] | None = None,
    ) -> None:
        self.path = pathlib.Path(path)
        self.task = task
        self.digest = digest
        self._completed: dict[str, Any] = completed or {}
        self.resumed = len(self._completed)

    @classmethod
    def open(cls, path: str | pathlib.Path, task: str, digest: str) -> "Checkpoint":
        """Open (resuming) or create the checkpoint for a campaign.

        Raises :class:`CheckpointError` when the file exists but is not a
        valid checkpoint, records a different task, or fingerprints a
        different campaign configuration.
        """
        p = pathlib.Path(path)
        if not p.exists():
            return cls(p, task, digest)
        try:
            data = json.loads(p.read_text())
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise CheckpointError(
                f"checkpoint {p} is not valid JSON ({exc}); delete it to "
                "start the campaign from scratch"
            ) from exc
        if not isinstance(data, dict) or data.get("kind") != KIND:
            raise CheckpointError(
                f"checkpoint {p} is not a repro checkpoint; delete it to "
                "start the campaign from scratch"
            )
        if data.get("format_version") != FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint {p} uses unsupported format version "
                f"{data.get('format_version')!r}; delete it to re-run"
            )
        if data.get("task") != task:
            raise CheckpointError(
                f"checkpoint {p} belongs to task {data.get('task')!r}, not "
                f"{task!r}; point --checkpoint at a fresh file"
            )
        if data.get("fingerprint") != digest:
            raise CheckpointError(
                f"checkpoint {p} was written for a different {task} "
                "configuration (model, space, seed or options changed); "
                "delete it or point --checkpoint at a fresh file"
            )
        ck = cls(p, task, digest, completed=dict(data.get("completed", {})))
        if ck.resumed:
            obs.add("resilience.checkpoint.resumes")
            obs.add("resilience.checkpoint.resumed_units", ck.resumed)
        return ck

    def __len__(self) -> int:
        return len(self._completed)

    def get(self, key: str) -> Any | None:
        """The recorded payload for ``key``, or ``None`` if not completed."""
        return self._completed.get(key)

    def record(self, key: str, payload: Any) -> None:
        """Mark one unit complete and persist the checkpoint atomically."""
        self._completed[key] = payload
        obs.add("resilience.checkpoint.units_saved")
        atomic_write_json(
            self.path,
            {
                "format_version": FORMAT_VERSION,
                "kind": KIND,
                "task": self.task,
                "fingerprint": self.digest,
                "completed": self._completed,
            },
        )


# ----------------------------------------------------------------------
# Prediction serialization (search checkpoints)
# ----------------------------------------------------------------------


def prediction_to_dict(pred) -> dict[str, Any]:
    """JSON form of a :class:`~repro.core.model.Prediction`."""
    t, e, cfg = pred.time, pred.energy, pred.config
    return {
        "nodes": cfg.nodes,
        "cores": cfg.cores,
        "frequency_hz": cfg.frequency_hz,
        "class_name": pred.class_name,
        "time": {
            "t_cpu_s": t.t_cpu_s,
            "t_mem_s": t.t_mem_s,
            "t_net_service_s": t.t_net_service_s,
            "t_net_wait_s": t.t_net_wait_s,
            "utilization_baseline": t.utilization_baseline,
            "rho_network": t.rho_network,
            "saturated": t.saturated,
        },
        "energy": {
            "cpu_j": e.cpu_j,
            "mem_j": e.mem_j,
            "net_j": e.net_j,
            "idle_j": e.idle_j,
        },
    }


def prediction_from_dict(data: dict[str, Any]):
    """Rebuild a :class:`~repro.core.model.Prediction` bit-identically."""
    from repro.core.energy_model import EnergyBreakdown
    from repro.core.model import Prediction
    from repro.core.time_model import TimeBreakdown
    from repro.machines.spec import Configuration

    return Prediction(
        config=Configuration(
            nodes=int(data["nodes"]),
            cores=int(data["cores"]),
            frequency_hz=float(data["frequency_hz"]),
        ),
        class_name=data["class_name"],
        time=TimeBreakdown(**data["time"]),
        energy=EnergyBreakdown(**data["energy"]),
    )
