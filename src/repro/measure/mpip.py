"""mpiP-style lightweight MPI profiling (paper §III-E1).

mpiP links into the application and aggregates, per rank, how many MPI
calls were made and how many bytes each moved — "lightweight" because it
keeps only aggregate statistics, not traces.  From its report the paper
extracts the communication characteristics η (message count) and ν (bytes
per message).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import resilience
from repro.simulate.results import RunResult


@dataclass(frozen=True)
class MpiPReport:
    """Aggregate MPI statistics for one run.

    ``eta_per_process_iter`` is the paper's η normalized per process per
    iteration (the form the communication scaling laws are fitted in);
    ``nu_bytes`` is the mean per-message volume ν.
    """

    nodes: int
    iterations: int
    total_messages: float
    total_bytes: float

    @property
    def eta_per_process_iter(self) -> float:
        """Messages per logical process per iteration."""
        if self.nodes == 0 or self.iterations == 0:
            return 0.0
        return self.total_messages / (self.nodes * self.iterations)

    @property
    def volume_per_process_iter(self) -> float:
        """Bytes per logical process per iteration."""
        if self.nodes == 0 or self.iterations == 0:
            return 0.0
        return self.total_bytes / (self.nodes * self.iterations)

    @property
    def nu_bytes(self) -> float:
        """Mean message volume ν in bytes."""
        if self.total_messages == 0:
            return 0.0
        return self.total_bytes / self.total_messages


def profile_run(run: RunResult, iterations: int) -> MpiPReport:
    """Build the mpiP report for a run (the profiler sees exact counts)."""
    report = MpiPReport(
        nodes=run.config.nodes,
        iterations=iterations,
        total_messages=run.messages.total_messages,
        total_bytes=run.messages.total_bytes,
    )
    if not resilience.active():
        return report
    return resilience.call(
        "mpip",
        (run.cluster, run.program, run.class_name, run.config.label()),
        lambda: report,
        corrupt=_corrupt_report,
    )


def _corrupt_report(report: MpiPReport, factor: float) -> MpiPReport:
    """A corrupted report: byte totals scaled (message counts are robust)."""
    return MpiPReport(
        nodes=report.nodes,
        iterations=report.iterations,
        total_messages=report.total_messages,
        total_bytes=report.total_bytes * factor,
    )
