"""Wall-clock measurement — the ``time`` command (paper §IV-B).

The system ``time`` command reports elapsed time at centisecond resolution;
the quantization matters only for very short runs but is modeled for
fidelity.
"""

from __future__ import annotations

from repro import resilience
from repro.simulate.results import RunResult

#: ``time`` reports two decimal places.
RESOLUTION_S = 0.01


def measure_wall_time(run: RunResult) -> float:
    """Wall time of a run as the ``time`` command would report it."""
    wall = round(run.wall_time_s / RESOLUTION_S) * RESOLUTION_S
    if not resilience.active():
        return wall
    return resilience.call(
        "timecmd",
        (
            run.cluster,
            run.program,
            run.class_name,
            run.config.label(),
            resilience.value_token(run.wall_time_s),
        ),
        lambda: wall,
        corrupt=lambda value, factor: value * factor,
    )
