"""Wall-clock measurement — the ``time`` command (paper §IV-B).

The system ``time`` command reports elapsed time at centisecond resolution;
the quantization matters only for very short runs but is modeled for
fidelity.
"""

from __future__ import annotations

from repro.simulate.results import RunResult

#: ``time`` reports two decimal places.
RESOLUTION_S = 0.01


def measure_wall_time(run: RunResult) -> float:
    """Wall time of a run as the ``time`` command would report it."""
    return round(run.wall_time_s / RESOLUTION_S) * RESOLUTION_S
