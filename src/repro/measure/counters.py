"""Hardware performance-counter interface (paper §III-E1).

The paper reads work cycles, memory stall cycles and similar quantities
"using hardware performance counters", which are "non-intrusive with
respect to the execution of the application".  The simulated counters are
exact accumulators plus the small multiplexing error real PMUs exhibit when
more events are programmed than hardware counters exist.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import resilience
from repro import rng as rng_mod
from repro.simulate.results import RunResult

#: Relative error from PMU event multiplexing / sampling.
MULTIPLEX_ERROR = 0.01


@dataclass(frozen=True)
class CounterReading:
    """One PMU read-out: the paper's baseline-execution artefacts.

    Cycle quantities are per-core averages (the form Eqs. 2-7 consume).
    """

    instructions: float
    work_cycles: float
    nonmem_stall_cycles: float
    mem_stall_cycles: float
    utilization: float

    @property
    def useful_cycles(self) -> float:
        """``w + b`` (Eq. 3)."""
        return self.work_cycles + self.nonmem_stall_cycles


def read_counters(
    run: RunResult,
    rng: np.random.Generator | None = None,
    root_seed: int = rng_mod.DEFAULT_ROOT_SEED,
) -> CounterReading:
    """PMU-observed counters for a run (deterministic per run identity)."""
    if rng is None:
        rng = rng_mod.derive(
            root_seed,
            "pmu",
            run.cluster,
            run.program,
            run.class_name,
            run.config.label(),
        )
    c = run.counters

    def observe(value: float) -> float:
        return value * (1.0 + rng.normal(0.0, MULTIPLEX_ERROR))

    reading = CounterReading(
        instructions=observe(c.instructions),
        work_cycles=observe(c.work_cycles),
        nonmem_stall_cycles=observe(c.nonmem_stall_cycles),
        mem_stall_cycles=observe(c.mem_stall_cycles),
        utilization=float(np.clip(observe(c.utilization), 0.0, 1.0)),
    )
    if not resilience.active():
        return reading
    # The reading is computed first (consuming the PMU noise stream exactly
    # as an undisturbed campaign would), then routed through the resilience
    # layer as an idempotent result: re-reading a retried sample returns the
    # same counters.  The value token distinguishes repetitions of the same
    # (c, f) point, which carry no run index of their own.
    return resilience.call(
        "counters",
        (
            run.cluster,
            run.program,
            run.class_name,
            run.config.label(),
            resilience.value_token(reading.work_cycles),
        ),
        lambda: reading,
        corrupt=_corrupt_reading,
    )


def _corrupt_reading(reading: CounterReading, factor: float) -> CounterReading:
    """A corrupted PMU read-out: cycle accumulators scaled, ratios kept."""
    return CounterReading(
        instructions=reading.instructions * factor,
        work_cycles=reading.work_cycles * factor,
        nonmem_stall_cycles=reading.nonmem_stall_cycles * factor,
        mem_stall_cycles=reading.mem_stall_cycles * factor,
        utilization=reading.utilization,
    )
