"""NetPIPE-style network characterization (paper §III-E2, Fig. 3).

NetPIPE ping-pongs messages of exponentially growing sizes between two
nodes and reports per-size latency and throughput.  The paper uses it to
establish that MPI over TCP reaches only ~90 Mbps on the 100 Mbps link —
the ``B`` (communication throughput) input of the model.

The exchange is simulated on the event engine at MTU-frame granularity:
each frame is serialized by the sending NIC (per-message protocol overhead
is charged once, on the first frame), store-and-forwarded by the switch,
and delivered through the receiving link; frames pipeline across the two
servers, so large transfers asymptote to the link's effective bandwidth
while small ones are dominated by the protocol latency floor — reproducing
Fig. 3's two regimes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import resilience
from repro import rng as rng_mod
from repro.machines.spec import ClusterSpec
from repro.simulate.engine import FifoServer, Simulator
from repro.units import mbps, to_mbps

#: Default NetPIPE sweep: 1 B to 16 MiB, powers of two.
DEFAULT_SIZES = tuple(2**k for k in range(0, 25))


@dataclass(frozen=True)
class NetpipeResult:
    """Latency/throughput curves over message size (Fig. 3's two series)."""

    message_bytes: np.ndarray
    latency_s: np.ndarray
    throughput_mbps: np.ndarray

    @property
    def peak_throughput_mbps(self) -> float:
        """The achievable-bandwidth plateau (the model's ``B``)."""
        return float(self.throughput_mbps.max())

    def achievable_bandwidth_bytes_per_s(self) -> float:
        """Peak throughput converted to bytes/s for the model."""
        return mbps(self.peak_throughput_mbps)

    def latency_floor_s(self) -> float:
        """Small-message one-way latency floor."""
        return float(self.latency_s.min())


def _one_way_time(cluster: ClusterSpec, size: float) -> float:
    """Event-driven one-way transfer time for one message."""
    nic = cluster.node.nic
    switch = cluster.switch
    frames = max(1, int(np.ceil(size / nic.mtu_bytes)))
    frame_bytes = size / frames

    sim = Simulator()
    sender = FifoServer(sim)
    receiver = FifoServer(sim)
    done: list[float] = []

    frame_link_time = frame_bytes / nic.effective_bandwidth

    def deliver(_wait: float, completion: float) -> None:
        done.append(completion)

    def at_switch(_wait: float, _completion: float) -> None:
        # store-and-forward, then the receiving link serializes the frame
        def after_forward() -> None:
            receiver.submit(frame_link_time, deliver)

        sim.schedule(switch.forwarding_latency_s, after_forward)

    def post_frame(index: int) -> None:
        overhead = nic.per_message_overhead_s if index == 0 else 0.0

        def start() -> None:
            sender.submit(frame_link_time, at_switch)

        sim.schedule(overhead, start)

    for k in range(frames):
        post_frame(k)
    sim.run()
    return max(done)


def run_netpipe(
    cluster: ClusterSpec,
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    repetitions: int = 3,
    rng: np.random.Generator | None = None,
    root_seed: int = rng_mod.DEFAULT_ROOT_SEED,
) -> NetpipeResult:
    """Run the characterization sweep on a cluster's network."""
    if rng is None:
        rng = rng_mod.derive(root_seed, "netpipe", cluster.name)
    latencies = np.empty(len(sizes))
    for i, size in enumerate(sizes):
        base = _one_way_time(cluster, float(size))
        # OS scheduling jitter on each timed ping
        observed = base * (1.0 + np.abs(rng.normal(0.0, 0.01, size=repetitions)))
        latencies[i] = observed.mean()
    if resilience.active():
        # All latencies are computed first (so the jitter stream is consumed
        # exactly as in an undisturbed sweep), then each size's timing is
        # routed through the resilience layer.  Sizes whose pings stay lost
        # after every retry are dropped from the curve: the bandwidth
        # plateau and latency floor survive on the remaining points.
        sizes, latencies = _resilient_sizes(cluster, sizes, latencies)
    sizes_arr = np.asarray(sizes, dtype=np.float64)
    throughput = to_mbps(sizes_arr / latencies)
    return NetpipeResult(
        message_bytes=sizes_arr,
        latency_s=latencies,
        throughput_mbps=throughput,
    )


def _resilient_sizes(
    cluster: ClusterSpec, sizes: tuple[int, ...], latencies: np.ndarray
) -> tuple[tuple[int, ...], np.ndarray]:
    """Per-size resilience pass: retry, degrade, or fail actionably."""
    context = resilience.get_context()
    surviving_sizes: list[int] = []
    surviving_lat: list[float] = []
    for i, size in enumerate(sizes):
        try:
            lat = resilience.call(
                "netpipe",
                (cluster.name, f"size={size}"),
                lambda value=float(latencies[i]): value,
                corrupt=lambda value, factor: value * factor,
            )
        except resilience.SampleLost:
            if context is not None:
                context.note_lost_unit("netpipe", f"size={size}")
            continue
        surviving_sizes.append(size)
        surviving_lat.append(lat)
    if len(surviving_sizes) < 2:
        raise resilience.ResilienceError(
            f"NetPIPE lost all but {len(surviving_sizes)} of {len(sizes)} "
            "message sizes; need at least 2 to characterize the network — "
            "raise --retries or relax the chaos schedule"
        )
    return tuple(surviving_sizes), np.asarray(surviving_lat, dtype=np.float64)
