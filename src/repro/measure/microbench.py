"""Power-characterization micro-benchmarks (paper §III-E3).

The paper develops "benchmarks that stress the processor pipeline to
measure active and stall CPU power ... for the complete range of cores (c)
and frequencies (f)".  The procedure, replicated here:

1. measure the idle node with the wall meter → ``P_sys,idle``;
2. pin ``c`` spinning compute threads at frequency ``f``, measure wall
   power, subtract idle, divide by ``c`` → per-core *active* power;
3. repeat with a pointer-chasing loop that keeps cores stalled on memory →
   per-core *stall* power;
4. take ``P_mem`` from JEDEC datasheet values and measure ``P_net``
   directly.

Every reading passes through the wall meter's error model, so the
resulting :class:`~repro.machines.power.PowerTable` differs from the true
:class:`~repro.machines.power.NodePowerModel` by a bounded offset — the
paper's third source of validation inaccuracy (§IV-C: up to 0.4 W on the
ARM node and 2 W on Xeon).
"""

from __future__ import annotations

import numpy as np

from repro import resilience
from repro import rng as rng_mod
from repro.machines.power import PowerTable
from repro.machines.spec import ClusterSpec


def _meter(rng: np.random.Generator, true_w: float, abs_error_w: float) -> float:
    """One wall-power reading: accuracy-class bias + absolute offset."""
    relative = 1.0 + rng.normal(0.0, 0.008)
    offset = rng.uniform(-abs_error_w, abs_error_w)
    return max(0.05, true_w * relative + offset)


def characterize_power(
    cluster: ClusterSpec,
    abs_error_w: float | None = None,
    rng: np.random.Generator | None = None,
    root_seed: int = rng_mod.DEFAULT_ROOT_SEED,
) -> PowerTable:
    """Run the full power-characterization campaign on one node.

    ``abs_error_w`` bounds the per-reading absolute meter offset; the
    default scales with node size (≈2 W for the Xeon node, ≈0.4 W for ARM,
    matching the paper's observed variability).
    """
    power = cluster.node.power
    if abs_error_w is None:
        abs_error_w = max(0.2, 0.015 * power.node_peak_w(cluster.node.max_cores, cluster.node.core.fmax))
    if rng is None:
        rng = rng_mod.derive(root_seed, "powerbench", cluster.name)

    idle_measured = _meter(rng, power.sys_idle_w, abs_error_w)

    active: dict[tuple[int, float], float] = {}
    stall: dict[tuple[int, float], float] = {}
    for c in cluster.node.core_counts:
        for f in cluster.frequencies_hz:
            # spin benchmark: c cores executing register-only work
            spin_wall = power.sys_idle_w + c * power.core_active_w(f) + power.uncore_w(c)
            active[(c, f)] = max(
                0.01, (_meter(rng, spin_wall, abs_error_w) - idle_measured) / c
            )
            # pointer-chase benchmark: c cores stalled on DRAM; the DRAM
            # subsystem is necessarily active during the measurement, so the
            # regression attributes (P_mem / c) into the per-core figure —
            # a small, realistic characterization artefact.
            chase_wall = (
                power.sys_idle_w
                + c * power.core_stall_w(f)
                + power.uncore_w(c)
                + power.mem_active_w
            )
            stall[(c, f)] = max(
                0.01,
                (_meter(rng, chase_wall, abs_error_w) - idle_measured - power.mem_active_w)
                / c,
            )

    # P_mem from JEDEC sheet values: nominally exact, small tolerance
    mem_w = power.mem_active_w * (1.0 + rng.normal(0.0, 0.02))
    # P_net measured directly with a line-rate blast
    net_w = max(0.05, _meter(rng, power.net_active_w + power.sys_idle_w, abs_error_w) - idle_measured)

    if resilience.active():
        # All meter draws happened above in the undisturbed order; the
        # resilience pass only decides which recorded readings survive.
        idle_measured, active, stall, mem_w, net_w = _resilient_power(
            cluster, idle_measured, active, stall, mem_w, net_w
        )

    return PowerTable(
        core_active_w=active,
        core_stall_w=stall,
        mem_w=mem_w,
        net_w=net_w,
        sys_idle_w=idle_measured,
    )


def _scale(value: float, factor: float) -> float:
    return value * factor


def _resilient_power(
    cluster: ClusterSpec,
    idle_measured: float,
    active: dict[tuple[int, float], float],
    stall: dict[tuple[int, float], float],
    mem_w: float,
    net_w: float,
) -> tuple[float, dict, dict, float, float]:
    """Resilience pass over the power campaign's recorded readings.

    The scalar readings (idle, memory, network) are required — losing one
    raises :class:`~repro.resilience.policy.SampleLost`.  Per-``(c, f)``
    spin/chase points degrade: a point whose readings stay lost is dropped
    from both tables, as long as every core count keeps at least one
    frequency (the nearest-frequency lookup in
    :class:`~repro.machines.power.PowerTable` needs an exact core match).
    """
    context = resilience.get_context()
    name = cluster.name
    idle_out = resilience.call(
        "powerbench", (name, "idle"), lambda: idle_measured, corrupt=_scale
    )
    mem_out = resilience.call(
        "powerbench", (name, "mem"), lambda: mem_w, corrupt=_scale
    )
    net_out = resilience.call(
        "powerbench", (name, "net"), lambda: net_w, corrupt=_scale
    )
    active_out: dict[tuple[int, float], float] = {}
    stall_out: dict[tuple[int, float], float] = {}
    for (c, f), active_w in active.items():
        tokens = (name, f"c={c}", f"f={f:.0f}")
        try:
            active_out[(c, f)] = resilience.call(
                "powerbench",
                (*tokens, "active"),
                lambda value=active_w: value,
                corrupt=_scale,
            )
            stall_out[(c, f)] = resilience.call(
                "powerbench",
                (*tokens, "stall"),
                lambda value=stall[(c, f)]: value,
                corrupt=_scale,
            )
        except resilience.SampleLost:
            # drop the whole point from both tables so they stay aligned
            active_out.pop((c, f), None)
            if context is not None:
                context.note_lost_unit("powerbench", f"c={c}@f={f:.0f}")
            continue
    missing = sorted(
        {c for c, _ in active} - {c for c, _ in active_out}
    )
    if missing:
        raise resilience.ResilienceError(
            "power characterization lost every (c, f) point for core "
            f"count(s) {missing}; the model cannot interpolate across core "
            "counts — raise --retries or relax the chaos schedule"
        )
    return idle_out, active_out, stall_out, mem_out, net_out
