"""Measurement instrumentation (paper Section III-E "Model Inputs").

Thin, faithful stand-ins for the paper's measurement tools, each reading
only what its physical counterpart could read:

* :mod:`repro.measure.timecmd`  — the ``time`` command (wall clock).
* :mod:`repro.measure.wattsup`  — the WattsUp wall meter (total energy and
  average power only, with meter error).
* :mod:`repro.measure.counters` — hardware performance counters
  (instructions, work/stall cycles, utilization).
* :mod:`repro.measure.mpip`     — the mpiP lightweight MPI profiler
  (message counts η and volumes ν).
* :mod:`repro.measure.netpipe`  — NetPIPE ping-pong network
  characterization (Fig. 3).
* :mod:`repro.measure.microbench` — pipeline-stress micro-benchmarks that
  characterize active/stall core power across (c, f).
* :mod:`repro.measure.baseline` — the single-node baseline-execution sweep
  that feeds the analytical model.
"""

from repro.measure.baseline import BaselinePoint, BaselineSweep, CommProfile, run_baseline_sweep, profile_communication
from repro.measure.counters import CounterReading, read_counters
from repro.measure.microbench import characterize_power
from repro.measure.mpip import MpiPReport, profile_run
from repro.measure.netpipe import NetpipeResult, run_netpipe
from repro.measure.timecmd import measure_wall_time
from repro.measure.wattsup import MeterReading, read_meter

__all__ = [
    "BaselinePoint",
    "BaselineSweep",
    "CommProfile",
    "run_baseline_sweep",
    "profile_communication",
    "CounterReading",
    "read_counters",
    "characterize_power",
    "MpiPReport",
    "profile_run",
    "NetpipeResult",
    "run_netpipe",
    "measure_wall_time",
    "MeterReading",
    "read_meter",
]
