"""Wall-power trace synthesis — the WattsUp meter's 1 Hz log.

The physical meter logs one power sample per second; the paper's Fig. 4
setup records these during every run.  Given a traced execution
(:class:`~repro.simulate.results.IterationTrace`), this module
reconstructs that log: per-iteration energies are attributed from the
run's component totals proportionally to each iteration's phase times,
then resampled onto the meter's sampling grid.

The reconstruction is exact in aggregate (the trace integrates back to
the run's total energy) and faithful in shape (compute-heavy iterations
draw more power than network-wait stretches), which the tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import resilience
from repro.simulate.results import RunResult


@dataclass(frozen=True)
class PowerTrace:
    """A reconstructed wall-power log for the whole cluster."""

    times_s: np.ndarray
    watts: np.ndarray

    def energy_j(self) -> float:
        """Integral of the trace (trapezoid-free: samples are averages
        over their interval)."""
        if self.times_s.size < 2:
            return 0.0
        dt = np.diff(self.times_s)
        return float(np.sum(self.watts[:-1] * dt))

    @property
    def peak_w(self) -> float:
        """Highest sampled draw."""
        return float(self.watts.max())

    @property
    def mean_w(self) -> float:
        """Time-weighted mean draw."""
        if self.times_s.size < 2:
            return float(self.watts.mean())
        return self.energy_j() / float(self.times_s[-1] - self.times_s[0])


def synthesize_power_trace(
    run: RunResult, sample_period_s: float = 1.0
) -> PowerTrace:
    """Reconstruct the wall-power log of a traced run.

    Requires the run to carry an :class:`IterationTrace`
    (``collect_trace=True``).  Component energies are attributed to
    iterations proportionally to the phase times that generated them;
    the idle floor follows wall time exactly.
    """
    if run.trace is None:
        raise ValueError("run has no iteration trace; pass collect_trace=True")
    if sample_period_s <= 0:
        raise ValueError("sample period must be positive")
    trace = run.trace
    iter_s = np.asarray(trace.iteration_s, dtype=np.float64)
    compute = np.asarray(trace.compute_s, dtype=np.float64)
    memory = np.asarray(trace.memory_s, dtype=np.float64)
    network = np.asarray(trace.network_s, dtype=np.float64)

    def attribute(total_j: float, weights: np.ndarray) -> np.ndarray:
        s = weights.sum()
        if s <= 0:
            return np.zeros_like(weights)
        return total_j * weights / s

    e = run.energy
    startup_s = max(0.0, run.wall_time_s - float(iter_s.sum()))
    # idle energy splits between startup and iterations by wall time
    idle_rate = e.idle_j / run.wall_time_s
    iter_energy = (
        attribute(e.cpu_active_j, compute)
        + attribute(e.cpu_stall_j, memory)
        + attribute(e.mem_j, memory)
        + attribute(e.net_j, network)
        + idle_rate * iter_s
    )

    # piecewise-constant power per iteration, preceded by the startup span
    spans = np.concatenate([[startup_s], iter_s]) if startup_s > 0 else iter_s
    powers = (
        np.concatenate([[idle_rate], iter_energy / iter_s])
        if startup_s > 0
        else iter_energy / iter_s
    )
    edges = np.concatenate([[0.0], np.cumsum(spans)])

    # resample onto the meter grid: average power over each sample window
    total_time = float(edges[-1])
    grid = np.arange(0.0, total_time, sample_period_s)
    grid = np.append(grid, total_time)
    cum_energy = np.concatenate([[0.0], np.cumsum(powers * spans)])
    sampled_cum = np.interp(grid, edges, cum_energy)
    watts = np.diff(sampled_cum) / np.diff(grid)
    trace_out = PowerTrace(times_s=grid[:-1], watts=watts)
    if not resilience.active():
        return trace_out
    return resilience.call(
        "powertrace",
        (run.cluster, run.program, run.class_name, run.config.label()),
        lambda: trace_out,
        corrupt=lambda t, factor: PowerTrace(
            times_s=t.times_s, watts=t.watts * factor
        ),
    )
