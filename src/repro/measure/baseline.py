"""Baseline-execution campaigns (paper §III-A, §III-E1).

The model's workload inputs come from running the program with a *small*
input on a *single node*, sweeping all (c, f) points and reading the
hardware counters: work cycles ``w_s``, non-memory stalls ``b_s``, memory
stalls ``m_s`` and utilization ``U_s``.  Communication characteristics are
profiled with mpiP on small multi-node runs (two node counts, so the
power-law scaling of η and ν can be fitted rather than assumed).

This module drives those campaigns against a :class:`~repro.simulate.
cluster.SimulatedCluster` exactly as an experimenter would drive a physical
one: repeated runs, averaged counter readings, no access to simulator
internals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro import obs
from repro.machines.spec import Configuration
from repro.measure.counters import CounterReading, read_counters
from repro.measure.mpip import MpiPReport, profile_run
from repro.measure.timecmd import measure_wall_time
from repro.simulate.cluster import SimulatedCluster
from repro.workloads.base import HybridProgram


@dataclass(frozen=True)
class BaselinePoint:
    """Averaged counter measurements at one (c, f) baseline point."""

    cores: int
    frequency_hz: float
    instructions: float
    work_cycles: float
    nonmem_stall_cycles: float
    mem_stall_cycles: float
    utilization: float
    wall_time_s: float

    @classmethod
    def from_readings(
        cls,
        cores: int,
        frequency_hz: float,
        readings: list[CounterReading],
        wall_times: list[float],
    ) -> "BaselinePoint":
        """Average repeated measurements into one point."""
        return cls(
            cores=cores,
            frequency_hz=frequency_hz,
            instructions=float(np.mean([r.instructions for r in readings])),
            work_cycles=float(np.mean([r.work_cycles for r in readings])),
            nonmem_stall_cycles=float(
                np.mean([r.nonmem_stall_cycles for r in readings])
            ),
            mem_stall_cycles=float(np.mean([r.mem_stall_cycles for r in readings])),
            utilization=float(np.mean([r.utilization for r in readings])),
            wall_time_s=float(np.mean(wall_times)),
        )


@dataclass(frozen=True)
class BaselineSweep:
    """Full single-node (c, f) baseline characterization of one program."""

    program: str
    cluster: str
    class_name: str
    iterations: int
    points: Mapping[tuple[int, float], BaselinePoint]

    def point(self, cores: int, frequency_hz: float) -> BaselinePoint:
        """Look up the baseline point nearest to ``(c, f)``."""
        key = min(
            self.points,
            key=lambda k: (abs(k[0] - cores), abs(k[1] - frequency_hz)),
        )
        if key[0] != cores:
            raise KeyError(f"no baseline measurement for c={cores}")
        return self.points[key]


@dataclass(frozen=True)
class CommProfile:
    """mpiP reports at two node counts — enough to fit the scaling laws."""

    program: str
    class_name: str
    reports: tuple[MpiPReport, ...]

    def __post_init__(self) -> None:
        if len(self.reports) < 2:
            raise ValueError("need mpiP reports at >= 2 node counts to fit scaling")
        if len({r.nodes for r in self.reports}) != len(self.reports):
            raise ValueError("mpiP reports must be at distinct node counts")


def run_baseline_sweep(
    cluster: SimulatedCluster,
    program: HybridProgram,
    class_name: str | None = None,
    repetitions: int = 3,
) -> BaselineSweep:
    """Single-node sweep over all (c, f): the paper's baseline executions."""
    cls = class_name or program.reference_class
    spec = cluster.spec
    points: dict[tuple[int, float], BaselinePoint] = {}
    with obs.span("baseline_sweep", program=program.name, class_name=cls) as sp:
        for c in spec.node.core_counts:
            for f in spec.frequencies_hz:
                config = Configuration(nodes=1, cores=c, frequency_hz=f)
                runs = cluster.run_many(
                    program, config, cls, repetitions=repetitions
                )
                readings = [read_counters(r) for r in runs]
                walls = [measure_wall_time(r) for r in runs]
                points[(c, f)] = BaselinePoint.from_readings(
                    c, f, readings, walls
                )
        sp.set(points=len(points), repetitions=repetitions)
    if obs.metrics_enabled():
        obs.add("baseline.runs", len(points) * repetitions)
    return BaselineSweep(
        program=program.name,
        cluster=spec.name,
        class_name=cls,
        iterations=program.iterations(cls),
        points=points,
    )


def profile_communication(
    cluster: SimulatedCluster,
    program: HybridProgram,
    class_name: str | None = None,
    node_counts: tuple[int, ...] = (2, 4),
) -> CommProfile:
    """mpiP profiling runs at small node counts (c=1, fmax)."""
    cls = class_name or program.reference_class
    spec = cluster.spec
    reports = []
    with obs.span("comm_profile", program=program.name, class_name=cls):
        for n in node_counts:
            config = Configuration(
                nodes=n, cores=1, frequency_hz=spec.node.core.fmax
            )
            run = cluster.run(program, config, cls)
            reports.append(profile_run(run, iterations=program.iterations(cls)))
    return CommProfile(program=program.name, class_name=cls, reports=tuple(reports))
