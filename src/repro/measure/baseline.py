"""Baseline-execution campaigns (paper §III-A, §III-E1).

The model's workload inputs come from running the program with a *small*
input on a *single node*, sweeping all (c, f) points and reading the
hardware counters: work cycles ``w_s``, non-memory stalls ``b_s``, memory
stalls ``m_s`` and utilization ``U_s``.  Communication characteristics are
profiled with mpiP on small multi-node runs (two node counts, so the
power-law scaling of η and ν can be fitted rather than assumed).

This module drives those campaigns against a :class:`~repro.simulate.
cluster.SimulatedCluster` exactly as an experimenter would drive a physical
one: repeated runs, averaged counter readings, no access to simulator
internals.
"""

from __future__ import annotations

import dataclasses
import pathlib
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro import obs, resilience
from repro.machines.spec import Configuration
from repro.measure.counters import CounterReading, read_counters
from repro.measure.mpip import MpiPReport, profile_run
from repro.measure.timecmd import measure_wall_time
from repro.resilience.checkpoint import Checkpoint, fingerprint
from repro.simulate.cluster import SimulatedCluster
from repro.workloads.base import HybridProgram


@dataclass(frozen=True)
class BaselinePoint:
    """Averaged counter measurements at one (c, f) baseline point."""

    cores: int
    frequency_hz: float
    instructions: float
    work_cycles: float
    nonmem_stall_cycles: float
    mem_stall_cycles: float
    utilization: float
    wall_time_s: float

    @classmethod
    def from_readings(
        cls,
        cores: int,
        frequency_hz: float,
        readings: list[CounterReading],
        wall_times: list[float],
    ) -> "BaselinePoint":
        """Average repeated measurements into one point."""
        return cls(
            cores=cores,
            frequency_hz=frequency_hz,
            instructions=float(np.mean([r.instructions for r in readings])),
            work_cycles=float(np.mean([r.work_cycles for r in readings])),
            nonmem_stall_cycles=float(
                np.mean([r.nonmem_stall_cycles for r in readings])
            ),
            mem_stall_cycles=float(np.mean([r.mem_stall_cycles for r in readings])),
            utilization=float(np.mean([r.utilization for r in readings])),
            wall_time_s=float(np.mean(wall_times)),
        )


@dataclass(frozen=True)
class BaselineSweep:
    """Full single-node (c, f) baseline characterization of one program."""

    program: str
    cluster: str
    class_name: str
    iterations: int
    points: Mapping[tuple[int, float], BaselinePoint]

    def point(self, cores: int, frequency_hz: float) -> BaselinePoint:
        """Look up the baseline point nearest to ``(c, f)``."""
        key = min(
            self.points,
            key=lambda k: (abs(k[0] - cores), abs(k[1] - frequency_hz)),
        )
        if key[0] != cores:
            raise KeyError(f"no baseline measurement for c={cores}")
        return self.points[key]


@dataclass(frozen=True)
class CommProfile:
    """mpiP reports at two node counts — enough to fit the scaling laws."""

    program: str
    class_name: str
    reports: tuple[MpiPReport, ...]

    def __post_init__(self) -> None:
        if len(self.reports) < 2:
            raise ValueError("need mpiP reports at >= 2 node counts to fit scaling")
        if len({r.nodes for r in self.reports}) != len(self.reports):
            raise ValueError("mpiP reports must be at distinct node counts")


def _sweep_checkpoint(
    checkpoint: str | pathlib.Path | Checkpoint | None,
    cluster: SimulatedCluster,
    program: HybridProgram,
    cls: str,
    repetitions: int,
) -> Checkpoint | None:
    """Open (or pass through) the sweep's checkpoint, fingerprinted over
    everything that determines the sweep's outputs."""
    if checkpoint is None or isinstance(checkpoint, Checkpoint):
        return checkpoint
    spec = cluster.spec
    return Checkpoint.open(
        checkpoint,
        "baseline_sweep",
        fingerprint(
            {
                "cluster": spec.name,
                "program": program.name,
                "class_name": cls,
                "repetitions": repetitions,
                "core_counts": list(spec.node.core_counts),
                "frequencies_hz": list(spec.frequencies_hz),
            }
        ),
    )


def run_baseline_sweep(
    cluster: SimulatedCluster,
    program: HybridProgram,
    class_name: str | None = None,
    repetitions: int = 3,
    checkpoint: str | pathlib.Path | Checkpoint | None = None,
) -> BaselineSweep:
    """Single-node sweep over all (c, f): the paper's baseline executions.

    With ``checkpoint``, each completed point is persisted as it finishes
    and a re-invocation resumes, skipping completed points — the resumed
    sweep is bit-identical to an uninterrupted one.  Under an enabled
    resilience context, points whose every repetition stays lost are
    dropped (recorded as lost units), as long as every core count keeps
    at least one frequency.
    """
    cls = class_name or program.reference_class
    spec = cluster.spec
    ck = _sweep_checkpoint(checkpoint, cluster, program, cls, repetitions)
    points: dict[tuple[int, float], BaselinePoint] = {}
    lost_points: list[str] = []
    context = resilience.get_context()
    with obs.span("baseline_sweep", program=program.name, class_name=cls) as sp:
        for c in spec.node.core_counts:
            for f in spec.frequencies_hz:
                key = f"{c}@{f:.0f}"
                if ck is not None:
                    done = ck.get(key)
                    if done is not None:
                        if done.get("lost"):
                            lost_points.append(key)
                        else:
                            points[(c, f)] = BaselinePoint(**done["point"])
                        continue
                config = Configuration(nodes=1, cores=c, frequency_hz=f)
                runs = cluster.run_many(
                    program, config, cls, repetitions=repetitions
                )
                readings: list[CounterReading] = []
                walls: list[float] = []
                for r in runs:
                    try:
                        reading = read_counters(r)
                        wall = measure_wall_time(r)
                    except resilience.SampleLost:
                        continue
                    readings.append(reading)
                    walls.append(wall)
                if not readings:
                    # every repetition of this point stayed lost: degrade
                    lost_points.append(key)
                    if context is not None:
                        context.note_lost_unit("baseline", key)
                    if ck is not None:
                        ck.record(key, {"lost": True})
                    continue
                point = BaselinePoint.from_readings(c, f, readings, walls)
                points[(c, f)] = point
                if ck is not None:
                    ck.record(
                        key, {"lost": False, "point": dataclasses.asdict(point)}
                    )
        sp.set(points=len(points), repetitions=repetitions)
    missing = sorted(
        set(spec.node.core_counts) - {c for c, _ in points}
    )
    if missing:
        raise resilience.ResilienceError(
            "baseline sweep lost every (c, f) point for core count(s) "
            f"{missing}; the model cannot interpolate across core counts — "
            "raise --retries or relax the chaos schedule"
        )
    if obs.metrics_enabled():
        obs.add("baseline.runs", len(points) * repetitions)
    return BaselineSweep(
        program=program.name,
        cluster=spec.name,
        class_name=cls,
        iterations=program.iterations(cls),
        points=points,
    )


def profile_communication(
    cluster: SimulatedCluster,
    program: HybridProgram,
    class_name: str | None = None,
    node_counts: tuple[int, ...] = (2, 4),
) -> CommProfile:
    """mpiP profiling runs at small node counts (c=1, fmax)."""
    cls = class_name or program.reference_class
    spec = cluster.spec
    context = resilience.get_context()
    reports = []
    with obs.span("comm_profile", program=program.name, class_name=cls):
        for n in node_counts:
            config = Configuration(
                nodes=n, cores=1, frequency_hz=spec.node.core.fmax
            )
            run = cluster.run(program, config, cls)
            try:
                reports.append(
                    profile_run(run, iterations=program.iterations(cls))
                )
            except resilience.SampleLost:
                if context is not None:
                    context.note_lost_unit("mpip", f"n={n}")
    if len(reports) < min(2, len(node_counts)):
        raise resilience.ResilienceError(
            f"communication profiling lost all but {len(reports)} of "
            f"{len(node_counts)} mpiP reports; need reports at >= 2 node "
            "counts to fit the scaling laws — raise --retries or relax the "
            "chaos schedule"
        )
    return CommProfile(program=program.name, class_name=cls, reports=tuple(reports))
