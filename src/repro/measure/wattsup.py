"""WattsUp wall-meter model (paper §IV-B, Fig. 4).

The meter integrates true wall power into energy but adds instrument error:
a per-session calibration bias (the meter's ±1.5% accuracy class) plus
1-second sampling quantization.  It observes only the cluster total — the
per-component breakdown inside :class:`~repro.simulate.results.
ComponentEnergy` is invisible to it, exactly as on the physical testbed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import resilience
from repro import rng as rng_mod
from repro.simulate.results import RunResult

#: Accuracy class of the WattsUp Pro (±1.5% of reading).
ACCURACY = 0.015

#: Sampling period of the meter.
SAMPLE_PERIOD_S = 1.0


@dataclass(frozen=True)
class MeterReading:
    """One energy measurement as the wall meter reports it."""

    energy_j: float
    mean_power_w: float
    duration_s: float


def read_meter(
    run: RunResult,
    rng: np.random.Generator | None = None,
    root_seed: int = rng_mod.DEFAULT_ROOT_SEED,
) -> MeterReading:
    """Meter-observed energy for a run.

    With no explicit generator, a stream derived from the run's identity is
    used, so a given run always produces the same reading (re-reading a
    meter does not change the past).
    """
    if rng is None:
        rng = rng_mod.derive(
            root_seed,
            "wattsup",
            run.cluster,
            run.program,
            run.class_name,
            run.config.label(),
        )
    true_energy = run.energy.total_j
    bias = rng.normal(0.0, ACCURACY / 2.0)
    # sampling quantization: the last partial second is dropped or kept whole
    mean_power = true_energy / run.wall_time_s
    sampled_duration = round(run.wall_time_s / SAMPLE_PERIOD_S) * SAMPLE_PERIOD_S
    energy = mean_power * max(sampled_duration, SAMPLE_PERIOD_S) * (1.0 + bias)
    reading = MeterReading(
        energy_j=energy,
        mean_power_w=energy / max(run.wall_time_s, SAMPLE_PERIOD_S),
        duration_s=run.wall_time_s,
    )
    if not resilience.active():
        return reading
    return resilience.call(
        "wattsup",
        (
            run.cluster,
            run.program,
            run.class_name,
            run.config.label(),
            resilience.value_token(reading.energy_j),
        ),
        lambda: reading,
        corrupt=_corrupt_reading,
    )


def _corrupt_reading(reading: MeterReading, factor: float) -> MeterReading:
    """A corrupted meter record: energy (and hence power) scaled."""
    return MeterReading(
        energy_j=reading.energy_j * factor,
        mean_power_w=reading.mean_power_w * factor,
        duration_s=reading.duration_s,
    )
