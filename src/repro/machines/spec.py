"""Hardware specification dataclasses (paper Table 3).

A :class:`ClusterSpec` is a homogeneous cluster of :class:`NodeSpec` nodes
behind a single Ethernet :class:`SwitchSpec` — exactly the system class the
paper's model targets (single NIC per node, UMA shared memory within a node).

The specs are *descriptive*: they carry the physical parameters (frequencies,
bandwidths, cache sizes, instruction-translation factors) that both the
discrete-event simulator (:mod:`repro.simulate`) and the analytical model
(:mod:`repro.core`) consume.  Behaviour lives in those packages.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Sequence

from repro.units import GIB, to_gbps, to_ghz, to_mbps

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.machines.power import NodePowerModel


@dataclass(frozen=True)
class InstructionMix:
    """Dynamic instruction mix of a workload's compute phase.

    Fractions must sum to 1.  The mix drives the per-ISA translation of
    abstract work into cycles: floating-point heavy codes stress different
    pipeline resources than branchy or memory-heavy codes.
    """

    flops: float
    mem: float
    branch: float
    other: float

    def __post_init__(self) -> None:
        total = self.flops + self.mem + self.branch + self.other
        if not abs(total - 1.0) < 1e-9:
            raise ValueError(f"instruction mix must sum to 1, got {total!r}")
        for name in ("flops", "mem", "branch", "other"):
            if getattr(self, name) < 0:
                raise ValueError(f"instruction mix fraction {name} is negative")


@dataclass(frozen=True)
class CoreSpec:
    """A single CPU core's micro-architectural parameters.

    Attributes
    ----------
    name, isa:
        Human-readable identifiers (``"x86_64"``, ``"ARMv7-A"``).
    frequencies_hz:
        Discrete DVFS operating points, ascending, in Hz.
    instruction_scale:
        Dynamic instruction count multiplier relative to the abstract
        (ISA-neutral) instruction count of a workload.  RISC ISAs execute
        more, simpler instructions for the same source program.
    base_cpi:
        Cycles per instruction for useful work with no stalls (captures issue
        width and typical ILP extraction).
    hazard_cpi_flops / hazard_cpi_branch / hazard_cpi_other:
        Non-memory pipeline stall cycles per instruction attributable to
        long-latency FP ops, branch mispredictions and structural hazards.
        These produce the paper's ``b`` (non-memory stall cycles), which the
        paper attributes to "complex out-of-order pipeline architectures".
    l1_kb:
        Per-core L1 data cache size (Table 3).
    line_bytes:
        Cache line size — the memory-system transfer granule.
    memory_overlap:
        Fraction of memory wait time the out-of-order engine hides under
        computation.  This is the intra-node analogue of Eq. 6's overlap:
        only the *non-overlapped* remainder becomes memory stall cycles
        ``m``.  Wide Xeon cores hide much more than the narrow Cortex-A9 —
        the main reason Xeon UCRs (≤0.96) dwarf ARM UCRs (≤0.54) in §V-B.
    mlp:
        Memory-level parallelism: average number of outstanding misses the
        core sustains.  DRAM latency for a burst of ``k`` lines is exposed
        as ``k * latency / mlp`` rather than ``k * latency``.
    cache_stall_cpi:
        Memory-related stall cycles per memory-mix instruction spent waiting
        on the cache hierarchy (L1 misses served by L2/L3).  Unlike DRAM
        waits these stalls are pipeline-coupled — fixed in *cycles*, not in
        wall time — so they depress UCR equally at every frequency.  They
        are counted in the paper's ``m`` (memory-related stalls), and the
        Xeon/ARM contrast in this constant is what caps ARM UCR near 0.54
        while Xeon reaches 0.96 (paper §V-B).
    """

    name: str
    isa: str
    frequencies_hz: tuple[float, ...]
    instruction_scale: float
    base_cpi: float
    hazard_cpi_flops: float
    hazard_cpi_branch: float
    hazard_cpi_other: float
    l1_kb: int
    line_bytes: int = 64
    memory_overlap: float = 0.5
    mlp: float = 2.0
    cache_stall_cpi: float = 0.2

    def __post_init__(self) -> None:
        if not self.frequencies_hz:
            raise ValueError("core must expose at least one frequency")
        if list(self.frequencies_hz) != sorted(self.frequencies_hz):
            raise ValueError("frequencies must be ascending")
        if self.instruction_scale <= 0 or self.base_cpi <= 0:
            raise ValueError("instruction_scale and base_cpi must be positive")
        if not 0 <= self.memory_overlap < 1:
            raise ValueError("memory_overlap must be in [0, 1)")
        if self.mlp < 1:
            raise ValueError("mlp must be at least 1")

    @property
    def fmin(self) -> float:
        """Lowest DVFS operating point in Hz."""
        return self.frequencies_hz[0]

    @property
    def fmax(self) -> float:
        """Highest DVFS operating point in Hz."""
        return self.frequencies_hz[-1]

    def instructions(self, abstract_instructions: float) -> float:
        """Translate ISA-neutral instruction count to this ISA."""
        return abstract_instructions * self.instruction_scale

    def work_cycles(self, abstract_instructions: float) -> float:
        """Useful work cycles ``w`` for the given abstract instruction count."""
        return self.instructions(abstract_instructions) * self.base_cpi

    def hazard_cpi(self, mix: InstructionMix) -> float:
        """Non-memory stall cycles per (native) instruction for a mix."""
        return (
            mix.flops * self.hazard_cpi_flops
            + mix.branch * self.hazard_cpi_branch
            + (mix.other + mix.mem) * self.hazard_cpi_other
        )

    def nonmem_stall_cycles(
        self, abstract_instructions: float, mix: InstructionMix
    ) -> float:
        """Non-memory stall cycles ``b`` (paper Eq. 3) for the mix."""
        return self.instructions(abstract_instructions) * self.hazard_cpi(mix)

    def cache_stall_cycles(
        self, abstract_instructions: float, mix: InstructionMix
    ) -> float:
        """Frequency-invariant memory stall cycles (cache-hierarchy waits).

        Part of the paper's ``m``; the DRAM part (which is fixed in *time*,
        so grows in cycles with ``f``) is added by the memory subsystem
        model on top of this.
        """
        return self.instructions(abstract_instructions) * mix.mem * self.cache_stall_cpi


@dataclass(frozen=True)
class MemorySpec:
    """Per-node shared-memory subsystem (UMA, one controller per node).

    Attributes
    ----------
    capacity_bytes:
        Installed DRAM.
    bandwidth_bytes_per_s:
        Sustainable memory-controller bandwidth — the service rate of the
        contention queue.
    latency_s:
        Uncontended DRAM access latency (seconds) for one cache line.
    l2_kb / l3_kb:
        Shared cache sizes; ``l3_kb`` of 0 means no L3 (ARM node).
    channels:
        Independent controller channels (parallel servers in the queue).
    """

    capacity_bytes: float
    bandwidth_bytes_per_s: float
    latency_s: float
    l2_kb: int
    l3_kb: int = 0
    channels: int = 1

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0 or self.latency_s <= 0:
            raise ValueError("memory bandwidth and latency must be positive")
        if self.channels < 1:
            raise ValueError("memory controller needs at least one channel")

    @property
    def llc_bytes(self) -> float:
        """Last-level cache capacity in bytes (L3 if present, else L2)."""
        return (self.l3_kb if self.l3_kb else self.l2_kb) * 1024.0

    def miss_amplification(self, working_set_bytes: float) -> float:
        """DRAM traffic multiplier for a working set vs. this cache hierarchy.

        Workloads declare their DRAM traffic at a *reference* hierarchy that
        fully captures their reuse; a smaller last-level cache re-fetches data
        that no longer fits.  The multiplier grows with the square root of the
        capacity ratio (empirically a good fit for the blocked stencil /
        linear-algebra kernels in the NPB programs) and saturates at 16x.
        """
        if working_set_bytes <= self.llc_bytes:
            return 1.0
        return float(min(16.0, (working_set_bytes / self.llc_bytes) ** 0.5))

    def line_service_time(self, line_bytes: int) -> float:
        """Seconds for the controller to transfer one cache line."""
        return line_bytes / self.bandwidth_bytes_per_s

    def scaled(self, bandwidth_factor: float) -> "MemorySpec":
        """A copy with memory bandwidth scaled (what-if analysis, §V-B)."""
        from dataclasses import replace

        return replace(
            self,
            bandwidth_bytes_per_s=self.bandwidth_bytes_per_s * bandwidth_factor,
        )


@dataclass(frozen=True)
class NetworkSpec:
    """Per-node NIC and protocol stack parameters.

    The paper's network characterization (Fig. 3) shows MPI-over-TCP reaching
    only ~90 Mbps on a 100 Mbps link; ``protocol_efficiency`` captures that
    ceiling, ``per_message_overhead_s`` captures the latency floor for small
    messages, and ``cpu_cost_per_byte_s``/``cpu_cost_per_message_s`` capture
    the CPU time burned in the stack (which overlaps with computation on one
    side of Eq. 6's ``max``).
    """

    link_bytes_per_s: float
    per_message_overhead_s: float
    protocol_efficiency: float
    cpu_cost_per_message_s: float
    cpu_cost_per_byte_s: float
    mtu_bytes: int = 1500

    def __post_init__(self) -> None:
        if not 0 < self.protocol_efficiency <= 1:
            raise ValueError("protocol efficiency must be in (0, 1]")
        if self.link_bytes_per_s <= 0:
            raise ValueError("link bandwidth must be positive")

    @property
    def effective_bandwidth(self) -> float:
        """Achievable MPI throughput in bytes/s (Fig. 3's plateau)."""
        return self.link_bytes_per_s * self.protocol_efficiency

    def wire_time(self, message_bytes: float) -> float:
        """Time on the wire for one message of the given size."""
        return self.per_message_overhead_s + message_bytes / self.effective_bandwidth


@dataclass(frozen=True)
class SwitchSpec:
    """The shared Ethernet switch all nodes communicate through.

    Modeled as the single server of the paper's M/G/1 network-contention
    queue (Eq. 5): messages from all nodes serialize through it.
    """

    port_bytes_per_s: float
    forwarding_latency_s: float

    def __post_init__(self) -> None:
        if self.port_bytes_per_s <= 0:
            raise ValueError("switch port bandwidth must be positive")


@dataclass(frozen=True)
class NodeSpec:
    """One homogeneous cluster node: cores + UMA memory + single NIC."""

    core: CoreSpec
    max_cores: int
    memory: MemorySpec
    nic: NetworkSpec
    power: "NodePowerModel"

    def __post_init__(self) -> None:
        if self.max_cores < 1:
            raise ValueError("node needs at least one core")

    @property
    def core_counts(self) -> tuple[int, ...]:
        """Configurable active-core counts ``c`` (1..cmax)."""
        return tuple(range(1, self.max_cores + 1))


@dataclass(frozen=True)
class Configuration:
    """One execution configuration ``(n, c, f)`` — paper Section III-A.

    ``n`` nodes each running one logical MPI process of ``c`` OpenMP threads
    pinned to ``c`` active cores clocked at ``f`` Hz (the paper sets the
    number of logical processes l = n and threads per process τ = c).
    """

    nodes: int
    cores: int
    frequency_hz: float

    def __post_init__(self) -> None:
        if self.nodes < 1 or self.cores < 1:
            raise ValueError("configuration needs n >= 1 and c >= 1")
        if self.frequency_hz <= 0:
            raise ValueError("frequency must be positive")

    @property
    def total_threads(self) -> int:
        """Total parallel threads n*c across the cluster."""
        return self.nodes * self.cores

    def label(self, with_frequency: bool = True) -> str:
        """Paper-style label ``(n,c,f[GHz])`` or ``(n,c)``."""
        if with_frequency:
            return f"({self.nodes},{self.cores},{to_ghz(self.frequency_hz):g})"
        return f"({self.nodes},{self.cores})"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.label()


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster: identical nodes behind one switch.

    ``max_nodes`` is the physical testbed size (8 in the paper's validation);
    model-side analyses may extrapolate beyond it (Fig. 8 explores up to 256
    Xeon nodes), which :meth:`configurations` supports via ``node_counts``.
    """

    name: str
    node: NodeSpec
    max_nodes: int
    switch: SwitchSpec
    description: str = ""

    def __post_init__(self) -> None:
        if self.max_nodes < 1:
            raise ValueError("cluster needs at least one node")

    @property
    def frequencies_hz(self) -> tuple[float, ...]:
        """DVFS points of the (homogeneous) cores."""
        return self.node.core.frequencies_hz

    def validate_configuration(
        self, config: Configuration, allow_extrapolation: bool = False
    ) -> None:
        """Raise :class:`ValueError` if ``config`` is not runnable here.

        ``allow_extrapolation`` lifts the physical ``max_nodes`` bound for
        model-side what-if exploration but never the per-node bounds.
        """
        if config.cores > self.node.max_cores:
            raise ValueError(
                f"{config} exceeds {self.node.max_cores} cores/node on {self.name}"
            )
        if not allow_extrapolation and config.nodes > self.max_nodes:
            raise ValueError(
                f"{config} exceeds {self.max_nodes} nodes on {self.name}"
            )
        if not any(
            abs(config.frequency_hz - f) < 1e-3 for f in self.frequencies_hz
        ):
            raise ValueError(
                f"{config} frequency not a DVFS point of {self.name}: "
                f"{self.frequencies_hz}"
            )

    def configurations(
        self,
        node_counts: Sequence[int] | None = None,
        core_counts: Sequence[int] | None = None,
        frequencies_hz: Sequence[float] | None = None,
    ) -> Iterator[Configuration]:
        """Enumerate the (n, c, f) configuration space.

        Defaults enumerate the physical space: n in 1..max_nodes, c in
        1..cores/node, all DVFS points.  Pass explicit sequences to restrict
        (validation sweeps) or extend (model extrapolation) the space.
        """
        ns = node_counts if node_counts is not None else range(1, self.max_nodes + 1)
        cs = core_counts if core_counts is not None else self.node.core_counts
        fs = frequencies_hz if frequencies_hz is not None else self.frequencies_hz
        for n, c, f in itertools.product(ns, cs, fs):
            yield Configuration(nodes=int(n), cores=int(c), frequency_hz=float(f))

    def spec_table(self) -> dict[str, str]:
        """Table 3 row for this cluster (used by the table bench and docs)."""
        mem = self.node.memory
        return {
            "System": self.name,
            "ISA": self.node.core.isa,
            "Nodes": str(self.max_nodes),
            "Cores/node": str(self.node.max_cores),
            "Clock Frequency": "-".join(
                f"{to_ghz(f):g}" for f in (self.frequencies_hz[0], self.frequencies_hz[-1])
            )
            + " GHz",
            "L1 data cache": f"{self.node.core.l1_kb}kB / core",
            "L2 cache": f"{mem.l2_kb // 1024}MB / node" if mem.l2_kb >= 1024 else f"{mem.l2_kb}kB / node",
            "L3 cache": f"{mem.l3_kb // 1024}MB / node" if mem.l3_kb else "NA",
            "Memory": f"{mem.capacity_bytes / GIB:g}GB",
            "I/O bandwidth": (
                f"{to_gbps(self.node.nic.link_bytes_per_s):g}Gbps"
                if to_gbps(self.node.nic.link_bytes_per_s) >= 1.0
                else f"{to_mbps(self.node.nic.link_bytes_per_s):g}Mbps"
            ),
        }
