"""A modern reference cluster: 16-core EPYC-class nodes with 10 GbE.

Not one of the paper's testbeds (Table 3 has only the Xeon E5-2603 and
Cortex-A9 clusters) and therefore *not registered by default* — the
validation campaigns and Table/Figure benches never touch it.  It exists
so users can explore how the 2015 methodology transfers to a current
machine: deeper cache hierarchy, an order of magnitude more memory
bandwidth, wide DVFS range, and much better energy proportionality.

Register it explicitly when wanted::

    from repro.machines.registry import register_cluster
    from repro.machines.epyc import epyc_cluster
    register_cluster("epyc", epyc_cluster)
"""

from __future__ import annotations

from functools import lru_cache

from repro.machines.power import NodePowerModel
from repro.machines.spec import (
    ClusterSpec,
    CoreSpec,
    MemorySpec,
    NetworkSpec,
    NodeSpec,
    SwitchSpec,
)
from repro.units import GIB, KIB, gbps, ghz

#: DVFS operating points (P-states, coarse).
EPYC_FREQUENCIES_GHZ = (1.5, 2.0, 2.5, 3.0, 3.5)


@lru_cache(maxsize=None)
def epyc_cluster(max_nodes: int = 16) -> ClusterSpec:
    """Build the EPYC-class reference cluster spec."""
    core = CoreSpec(
        name="EPYC-class x86",
        isa="x86_64",
        frequencies_hz=tuple(ghz(f) for f in EPYC_FREQUENCIES_GHZ),
        instruction_scale=1.0,
        # very wide core: ~2.5 sustained IPC on HPC kernels
        base_cpi=0.40,
        hazard_cpi_flops=0.15,
        hazard_cpi_branch=0.35,
        hazard_cpi_other=0.10,
        l1_kb=32,
        line_bytes=64,
        memory_overlap=0.70,
        mlp=10.0,
        cache_stall_cpi=0.05,
    )
    memory = MemorySpec(
        capacity_bytes=128 * GIB,
        bandwidth_bytes_per_s=80.0e9,
        latency_s=85e-9,
        l2_kb=8 * KIB,
        l3_kb=64 * KIB,
        channels=8,
    )
    nic = NetworkSpec(
        link_bytes_per_s=gbps(10),
        per_message_overhead_s=12e-6,
        protocol_efficiency=0.95,
        cpu_cost_per_message_s=2e-6,
        cpu_cost_per_byte_s=3e-11,
        mtu_bytes=9000,
    )
    power = NodePowerModel(
        fmax_hz=ghz(3.5),
        core_leakage_w=0.8,
        core_dynamic_w=7.0,
        dvfs_alpha=2.4,
        stall_fraction=0.35,
        uncore_active_w=18.0,
        uncore_per_core_w=0.6,
        mem_active_w=20.0,
        net_active_w=8.0,
        # far better energy proportionality than the 2012-era Xeon node
        sys_idle_w=55.0,
    )
    node = NodeSpec(core=core, max_cores=16, memory=memory, nic=nic, power=power)
    switch = SwitchSpec(port_bytes_per_s=gbps(10), forwarding_latency_s=1e-6)
    return ClusterSpec(
        name="epyc",
        node=node,
        max_nodes=max_nodes,
        switch=switch,
        description="16-node EPYC-class reference cluster, 10 GbE "
        "(beyond-paper machine)",
    )
