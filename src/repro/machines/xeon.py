"""The Intel Xeon E5-2603 validation cluster (paper Table 3, left column).

Eight nodes, each with two quad-core Xeon E5-2603 packages (8 cores/node),
DVFS points 1.2/1.5/1.8 GHz, 32 kB L1/core, 2 MB L2 + 20 MB L3 per node,
8 GB DDR3 and gigabit Ethernet through a single switch.

Micro-architectural and power constants are calibrated to land in the
paper's reported magnitude ranges (execution times of tens to hundreds of
seconds and energies of a few to tens of kJ for the NPB-class workloads in
Figs. 5-8); see DESIGN.md §2 for the calibration stance.
"""

from __future__ import annotations

from functools import lru_cache

from repro.machines.power import NodePowerModel
from repro.machines.spec import (
    ClusterSpec,
    CoreSpec,
    MemorySpec,
    NetworkSpec,
    NodeSpec,
    SwitchSpec,
)
from repro.units import GIB, gbps, ghz

#: DVFS operating points used throughout the paper's Xeon experiments.
XEON_FREQUENCIES_GHZ = (1.2, 1.5, 1.8)

#: Wall-meter power characterization error bound (paper §IV-C: "2W for the
#: Xeon node").
XEON_POWER_ERROR_W = 2.0


@lru_cache(maxsize=None)
def xeon_cluster(max_nodes: int = 8) -> ClusterSpec:
    """Build the Xeon E5-2603 cluster spec.

    ``max_nodes`` defaults to the physical testbed size (8); the Pareto
    analysis of Fig. 8 extrapolates the *model* to 256 nodes without changing
    this spec (see :meth:`ClusterSpec.configurations`).
    """
    core = CoreSpec(
        name="Xeon E5-2603",
        isa="x86_64",
        frequencies_hz=tuple(ghz(f) for f in XEON_FREQUENCIES_GHZ),
        # x86_64 is the ISA-neutral reference: scale 1.0.
        instruction_scale=1.0,
        # Wide out-of-order core: sustains ~1.8 useful IPC on HPC kernels.
        base_cpi=0.55,
        hazard_cpi_flops=0.25,
        hazard_cpi_branch=0.50,
        hazard_cpi_other=0.15,
        l1_kb=32,
        line_bytes=64,
        # Deep OoO window + prefetchers hide most DRAM time under compute.
        memory_overlap=0.60,
        mlp=6.0,
        # L2/L3 hit latency almost fully hidden by the deep OoO window.
        cache_stall_cpi=0.08,
    )
    memory = MemorySpec(
        capacity_bytes=8 * GIB,
        # Sustained DDR3 controller bandwidth (single UMA controller view).
        bandwidth_bytes_per_s=9.0e9,
        latency_s=75e-9,
        l2_kb=2 * 1024,
        l3_kb=20 * 1024,
        channels=2,
    )
    nic = NetworkSpec(
        link_bytes_per_s=gbps(1),
        per_message_overhead_s=60e-6,
        protocol_efficiency=0.93,
        cpu_cost_per_message_s=8e-6,
        cpu_cost_per_byte_s=2e-10,
        mtu_bytes=1500,
    )
    power = NodePowerModel(
        fmax_hz=ghz(1.8),
        core_leakage_w=1.5,
        core_dynamic_w=6.5,
        dvfs_alpha=2.2,
        stall_fraction=0.45,
        uncore_active_w=6.0,
        uncore_per_core_w=0.8,
        mem_active_w=8.0,
        net_active_w=4.0,
        sys_idle_w=48.0,
    )
    node = NodeSpec(core=core, max_cores=8, memory=memory, nic=nic, power=power)
    switch = SwitchSpec(port_bytes_per_s=gbps(1), forwarding_latency_s=5e-6)
    return ClusterSpec(
        name="xeon",
        node=node,
        max_nodes=max_nodes,
        switch=switch,
        description="8-node dual-socket Intel Xeon E5-2603 cluster, 1 GbE",
    )
