"""Machine descriptions: cluster, node, core, memory, network and power specs.

This package encodes Table 3 of the paper (the two validation clusters) as
data, plus the "true" power behaviour of each machine that the simulator
integrates to produce measured energy.  The analytical model never reads the
true power tables directly — it uses *characterized* tables produced by
:mod:`repro.measure.microbench`, which carry the bounded characterization
error the paper discusses in Section IV-C.
"""

from repro.machines.spec import (
    ClusterSpec,
    Configuration,
    CoreSpec,
    InstructionMix,
    MemorySpec,
    NetworkSpec,
    NodeSpec,
    SwitchSpec,
)
from repro.machines.power import NodePowerModel, PowerTable
from repro.machines.xeon import xeon_cluster
from repro.machines.arm import arm_cluster
from repro.machines.registry import get_cluster, list_clusters

__all__ = [
    "ClusterSpec",
    "Configuration",
    "CoreSpec",
    "InstructionMix",
    "MemorySpec",
    "NetworkSpec",
    "NodeSpec",
    "SwitchSpec",
    "NodePowerModel",
    "PowerTable",
    "xeon_cluster",
    "arm_cluster",
    "get_cluster",
    "list_clusters",
]
