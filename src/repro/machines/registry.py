"""Registry of named clusters for CLI / benchmark lookup."""

from __future__ import annotations

from typing import Callable

from repro.machines.arm import arm_cluster
from repro.machines.spec import ClusterSpec
from repro.machines.xeon import xeon_cluster

_FACTORIES: dict[str, Callable[[], ClusterSpec]] = {
    "xeon": xeon_cluster,
    "arm": arm_cluster,
}


def list_clusters() -> list[str]:
    """Names of all registered clusters."""
    return sorted(_FACTORIES)


def get_cluster(name: str) -> ClusterSpec:
    """Look up a cluster spec by name (``"xeon"`` or ``"arm"``)."""
    try:
        return _FACTORIES[name]()
    except KeyError:
        raise KeyError(
            f"unknown cluster {name!r}; available: {list_clusters()}"
        ) from None


def register_cluster(name: str, factory: Callable[[], ClusterSpec]) -> None:
    """Register a user-defined cluster (see examples/custom_machine.py)."""
    if name in _FACTORIES:
        raise ValueError(f"cluster {name!r} already registered")
    _FACTORIES[name] = factory
