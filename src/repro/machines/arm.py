"""The ARM Cortex-A9 validation cluster (paper Table 3, right column).

Eight low-power nodes with quad-core Cortex-A9 SoCs, DVFS points 0.2-1.4 GHz
in 0.3 GHz steps, 32 kB L1/core, 1 MB shared L2, no L3, 1 GB LP-DDR2 and
100 Mbps Ethernet — the class of mobile-derived microservers the paper's
introduction motivates.

The Cortex-A9 is a narrow (2-wide) out-of-order core with a far weaker
memory system than the Xeon node: the constants below encode the paper's
observations that (i) the ARM nodes need ~1.4x the dynamic instructions of
x86 for the same program (RISC translation), and (ii) memory stalls dominate
much earlier, which is why ARM UCRs top out near 0.54 where Xeon reaches 0.96
(paper §V-B).
"""

from __future__ import annotations

from functools import lru_cache

from repro.machines.power import NodePowerModel
from repro.machines.spec import (
    ClusterSpec,
    CoreSpec,
    MemorySpec,
    NetworkSpec,
    NodeSpec,
    SwitchSpec,
)
from repro.units import GIB, ghz, mbps

#: DVFS operating points used throughout the paper's ARM experiments.
ARM_FREQUENCIES_GHZ = (0.2, 0.5, 0.8, 1.1, 1.4)

#: Wall-meter power characterization error bound (paper §IV-C: "0.4W for the
#: ARM node").
ARM_POWER_ERROR_W = 0.4


@lru_cache(maxsize=None)
def arm_cluster(max_nodes: int = 8) -> ClusterSpec:
    """Build the ARM Cortex-A9 cluster spec.

    ``max_nodes`` defaults to the physical testbed size (8); Fig. 9's Pareto
    analysis extrapolates the model to 20 nodes without changing the spec.
    """
    core = CoreSpec(
        name="Cortex-A9",
        isa="ARMv7-A",
        frequencies_hz=tuple(ghz(f) for f in ARM_FREQUENCIES_GHZ),
        # RISC translation: more, simpler instructions than x86_64.
        instruction_scale=1.40,
        # Narrow 2-wide OoO core: ~1 useful IPC on HPC kernels.
        base_cpi=1.00,
        hazard_cpi_flops=0.90,
        hazard_cpi_branch=1.20,
        hazard_cpi_other=0.40,
        l1_kb=32,
        line_bytes=32,
        # Shallow OoO window, weak prefetching: most DRAM time is exposed.
        memory_overlap=0.20,
        mlp=1.6,
        # L1-miss/L2-hit latency largely exposed by the shallow window.
        cache_stall_cpi=5.2,
    )
    memory = MemorySpec(
        capacity_bytes=1 * GIB,
        # Sustained LP-DDR2 bandwidth: an order of magnitude below DDR3.
        bandwidth_bytes_per_s=1.2e9,
        latency_s=120e-9,
        l2_kb=1 * 1024,
        l3_kb=0,
        channels=1,
    )
    nic = NetworkSpec(
        link_bytes_per_s=mbps(100),
        per_message_overhead_s=150e-6,
        # Fig. 3: MPI over TCP plateaus at ~90 Mbps on the 100 Mbps link.
        protocol_efficiency=0.90,
        cpu_cost_per_message_s=30e-6,
        cpu_cost_per_byte_s=8e-9,
        mtu_bytes=1500,
    )
    power = NodePowerModel(
        fmax_hz=ghz(1.4),
        core_leakage_w=0.08,
        core_dynamic_w=0.90,
        dvfs_alpha=2.5,
        stall_fraction=0.40,
        uncore_active_w=0.30,
        uncore_per_core_w=0.05,
        mem_active_w=0.60,
        net_active_w=0.50,
        sys_idle_w=2.6,
    )
    node = NodeSpec(core=core, max_cores=4, memory=memory, nic=nic, power=power)
    switch = SwitchSpec(port_bytes_per_s=mbps(100), forwarding_latency_s=20e-6)
    return ClusterSpec(
        name="arm",
        node=node,
        max_nodes=max_nodes,
        switch=switch,
        description="8-node quad-core ARM Cortex-A9 cluster, 100 Mbps Ethernet",
    )
