"""Node power models and characterized power tables (paper Section III-E3).

Two representations live here:

* :class:`NodePowerModel` — the machine's *true* power behaviour as smooth
  DVFS laws.  Only the simulator integrates this (through
  :mod:`repro.simulate.power`) to produce wall-meter energy measurements.
* :class:`PowerTable` — the *characterized* power parameters the analytical
  model consumes: per-(c, f) active/stall core power plus memory, network and
  system-idle power.  Tables are produced by the micro-benchmarks in
  :mod:`repro.measure.microbench` and therefore carry bounded measurement
  error (paper §IV-C reports up to 0.4 W on ARM and 2 W on Xeon).

The paper classifies core power into *active* (executing work cycles) and
*stall* (memory-related stalls) states, with idle power folded into the
system-level ``P_sys,idle`` (Eq. 12).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np


@dataclass(frozen=True)
class NodePowerModel:
    """True power behaviour of one node.

    Core dynamic power follows the classic DVFS law ``P = P_leak +
    P_dyn * (f / fmax)**alpha`` with ``alpha`` between 1.5 and 3 because
    voltage scales (sub)linearly with frequency.  Stalled cores clock-gate
    part of the pipeline, so stall power is ``stall_fraction`` of the dynamic
    component plus full leakage.

    Attributes
    ----------
    fmax_hz:
        Frequency the dynamic law is normalized to.
    core_leakage_w:
        Per-core static power, frequency-independent.
    core_dynamic_w:
        Per-core dynamic power at ``fmax``.
    dvfs_alpha:
        Exponent of the dynamic-power-vs-frequency law.
    stall_fraction:
        Fraction of dynamic power drawn while stalled on memory.
    uncore_active_w:
        Per-node power of shared uncore (caches, ring/bus) that switches on
        whenever at least one core is active; scales mildly with active core
        count through ``uncore_per_core_w``.
    mem_active_w:
        DRAM + controller power while servicing requests (paper ``P_mem``,
        from JEDEC specs).
    net_active_w:
        NIC power while transmitting/receiving (paper ``P_net``).
    sys_idle_w:
        Whole-node idle power: regulators, storage, idle cores, fans
        (paper ``P_sys,idle``).
    """

    fmax_hz: float
    core_leakage_w: float
    core_dynamic_w: float
    dvfs_alpha: float
    stall_fraction: float
    uncore_active_w: float
    uncore_per_core_w: float
    mem_active_w: float
    net_active_w: float
    sys_idle_w: float

    def __post_init__(self) -> None:
        if self.fmax_hz <= 0:
            raise ValueError("fmax must be positive")
        if not 0 <= self.stall_fraction <= 1:
            raise ValueError("stall_fraction must be in [0, 1]")
        if self.dvfs_alpha < 1:
            raise ValueError("dvfs_alpha below 1 is not physical for CMOS")

    def _dynamic(self, f_hz: float) -> float:
        return self.core_dynamic_w * (f_hz / self.fmax_hz) ** self.dvfs_alpha

    def core_active_w(self, f_hz: float) -> float:
        """Per-core power while executing work cycles at ``f``."""
        return self.core_leakage_w + self._dynamic(f_hz)

    def core_stall_w(self, f_hz: float) -> float:
        """Per-core power while stalled on memory at ``f``."""
        return self.core_leakage_w + self.stall_fraction * self._dynamic(f_hz)

    def uncore_w(self, active_cores: int) -> float:
        """Shared uncore power with ``active_cores`` cores switched on."""
        if active_cores <= 0:
            return 0.0
        return self.uncore_active_w + self.uncore_per_core_w * active_cores

    def node_peak_w(self, cores: int, f_hz: float) -> float:
        """Upper bound on node draw: all cores active, memory and NIC busy."""
        return (
            self.sys_idle_w
            + cores * self.core_active_w(f_hz)
            + self.uncore_w(cores)
            + self.mem_active_w
            + self.net_active_w
        )


@dataclass(frozen=True)
class PowerTable:
    """Characterized power parameters consumed by the analytical model.

    Maps each ``(c, f)`` point measured by the power micro-benchmarks to the
    *effective per-core* active and stall power (uncore power amortized over
    the active cores, matching what a wall-meter regression can actually
    attribute), plus scalar memory / network / idle power.

    Keys of ``core_active_w``/``core_stall_w`` are ``(c, f_hz)`` with ``f_hz``
    rounded to the spec's DVFS points.
    """

    core_active_w: Mapping[tuple[int, float], float]
    core_stall_w: Mapping[tuple[int, float], float]
    mem_w: float
    net_w: float
    sys_idle_w: float

    def _lookup(
        self, table: Mapping[tuple[int, float], float], c: int, f_hz: float
    ) -> float:
        key = min(table, key=lambda k: (abs(k[0] - c), abs(k[1] - f_hz)))
        if key[0] != c:
            raise KeyError(f"no power characterization for c={c}")
        return table[key]

    def active(self, c: int, f_hz: float) -> float:
        """Characterized per-core active power at ``(c, f)``."""
        return self._lookup(self.core_active_w, c, f_hz)

    def stall(self, c: int, f_hz: float) -> float:
        """Characterized per-core stall power at ``(c, f)``."""
        return self._lookup(self.core_stall_w, c, f_hz)

    @classmethod
    def exact(
        cls,
        power: NodePowerModel,
        core_counts: tuple[int, ...],
        frequencies_hz: tuple[float, ...],
    ) -> "PowerTable":
        """Error-free table straight from the true model (for unit tests).

        Uncore power is amortized per active core, mirroring how the
        micro-benchmark regression attributes wall power to cores.
        """
        active: dict[tuple[int, float], float] = {}
        stall: dict[tuple[int, float], float] = {}
        for c in core_counts:
            for f in frequencies_hz:
                amortized_uncore = power.uncore_w(c) / c
                active[(c, f)] = power.core_active_w(f) + amortized_uncore
                stall[(c, f)] = power.core_stall_w(f) + amortized_uncore
        return cls(
            core_active_w=active,
            core_stall_w=stall,
            mem_w=power.mem_active_w,
            net_w=power.net_active_w,
            sys_idle_w=power.sys_idle_w,
        )

    def perturbed(
        self, rng: np.random.Generator, max_error_w: float
    ) -> "PowerTable":
        """A copy with bounded characterization error on every entry.

        Models the paper's §IV-C observation that characterized power values
        differ from true draw by up to ``max_error_w`` (0.4 W ARM, 2 W Xeon).
        The perturbation is uniform in ``[-max_error_w, +max_error_w]`` and
        clipped so no entry goes non-positive.
        """

        def jitter(v: float) -> float:
            return max(1e-3, v + rng.uniform(-max_error_w, max_error_w))

        return PowerTable(
            core_active_w={k: jitter(v) for k, v in self.core_active_w.items()},
            core_stall_w={k: jitter(v) for k, v in self.core_stall_w.items()},
            mem_w=jitter(self.mem_w),
            net_w=jitter(self.net_w),
            sys_idle_w=jitter(self.sys_idle_w),
        )
