"""Counters and histograms with a Prometheus-style text exporter.

The registry is deliberately tiny: metrics are identified by dotted
names (``vectorized.cache.hits``), values are plain Python numbers, and
the only export formats are a JSON-able snapshot and the Prometheus
text exposition format (dots become underscores, prefixed ``repro_``).
No background threads, no global state — the enabled registry lives in
:mod:`repro.obs` and every hot-path call is a no-op while disabled.

Labeled counters use a brace-name convention: a counter named
``plan_selected{strategy="vectorized"}`` is one independent counter in
the registry, but the exporter groups every name sharing the base
before the ``{`` under a single ``# TYPE`` family and renders each as a
labeled sample — ``repro_plan_selected_total{strategy="vectorized"} 3``.
The label text between the braces is emitted verbatim, so callers must
supply well-formed ``key="value"`` pairs.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field

#: Default histogram buckets (seconds): spans µs-scale predictions to
#: multi-second characterization campaigns.
DEFAULT_BUCKETS = (
    1e-6,
    1e-5,
    1e-4,
    1e-3,
    1e-2,
    1e-1,
    1.0,
    10.0,
    60.0,
)


@dataclass
class Counter:
    """A monotonically increasing counter."""

    name: str
    help: str = ""
    value: float = 0.0

    def inc(self, n: float = 1.0) -> None:
        """Add ``n`` (must be non-negative) to the counter."""
        if n < 0:
            raise ValueError(f"counter {self.name} cannot decrease (n={n})")
        self.value += n


@dataclass
class Histogram:
    """A fixed-bucket histogram with count/sum/min/max summaries."""

    name: str
    help: str = ""
    buckets: tuple[float, ...] = DEFAULT_BUCKETS
    bucket_counts: list[int] = field(default_factory=list)
    count: int = 0
    sum: float = 0.0
    min: float = math.inf
    max: float = -math.inf

    def __post_init__(self) -> None:
        if tuple(self.buckets) != tuple(sorted(self.buckets)):
            raise ValueError("histogram buckets must be sorted ascending")
        if not self.bucket_counts:
            self.bucket_counts = [0] * (len(self.buckets) + 1)  # +Inf bucket

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        for i, edge in enumerate(self.buckets):
            if value <= edge:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        """Mean of all observations (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0


def _prom_name(name: str) -> str:
    return "repro_" + name.replace(".", "_").replace("-", "_")


def _prom_value(v: float) -> str:
    if v == math.inf:
        return "+Inf"
    if v == -math.inf:
        return "-Inf"
    return repr(v) if isinstance(v, float) and not v.is_integer() else str(int(v))


class MetricsRegistry:
    """Named counters and histograms, created on first use."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}  # guarded-by: _create_lock (writes)
        self._histograms: dict[str, Histogram] = {}  # guarded-by: _create_lock (writes)
        # Creation-only lock: the hit path stays lock-free (a plain dict
        # read), but concurrent first-use of the same name must not build
        # two Counter/Histogram objects and silently drop one's updates.
        self._create_lock = threading.Lock()

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the counter ``name``."""
        c = self._counters.get(name)
        if c is None:
            with self._create_lock:
                c = self._counters.get(name)
                if c is None:
                    c = self._counters[name] = Counter(name=name, help=help)
        return c

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Get or create the histogram ``name``."""
        h = self._histograms.get(name)
        if h is None:
            with self._create_lock:
                h = self._histograms.get(name)
                if h is None:
                    h = self._histograms[name] = Histogram(
                        name=name, help=help, buckets=tuple(buckets)
                    )
        return h

    def counter_value(self, name: str) -> float:
        """Current value of a counter (0.0 if it never fired)."""
        c = self._counters.get(name)
        return c.value if c is not None else 0.0

    def clear(self) -> None:
        """Drop every metric."""
        # Unlocked, this races the double-checked creation path: a
        # counter created between the two clears keeps taking updates
        # that the next snapshot never sees.
        with self._create_lock:
            self._counters.clear()
            self._histograms.clear()

    def snapshot(self) -> dict:
        """JSON-able dump of every metric."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "histograms": {
                n: {
                    "count": h.count,
                    "sum": h.sum,
                    "mean": h.mean,
                    "min": None if h.count == 0 else h.min,
                    "max": None if h.count == 0 else h.max,
                    "buckets": {
                        _prom_value(edge): cum
                        for edge, cum in zip(
                            (*h.buckets, math.inf), _cumulative(h.bucket_counts)
                        )
                    },
                }
                for n, h in sorted(self._histograms.items())
            },
        }

    def to_prometheus_text(self) -> str:
        """Prometheus text exposition format of every metric."""
        lines: list[str] = []
        # group brace-labeled counters (base{key="value"}) by base name so
        # one # TYPE line covers the whole family; sorted() would otherwise
        # interleave families ("x_y" sorts before "x{...")
        families: dict[str, list[Counter]] = {}
        for name in sorted(self._counters):
            base = name.partition("{")[0]
            families.setdefault(base, []).append(self._counters[name])
        for base, members in families.items():
            p = _prom_name(base) + "_total"
            help_text = next((c.help for c in members if c.help), "")
            if help_text:
                lines.append(f"# HELP {p} {help_text}")
            lines.append(f"# TYPE {p} counter")
            for c in members:
                _, brace, labels = c.name.partition("{")
                suffix = f"{{{labels}" if brace else ""
                lines.append(f"{p}{suffix} {_prom_value(c.value)}")
        for name, h in sorted(self._histograms.items()):
            p = _prom_name(name)
            if h.help:
                lines.append(f"# HELP {p} {h.help}")
            lines.append(f"# TYPE {p} histogram")
            for edge, cum in zip(
                (*h.buckets, math.inf), _cumulative(h.bucket_counts)
            ):
                lines.append(f'{p}_bucket{{le="{_prom_value(edge)}"}} {cum}')
            lines.append(f"{p}_sum {repr(h.sum)}")
            lines.append(f"{p}_count {h.count}")
        return "\n".join(lines) + ("\n" if lines else "")


def _cumulative(counts: list[int]) -> list[int]:
    out, total = [], 0
    for c in counts:
        total += c
        out.append(total)
    return out
