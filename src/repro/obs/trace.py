"""Span-based tracing with monotonic timings and JSONL export.

A span is a named, timed section of the pipeline
(``characterize`` → ``predict`` → ``evaluate_space`` → ``search`` …)
opened as a context manager.  Spans nest: the tracer keeps an open-span
stack, each finished span records its parent's index, and the JSONL
export (one JSON object per line) preserves start order so traces can
be replayed or diffed.

Timings use :func:`time.perf_counter` — monotonic, immune to wall-clock
steps.  ``start_s`` values are offsets from the tracer's creation.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, TextIO


@dataclass
class SpanRecord:
    """One finished (or still-open) span."""

    index: int
    name: str
    start_s: float
    duration_s: float | None = None
    parent: int | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        """One JSONL line."""
        return json.dumps(
            {
                "index": self.index,
                "name": self.name,
                "start_s": self.start_s,
                "duration_s": self.duration_s,
                "parent": self.parent,
                "attrs": self.attrs,
            },
            sort_keys=True,
        )


class Span:
    """Context manager recording one span into a tracer."""

    __slots__ = ("_tracer", "record")

    def __init__(self, tracer: "Tracer", record: SpanRecord) -> None:
        self._tracer = tracer
        self.record = record

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes to the span (chainable)."""
        self.record.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc: object) -> bool:
        self._tracer._finish(self)
        return False


class Tracer:
    """Collects spans; bounded so runaway loops cannot exhaust memory."""

    def __init__(self, max_spans: int = 100_000) -> None:
        self.max_spans = max_spans
        self.spans: list[SpanRecord] = []
        self.dropped = 0
        self._t0 = time.perf_counter()
        self._stack: list[int] = []

    def span(self, name: str, attrs: dict[str, Any] | None = None) -> Span:
        """Open a span; close it by exiting the returned context manager."""
        now = time.perf_counter() - self._t0
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            record = SpanRecord(index=-1, name=name, start_s=now)
            return Span(self, record)
        record = SpanRecord(
            index=len(self.spans),
            name=name,
            start_s=now,
            parent=self._stack[-1] if self._stack else None,
            attrs=dict(attrs) if attrs else {},
        )
        self.spans.append(record)
        self._stack.append(record.index)
        return Span(self, record)

    def _finish(self, span: Span) -> None:
        record = span.record
        record.duration_s = time.perf_counter() - self._t0 - record.start_s
        if record.index >= 0 and self._stack and self._stack[-1] == record.index:
            self._stack.pop()
        elif record.index >= 0 and record.index in self._stack:
            # out-of-order close: unwind to keep parents consistent
            while self._stack and self._stack[-1] != record.index:
                self._stack.pop()
            if self._stack:
                self._stack.pop()

    def names(self) -> set[str]:
        """Distinct span names recorded so far."""
        return {s.name for s in self.spans}

    def to_jsonl(self) -> str:
        """All spans, one JSON object per line, in start order."""
        return "\n".join(s.to_json() for s in self.spans) + (
            "\n" if self.spans else ""
        )

    def write_jsonl(self, target: str | TextIO) -> None:
        """Write the JSONL dump to a path or open file object."""
        text = self.to_jsonl()
        if hasattr(target, "write"):
            target.write(text)
        else:
            with open(target, "w", encoding="utf-8") as fh:
                fh.write(text)


def read_jsonl(path: str) -> list[dict]:
    """Parse a trace file back into span dicts (analysis, tests)."""
    records = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
