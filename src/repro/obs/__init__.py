"""``repro.obs`` — pipeline-wide tracing and metrics (observability layer).

Every stage of the pipeline (``characterize`` → ``predict`` →
``evaluate_space`` → ``search``/``pareto``/``batch``/``whatif``) calls
into this facade.  The default backend is a **no-op**: with nothing
enabled, a call site costs one module-global ``None`` check, so
instrumentation can stay compiled-in everywhere (the benchmark gate in
``benchmarks/bench_obs_overhead.py`` pins the fully-enabled overhead
under 2%).

Usage::

    from repro import obs

    with obs.observed() as (metrics, tracer):
        run_pipeline()
    print(metrics.to_prometheus_text())
    tracer.write_jsonl("trace.jsonl")

or imperatively: :func:`enable_metrics` / :func:`enable_tracing` /
:func:`disable`.  Call sites use :func:`span`, :func:`add` and
:func:`observe`; ``span``/``observe`` take monotonic timings from
:func:`time.perf_counter`.

See ``docs/OBSERVABILITY.md`` for the full API and exporter formats.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import Span, SpanRecord, Tracer, read_jsonl

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanRecord",
    "Tracer",
    "DEFAULT_BUCKETS",
    "read_jsonl",
    "enable_metrics",
    "enable_tracing",
    "disable",
    "observed",
    "metrics_enabled",
    "tracing_enabled",
    "active",
    "get_metrics",
    "get_tracer",
    "span",
    "add",
    "observe",
    "counter_value",
]

#: The enabled backends; ``None`` means "off" (the zero-overhead default).
_metrics: MetricsRegistry | None = None
_tracer: Tracer | None = None


class _NoopSpan:
    """Shared, stateless stand-in for :class:`Span` while tracing is off."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()


def enable_metrics(registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Turn on metrics collection (into ``registry`` or a fresh one)."""
    global _metrics
    _metrics = registry if registry is not None else MetricsRegistry()
    return _metrics


def enable_tracing(tracer: Tracer | None = None) -> Tracer:
    """Turn on span tracing (into ``tracer`` or a fresh one)."""
    global _tracer
    _tracer = tracer if tracer is not None else Tracer()
    return _tracer


def disable() -> None:
    """Back to the no-op backend (drops references, keeps nothing)."""
    global _metrics, _tracer
    _metrics = None
    _tracer = None


@contextmanager
def observed(
    metrics: bool = True, tracing: bool = True
) -> Iterator[tuple[MetricsRegistry | None, Tracer | None]]:
    """Enable metrics and/or tracing for a ``with`` block, then restore.

    Yields ``(registry, tracer)`` (``None`` for whichever is off).
    Restores whatever backends were active before the block.
    """
    global _metrics, _tracer
    prev = (_metrics, _tracer)
    reg = enable_metrics() if metrics else None
    tr = enable_tracing() if tracing else None
    try:
        yield reg, tr
    finally:
        _metrics, _tracer = prev


def metrics_enabled() -> bool:
    """True while a metrics registry is collecting."""
    return _metrics is not None


def tracing_enabled() -> bool:
    """True while a tracer is collecting."""
    return _tracer is not None


def active() -> bool:
    """True while either backend is enabled (gate for expensive attrs)."""
    return _metrics is not None or _tracer is not None


def get_metrics() -> MetricsRegistry | None:
    """The enabled registry, or ``None``."""
    return _metrics


def get_tracer() -> Tracer | None:
    """The enabled tracer, or ``None``."""
    return _tracer


def span(name: str, **attrs: Any):
    """Open a span (no-op while tracing is disabled)."""
    tracer = _tracer
    if tracer is None:
        return _NOOP_SPAN
    return tracer.span(name, attrs or None)


def add(name: str, n: float = 1.0) -> None:
    """Increment counter ``name`` by ``n`` (no-op while metrics are off)."""
    metrics = _metrics
    if metrics is not None:
        metrics.counter(name).inc(n)


def observe(name: str, value: float) -> None:
    """Record ``value`` into histogram ``name`` (no-op while off)."""
    metrics = _metrics
    if metrics is not None:
        metrics.histogram(name).observe(value)


def counter_value(name: str) -> float:
    """Current counter value (0.0 while metrics are off or it never fired)."""
    metrics = _metrics
    return metrics.counter_value(name) if metrics is not None else 0.0
