"""Phase-level workload composition and planning.

Real hybrid programs are sequences of kernels with very different
characters — LBM alternates a compute-dense *collide* with a
memory-streaming *stream*; CP alternates FFTs, dense algebra and
projector updates.  The paper's model (and ours) consumes the *aggregate*
signature; this module provides the bridge:

* :func:`compose` builds a :class:`~repro.workloads.base.HybridProgram`
  from named :class:`Phase` kernels — instruction-weighted mix blending
  and summed demands, so the aggregate is exactly what a counter-based
  characterization of the phased execution would measure;
* :func:`phase_placements` places each phase on a machine's roofline
  individually, exposing the binding kernel that the aggregate AI hides;
* :func:`phase_frequency_plan` picks a per-phase DVFS point from the
  energy roofline — memory-bound phases run at low frequency for near-free
  (their time roof doesn't move), the compute phases keep fmax.  This is
  the *compute-phase* counterpart of the stall-phase advisor in
  :mod:`repro.core.dvfs`, and the class of schedule the per-phase DVFS
  literature (paper §II-A) implements at runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.roofline import node_energy_roofline, node_roofline
from repro.machines.spec import ClusterSpec, InstructionMix
from repro.workloads.base import CommunicationModel, HybridProgram, InputClass


@dataclass(frozen=True)
class Phase:
    """One kernel of a phased program (per iteration, whole problem)."""

    name: str
    instructions: float
    dram_bytes: float
    mix: InstructionMix

    def __post_init__(self) -> None:
        if self.instructions <= 0:
            raise ValueError(f"phase {self.name!r} needs positive instructions")
        if self.dram_bytes < 0:
            raise ValueError(f"phase {self.name!r} has negative DRAM traffic")

    @property
    def arithmetic_intensity(self) -> float:
        """Abstract instructions per DRAM byte (at the reference
        hierarchy)."""
        return self.instructions / self.dram_bytes if self.dram_bytes else float("inf")


def blend_mixes(phases: Sequence[Phase]) -> InstructionMix:
    """Instruction-weighted blend of the phases' mixes."""
    total = sum(p.instructions for p in phases)
    return InstructionMix(
        flops=sum(p.mix.flops * p.instructions for p in phases) / total,
        mem=sum(p.mix.mem * p.instructions for p in phases) / total,
        branch=sum(p.mix.branch * p.instructions for p in phases) / total,
        other=sum(p.mix.other * p.instructions for p in phases) / total,
    )


def compose(
    name: str,
    phases: Sequence[Phase],
    classes: Mapping[str, InputClass],
    reference_class: str,
    comm: CommunicationModel,
    working_set_bytes: float,
    **artefacts: float,
) -> HybridProgram:
    """Compose phases into an aggregate :class:`HybridProgram`.

    ``artefacts`` forwards the behavioural knobs (sequential_fraction,
    imbalances, sync coefficients) to the program.
    """
    if not phases:
        raise ValueError("need at least one phase")
    names = [p.name for p in phases]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate phase names: {names}")
    return HybridProgram(
        name=name,
        suite="phased",
        language="n/a",
        domain="phased composition",
        mix=blend_mixes(phases),
        classes=dict(classes),
        reference_class=reference_class,
        instructions_per_iteration=sum(p.instructions for p in phases),
        dram_bytes_per_iteration=sum(p.dram_bytes for p in phases),
        working_set_bytes=working_set_bytes,
        comm=comm,
        **artefacts,
    )


@dataclass(frozen=True)
class PhasePlacement:
    """One phase's roofline placement on a machine."""

    phase: Phase
    effective_ai: float
    bound: str
    min_time_share_s: float


def phase_placements(
    cluster: ClusterSpec,
    phases: Sequence[Phase],
    cores: int | None = None,
    frequency_hz: float | None = None,
    working_set_bytes: float | None = None,
) -> list[PhasePlacement]:
    """Roofline placement per phase (the binding-kernel view).

    ``working_set_bytes`` drives the machine's miss amplification; if not
    given, the phases are assumed cache-resident beyond their declared
    traffic (amplification 1).
    """
    c = cores if cores is not None else cluster.node.max_cores
    f = frequency_hz if frequency_hz is not None else cluster.node.core.fmax
    roof = node_roofline(cluster, c, f)
    amplification = (
        cluster.node.memory.miss_amplification(working_set_bytes)
        if working_set_bytes
        else 1.0
    )
    placements = []
    for phase in phases:
        dram = phase.dram_bytes * amplification
        ai = phase.instructions / dram if dram else float("inf")
        placements.append(
            PhasePlacement(
                phase=phase,
                effective_ai=ai,
                bound=roof.bound(ai) if dram else "compute",
                min_time_share_s=phase.instructions / float(roof.attainable(ai)),
            )
        )
    return placements


@dataclass(frozen=True)
class PhaseFrequencyPlan:
    """A per-phase DVFS schedule with its bound-level effect."""

    frequencies_hz: dict[str, float]
    time_bound_s: float
    energy_bound_j: float
    static_time_bound_s: float
    static_energy_bound_j: float

    @property
    def energy_saving_fraction(self) -> float:
        """Bound-level energy saving vs running every phase at fmax."""
        if self.static_energy_bound_j == 0:
            return 0.0
        return 1.0 - self.energy_bound_j / self.static_energy_bound_j

    @property
    def slowdown_fraction(self) -> float:
        """Bound-level time cost vs running every phase at fmax."""
        if self.static_time_bound_s == 0:
            return 0.0
        return self.time_bound_s / self.static_time_bound_s - 1.0


def phase_frequency_plan(
    cluster: ClusterSpec,
    phases: Sequence[Phase],
    cores: int | None = None,
    working_set_bytes: float | None = None,
    max_slowdown: float = 0.05,
) -> PhaseFrequencyPlan:
    """Pick each phase's frequency from the energy roofline.

    For every phase, evaluate all DVFS points: the phase's bound-level
    time is ``instructions / attainable(AI, f)`` and its bound-level
    energy is the energy-roofline floor.  Choose per phase the minimum-
    energy frequency whose *total-plan* slowdown stays within
    ``max_slowdown`` of the all-fmax plan (greedy: phases are relaxed in
    order of best energy-saving per unit slowdown).
    """
    c = cores if cores is not None else cluster.node.max_cores
    freqs = cluster.frequencies_hz
    fmax = cluster.node.core.fmax
    amplification = (
        cluster.node.memory.miss_amplification(working_set_bytes)
        if working_set_bytes
        else 1.0
    )

    def bound(phase: Phase, f: float) -> tuple[float, float]:
        roof = node_roofline(cluster, c, f)
        eroof = node_energy_roofline(cluster, c, f)
        dram = phase.dram_bytes * amplification
        ai = phase.instructions / dram if dram else float("inf")
        rate = float(roof.attainable(ai)) if dram else roof.compute_peak
        t = phase.instructions / rate
        e = eroof.floor_j_per_instr(ai if dram else roof.balance_ai * 10) * phase.instructions
        return t, e

    static = {p.name: bound(p, fmax) for p in phases}
    static_time = sum(t for t, _ in static.values())
    static_energy = sum(e for _, e in static.values())
    budget = static_time * (1.0 + max_slowdown)

    chosen = {p.name: fmax for p in phases}
    current = dict(static)
    # greedy: repeatedly take the single phase/frequency move with the best
    # energy saving per added second, while the budget holds
    improved = True
    while improved:
        improved = False
        best_move = None
        best_ratio = 0.0
        total_time = sum(t for t, _ in current.values())
        for p in phases:
            for f in freqs:
                if f >= chosen[p.name]:
                    continue
                t_new, e_new = bound(p, f)
                t_old, e_old = current[p.name]
                de = e_old - e_new
                dt = t_new - t_old
                if de <= 0:
                    continue
                if total_time + dt > budget:
                    continue
                ratio = de / max(dt, 1e-12) if dt > 0 else float("inf")
                if ratio > best_ratio:
                    best_ratio = ratio
                    best_move = (p, f, (t_new, e_new))
        if best_move is not None:
            p, f, te = best_move
            chosen[p.name] = f
            current[p.name] = te
            improved = True

    return PhaseFrequencyPlan(
        frequencies_hz=chosen,
        time_bound_s=sum(t for t, _ in current.values()),
        energy_bound_j=sum(e for _, e in current.values()),
        static_time_bound_s=static_time,
        static_energy_bound_j=static_energy,
    )
