"""Synthetic hybrid-program generator for tests and ablation studies.

:func:`synthetic_program` builds a :class:`~repro.workloads.base.
HybridProgram` from a handful of high-level knobs (compute intensity,
communication intensity, pattern) so that tests and ablation benchmarks can
sweep program characteristics continuously instead of being limited to the
five paper programs.
"""

from __future__ import annotations

from repro.machines.spec import InstructionMix
from repro.units import MIB
from repro.workloads.base import CommunicationModel, HybridProgram, InputClass


def synthetic_program(
    name: str = "SYN",
    iterations: int = 100,
    instructions_per_iteration: float = 1.0e9,
    arithmetic_intensity: float = 8.0,
    comm_fraction: float = 0.05,
    messages_per_iteration: float = 16.0,
    pattern: str = "halo",
    working_set_mib: float = 32.0,
    sequential_fraction: float = 0.01,
    thread_imbalance: float = 0.03,
    process_imbalance: float = 0.03,
    sync_coeff: float = 0.0,
    sync_exponent: float = 1.0,
) -> HybridProgram:
    """Build a synthetic hybrid program.

    Parameters
    ----------
    arithmetic_intensity:
        Abstract instructions per DRAM byte; low values make the program
        memory-bound.
    comm_fraction:
        Communicated bytes per iteration as a fraction of DRAM bytes per
        iteration (at the 2-node reference point).
    pattern:
        ``"halo"`` (constant neighbor count, surface 2/3 decomposition) or
        ``"alltoall"`` (message count grows with n, volume/process ~ 1/n).
    """
    if pattern not in ("halo", "alltoall"):
        raise ValueError(f"unknown communication pattern {pattern!r}")
    if arithmetic_intensity <= 0:
        raise ValueError("arithmetic_intensity must be positive")
    if comm_fraction < 0:
        raise ValueError("comm_fraction must be non-negative")

    dram_bytes = instructions_per_iteration / arithmetic_intensity
    comm_bytes = max(1.0, dram_bytes * comm_fraction)
    comm = CommunicationModel(
        msgs_ref=messages_per_iteration,
        bytes_ref=comm_bytes,
        msg_count_exponent=0.0 if pattern == "halo" else 1.0,
        decomposition_exponent=2.0 / 3.0 if pattern == "halo" else 1.0,
    )
    return HybridProgram(
        name=name,
        suite="synthetic",
        language="n/a",
        domain="synthetic",
        mix=InstructionMix(flops=0.45, mem=0.35, branch=0.08, other=0.12),
        classes={
            "W": InputClass("W", iterations=iterations, size_factor=1.0),
            "A": InputClass("A", iterations=iterations, size_factor=2.0),
            "C": InputClass("C", iterations=iterations, size_factor=4.0),
        },
        reference_class="W",
        instructions_per_iteration=instructions_per_iteration,
        dram_bytes_per_iteration=dram_bytes,
        working_set_bytes=working_set_mib * MIB,
        comm=comm,
        sequential_fraction=sequential_fraction,
        thread_imbalance=thread_imbalance,
        process_imbalance=process_imbalance,
        sync_instruction_coeff=sync_coeff,
        sync_instruction_exponent=sync_exponent,
    )
