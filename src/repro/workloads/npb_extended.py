"""Extended workload suite: FT, CG and MG (beyond the paper's five).

The paper validates on BT/SP/LU + CP + LB.  These three NPB siblings
stress corners of the model that the original five leave untouched, and
are kept in a *separate* registry so the paper-reproduction benches stay
exactly five-program:

* **FT** — 3D FFT: the most communication-extreme signature (all-to-all
  transposes moving the whole dataset every iteration) with few, very
  large messages.  The stress test for the Eq. 5/6 network terms.
* **CG** — conjugate gradient: sparse matrix-vector products with
  irregular, latency-bound memory access (low MLP utility) and frequent
  small reductions — the stress test for the latency-exposure side of the
  memory model.
* **MG** — multigrid: a hierarchy of grid levels whose coarse levels are
  communication-dominated and fine levels memory-dominated; message sizes
  span orders of magnitude, exercising ν far from its mean.
"""

from __future__ import annotations

from functools import lru_cache

from repro.machines.spec import InstructionMix
from repro.units import MIB
from repro.workloads.base import CommunicationModel, HybridProgram, InputClass


def _classes(iterations: int) -> dict[str, InputClass]:
    return {
        "W": InputClass("W", iterations=iterations, size_factor=1.0),
        "A": InputClass("A", iterations=iterations, size_factor=2.0),
        "B": InputClass("B", iterations=iterations, size_factor=3.0),
        "C": InputClass("C", iterations=iterations, size_factor=4.0),
    }


@lru_cache(maxsize=None)
def ft_program() -> HybridProgram:
    """3D FFT (NPB FT flavour): all-to-all dominated."""
    return HybridProgram(
        name="FT",
        suite="NPB (extended suite)",
        language="Fortran",
        domain="3D Fast Fourier Transform",
        mix=InstructionMix(flops=0.58, mem=0.28, branch=0.04, other=0.10),
        classes=_classes(iterations=60),
        reference_class="W",
        instructions_per_iteration=1.1e10,
        dram_bytes_per_iteration=1.6e9,
        working_set_bytes=160 * MIB,
        comm=CommunicationModel(
            # whole-dataset transpose every iteration: huge volume, counts
            # grow with n (all-to-all)
            msgs_ref=8.0,
            bytes_ref=4.0e7,
            msg_count_exponent=1.0,
            decomposition_exponent=1.0,
        ),
        sequential_fraction=0.002,
        thread_imbalance=0.02,
        process_imbalance=0.02,
        sync_instruction_coeff=0.002,
        sync_instruction_exponent=1.2,
    )


@lru_cache(maxsize=None)
def cg_program() -> HybridProgram:
    """Conjugate gradient (NPB CG flavour): latency-bound sparse code."""
    return HybridProgram(
        name="CG",
        suite="NPB (extended suite)",
        language="Fortran",
        domain="Sparse Linear Algebra",
        mix=InstructionMix(flops=0.30, mem=0.50, branch=0.10, other=0.10),
        classes=_classes(iterations=250),
        reference_class="W",
        instructions_per_iteration=1.6e9,
        # indirect accesses defeat prefetch and spatial reuse: very high
        # traffic per instruction
        dram_bytes_per_iteration=5.5e8,
        working_set_bytes=120 * MIB,
        comm=CommunicationModel(
            # frequent small reductions and halo rows
            msgs_ref=40.0,
            bytes_ref=6.0e5,
            msg_count_exponent=0.0,
            decomposition_exponent=0.5,
        ),
        sequential_fraction=0.004,
        thread_imbalance=0.03,
        process_imbalance=0.02,
        sync_instruction_coeff=0.003,
        sync_instruction_exponent=1.2,
    )


@lru_cache(maxsize=None)
def mg_program() -> HybridProgram:
    """Multigrid V-cycle (NPB MG flavour): mixed-regime levels."""
    return HybridProgram(
        name="MG",
        suite="NPB (extended suite)",
        language="Fortran",
        domain="Multigrid Solver",
        mix=InstructionMix(flops=0.42, mem=0.40, branch=0.06, other=0.12),
        classes=_classes(iterations=120),
        reference_class="W",
        instructions_per_iteration=4.5e9,
        dram_bytes_per_iteration=9.0e8,
        working_set_bytes=140 * MIB,
        comm=CommunicationModel(
            # every level exchanges halos: many messages spanning sizes
            msgs_ref=48.0,
            bytes_ref=3.0e6,
            msg_count_exponent=0.0,
            decomposition_exponent=2.0 / 3.0,
        ),
        sequential_fraction=0.006,
        thread_imbalance=0.03,
        process_imbalance=0.025,
        # coarse levels under-utilize threads: mild sync growth
        sync_instruction_coeff=0.004,
        sync_instruction_exponent=1.25,
    )


#: The extended suite, kept separate from the paper's five-program registry.
EXTENDED_PROGRAMS = ("FT", "CG", "MG")


def get_extended_program(name: str) -> HybridProgram:
    """Look up an extended-suite program by name."""
    factories = {"FT": ft_program, "CG": cg_program, "MG": mg_program}
    try:
        return factories[name.upper()]()
    except KeyError:
        raise KeyError(
            f"unknown extended program {name!r}; available: "
            f"{sorted(factories)}"
        ) from None


def all_extended_programs() -> list[HybridProgram]:
    """All extended-suite programs."""
    return [get_extended_program(name) for name in EXTENDED_PROGRAMS]
