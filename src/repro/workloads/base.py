"""Abstract hybrid-program model (paper Fig. 1 and Listing 1).

A hybrid parallel program is ``S`` iterations of an OpenMP compute phase
(``τ = c`` threads per process sharing node memory) followed by an MPI
communication phase (``l = n`` logical processes exchanging messages through
the switch).  :class:`HybridProgram` captures everything both the simulator
and the analytical model need to know about such a program:

* per-iteration *compute* demand — abstract (ISA-neutral) instructions,
  DRAM traffic at a reference cache hierarchy, working-set size, and the
  instruction mix that drives per-ISA cycle translation;
* per-iteration *communication* demand — a :class:`CommunicationModel`
  giving message count and volume per process as power laws in the node
  count (halo exchanges keep counts constant, all-to-all transposes grow
  them linearly);
* *behavioural artefacts* the analytical model deliberately does not see —
  serial fractions, thread/process imbalance, and synchronization
  instructions that grow with total parallelism (the paper's §IV-C explains
  these are its main validation error sources; LB is the canonical example).

Input sizes are named classes in NPB style.  The paper's Eq. 4 scales
baseline measurements by the iteration ratio ``S/S_s``; real input classes
scale per-iteration work too, so :meth:`HybridProgram.scale_factor`
generalizes the ratio to *total work*, which is what an instruction counter
actually measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping

from repro.machines.spec import InstructionMix

#: Node count at which CommunicationModel reference values are quoted.
REFERENCE_NODES = 2


@dataclass(frozen=True)
class InputClass:
    """One named input size of a program.

    Attributes
    ----------
    name:
        NPB-style class letter (``"W"``, ``"A"``, ``"B"``, ``"C"``).
    iterations:
        ``S`` — outer time-step/iteration count at this class.
    size_factor:
        Per-iteration problem-size multiplier relative to the program's
        reference class (work, memory traffic and communication volume all
        scale with it).
    """

    name: str
    iterations: int
    size_factor: float

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ValueError("input class needs at least one iteration")
        if self.size_factor <= 0:
            raise ValueError("size_factor must be positive")


@dataclass(frozen=True)
class CommunicationModel:
    """Power-law communication signature of a hybrid program.

    Reference values are quoted per logical process per iteration at
    ``n = REFERENCE_NODES`` for the program's reference class.  For ``n``
    processes:

    * messages/process/iteration = ``msgs_ref * (n / 2) ** msg_count_exponent``
    * volume/process/iteration   = ``bytes_ref * size_factor * (2 / n) ** decomposition_exponent``

    Halo-exchange codes (BT/SP/LU/LB) have ``msg_count_exponent = 0`` and a
    surface-to-volume ``decomposition_exponent``; transpose-based codes (CP)
    have ``msg_count_exponent = 1`` with volume split across all peers.
    A single-node run communicates nothing.
    """

    msgs_ref: float
    bytes_ref: float
    msg_count_exponent: float
    decomposition_exponent: float

    def __post_init__(self) -> None:
        if self.msgs_ref <= 0 or self.bytes_ref <= 0:
            raise ValueError("reference message count and volume must be positive")

    def messages_per_process(self, nodes: int) -> float:
        """Messages each process sends per iteration on ``nodes`` nodes."""
        if nodes <= 1:
            return 0.0
        return self.msgs_ref * (nodes / REFERENCE_NODES) ** self.msg_count_exponent

    def volume_per_process(self, nodes: int, size_factor: float = 1.0) -> float:
        """Bytes each process sends per iteration on ``nodes`` nodes."""
        if nodes <= 1:
            return 0.0
        return (
            self.bytes_ref
            * size_factor
            * (REFERENCE_NODES / nodes) ** self.decomposition_exponent
        )

    def bytes_per_message(self, nodes: int, size_factor: float = 1.0) -> float:
        """Mean message size ``ν`` on ``nodes`` nodes."""
        if nodes <= 1:
            return 0.0
        return self.volume_per_process(nodes, size_factor) / self.messages_per_process(
            nodes
        )


@dataclass(frozen=True)
class HybridProgram:
    """Resource-demand signature of one hybrid MPI+OpenMP program.

    Attributes
    ----------
    name, suite, language, domain:
        Identification (paper Table 2 columns).
    mix:
        Dynamic instruction mix of the compute phase.
    classes:
        Named input sizes.
    reference_class:
        The class whose per-iteration demands the absolute numbers below are
        quoted at (also the paper's baseline-measurement input ``P_s``).
    instructions_per_iteration:
        Abstract whole-problem instructions per iteration at the reference
        class (excluding synchronization overhead).
    dram_bytes_per_iteration:
        DRAM traffic per iteration at the reference class, assuming a cache
        hierarchy large enough to capture all reuse (machines amplify this
        via :meth:`repro.machines.spec.MemorySpec.miss_amplification`).
    working_set_bytes:
        Resident working set at the reference class.
    comm:
        Communication signature.
    sequential_fraction:
        Amdahl fraction of per-iteration work executed by one thread.
    thread_imbalance / process_imbalance:
        Coefficients of variation of per-thread / per-process work.
    sync_instruction_coeff / sync_instruction_exponent:
        Extra per-iteration instructions for synchronization,
        ``coeff * instructions_per_iteration * (n*c) ** exponent / (n*c)``
        per thread — superlinear growth with total parallelism models the
        paper's LB observation ("more instructions on higher number of nodes
        at higher number of cores").
    """

    name: str
    suite: str
    language: str
    domain: str
    mix: InstructionMix
    classes: Mapping[str, InputClass]
    reference_class: str
    instructions_per_iteration: float
    dram_bytes_per_iteration: float
    working_set_bytes: float
    comm: CommunicationModel
    sequential_fraction: float = 0.01
    thread_imbalance: float = 0.03
    process_imbalance: float = 0.03
    sync_instruction_coeff: float = 0.0
    sync_instruction_exponent: float = 1.0

    def __post_init__(self) -> None:
        if self.reference_class not in self.classes:
            raise ValueError(
                f"reference class {self.reference_class!r} not in classes "
                f"{sorted(self.classes)}"
            )
        if self.instructions_per_iteration <= 0:
            raise ValueError("instructions_per_iteration must be positive")
        if not 0 <= self.sequential_fraction < 1:
            raise ValueError("sequential_fraction must be in [0, 1)")

    # ------------------------------------------------------------------
    # input-class queries
    # ------------------------------------------------------------------
    def input_class(self, name: str) -> InputClass:
        """Look up a named input class."""
        try:
            return self.classes[name]
        except KeyError:
            raise KeyError(
                f"{self.name} has no input class {name!r}; "
                f"available: {sorted(self.classes)}"
            ) from None

    def iterations(self, class_name: str) -> int:
        """``S`` — iteration count at the given class."""
        return self.input_class(class_name).iterations

    def scale_factor(self, class_name: str, baseline_class: str | None = None) -> float:
        """Total-work ratio of ``class_name`` over the baseline class.

        This generalizes the paper's ``S/S_s`` (Eq. 4): the ratio of total
        instructions, which equals the iteration ratio when per-iteration
        size is unchanged and folds in ``size_factor`` otherwise.
        """
        base = self.input_class(baseline_class or self.reference_class)
        target = self.input_class(class_name)
        return (target.iterations * target.size_factor) / (
            base.iterations * base.size_factor
        )

    # ------------------------------------------------------------------
    # compute-phase demand
    # ------------------------------------------------------------------
    def instructions(self, class_name: str) -> float:
        """Abstract instructions per iteration at the class (whole problem)."""
        return self.instructions_per_iteration * self.input_class(class_name).size_factor

    def sync_instructions(self, class_name: str, nodes: int, cores: int) -> float:
        """Extra synchronization instructions per iteration (whole problem).

        Grows superlinearly with total thread count when
        ``sync_instruction_exponent > 1`` — pure overhead that burns energy
        without advancing the computation (paper §IV-C, LB example).
        """
        threads = nodes * cores
        if threads <= 1 or self.sync_instruction_coeff == 0.0:
            return 0.0
        return (
            self.sync_instruction_coeff
            * self.instructions(class_name)
            * threads**self.sync_instruction_exponent
            / threads
        )

    def dram_bytes(self, class_name: str) -> float:
        """Reference-hierarchy DRAM bytes per iteration at the class."""
        return self.dram_bytes_per_iteration * self.input_class(class_name).size_factor

    def working_set(self, class_name: str) -> float:
        """Working-set bytes at the class."""
        return self.working_set_bytes * self.input_class(class_name).size_factor

    # ------------------------------------------------------------------
    # communication-phase demand
    # ------------------------------------------------------------------
    def messages_per_process(self, nodes: int) -> float:
        """``η``-style count: messages per process per iteration."""
        return self.comm.messages_per_process(nodes)

    def comm_volume_per_process(self, class_name: str, nodes: int) -> float:
        """Bytes per process per iteration at the class."""
        return self.comm.volume_per_process(
            nodes, self.input_class(class_name).size_factor
        )

    def bytes_per_message(self, class_name: str, nodes: int) -> float:
        """``ν`` — mean message size at the class."""
        return self.comm.bytes_per_message(
            nodes, self.input_class(class_name).size_factor
        )

    # ------------------------------------------------------------------
    # variants
    # ------------------------------------------------------------------
    def with_classes(self, **classes: InputClass) -> "HybridProgram":
        """A copy with extra/overridden input classes."""
        merged = dict(self.classes)
        merged.update(classes)
        return replace(self, classes=merged)

    def restructured(
        self,
        sync_coeff_factor: float = 1.0,
        imbalance_factor: float = 1.0,
    ) -> "HybridProgram":
        """A developer-tuned variant (paper §V-B application fine-tuning).

        Restructuring iterations to better match l and τ reduces
        synchronization overhead and imbalance; this returns a copy with
        those artefacts scaled.
        """
        return replace(
            self,
            sync_instruction_coeff=self.sync_instruction_coeff * sync_coeff_factor,
            thread_imbalance=self.thread_imbalance * imbalance_factor,
            process_imbalance=self.process_imbalance * imbalance_factor,
        )


def npb_classes(
    base_iterations: int, growth: float = 1.0
) -> dict[str, InputClass]:
    """Standard four-class ladder used by the NPB-style programs.

    Class W is the baseline-measurement input (size 1); A/B/C grow
    per-iteration size by 2/3/4x with iteration counts scaled by ``growth``.
    Class C is thus "four times larger than the baseline measurement program
    size" exactly as the paper states for the Fig. 7 scale-out experiment.
    """
    return {
        "W": InputClass("W", iterations=base_iterations, size_factor=1.0),
        "A": InputClass("A", iterations=int(base_iterations * growth), size_factor=2.0),
        "B": InputClass("B", iterations=int(base_iterations * growth), size_factor=3.0),
        "C": InputClass("C", iterations=int(base_iterations * growth), size_factor=4.0),
    }
