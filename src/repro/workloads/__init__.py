"""Workload models of the paper's five hybrid MPI+OpenMP programs.

The paper's model never executes application *code*; it consumes the
programs' resource-demand signatures (instructions, memory traffic,
message counts and volumes, and their scaling laws).  This package encodes
those signatures for the five validation programs:

* ``BT``, ``SP``, ``LU`` — NAS Parallel Benchmarks multi-zone 3D
  Navier-Stokes solvers (Fortran),
* ``CP`` — Car-Parrinello molecular dynamics from Quantum Espresso (Fortran),
* ``LB`` — OpenLB lattice Boltzmann lid-driven cavity (C++),

plus a :func:`synthetic_program` generator used by tests and ablation
benchmarks.
"""

from repro.workloads.base import (
    CommunicationModel,
    HybridProgram,
    InputClass,
)
from repro.workloads.npb import bt_program, lu_program, sp_program
from repro.workloads.quantum import cp_program
from repro.workloads.lbm import lb_program
from repro.workloads.synthetic import synthetic_program
from repro.workloads.phases import (
    Phase,
    blend_mixes,
    compose,
    phase_frequency_plan,
    phase_placements,
)
from repro.workloads.registry import all_programs, get_program, list_programs

__all__ = [
    "CommunicationModel",
    "HybridProgram",
    "InputClass",
    "bt_program",
    "sp_program",
    "lu_program",
    "cp_program",
    "lb_program",
    "synthetic_program",
    "Phase",
    "blend_mixes",
    "compose",
    "phase_frequency_plan",
    "phase_placements",
    "all_programs",
    "get_program",
    "list_programs",
]
