"""NAS Parallel Benchmark multi-zone programs: BT, SP, LU.

The three NPB-MZ programs solve discretized 3D Navier-Stokes equations with
different implicit solvers (paper §IV-B):

* **BT** — Block Tri-diagonal solver: the most compute-dense of the three
  (large 5x5 block solves), moderate halo traffic.
* **SP** — Scalar Penta-diagonal solver: lighter per-point work over more
  iterations, slightly more communication-bound.
* **LU** — Lower-Upper symmetric Gauss-Seidel: wavefront ("pencil") sweeps
  that exchange many small messages; its communication volume scales
  linearly with input size, which is why the paper uses it for the Fig. 7
  class-C scale-out experiment.

All three exchange halos with a fixed neighbor set, so messages/process/
iteration is independent of the node count while per-process volume shrinks
with the usual 3D surface-to-volume exponent 2/3.

Absolute per-iteration demands are calibrated so class-W serial runs land in
the paper's reported time/energy magnitudes (hundreds of seconds on one Xeon
core — DESIGN.md §2).
"""

from __future__ import annotations

from functools import lru_cache

from repro.machines.spec import InstructionMix
from repro.units import MIB
from repro.workloads.base import CommunicationModel, HybridProgram, npb_classes


@lru_cache(maxsize=None)
def bt_program() -> HybridProgram:
    """Block Tri-diagonal solver (NPB3.3-MZ BT)."""
    return HybridProgram(
        name="BT",
        suite="NAS Multi-zone Parallel Benchmark (NPB3.3-MZ)",
        language="Fortran",
        domain="3D Navier-Stokes Equation Solver",
        mix=InstructionMix(flops=0.55, mem=0.28, branch=0.07, other=0.10),
        classes=npb_classes(base_iterations=200),
        reference_class="W",
        instructions_per_iteration=2.8e9,
        dram_bytes_per_iteration=2.0e8,
        working_set_bytes=45 * MIB,
        comm=CommunicationModel(
            msgs_ref=12.0,
            bytes_ref=3.0e6,
            msg_count_exponent=0.0,
            decomposition_exponent=2.0 / 3.0,
        ),
        sequential_fraction=0.002,
        thread_imbalance=0.02,
        process_imbalance=0.015,
        sync_instruction_coeff=0.0015,
        sync_instruction_exponent=1.15,
    )


@lru_cache(maxsize=None)
def sp_program() -> HybridProgram:
    """Scalar Penta-diagonal solver (NPB3.3-MZ SP)."""
    return HybridProgram(
        name="SP",
        suite="NAS Multi-zone Parallel Benchmark (NPB3.3-MZ)",
        language="Fortran",
        domain="3D Navier-Stokes Equation Solver",
        mix=InstructionMix(flops=0.50, mem=0.30, branch=0.08, other=0.12),
        classes=npb_classes(base_iterations=400),
        reference_class="W",
        instructions_per_iteration=1.4e9,
        dram_bytes_per_iteration=4.5e8,
        working_set_bytes=60 * MIB,
        comm=CommunicationModel(
            msgs_ref=16.0,
            bytes_ref=2.4e6,
            msg_count_exponent=0.0,
            decomposition_exponent=2.0 / 3.0,
        ),
        sequential_fraction=0.003,
        thread_imbalance=0.02,
        process_imbalance=0.015,
        sync_instruction_coeff=0.002,
        sync_instruction_exponent=1.15,
    )


@lru_cache(maxsize=None)
def lu_program() -> HybridProgram:
    """Lower-Upper symmetric Gauss-Seidel solver (NPB3.3-MZ LU).

    The wavefront sweeps emit many small messages (``msgs_ref`` 60 at
    ~20 kB each) and the pencil decomposition makes per-process volume scale
    linearly with input size — the property the paper relies on for the
    class-C scale-out validation (Fig. 7).
    """
    return HybridProgram(
        name="LU",
        suite="NAS Multi-zone Parallel Benchmark (NPB3.3-MZ)",
        language="Fortran",
        domain="3D Navier-Stokes Equation Solver",
        mix=InstructionMix(flops=0.48, mem=0.32, branch=0.10, other=0.10),
        classes=npb_classes(base_iterations=250),
        reference_class="W",
        instructions_per_iteration=1.9e9,
        dram_bytes_per_iteration=1.6e8,
        working_set_bytes=40 * MIB,
        comm=CommunicationModel(
            msgs_ref=60.0,
            bytes_ref=1.2e6,
            msg_count_exponent=0.0,
            decomposition_exponent=2.0 / 3.0,
        ),
        sequential_fraction=0.004,
        thread_imbalance=0.025,
        process_imbalance=0.02,
        sync_instruction_coeff=0.002,
        sync_instruction_exponent=1.1,
    )
