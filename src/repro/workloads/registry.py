"""Registry of the paper's five validation programs."""

from __future__ import annotations

from typing import Callable

from repro.workloads.base import HybridProgram
from repro.workloads.lbm import lb_program
from repro.workloads.npb import bt_program, lu_program, sp_program
from repro.workloads.quantum import cp_program

_FACTORIES: dict[str, Callable[[], HybridProgram]] = {
    "LU": lu_program,
    "SP": sp_program,
    "BT": bt_program,
    "CP": cp_program,
    "LB": lb_program,
}

#: Paper Table 2 presentation order.
PAPER_ORDER = ("LU", "SP", "BT", "CP", "LB")


def list_programs() -> list[str]:
    """Names of the five validation programs in paper order."""
    return list(PAPER_ORDER)


def get_program(name: str) -> HybridProgram:
    """Look up a validation program by name (case-insensitive)."""
    try:
        return _FACTORIES[name.upper()]()
    except KeyError:
        raise KeyError(
            f"unknown program {name!r}; available: {list_programs()}"
        ) from None


def all_programs() -> list[HybridProgram]:
    """All five validation programs in paper order."""
    return [get_program(name) for name in PAPER_ORDER]
