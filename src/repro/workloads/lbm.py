"""Lattice Boltzmann method (OpenLB) workload model.

LB simulates fluid flow in a 3D lid-driven cavity (paper §IV-B), chosen by
the paper as the C++ program demonstrating language independence.  LBM
stream-collide kernels are *memory-streaming*: low arithmetic intensity and
the highest DRAM traffic per instruction of the five programs.

LB is also the paper's canonical synchronization pathology (§IV-C): it
"incurs more instructions on higher number of nodes at higher number of
cores, due to the synchronization among the logical processes and threads",
which "significantly increases the energy used, but does not reduce the
execution time" and makes the model underestimate energy at Xeon (4,4) and
(4,8).  The steep ``sync_instruction_exponent`` below reproduces exactly
that artefact.
"""

from __future__ import annotations

from functools import lru_cache

from repro.machines.spec import InstructionMix
from repro.units import MIB
from repro.workloads.base import CommunicationModel, HybridProgram, InputClass


@lru_cache(maxsize=None)
def lb_program() -> HybridProgram:
    """Lattice Boltzmann lid-driven cavity (OpenLB olb-0.8r0)."""
    return HybridProgram(
        name="LB",
        suite="OpenLB (olb-0.8r0)",
        language="C++",
        domain="Computational Fluid Dynamics",
        mix=InstructionMix(flops=0.35, mem=0.45, branch=0.08, other=0.12),
        classes={
            # LBM time steps; size factors scale the lattice.
            "W": InputClass("W", iterations=600, size_factor=1.0),
            "A": InputClass("A", iterations=600, size_factor=2.0),
            "B": InputClass("B", iterations=600, size_factor=3.0),
            "C": InputClass("C", iterations=600, size_factor=4.0),
        },
        reference_class="W",
        instructions_per_iteration=9.0e8,
        dram_bytes_per_iteration=4.0e8,
        working_set_bytes=80 * MIB,
        comm=CommunicationModel(
            msgs_ref=10.0,
            bytes_ref=1.8e6,
            msg_count_exponent=0.0,
            decomposition_exponent=2.0 / 3.0,
        ),
        sequential_fraction=0.003,
        thread_imbalance=0.035,
        process_imbalance=0.02,
        # The paper's §IV-C sync pathology: superlinear instruction growth
        # with total parallelism.
        sync_instruction_coeff=0.015,
        sync_instruction_exponent=1.50,
    )
