"""Car-Parrinello molecular dynamics (Quantum Espresso CP) workload model.

CP simulates H2O molecules with plane-wave DFT (paper §IV-B).  Each MD step
is dominated by 3D FFTs, whose distributed transposes are *all-to-all*
exchanges: every process messages every other process, so the per-process
message count grows linearly with the node count while per-message volume
shrinks quadratically — the communication signature that makes CP's UCR
collapse steeply with scale (paper Fig. 10/11: "steep drop in the UCR values
with increasing number of logical processes and threads").

CP also carries the largest process/thread imbalance of the five programs
(band/plane distribution is uneven for small molecules), which the
analytical model deliberately does not capture.
"""

from __future__ import annotations

from functools import lru_cache

from repro.machines.spec import InstructionMix
from repro.units import MIB
from repro.workloads.base import CommunicationModel, HybridProgram, InputClass


@lru_cache(maxsize=None)
def cp_program() -> HybridProgram:
    """Car-Parrinello MD of H2O (Quantum Espresso v5.1 ``cp.x``)."""
    return HybridProgram(
        name="CP",
        suite="Quantum Espresso (v5.1)",
        language="Fortran",
        domain="Electronic-structure Calculations",
        mix=InstructionMix(flops=0.55, mem=0.31, branch=0.05, other=0.09),
        classes={
            # MD steps; size factors scale the plane-wave cutoff / grid.
            "W": InputClass("W", iterations=50, size_factor=1.0),
            "A": InputClass("A", iterations=50, size_factor=2.0),
            "B": InputClass("B", iterations=50, size_factor=3.0),
            "C": InputClass("C", iterations=50, size_factor=4.0),
        },
        reference_class="W",
        instructions_per_iteration=1.2e10,
        dram_bytes_per_iteration=1.0e9,
        working_set_bytes=120 * MIB,
        comm=CommunicationModel(
            msgs_ref=24.0,
            bytes_ref=6.0e6,
            # All-to-all: messages/process grows with n, volume/process ~ 1/n.
            msg_count_exponent=1.0,
            decomposition_exponent=1.0,
        ),
        sequential_fraction=0.004,
        thread_imbalance=0.035,
        process_imbalance=0.03,
        sync_instruction_coeff=0.004,
        sync_instruction_exponent=1.35,
    )
