"""Sharded multiprocess configuration-space evaluation.

The vectorized engine (:mod:`repro.core.vectorized`) computes a whole
``(n, c, f)`` space as one NumPy broadcast — single-process.  At
production scale (hundreds of thousands of configurations, batched over
machine and workload registries) one process pins one core while the
rest idle.  This module shards a space across worker processes and adds
the ambient :class:`ExecutionPlan` that the whole pipeline
(``evaluate_space`` → ``search``/``pareto``/``batch``/``whatif``/UCR)
consults, so parallelism and the persistent result cache
(:mod:`repro.core.cache`) switch on in one place::

    with parallel_plan(workers=4, cache_dir="~/.cache/repro"):
        evaluation = evaluate_space(model, space)   # sharded + cached

Guarantees:

* **Bit-identical results.**  Shards are contiguous runs of the space's
  canonical iteration order (grids split along the node axis, explicit
  lists into contiguous slices), every lane's arithmetic is independent
  of its neighbours (the Eq. 5 fixed point freezes converged lanes), and
  results are written back by shard offset — so the concatenated arrays
  equal the single-process arrays bit for bit, regardless of worker
  scheduling.  The equivalence tests pin this exactly (not just 1e-9).
* **Deterministic dispatch.**  Shard boundaries depend only on the space
  and the plan, never on timing.
* **Cheap result transport.**  Workers write their slice into shared
  scratch files (``/dev/shm``-backed memmaps when available) instead of
  pickling megabytes of arrays through the result pipe; a plain pickle
  transport remains as the fallback.

The worker pool is persistent (created lazily, reused across sweeps,
shut down at interpreter exit) so repeated sweeps do not re-pay process
startup.  Small sweeps — below :attr:`ExecutionPlan.min_parallel_configs`
— run inline: sharding a few hundred configurations would cost more in
dispatch than it saves in compute.
"""

from __future__ import annotations

import atexit
import itertools
import os
import pathlib
import shutil
import tempfile
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Sequence

import multiprocessing

import numpy as np

from repro import obs
from repro.core import vectorized
from repro.core.cache import ARRAY_FIELDS, ResultCache, entry_identity

#: Below this many configurations a sweep runs inline: process dispatch
#: would dominate the broadcast compute.
DEFAULT_MIN_PARALLEL_CONFIGS = 4096

#: Shards per worker; >1 load-balances the fixed-point iteration skew
#: (high node counts iterate longer than single-node lanes).
DEFAULT_SHARDS_PER_WORKER = 2


@dataclass(frozen=True)
class _SubGrid:
    """A contiguous axis-aligned slice of a grid space.

    Duck-typed like :class:`~repro.core.configspace.ConfigSpace` (the
    engine only reads the three axis tuples, and iteration follows the
    same node-major canonical order), so shards and streamed blocks take
    the same grid-broadcast path as the whole space.
    """

    node_counts: tuple[int, ...]
    core_counts: tuple[int, ...]
    frequencies_hz: tuple[float, ...]

    def __len__(self) -> int:
        return (
            len(self.node_counts)
            * len(self.core_counts)
            * len(self.frequencies_hz)
        )

    def __iter__(self):
        from repro.machines.spec import Configuration

        for n, c, f in itertools.product(
            self.node_counts, self.core_counts, self.frequencies_hz
        ):
            yield Configuration(nodes=n, cores=c, frequency_hz=f)


@dataclass(frozen=True)
class ExecutionPlan:
    """How configuration-space evaluations execute while active.

    ``workers`` > 1 shards large sweeps across that many processes;
    ``cache`` persists results on disk keyed by content fingerprint.
    Install a plan with :func:`parallel_plan` (context manager) or
    :func:`activate`.

    ``workers`` is a *request*: by default the dispatch clamps it to the
    CPUs actually available (:func:`effective_workers`) because sharding
    past the core count is a measured pessimization.  Tests and
    benchmarks that exercise the shard machinery itself on small hosts
    set ``clamp_workers=False``.
    """

    workers: int = 1
    cache: ResultCache | None = None
    min_parallel_configs: int = DEFAULT_MIN_PARALLEL_CONFIGS
    shards_per_worker: int = DEFAULT_SHARDS_PER_WORKER
    transport: str = "memmap"
    clamp_workers: bool = True

    def __post_init__(self) -> None:
        """Validate the knobs (worker/shard counts, transport name)."""
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.min_parallel_configs < 1:
            raise ValueError("min_parallel_configs must be >= 1")
        if self.shards_per_worker < 1:
            raise ValueError("shards_per_worker must be >= 1")
        if self.transport not in ("memmap", "pickle"):
            raise ValueError(f"unknown transport {self.transport!r}")

    @property
    def shards(self) -> int:
        """Target shard count for one sweep."""
        return self.workers * self.shards_per_worker


# ----------------------------------------------------------------------
# the ambient plan
# ----------------------------------------------------------------------

_ACTIVE_PLAN: ExecutionPlan | None = None


def active_plan() -> ExecutionPlan | None:
    """The currently installed plan, or ``None`` (inline execution)."""
    return _ACTIVE_PLAN


def activate(plan: ExecutionPlan | None) -> ExecutionPlan | None:
    """Install ``plan`` as the ambient plan; returns the previous one."""
    global _ACTIVE_PLAN
    previous = _ACTIVE_PLAN
    _ACTIVE_PLAN = plan
    return previous


@contextmanager
def parallel_plan(
    workers: int = 1,
    cache_dir: str | pathlib.Path | None = None,
    **options: object,
) -> Iterator[ExecutionPlan]:
    """Activate an :class:`ExecutionPlan` for a ``with`` block.

    ``cache_dir`` opens (creating if needed) a persistent
    :class:`~repro.core.cache.ResultCache` there.  Extra keyword options
    are passed through to :class:`ExecutionPlan`.  The previous plan is
    restored on exit.
    """
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    plan = ExecutionPlan(workers=workers, cache=cache, **options)
    previous = activate(plan)
    try:
        yield plan
    finally:
        activate(previous)


# ----------------------------------------------------------------------
# host capacity
# ----------------------------------------------------------------------


def available_cpus() -> int:
    """CPUs this process may actually run on.

    Prefers the scheduling affinity mask (``sched_getaffinity``), which
    respects cgroup/container and ``taskset`` restrictions that
    ``os.cpu_count()`` ignores; falls back to the raw count on platforms
    without affinity support.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def effective_workers(requested: int) -> int:
    """``requested`` workers clamped to the CPUs actually available.

    Sharding across more processes than cores is a recorded pessimization
    (0.67x at 4 workers on a 1-CPU host, ``parallel_speedup.json``):
    every extra process adds dispatch and serialization cost but no
    parallel compute.  :func:`evaluate_plan` routes through this clamp
    and falls back to the inline single-process engine when it yields 1.
    """
    return max(1, min(requested, available_cpus()))


# ----------------------------------------------------------------------
# the worker pool (persistent, lazily created)
# ----------------------------------------------------------------------

_POOL: ProcessPoolExecutor | None = None  # guarded-by: _POOL_LOCK
_POOL_WORKERS = 0  # guarded-by: _POOL_LOCK

#: Guards the pool globals: concurrent sweeps (the ``repro serve`` layer
#: dispatches engine calls from a thread pool) must never observe a
#: half-swapped pool or leak a superseded one.
_POOL_LOCK = threading.Lock()


def _pool(workers: int) -> ProcessPoolExecutor:
    """The shared pool, (re)created when the worker count changes.

    Thread-safe: without the lock, two threads requesting a pool
    concurrently could each create one and silently replace the other's
    (leaking its worker processes).  A superseded pool is always shut
    down before the swap.
    """
    global _POOL, _POOL_WORKERS
    with _POOL_LOCK:
        if _POOL is None or _POOL_WORKERS != workers:
            _shutdown_pool_locked()
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - platform without fork
                context = multiprocessing.get_context()
            _POOL = ProcessPoolExecutor(
                max_workers=workers, mp_context=context
            )
            _POOL_WORKERS = workers
        return _POOL


def _shutdown_pool_locked() -> None:  # guarded-by: _POOL_LOCK
    """Shut the current pool down; caller must hold ``_POOL_LOCK``."""
    global _POOL, _POOL_WORKERS
    if _POOL is not None:
        _POOL.shutdown(wait=True, cancel_futures=True)
        _POOL = None
        _POOL_WORKERS = 0


def shutdown_pool() -> None:
    """Shut the persistent worker pool down (tests, interpreter exit)."""
    with _POOL_LOCK:
        _shutdown_pool_locked()


# The pool must not outlive the interpreter: without this hook a live
# fork pool at exit leaves worker processes to be reaped by timeout.
atexit.register(shutdown_pool)


# ----------------------------------------------------------------------
# sharding
# ----------------------------------------------------------------------


def shard_space(
    space: object, shards: int
) -> list[tuple[int, int, object]]:
    """Split a space into contiguous, order-preserving shards.

    Returns ``(offset, length, subspace)`` triples whose concatenation in
    list order is exactly the canonical iteration order of ``space``.
    Grids are split along the node axis (the outermost, so flat order is
    preserved and every shard keeps the fast grid-broadcast path);
    explicit sequences are split into contiguous slices.  At most
    ``shards`` shards are produced — fewer when the space is too small
    to split further.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    if vectorized._is_grid(space):
        node_counts = tuple(space.node_counts)
        per_node = len(space.core_counts) * len(space.frequencies_hz)
        pieces = np.array_split(
            np.arange(len(node_counts)), min(shards, len(node_counts))
        )
        out: list[tuple[int, int, object]] = []
        offset = 0
        for piece in pieces:
            sub = _SubGrid(
                node_counts=tuple(node_counts[i] for i in piece),
                core_counts=tuple(space.core_counts),
                frequencies_hz=tuple(space.frequencies_hz),
            )
            length = len(piece) * per_node
            out.append((offset, length, sub))
            offset += length
        return out
    configs = tuple(space)
    if not configs:
        return [(0, 0, configs)]
    pieces = np.array_split(
        np.arange(len(configs)), min(shards, len(configs))
    )
    out = []
    for piece in pieces:
        start, stop = int(piece[0]), int(piece[-1]) + 1
        out.append((start, stop - start, configs[start:stop]))
    return out


def _space_size(space: object) -> int:
    """Number of configurations in a grid or explicit sequence."""
    if vectorized._is_grid(space):
        return (
            len(space.node_counts)
            * len(space.core_counts)
            * len(space.frequencies_hz)
        )
    return len(space) if isinstance(space, Sequence) else len(tuple(space))


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------


def _field_dtype(name: str) -> type:
    """Storage dtype of one result field."""
    return np.bool_ if name == "saturated" else np.float64


def _worker_shard(task: tuple) -> tuple[int, float, dict | None]:
    """Evaluate one shard in a worker process.

    Runs the plain single-process engine on the subspace (no plan, no
    caches — the parent owns those) and either writes the result arrays
    into the shared scratch memmaps at the shard's offset, or returns
    them for the pickle transport.
    """
    (
        index,
        model,
        subspace,
        class_name,
        queueing,
        service_overlap,
        offset,
        total,
        scratch,
    ) = task
    t_start = time.perf_counter()
    vec = vectorized._compute(
        model, subspace, class_name, queueing, service_overlap, instrument=False
    )
    if scratch is None:
        arrays = {name: getattr(vec, name) for name in ARRAY_FIELDS}
        return index, time.perf_counter() - t_start, arrays
    for name in ARRAY_FIELDS:
        mm = np.memmap(
            os.path.join(scratch, f"{name}.bin"),
            dtype=_field_dtype(name),
            mode="r+",
            shape=(total,),
        )
        mm[offset : offset + len(vec)] = getattr(vec, name)
        mm.flush()
        del mm
    return index, time.perf_counter() - t_start, None


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------


def _readonly(a: np.ndarray) -> np.ndarray:
    a.setflags(write=False)
    return a


def _scratch_dir() -> str:
    """A scratch directory for the memmap transport, preferring tmpfs."""
    base = "/dev/shm" if os.path.isdir("/dev/shm") else None
    return tempfile.mkdtemp(prefix="repro-shards-", dir=base)


def _run_sharded(
    plan: ExecutionPlan,
    workers: int,
    model,
    space: object,
    class_name: str,
    queueing: str,
    service_overlap: bool,
) -> vectorized.VectorizedEvaluation:
    """Fan a sweep out across the worker pool and reassemble in order.

    ``workers`` is the *effective* (CPU-clamped) worker count — the
    plan's requested count is only an upper bound.
    """
    shards = shard_space(space, workers * plan.shards_per_worker)
    total = sum(length for _, length, _ in shards)

    scratch: str | None = None
    if plan.transport == "memmap":
        try:
            scratch = _scratch_dir()
            for name in ARRAY_FIELDS:
                np.memmap(
                    os.path.join(scratch, f"{name}.bin"),
                    dtype=_field_dtype(name),
                    mode="w+",
                    shape=(total,),
                ).flush()
        except OSError:  # no writable scratch space: fall back to pickle
            if scratch is not None:
                shutil.rmtree(scratch, ignore_errors=True)
            scratch = None

    try:
        pool = _pool(workers)
        futures = [
            pool.submit(
                _worker_shard,
                (
                    index,
                    model,
                    subspace,
                    class_name,
                    queueing,
                    service_overlap,
                    offset,
                    total,
                    scratch,
                ),
            )
            for index, (offset, length, subspace) in enumerate(shards)
        ]
        arrays: dict[str, np.ndarray] | None = None
        if scratch is None:
            arrays = {
                name: np.empty(total, dtype=_field_dtype(name))
                for name in ARRAY_FIELDS
            }
        for future in futures:
            index, seconds, payload = future.result()
            obs.observe("parallel.shard_seconds", seconds)
            if arrays is not None and payload is not None:
                offset, length, _ = shards[index]
                for name in ARRAY_FIELDS:
                    arrays[name][offset : offset + length] = payload[name]
        if scratch is not None:
            arrays = {
                name: np.fromfile(
                    os.path.join(scratch, f"{name}.bin"),
                    dtype=_field_dtype(name),
                )
                for name in ARRAY_FIELDS
            }
    finally:
        if scratch is not None:
            shutil.rmtree(scratch, ignore_errors=True)

    assert arrays is not None
    space_ref = space if vectorized._is_grid(space) else tuple(space)
    result = vectorized.VectorizedEvaluation(
        class_name=class_name,
        space=space_ref,
        **{name: _readonly(arrays[name]) for name in ARRAY_FIELDS},
    )
    if obs.metrics_enabled():
        obs.add("parallel.sweeps")
        obs.add("parallel.shards", len(shards))
        obs.add("parallel.configs", total)
    return result


def evaluate_plan(
    plan: ExecutionPlan,
    model,
    space: object,
    class_name: str | None,
    queueing: str,
    service_overlap: bool,
    cacheable: bool = True,
    record_strategy: bool = False,
) -> vectorized.VectorizedEvaluation:
    """Evaluate a space under ``plan``: disk cache, then shards or inline.

    This is the dispatch point :func:`repro.core.vectorized.evaluate_configs`
    routes through (via :func:`repro.core.planner.execute`) while a plan
    is active.  ``cacheable`` is false for ad-hoc candidate subsets (the
    pruned search's chunks), which would only fill the disk cache with
    junk entries.  ``record_strategy`` counts the branch actually taken
    into the planner's labeled ``plan_selected`` metric.
    """
    from repro.core import planner as _planner

    cls = class_name or model.inputs.baseline_class
    identity = None
    if plan.cache is not None and cacheable:
        identity = entry_identity(model, space, cls, queueing, service_overlap)
        cached = plan.cache.get(identity)
        if cached is not None:
            if record_strategy:
                _planner.record_selection("cached")
            return cached

    size = _space_size(space)
    workers = (
        effective_workers(plan.workers) if plan.clamp_workers else plan.workers
    )
    if workers < plan.workers:
        # sharding beyond the CPUs available is the recorded 0.67x
        # pessimization; record the clamp so operators can see it
        obs.add("parallel.worker_clamps")
    if workers > 1 and size >= plan.min_parallel_configs:
        if record_strategy:
            _planner.record_selection("sharded")
        if not obs.active():
            result = _run_sharded(
                plan, workers, model, space, cls, queueing, service_overlap
            )
        else:
            with obs.span(
                "parallel_evaluate",
                workers=workers,
                workers_requested=plan.workers,
                configs=size,
            ) as sp:
                result = _run_sharded(
                    plan, workers, model, space, cls, queueing, service_overlap
                )
                sp.set(transport=plan.transport)
    else:
        if plan.workers > 1 and size >= plan.min_parallel_configs:
            # the sweep was big enough to shard but the host is not:
            # fall back to the inline single-process engine
            obs.add("parallel.clamped_inline_sweeps")
        obs.add("parallel.inline_sweeps")
        if record_strategy:
            _planner.record_selection("vectorized")
        result = vectorized._compute(
            model, space, cls, queueing, service_overlap
        )

    if identity is not None:
        plan.cache.put(identity, result)
    return result
