"""Pruned configuration-space search (beyond-paper scalability).

The paper enumerates its spaces exhaustively (216 and 400 points) — fine
at testbed scale, but a datacenter-sized space (hundreds of node counts ×
dozens of DVFS points × wide nodes) multiplies fast.  Both optimizer
queries admit sound pruning from a *bound that needs no fixed point*:

    T(config)  >=  T_CPU(config)  =  (w_s + b_s) · scale / (n · f)

because every other Eq. 1 term is non-negative, and

    E(config)  >=  n · (P_idle + c · P_act) · T_CPU(config)

because the idle floor is paid for at least ``T >= T_CPU`` and the useful
cycles are executed at active power.  Configurations whose *bound*
already misses the deadline / exceeds the incumbent energy are discarded
without evaluating the model; candidates are visited most-promising-first
so the incumbent tightens quickly, in vectorized blocks so surviving
candidates cost one broadcast pass instead of one Python call each.

Correctness is checked against the exhaustive optimizer in the test
suite — the pruned search returns bit-identical winners.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro import obs
from repro.core.model import HybridProgramModel, Prediction
from repro.core.vectorized import evaluate_many, model_fingerprint
from repro.machines.spec import Configuration
from repro.resilience.checkpoint import (
    Checkpoint,
    fingerprint,
    prediction_from_dict,
    prediction_to_dict,
)

#: Candidates surviving the bound filter are evaluated through the
#: vectorized engine in blocks of this size; the incumbent-based cutoff is
#: re-checked between blocks.  Small enough that at most a block's worth of
#: extra evaluations happens versus the one-at-a-time scalar loop, large
#: enough to amortize the engine's per-call overhead.
_CHUNK_SIZE = 32


def _effective_chunk_size() -> int:
    """The candidate block size under the ambient execution plan.

    With a multi-worker :class:`~repro.core.parallel.ExecutionPlan`
    active, blocks grow by the plan's shard count so each block can fan
    out across the worker pool (the search stays exact either way: block
    size only trades pruning tightness against parallel width).
    """
    from repro.core import parallel

    plan = parallel.active_plan()
    if plan is None or plan.workers <= 1:
        return _CHUNK_SIZE
    return _CHUNK_SIZE * plan.shards


@dataclass(frozen=True)
class SearchStats:
    """Work accounting for one pruned search."""

    total: int
    evaluated: int

    @property
    def pruned(self) -> int:
        """Configurations discarded from bounds alone."""
        return self.total - self.evaluated

    @property
    def evaluated_fraction(self) -> float:
        """Share of the space that needed a full model evaluation."""
        return self.evaluated / self.total if self.total else 0.0


def _cpu_bound_time(
    model: HybridProgramModel, config: Configuration, scale: float
) -> float:
    """The fixed-point-free lower bound ``T_CPU`` (Eqs. 2-4)."""
    art = model.inputs.artefacts(config.cores, config.frequency_hz)
    return art.useful_cycles * scale / (config.nodes * config.frequency_hz)


def _energy_bound(
    model: HybridProgramModel, config: Configuration, t_cpu: float
) -> float:
    """Sound energy lower bound from the idle floor + useful work."""
    power = model.inputs.power
    p_idle = power.sys_idle_w
    p_act = power.active(config.cores, config.frequency_hz)
    return config.nodes * t_cpu * (p_idle + config.cores * p_act)


def _search_checkpoint(
    checkpoint: str | pathlib.Path | Checkpoint | None,
    model: HybridProgramModel,
    configs: list[Configuration],
    kind: str,
    constraint: float,
    cls: str,
    chunk_size: int,
) -> Checkpoint | None:
    """Open (or pass through) a search checkpoint, fingerprinted over the
    model parameters, the space, the objective and its constraint.

    The chunk size is part of the identity: chunk indices are only
    meaningful for one chunking, so resuming under a different worker
    count (which scales the chunk size) is refused rather than mixed.
    """
    if checkpoint is None or isinstance(checkpoint, Checkpoint):
        return checkpoint
    return Checkpoint.open(
        checkpoint,
        "search",
        fingerprint(
            {
                "model": repr(model_fingerprint(model)),
                "space": [(c.nodes, c.cores, c.frequency_hz) for c in configs],
                "kind": kind,
                "constraint": constraint,
                "class_name": cls,
                "chunk_size": chunk_size,
            }
        ),
    )


def _restore_search_state(
    ck: Checkpoint | None,
) -> tuple[int, Prediction | None, int, bool]:
    """Replay a search checkpoint: (next chunk index, incumbent, evaluated,
    done).  Chunking and candidate order are deterministic, so the state
    recorded after chunk *k* fully determines resumption at chunk *k + 1*."""
    if ck is None:
        return 0, None, 0, False
    index, best, evaluated, done = 0, None, 0, False
    while True:
        state = ck.get(f"chunk{index}")
        if state is None:
            break
        evaluated = state["evaluated"]
        best = (
            prediction_from_dict(state["best"])
            if state["best"] is not None
            else None
        )
        done = bool(state.get("done", False))
        index += 1
    return index, best, evaluated, done


def _record_search_chunk(
    ck: Checkpoint | None,
    index: int,
    best: Prediction | None,
    evaluated: int,
    done: bool,
) -> None:
    if ck is None:
        return
    ck.record(
        f"chunk{index}",
        {
            "evaluated": evaluated,
            "best": prediction_to_dict(best) if best is not None else None,
            "done": done,
        },
    )


def search_min_energy_within_deadline(
    model: HybridProgramModel,
    space: Iterable[Configuration],
    deadline_s: float,
    class_name: str | None = None,
    checkpoint: str | pathlib.Path | Checkpoint | None = None,
) -> tuple[Prediction | None, SearchStats]:
    """Minimum-energy configuration meeting the deadline, with pruning.

    Returns the same winner as exhaustively evaluating the space (or
    ``None`` if infeasible) plus the pruning statistics.  With
    ``checkpoint``, the incumbent and position are persisted after every
    evaluated chunk and a re-invocation resumes where the last one
    stopped, returning the identical winner.
    """
    if deadline_s <= 0:
        raise ValueError("deadline must be positive")
    if not obs.active():
        return _search_min_energy(model, space, deadline_s, class_name, checkpoint)
    with obs.span("search", kind="min_energy_within_deadline") as sp:
        best, stats = _search_min_energy(
            model, space, deadline_s, class_name, checkpoint
        )
        sp.set(total=stats.total, evaluated=stats.evaluated, pruned=stats.pruned)
    _record_search_stats(stats)
    return best, stats


def _search_min_energy(
    model: HybridProgramModel,
    space: Iterable[Configuration],
    deadline_s: float,
    class_name: str | None,
    checkpoint: str | pathlib.Path | Checkpoint | None = None,
) -> tuple[Prediction | None, SearchStats]:
    cls = class_name or model.inputs.baseline_class
    scale = model.program.scale_factor(cls, model.inputs.baseline_class)

    configs = list(space)
    chunk_size = _effective_chunk_size()
    ck = _search_checkpoint(
        checkpoint,
        model,
        configs,
        "min_energy_within_deadline",
        deadline_s,
        cls,
        chunk_size,
    )
    start_index, best, evaluated, done = _restore_search_state(ck)
    if done:
        return best, SearchStats(total=len(configs), evaluated=evaluated)

    bounded = []
    for cfg in configs:
        t_lb = _cpu_bound_time(model, cfg, scale)
        if t_lb > deadline_s:
            continue  # cannot meet the deadline even with zero overhead
        bounded.append((cfg, t_lb, _energy_bound(model, cfg, t_lb)))

    # most promising (lowest energy bound) first: the incumbent tightens fast
    bounded.sort(key=lambda item: item[2])

    for index, pos in enumerate(range(0, len(bounded), chunk_size)):
        if index < start_index:
            continue  # chunk already evaluated before the interruption
        chunk = bounded[pos : pos + chunk_size]
        if best is not None:
            # sorted by bound: only candidates whose bound still beats the
            # incumbent can win (strict <); the rest of the list is pruned
            chunk = [item for item in chunk if item[2] < best.energy_j]
            if not chunk:
                _record_search_chunk(ck, index, best, evaluated, done=True)
                break
        preds = _evaluate_chunk(model, [item[0] for item in chunk], cls)
        evaluated += len(chunk)
        for pred in preds:
            if pred.time_s > deadline_s:
                continue
            if best is None or pred.energy_j < best.energy_j:
                best = pred
        _record_search_chunk(ck, index, best, evaluated, done=False)
    return best, SearchStats(total=len(configs), evaluated=evaluated)


def search_min_time_within_budget(
    model: HybridProgramModel,
    space: Iterable[Configuration],
    budget_j: float,
    class_name: str | None = None,
    checkpoint: str | pathlib.Path | Checkpoint | None = None,
) -> tuple[Prediction | None, SearchStats]:
    """Fastest configuration within the energy budget, with pruning."""
    if budget_j <= 0:
        raise ValueError("energy budget must be positive")
    if not obs.active():
        return _search_min_time(model, space, budget_j, class_name, checkpoint)
    with obs.span("search", kind="min_time_within_budget") as sp:
        best, stats = _search_min_time(
            model, space, budget_j, class_name, checkpoint
        )
        sp.set(total=stats.total, evaluated=stats.evaluated, pruned=stats.pruned)
    _record_search_stats(stats)
    return best, stats


def _search_min_time(
    model: HybridProgramModel,
    space: Iterable[Configuration],
    budget_j: float,
    class_name: str | None,
    checkpoint: str | pathlib.Path | Checkpoint | None = None,
) -> tuple[Prediction | None, SearchStats]:
    cls = class_name or model.inputs.baseline_class
    scale = model.program.scale_factor(cls, model.inputs.baseline_class)

    configs = list(space)
    chunk_size = _effective_chunk_size()
    ck = _search_checkpoint(
        checkpoint,
        model,
        configs,
        "min_time_within_budget",
        budget_j,
        cls,
        chunk_size,
    )
    start_index, best, evaluated, done = _restore_search_state(ck)
    if done:
        return best, SearchStats(total=len(configs), evaluated=evaluated)

    bounded = []
    for cfg in configs:
        t_lb = _cpu_bound_time(model, cfg, scale)
        if _energy_bound(model, cfg, t_lb) > budget_j:
            continue  # cannot fit the budget even with zero overhead
        bounded.append((cfg, t_lb))

    # most promising (lowest time bound) first
    bounded.sort(key=lambda item: item[1])

    for index, pos in enumerate(range(0, len(bounded), chunk_size)):
        if index < start_index:
            continue  # chunk already evaluated before the interruption
        chunk = bounded[pos : pos + chunk_size]
        if best is not None:
            # no candidate whose time bound misses the incumbent can win
            chunk = [item for item in chunk if item[1] < best.time_s]
            if not chunk:
                _record_search_chunk(ck, index, best, evaluated, done=True)
                break
        preds = _evaluate_chunk(model, [item[0] for item in chunk], cls)
        evaluated += len(chunk)
        for pred in preds:
            if pred.energy_j > budget_j:
                continue
            if best is None or pred.time_s < best.time_s:
                best = pred
        _record_search_chunk(ck, index, best, evaluated, done=False)
    return best, SearchStats(total=len(configs), evaluated=evaluated)


def _record_search_stats(stats: SearchStats) -> None:
    """Mirror one search's pruning statistics into the obs counters."""
    if obs.metrics_enabled():
        obs.add("search.candidates", stats.total)
        obs.add("search.evaluated", stats.evaluated)
        obs.add("search.pruned", stats.pruned)


def _evaluate_chunk(
    model: HybridProgramModel, configs: Sequence[Configuration], cls: str
) -> tuple[Prediction, ...]:
    """Evaluate a candidate block through the vectorized engine.

    Uncached: ad-hoc candidate subsets would only churn the space LRU.
    """
    return evaluate_many(model, configs, cls).predictions


# ----------------------------------------------------------------------
# streamed variants (block-bounded memory)
# ----------------------------------------------------------------------


def stream_min_energy_within_deadline(
    model: HybridProgramModel,
    space: object,
    deadline_s: float,
    class_name: str | None = None,
    *,
    k: int = 1,
    max_block_bytes: int | None = None,
):
    """Deadline-constrained minimum-energy search, O(block) memory.

    The streamed counterpart of :func:`search_min_energy_within_deadline`
    for spaces too large to materialize: blocks flow through
    :func:`repro.core.planner.stream_topk`, which keeps only a running
    top-``k`` candidate set.  Returns a
    :class:`~repro.core.planner.StreamedSelection` whose ``.best`` is the
    winning :class:`~repro.core.model.Prediction` (``None`` when no
    configuration meets the deadline); winner indices are exactly the
    materialized optimizer's (same stable tie-breaking).
    """
    from repro.core import planner

    kwargs = {} if max_block_bytes is None else {
        "max_block_bytes": max_block_bytes
    }
    return planner.stream_topk(
        model,
        space,
        k,
        objective="min_energy",
        deadline_s=deadline_s,
        class_name=class_name,
        **kwargs,
    )


def stream_min_time_within_budget(
    model: HybridProgramModel,
    space: object,
    budget_j: float,
    class_name: str | None = None,
    *,
    k: int = 1,
    max_block_bytes: int | None = None,
):
    """Energy-budgeted minimum-time search, O(block) memory.

    The streamed counterpart of :func:`search_min_time_within_budget`;
    see :func:`stream_min_energy_within_deadline` for the contract.
    """
    from repro.core import planner

    kwargs = {} if max_block_bytes is None else {
        "max_block_bytes": max_block_bytes
    }
    return planner.stream_topk(
        model,
        space,
        k,
        objective="min_time",
        budget_j=budget_j,
        class_name=class_name,
        **kwargs,
    )
