"""Deadline / energy-budget configuration queries (paper §I, §V-A).

"These configurations either consume minimum energy for a given execution
time deadline, or execute in the minimum possible time for a given energy
budget" — the two primitive queries users of the approach ask, plus a
knee-point heuristic for users with neither constraint.
"""

from __future__ import annotations

import numpy as np

from repro.core.configspace import SpaceEvaluation
from repro.core.model import Prediction


def min_energy_within_deadline(
    evaluation: SpaceEvaluation, deadline_s: float
) -> Prediction | None:
    """Minimum-energy configuration meeting the deadline, or ``None``.

    The returned point is Pareto-optimal by construction.
    """
    if deadline_s <= 0:
        raise ValueError("deadline must be positive")
    times = evaluation.times_s
    feasible = times <= deadline_s
    if not feasible.any():
        return None
    energies = np.where(feasible, evaluation.energies_j, np.inf)
    return evaluation.predictions[int(np.argmin(energies))]


def min_time_within_budget(
    evaluation: SpaceEvaluation, budget_j: float
) -> Prediction | None:
    """Fastest configuration within the energy budget, or ``None``."""
    if budget_j <= 0:
        raise ValueError("energy budget must be positive")
    energies = evaluation.energies_j
    feasible = energies <= budget_j
    if not feasible.any():
        return None
    times = np.where(feasible, evaluation.times_s, np.inf)
    return evaluation.predictions[int(np.argmin(times))]


def knee_point(evaluation: SpaceEvaluation) -> Prediction:
    """Frontier knee: minimum normalized Euclidean distance to the ideal.

    A convenience for users without explicit constraints: normalizes time
    and energy to [0, 1] over the space and picks the point closest to the
    (0, 0) ideal.
    """
    times = evaluation.times_s
    energies = evaluation.energies_j
    t_span = times.max() - times.min() or 1.0
    e_span = energies.max() - energies.min() or 1.0
    t_norm = (times - times.min()) / t_span
    e_norm = (energies - energies.min()) / e_span
    return evaluation.predictions[int(np.argmin(np.hypot(t_norm, e_norm)))]
