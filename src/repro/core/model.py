"""`HybridProgramModel` — the user-facing prediction facade (paper Fig. 2).

Bundles the measured :class:`~repro.core.params.ModelInputs` with the
workload parameters the user knows (input class → iterations and work
scale) and predicts time, energy and UCR for any configuration.  This is
the object the Pareto/UCR analyses and all benchmarks operate on.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro import obs
from repro.core.energy_model import EnergyBreakdown, predict_energy
from repro.core.inputs import characterize
from repro.core.params import ModelInputs
from repro.core.time_model import TimeBreakdown, predict_time
from repro.machines.spec import Configuration
from repro.simulate.cluster import SimulatedCluster
from repro.workloads.base import HybridProgram


@dataclass(frozen=True)
class Prediction:
    """One model prediction at a configuration."""

    config: Configuration
    class_name: str
    time: TimeBreakdown
    energy: EnergyBreakdown

    @property
    def time_s(self) -> float:
        """Predicted execution time ``T``."""
        return self.time.total_s

    @property
    def energy_j(self) -> float:
        """Predicted total energy ``E``."""
        return self.energy.total_j

    @property
    def ucr(self) -> float:
        """Predicted useful computation ratio (Eq. 13)."""
        return self.time.ucr


@dataclass(frozen=True)
class HybridProgramModel:
    """Time-energy model of one program on one cluster.

    Build with :meth:`from_measurements` to run the full characterization
    campaign, or construct directly from pre-assembled inputs (tests,
    what-if variants).
    """

    program: HybridProgram
    inputs: ModelInputs

    @classmethod
    def from_measurements(
        cls,
        cluster: SimulatedCluster,
        program: HybridProgram,
        baseline_class: str | None = None,
        repetitions: int = 3,
    ) -> "HybridProgramModel":
        """Characterize the program on the cluster and build the model."""
        inputs = characterize(
            cluster, program, class_name=baseline_class, repetitions=repetitions
        )
        return cls(program=program, inputs=inputs)

    def predict(
        self,
        config: Configuration,
        class_name: str | None = None,
        queueing: str = "bracketed",
        service_overlap: bool = True,
    ) -> Prediction:
        """Predict time and energy at a configuration (Eqs. 1-12).

        ``queueing`` and ``service_overlap`` select time-model variants for
        ablation studies (see :func:`repro.core.time_model.predict_time`).
        """
        cls_name = class_name or self.inputs.baseline_class
        scale = self.program.scale_factor(cls_name, self.inputs.baseline_class)
        iterations = self.program.iterations(cls_name)
        if not obs.tracing_enabled():
            return self._predict(
                config, cls_name, scale, iterations, queueing, service_overlap
            )
        with obs.span("predict", config=config.label(), class_name=cls_name):
            return self._predict(
                config, cls_name, scale, iterations, queueing, service_overlap
            )

    def _predict(
        self,
        config: Configuration,
        cls_name: str,
        scale: float,
        iterations: int,
        queueing: str,
        service_overlap: bool,
    ) -> Prediction:
        time = predict_time(
            self.inputs,
            nodes=config.nodes,
            cores=config.cores,
            frequency_hz=config.frequency_hz,
            scale=scale,
            iterations=iterations,
            queueing=queueing,
            service_overlap=service_overlap,
        )
        energy = predict_energy(
            self.inputs.power,
            time,
            nodes=config.nodes,
            cores=config.cores,
            frequency_hz=config.frequency_hz,
        )
        return Prediction(
            config=config, class_name=cls_name, time=time, energy=energy
        )

    def with_inputs(self, inputs: ModelInputs) -> "HybridProgramModel":
        """A copy with substituted inputs (what-if analysis)."""
        return replace(self, inputs=inputs)
