"""What-if analysis: resource scaling on the model inputs (paper §V-B).

The paper's closing example: "doubling the memory bandwidth reduces the
number of stall cycles due to shared-memory contention by two times, and
thus improves the UCR of SP program executed on Xeon configuration
(1,8,1.8) from 0.67 to 0.81", also cutting 7 s and 590 J — the system-
designer workflow of optimizing the Pareto frontier by rebalancing
resources.  Because the model is white-box, such studies are direct input
transformations, no re-measurement needed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from repro import obs
from repro.core.configspace import ConfigSpace, SpaceEvaluation, evaluate_space
from repro.core.model import HybridProgramModel
from repro.core.params import NetworkCharacteristics
from repro.machines.spec import Configuration


@dataclass(frozen=True)
class SpaceDelta:
    """Whole-space effect of a what-if transformation.

    Both evaluations route through the vectorized engine and its LRU
    cache, so sweeping several transformations against the same baseline
    reuses the baseline arrays.
    """

    base: SpaceEvaluation
    variant: SpaceEvaluation

    @property
    def time_delta_s(self) -> np.ndarray:
        """Per-configuration time change (negative = faster)."""
        return self.variant.times_s - self.base.times_s

    @property
    def energy_delta_j(self) -> np.ndarray:
        """Per-configuration energy change (negative = cheaper)."""
        return self.variant.energies_j - self.base.energies_j

    @property
    def ucr_delta(self) -> np.ndarray:
        """Per-configuration UCR change (positive = more useful work)."""
        return self.variant.ucrs - self.base.ucrs

    @property
    def best_energy_saving_j(self) -> float:
        """Largest per-configuration energy saving over the space."""
        return float(-self.energy_delta_j.min()) if len(self.base) else 0.0

    def at(self, index: int) -> tuple[float, float, float]:
        """(Δtime, Δenergy, ΔUCR) of one configuration by index."""
        return (
            float(self.time_delta_s[index]),
            float(self.energy_delta_j[index]),
            float(self.ucr_delta[index]),
        )


@dataclass(frozen=True)
class WhatIf:
    """Fluent what-if transformations over a model."""

    model: HybridProgramModel

    def memory_bandwidth(self, factor: float) -> HybridProgramModel:
        """Scale memory bandwidth: memory stall cycles scale by 1/factor.

        This is the paper's own approximation — contention and service both
        shrink proportionally with controller bandwidth.
        """
        if factor <= 0:
            raise ValueError("bandwidth factor must be positive")
        new_baseline = {
            key: replace(art, mem_stall_cycles=art.mem_stall_cycles / factor)
            for key, art in self.model.inputs.baseline.items()
        }
        return self.model.with_inputs(
            replace(self.model.inputs, baseline=new_baseline)
        )

    def network_bandwidth(self, factor: float) -> HybridProgramModel:
        """Scale achievable network throughput ``B``."""
        if factor <= 0:
            raise ValueError("bandwidth factor must be positive")
        net = self.model.inputs.network
        new_net = NetworkCharacteristics(
            bandwidth_bytes_per_s=net.bandwidth_bytes_per_s * factor,
            latency_floor_s=net.latency_floor_s,
        )
        return self.model.with_inputs(
            replace(self.model.inputs, network=new_net)
        )

    def network_latency(self, factor: float) -> HybridProgramModel:
        """Scale the per-message latency floor (e.g. kernel-bypass NICs)."""
        if factor <= 0:
            raise ValueError("latency factor must be positive")
        net = self.model.inputs.network
        new_net = NetworkCharacteristics(
            bandwidth_bytes_per_s=net.bandwidth_bytes_per_s,
            latency_floor_s=net.latency_floor_s * factor,
        )
        return self.model.with_inputs(
            replace(self.model.inputs, network=new_net)
        )

    def idle_power(self, factor: float) -> HybridProgramModel:
        """Scale the platform idle floor (energy-proportionality studies)."""
        if factor < 0:
            raise ValueError("idle power factor must be non-negative")
        power = replace(
            self.model.inputs.power,
            sys_idle_w=self.model.inputs.power.sys_idle_w * factor,
        )
        return self.model.with_inputs(replace(self.model.inputs, power=power))

    def compare(
        self,
        variant: HybridProgramModel,
        space: ConfigSpace | Sequence[Configuration],
        class_name: str | None = None,
    ) -> SpaceDelta:
        """Evaluate base vs. transformed model over a whole space.

        The paper's §V-B study — "doubling the memory bandwidth … improves
        the UCR of SP on (1,8,1.8) from 0.67 to 0.81" — becomes::

            delta = WhatIf(model).compare(
                WhatIf(model).memory_bandwidth(2.0), space
            )

        Both sweeps run through the vectorized engine and the space LRU,
        so a battery of what-if variants pays for the baseline once.
        """
        if not obs.active():
            return SpaceDelta(
                base=evaluate_space(self.model, space, class_name),
                variant=evaluate_space(variant, space, class_name),
            )
        with obs.span("whatif") as sp:
            delta = SpaceDelta(
                base=evaluate_space(self.model, space, class_name),
                variant=evaluate_space(variant, space, class_name),
            )
            sp.set(configs=len(delta.base))
        if obs.metrics_enabled():
            obs.add("whatif.comparisons")
        return delta

    def compare_streamed(
        self,
        variant: HybridProgramModel,
        space: ConfigSpace | Sequence[Configuration],
        class_name: str | None = None,
        *,
        max_block_bytes: int | None = None,
    ) -> "StreamedSpaceDelta":
        """Base-vs-variant comparison of a space too large to materialize.

        Streams both models block by block in lockstep (identical block
        boundaries, so deltas subtract aligned configurations) and keeps
        only running summaries.  Min/max deltas are exact — each block's
        per-configuration deltas are bit-identical to the materialized
        ones — while the means accumulate block sums (equal to the
        materialized mean within floating-point reassociation, well
        inside the pinned 1e-9 tolerance).
        """
        from repro.core import planner

        kwargs = {} if max_block_bytes is None else {
            "max_block_bytes": max_block_bytes
        }
        base_blocks = planner.stream_blocks(
            self.model, space, class_name, **kwargs
        )
        variant_blocks = planner.stream_blocks(
            variant, space, class_name, **kwargs
        )
        configs = 0
        sums = np.zeros(3)
        mins = np.full(3, np.inf)
        maxs = np.full(3, -np.inf)
        if not obs.active():
            return self._accumulate_streamed(
                base_blocks, variant_blocks, configs, sums, mins, maxs
            )
        with obs.span("whatif_streamed") as sp:
            delta = self._accumulate_streamed(
                base_blocks, variant_blocks, configs, sums, mins, maxs
            )
            sp.set(configs=delta.configs)
        if obs.metrics_enabled():
            obs.add("whatif.comparisons")
        return delta

    @staticmethod
    def _accumulate_streamed(
        base_blocks, variant_blocks, configs, sums, mins, maxs
    ) -> "StreamedSpaceDelta":
        """Fold lockstep block pairs into running delta summaries."""
        for (b_off, b_vec), (v_off, v_vec) in zip(base_blocks, variant_blocks):
            assert b_off == v_off and len(b_vec) == len(v_vec)
            if not len(b_vec):
                continue
            deltas = (
                v_vec.times_s - b_vec.times_s,
                v_vec.energies_j - b_vec.energies_j,
                v_vec.ucrs - b_vec.ucrs,
            )
            configs += len(b_vec)
            for i, d in enumerate(deltas):
                sums[i] += float(d.sum())
                mins[i] = min(mins[i], float(d.min()))
                maxs[i] = max(maxs[i], float(d.max()))
        if not configs:
            sums = np.zeros(3)
            mins = np.zeros(3)
            maxs = np.zeros(3)
        return StreamedSpaceDelta(
            configs=configs,
            time_delta_min_s=float(mins[0]),
            time_delta_max_s=float(maxs[0]),
            time_delta_mean_s=float(sums[0] / configs) if configs else 0.0,
            energy_delta_min_j=float(mins[1]),
            energy_delta_max_j=float(maxs[1]),
            energy_delta_mean_j=float(sums[1] / configs) if configs else 0.0,
            ucr_delta_min=float(mins[2]),
            ucr_delta_max=float(maxs[2]),
            ucr_delta_mean=float(sums[2] / configs) if configs else 0.0,
        )


@dataclass(frozen=True)
class StreamedSpaceDelta:
    """Summary deltas of a block-streamed what-if comparison.

    Unlike :class:`SpaceDelta` this holds no per-configuration arrays —
    only the min/max/mean of each delta over the space — so memory stays
    O(1) however large the space.  ``best_energy_saving_j`` matches
    :attr:`SpaceDelta.best_energy_saving_j` exactly.
    """

    configs: int
    time_delta_min_s: float
    time_delta_max_s: float
    time_delta_mean_s: float
    energy_delta_min_j: float
    energy_delta_max_j: float
    energy_delta_mean_j: float
    ucr_delta_min: float
    ucr_delta_max: float
    ucr_delta_mean: float

    @property
    def best_energy_saving_j(self) -> float:
        """Largest per-configuration energy saving over the space."""
        return -self.energy_delta_min_j if self.configs else 0.0
