"""What-if analysis: resource scaling on the model inputs (paper §V-B).

The paper's closing example: "doubling the memory bandwidth reduces the
number of stall cycles due to shared-memory contention by two times, and
thus improves the UCR of SP program executed on Xeon configuration
(1,8,1.8) from 0.67 to 0.81", also cutting 7 s and 590 J — the system-
designer workflow of optimizing the Pareto frontier by rebalancing
resources.  Because the model is white-box, such studies are direct input
transformations, no re-measurement needed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.model import HybridProgramModel
from repro.core.params import BaselineArtefacts, NetworkCharacteristics


@dataclass(frozen=True)
class WhatIf:
    """Fluent what-if transformations over a model."""

    model: HybridProgramModel

    def memory_bandwidth(self, factor: float) -> HybridProgramModel:
        """Scale memory bandwidth: memory stall cycles scale by 1/factor.

        This is the paper's own approximation — contention and service both
        shrink proportionally with controller bandwidth.
        """
        if factor <= 0:
            raise ValueError("bandwidth factor must be positive")
        new_baseline = {
            key: replace(art, mem_stall_cycles=art.mem_stall_cycles / factor)
            for key, art in self.model.inputs.baseline.items()
        }
        return self.model.with_inputs(
            replace(self.model.inputs, baseline=new_baseline)
        )

    def network_bandwidth(self, factor: float) -> HybridProgramModel:
        """Scale achievable network throughput ``B``."""
        if factor <= 0:
            raise ValueError("bandwidth factor must be positive")
        net = self.model.inputs.network
        new_net = NetworkCharacteristics(
            bandwidth_bytes_per_s=net.bandwidth_bytes_per_s * factor,
            latency_floor_s=net.latency_floor_s,
        )
        return self.model.with_inputs(
            replace(self.model.inputs, network=new_net)
        )

    def network_latency(self, factor: float) -> HybridProgramModel:
        """Scale the per-message latency floor (e.g. kernel-bypass NICs)."""
        if factor <= 0:
            raise ValueError("latency factor must be positive")
        net = self.model.inputs.network
        new_net = NetworkCharacteristics(
            bandwidth_bytes_per_s=net.bandwidth_bytes_per_s,
            latency_floor_s=net.latency_floor_s * factor,
        )
        return self.model.with_inputs(
            replace(self.model.inputs, network=new_net)
        )

    def idle_power(self, factor: float) -> HybridProgramModel:
        """Scale the platform idle floor (energy-proportionality studies)."""
        if factor < 0:
            raise ValueError("idle power factor must be non-negative")
        power = replace(
            self.model.inputs.power,
            sys_idle_w=self.model.inputs.power.sys_idle_w * factor,
        )
        return self.model.with_inputs(replace(self.model.inputs, power=power))
