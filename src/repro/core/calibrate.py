"""Residual calibration: probe-run corrections on the model's terms.

The paper contrasts its white-box model with black-box regression
approaches (§II-B: Barnes et al., Lee & Brooks, Prophesy).  This module
combines the two: keep the analytical structure, but fit small
multiplicative corrections to the Eq. 1 terms from a handful of *probe*
runs on the real system:

    T_measured  ≈  a·T_CPU + b·T_mem + c·T_s,net + d·T_w,net

solved by non-negative least squares over the probe set.  Corrections
near 1 confirm the model; systematic deviations absorb structural error
(e.g. barrier/straggler time the per-core means cannot see loads mostly
onto the terms it correlates with).  Unlike pure regression the corrected
model still extrapolates — the terms carry the physics; the coefficients
only rescale them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy.optimize import nnls

from repro import obs
from repro.core.energy_model import predict_energy
from repro.core.model import HybridProgramModel, Prediction
from repro.core.time_model import TimeBreakdown
from repro.machines.spec import Configuration
from repro.measure.timecmd import measure_wall_time
from repro.simulate.cluster import SimulatedCluster


@dataclass(frozen=True)
class TermCorrections:
    """Multiplicative corrections for the Eq. 1 terms."""

    cpu: float
    mem: float
    net_service: float
    net_wait: float

    def __post_init__(self) -> None:
        for name in ("cpu", "mem", "net_service", "net_wait"):
            if getattr(self, name) < 0:
                raise ValueError(f"correction {name} must be non-negative")

    @classmethod
    def identity(cls) -> "TermCorrections":
        """No-op corrections (the raw model)."""
        return cls(cpu=1.0, mem=1.0, net_service=1.0, net_wait=1.0)

    def apply(self, time: TimeBreakdown) -> TimeBreakdown:
        """Rescale a time breakdown's terms."""
        return TimeBreakdown(
            t_cpu_s=time.t_cpu_s * self.cpu,
            t_mem_s=time.t_mem_s * self.mem,
            t_net_service_s=time.t_net_service_s * self.net_service,
            t_net_wait_s=time.t_net_wait_s * self.net_wait,
            utilization_baseline=time.utilization_baseline,
            rho_network=time.rho_network,
        )


def fit_corrections(
    model: HybridProgramModel,
    testbed: SimulatedCluster,
    probe_configs: Sequence[Configuration],
    class_name: str | None = None,
    repetitions: int = 2,
    regularization: float = 0.05,
) -> TermCorrections:
    """Fit term corrections from probe runs on the testbed.

    Solves the non-negative least squares problem over the probes, with a
    small Tikhonov pull toward the identity corrections so that terms
    absent from the probe set (e.g. network terms when probing single-node
    configurations) stay at 1 instead of drifting to 0.
    """
    if len(probe_configs) < 2:
        raise ValueError("need at least two probe configurations")
    rows = []
    targets = []
    for cfg in probe_configs:
        pred = model.predict(cfg, class_name)
        t = pred.time
        rows.append(
            [t.t_cpu_s, t.t_mem_s, t.t_net_service_s, t.t_net_wait_s]
        )
        measured = float(
            np.mean(
                [
                    measure_wall_time(r)
                    for r in testbed.run_many(
                        model.program, cfg, class_name, repetitions=repetitions
                    )
                ]
            )
        )
        targets.append(measured)

    a = np.asarray(rows, dtype=np.float64)
    b = np.asarray(targets, dtype=np.float64)
    # Tikhonov pull toward the identity corrections, scaled per column so
    # each term's penalty is commensurate with its influence on the fit:
    # minimize ||A x - b||^2 + sum_j lam_j^2 (x_j - 1)^2  with  x >= 0,
    # solved as NNLS on the stacked system [A; diag(lam)] x = [b; lam].
    column_norms = np.linalg.norm(a, axis=0)
    column_norms[column_norms == 0] = np.linalg.norm(b) or 1.0
    lam = regularization * column_norms
    a_aug = np.vstack([a, np.diag(lam)])
    b_aug = np.concatenate([b, lam])
    coeffs, _ = nnls(a_aug, b_aug)
    return TermCorrections(
        cpu=float(coeffs[0]),
        mem=float(coeffs[1]),
        net_service=float(coeffs[2]),
        net_wait=float(coeffs[3]),
    )


@dataclass(frozen=True)
class CalibratedModel:
    """A model plus fitted term corrections.

    Exposes the same ``predict`` surface as
    :class:`~repro.core.model.HybridProgramModel`.
    """

    base: HybridProgramModel
    corrections: TermCorrections

    def predict(
        self, config: Configuration, class_name: str | None = None
    ) -> Prediction:
        """Predict with corrected Eq. 1 terms (energy re-derived from the
        corrected times via Eqs. 8-12)."""
        raw = self.base.predict(config, class_name)
        time = self.corrections.apply(raw.time)
        energy = predict_energy(
            self.base.inputs.power,
            time,
            nodes=config.nodes,
            cores=config.cores,
            frequency_hz=config.frequency_hz,
        )
        return Prediction(
            config=config,
            class_name=raw.class_name,
            time=time,
            energy=energy,
        )


def calibrate(
    model: HybridProgramModel,
    testbed: SimulatedCluster,
    probe_configs: Sequence[Configuration],
    class_name: str | None = None,
    repetitions: int = 2,
) -> CalibratedModel:
    """Fit corrections and wrap the model."""
    with obs.span(
        "calibrate", program=model.program.name, probes=len(probe_configs)
    ):
        corrections = fit_corrections(
            model, testbed, probe_configs, class_name, repetitions
        )
        return CalibratedModel(base=model, corrections=corrections)
