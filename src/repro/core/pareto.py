"""Time-energy Pareto frontier extraction (paper §V-A).

A configuration is Pareto-optimal if no other configuration is both faster
and uses no more energy (equivalently: it consumes the minimum energy among
all configurations meeting some execution-time deadline).  The set of such
points over all deadlines is the time-energy Pareto frontier of Figs. 8-9.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.core.configspace import SpaceEvaluation
from repro.core.model import Prediction


@dataclass(frozen=True)
class ParetoPoint:
    """One frontier member."""

    prediction: Prediction

    @property
    def time_s(self) -> float:
        """Predicted execution time."""
        return self.prediction.time_s

    @property
    def energy_j(self) -> float:
        """Predicted energy."""
        return self.prediction.energy_j

    @property
    def ucr(self) -> float:
        """Predicted UCR at this frontier point."""
        return self.prediction.ucr

    @property
    def label(self) -> str:
        """Paper-style (n,c,f) label."""
        return self.prediction.config.label()


def pareto_mask(times: np.ndarray, energies: np.ndarray) -> np.ndarray:
    """Boolean mask of non-dominated (min-time, min-energy) points.

    O(m log m), fully vectorized: sort by time (ties by energy), then a
    point survives iff its energy strictly improves the running minimum —
    computed as a cumulative-minimum comparison.  Ties in time keep only
    the lowest energy; exact duplicates keep the first occurrence.
    """
    times = np.asarray(times, dtype=np.float64)
    energies = np.asarray(energies, dtype=np.float64)
    if times.shape != energies.shape or times.ndim != 1:
        raise ValueError("times and energies must be equal-length 1-D arrays")
    mask = np.zeros(times.shape, dtype=bool)
    if not times.size:
        return mask
    order = np.lexsort((energies, times))
    sorted_energies = energies[order]
    running_min = np.minimum.accumulate(sorted_energies)
    keep = np.empty(order.size, dtype=bool)
    keep[0] = True
    keep[1:] = sorted_energies[1:] < running_min[:-1]
    mask[order[keep]] = True
    return mask


def pareto_frontier(evaluation: SpaceEvaluation) -> list[ParetoPoint]:
    """Extract the frontier from a space evaluation, sorted by time."""
    if not obs.active():
        return _frontier(evaluation)
    with obs.span("pareto", points=len(evaluation.times_s)) as sp:
        points = _frontier(evaluation)
        sp.set(frontier=len(points))
    if obs.metrics_enabled():
        obs.add("pareto.candidates", len(evaluation.times_s))
        obs.add("pareto.frontier_points", len(points))
    return points


def _frontier(evaluation: SpaceEvaluation) -> list[ParetoPoint]:
    mask = pareto_mask(evaluation.times_s, evaluation.energies_j)
    points = [
        ParetoPoint(prediction=p)
        for p, keep in zip(evaluation.predictions, mask)
        if keep
    ]
    return sorted(points, key=lambda pt: pt.time_s)


def pareto_frontier_streamed(
    model,
    space: object,
    class_name: str | None = None,
    *,
    max_block_bytes: int | None = None,
) -> list[ParetoPoint]:
    """Extract the frontier of a space too large to materialize.

    Runs :func:`repro.core.planner.stream_pareto` — a running-frontier
    reduction over block-streamed evaluation, O(frontier + block) memory
    — and returns the same :class:`ParetoPoint` list (sorted by time)
    that :func:`pareto_frontier` produces over the materialized space:
    frontier membership is exact, member values bit-identical.
    """
    from repro.core import planner

    kwargs = {} if max_block_bytes is None else {
        "max_block_bytes": max_block_bytes
    }
    selection = planner.stream_pareto(model, space, class_name, **kwargs)
    points = [
        ParetoPoint(prediction=p) for p in selection.evaluation.predictions
    ]
    return sorted(points, key=lambda pt: pt.time_s)
