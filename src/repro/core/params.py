"""Model parameter records (paper Table 1).

Everything the analytical model is allowed to know is collected in
:class:`ModelInputs`: baseline counter measurements, fitted communication
characteristics, the characterized network throughput and the characterized
power table.  The model never touches the simulator's true internals — the
only channel from testbed to model is measurement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.machines.power import PowerTable
from repro.measure.baseline import BaselineSweep


@dataclass(frozen=True)
class BaselineArtefacts:
    """Workload artefacts at one (c, f) point (paper Table 1, "Baseline
    Execution" block): ``I_s, w_s, b_s, m_s, U_s``."""

    instructions: float
    work_cycles: float
    nonmem_stall_cycles: float
    mem_stall_cycles: float
    utilization: float

    @property
    def useful_cycles(self) -> float:
        """``w_s + b_s`` (Eq. 3)."""
        return self.work_cycles + self.nonmem_stall_cycles


@dataclass(frozen=True)
class CommCharacteristics:
    """Fitted communication signature (paper's η and ν with scaling laws).

    Quantities are per logical process per iteration at the baseline input
    class, normalized to the reference node count ``n = 2``; predictions at
    other node counts follow the fitted power laws:

    * ``η(n) = eta_ref * (n/2) ** eta_exponent``
    * ``volume(n) = volume_ref * (2/n) ** volume_exponent``  (per process)
    * ``ν(n) = volume(n) / η(n)``
    """

    eta_ref: float
    volume_ref: float
    eta_exponent: float
    volume_exponent: float

    def eta(self, nodes: int) -> float:
        """Messages per process per iteration at ``nodes``."""
        if nodes <= 1:
            return 0.0
        return self.eta_ref * (nodes / 2.0) ** self.eta_exponent

    def volume(self, nodes: int) -> float:
        """Bytes per process per iteration at ``nodes``."""
        if nodes <= 1:
            return 0.0
        return self.volume_ref * (2.0 / nodes) ** self.volume_exponent

    def nu(self, nodes: int) -> float:
        """Mean message volume ν (bytes) at ``nodes``."""
        if nodes <= 1:
            return 0.0
        return self.volume(nodes) / self.eta(nodes)


@dataclass(frozen=True)
class NetworkCharacteristics:
    """NetPIPE-derived network inputs: achievable throughput ``B`` and the
    per-message latency floor."""

    bandwidth_bytes_per_s: float
    latency_floor_s: float


@dataclass(frozen=True)
class ModelInputs:
    """Everything the analytical model knows (paper Fig. 2's inputs).

    ``baseline`` holds the single-node counter sweep; ``comm`` the fitted
    mpiP characteristics; ``network`` the NetPIPE results; ``power`` the
    characterized (not true) power table; ``baseline_iterations`` is
    ``S_s``.
    """

    program: str
    cluster: str
    baseline_class: str
    baseline_iterations: int
    baseline: Mapping[tuple[int, float], BaselineArtefacts]
    comm: CommCharacteristics
    network: NetworkCharacteristics
    power: PowerTable

    def artefacts(self, cores: int, frequency_hz: float) -> BaselineArtefacts:
        """Baseline artefacts at the (c, f) point nearest to the request."""
        key = min(
            self.baseline,
            key=lambda k: (abs(k[0] - cores), abs(k[1] - frequency_hz)),
        )
        if key[0] != cores:
            raise KeyError(f"no baseline artefacts for c={cores}")
        return self.baseline[key]

    @classmethod
    def baseline_from_sweep(
        cls, sweep: BaselineSweep
    ) -> dict[tuple[int, float], BaselineArtefacts]:
        """Convert a measured sweep into the model's artefact table."""
        return {
            key: BaselineArtefacts(
                instructions=p.instructions,
                work_cycles=p.work_cycles,
                nonmem_stall_cycles=p.nonmem_stall_cycles,
                mem_stall_cycles=p.mem_stall_cycles,
                utilization=p.utilization,
            )
            for key, p in sweep.points.items()
        }
