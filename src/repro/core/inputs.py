"""Characterization: run the measurement campaigns, assemble ModelInputs.

This is the left half of the paper's Fig. 2: baseline executions on a
single node over all (c, f), mpiP profiling for communication
characteristics, NetPIPE for network throughput and the power
micro-benchmarks — everything the model consumes, produced purely through
the measurement interfaces.

The communication scaling laws are *fitted*, not assumed: mpiP reports at
two (or more) node counts give exact log-log slopes for η(n) and the
per-process volume(n), which is how a practitioner would generalize two
profiling runs to the whole configuration space.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.core.params import (
    BaselineArtefacts,
    CommCharacteristics,
    ModelInputs,
    NetworkCharacteristics,
)
from repro.measure.baseline import (
    CommProfile,
    profile_communication,
    run_baseline_sweep,
)
from repro.measure.microbench import characterize_power
from repro.measure.netpipe import run_netpipe
from repro.simulate.cluster import SimulatedCluster
from repro.workloads.base import HybridProgram


def fit_comm_model(profile: CommProfile) -> CommCharacteristics:
    """Fit the η(n) and volume(n) power laws from mpiP reports.

    A log-log least-squares fit over the profiled node counts; with the
    customary two profiling runs this is an exact two-point fit.  Values
    are normalized to the reference node count n = 2.
    """
    nodes = np.array([r.nodes for r in profile.reports], dtype=np.float64)
    eta = np.array([r.eta_per_process_iter for r in profile.reports])
    vol = np.array([r.volume_per_process_iter for r in profile.reports])
    if np.any(eta <= 0) or np.any(vol <= 0):
        raise ValueError("mpiP reports show no communication; cannot fit laws")

    log_n = np.log(nodes / 2.0)
    if np.allclose(log_n, 0.0):
        raise ValueError("need at least one profile at n != 2 to fit exponents")

    eta_exp, log_eta_ref = np.polyfit(log_n, np.log(eta), 1)
    neg_vol_exp, log_vol_ref = np.polyfit(log_n, np.log(vol), 1)
    return CommCharacteristics(
        eta_ref=float(np.exp(log_eta_ref)),
        volume_ref=float(np.exp(log_vol_ref)),
        eta_exponent=float(eta_exp),
        volume_exponent=float(-neg_vol_exp),
    )


def characterize(
    cluster: SimulatedCluster,
    program: HybridProgram,
    class_name: str | None = None,
    repetitions: int = 3,
    comm_node_counts: tuple[int, ...] = (2, 4),
    baseline_checkpoint: object | None = None,
) -> ModelInputs:
    """Run the full characterization campaign for one program on one cluster.

    This is the only constructor of :class:`ModelInputs` used in validation:
    every value passes through a measurement interface (counters, mpiP,
    NetPIPE, wall meter), never through simulator internals.

    ``baseline_checkpoint`` (a path or an open
    :class:`~repro.resilience.checkpoint.Checkpoint`) makes the baseline
    (c, f) sweep resumable; under an enabled resilience context the whole
    campaign degrades gracefully on lost samples (see
    :func:`repro.resilience.pipeline.characterize_resilient` for the
    coverage record).
    """
    cls = class_name or program.reference_class
    with obs.span("characterize", program=program.name, class_name=cls):
        sweep = run_baseline_sweep(
            cluster,
            program,
            cls,
            repetitions=repetitions,
            checkpoint=baseline_checkpoint,
        )
        comm = fit_comm_model(
            profile_communication(
                cluster, program, cls, node_counts=comm_node_counts
            )
        )
        pipe = run_netpipe(cluster.spec)
        network = NetworkCharacteristics(
            bandwidth_bytes_per_s=pipe.achievable_bandwidth_bytes_per_s(),
            latency_floor_s=pipe.latency_floor_s(),
        )
        power = characterize_power(cluster.spec)
    if obs.metrics_enabled():
        obs.add("characterize.campaigns")
        obs.add("characterize.baseline_points", len(sweep.points))
    return ModelInputs(
        program=program.name,
        cluster=cluster.spec.name,
        baseline_class=cls,
        baseline_iterations=program.iterations(cls),
        baseline=ModelInputs.baseline_from_sweep(sweep),
        comm=comm,
        network=network,
        power=power,
    )
