"""Configuration-space enumeration and batch evaluation (paper §V-A).

The Pareto analyses sweep spaces larger than the physical testbed — Fig. 8
explores 216 Xeon configurations up to 256 nodes, Fig. 9 explores 400 ARM
configurations up to 20 nodes.  :class:`ConfigSpace` describes such a
space; :func:`evaluate_space` runs the model over every point and returns
aligned arrays for plotting/Pareto extraction.

Evaluation routes through the vectorized engine
(:mod:`repro.core.vectorized`): the whole space is computed as one NumPy
broadcast over the ``(n, c, f)`` axes and cached, so repeated sweeps
(search, Pareto, batch planning, what-if) reuse results.  The scalar
:meth:`~repro.core.model.HybridProgramModel.predict` remains the reference
implementation the engine is tested against.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.core.model import HybridProgramModel, Prediction
from repro.core.vectorized import VectorizedEvaluation, evaluate_configs
from repro.machines.spec import ClusterSpec, Configuration


@dataclass(frozen=True)
class ConfigSpace:
    """A cartesian (n, c, f) configuration space."""

    node_counts: tuple[int, ...]
    core_counts: tuple[int, ...]
    frequencies_hz: tuple[float, ...]

    def __post_init__(self) -> None:
        if not (self.node_counts and self.core_counts and self.frequencies_hz):
            raise ValueError("configuration space must be non-empty on all axes")

    def __len__(self) -> int:
        return (
            len(self.node_counts) * len(self.core_counts) * len(self.frequencies_hz)
        )

    def __iter__(self) -> Iterator[Configuration]:
        for n, c, f in itertools.product(
            self.node_counts, self.core_counts, self.frequencies_hz
        ):
            yield Configuration(nodes=n, cores=c, frequency_hz=f)

    @classmethod
    def physical(cls, spec: ClusterSpec) -> "ConfigSpace":
        """The testbed's full physical space."""
        return cls(
            node_counts=tuple(range(1, spec.max_nodes + 1)),
            core_counts=spec.node.core_counts,
            frequencies_hz=spec.frequencies_hz,
        )

    @classmethod
    def validation(cls, spec: ClusterSpec) -> "ConfigSpace":
        """The paper's validation sweep: n ∈ {1,2,4,8}, all c, all f
        (96 Xeon / 80 ARM configurations, §IV-B)."""
        return cls(
            node_counts=(1, 2, 4, 8),
            core_counts=spec.node.core_counts,
            frequencies_hz=spec.frequencies_hz,
        )

    @classmethod
    def xeon_pareto(cls, spec: ClusterSpec) -> "ConfigSpace":
        """Fig. 8's extrapolated Xeon space: n ∈ powers of two up to 256,
        c ∈ 1..8, f ∈ {1.2, 1.5, 1.8} GHz — 216 configurations."""
        return cls(
            node_counts=(1, 2, 4, 8, 16, 32, 64, 128, 256),
            core_counts=spec.node.core_counts,
            frequencies_hz=spec.frequencies_hz,
        )

    @classmethod
    def arm_pareto(cls, spec: ClusterSpec) -> "ConfigSpace":
        """Fig. 9's extrapolated ARM space: n ∈ 1..20, c ∈ 1..4,
        f ∈ {0.2..1.4} GHz — 400 configurations."""
        return cls(
            node_counts=tuple(range(1, 21)),
            core_counts=spec.node.core_counts,
            frequencies_hz=spec.frequencies_hz,
        )


@dataclass(frozen=True)
class SpaceEvaluation:
    """Model predictions over a whole space, as aligned arrays.

    When produced by :func:`evaluate_space`, ``vectorized`` carries the
    engine's raw arrays and the metric properties return them directly
    (read-only, shared with the cache).  Hand-assembled instances (tests,
    ad-hoc prediction lists) fall back to deriving arrays from the
    predictions.
    """

    predictions: tuple[Prediction, ...]
    vectorized: VectorizedEvaluation | None = None

    @property
    def times_s(self) -> np.ndarray:
        """Predicted execution times."""
        if self.vectorized is not None:
            return self.vectorized.times_s
        return np.array([p.time_s for p in self.predictions])

    @property
    def energies_j(self) -> np.ndarray:
        """Predicted energies."""
        if self.vectorized is not None:
            return self.vectorized.energies_j
        return np.array([p.energy_j for p in self.predictions])

    @property
    def ucrs(self) -> np.ndarray:
        """Predicted UCR values."""
        if self.vectorized is not None:
            return self.vectorized.ucrs
        return np.array([p.ucr for p in self.predictions])

    @property
    def labels(self) -> list[str]:
        """Paper-style (n,c,f) labels."""
        return [p.config.label() for p in self.predictions]

    def __len__(self) -> int:
        return len(self.predictions)


def evaluate_space(
    model: HybridProgramModel,
    space: ConfigSpace | Sequence[Configuration],
    class_name: str | None = None,
) -> SpaceEvaluation:
    """Predict every configuration in a space (vectorized, LRU-cached).

    Repeated calls with equal model parameters and space return the same
    underlying arrays and :class:`Prediction` objects from the cache.
    """
    vec = evaluate_configs(model, space, class_name)
    return SpaceEvaluation(predictions=vec.predictions, vectorized=vec)
