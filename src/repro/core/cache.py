"""Persistent on-disk cache for configuration-space evaluations.

The in-memory LRU in :mod:`repro.core.vectorized` only helps within one
process lifetime; batched analyses over the machine × workload matrix
re-pay every sweep on every invocation.  This module persists whole
:class:`~repro.core.vectorized.VectorizedEvaluation` results to disk,
keyed by a **content fingerprint** of everything the result depends on:

* the model fingerprint (program classes, calibration baseline, comm and
  network characteristics, power tables — see
  :func:`repro.core.vectorized.model_fingerprint`),
* the configuration space (grid axes or the explicit config list),
* the evaluated input class and the time-model options
  (``queueing``, ``service_overlap``),
* the on-disk format version.

Change *any* of those and the fingerprint changes, so a stale entry is
simply never addressed again — there is no TTL and no mtime heuristic.
Entries are ``.npz`` files written with the same atomic-write idiom as
:mod:`repro.resilience.checkpoint` (temp file + :func:`os.replace`), so
concurrent writers race benignly: the last complete rename wins and every
reader always sees a complete file.  Each entry embeds its full identity
document; a digest collision or a foreign/torn file is detected by
comparing that document and rejected as a miss instead of returning wrong
results.

Cache hits, misses, writes and rejections are mirrored into the
observability layer (``cache.disk.*`` counters) whenever metrics are
enabled.  See ``docs/SCALING.md`` for the full semantics.

Beyond evaluation results, the cache doubles as a **generic artifact
store**: :meth:`ResultCache.put_doc` / :meth:`ResultCache.get_doc`
persist arbitrary JSON documents under the same fingerprinted-identity,
atomic-write, verify-on-read contract (one ``<digest>.json`` file per
entry).  The reproduction pipeline (:mod:`repro.pipeline`) keys its
stage outputs through this surface — see ``docs/PIPELINE.md``.
"""

from __future__ import annotations

import io
import json
import os
import pathlib
import zipfile
from typing import Any

import numpy as np

from repro import obs
from repro.core.vectorized import VectorizedEvaluation, model_fingerprint
from repro.resilience.checkpoint import fingerprint

#: On-disk format version; bump on any change to the entry layout.  The
#: version participates in the fingerprint, so old entries are orphaned
#: (and reported stale on direct lookup) rather than misread.
FORMAT_VERSION = 1

#: Marker distinguishing repro cache entries from arbitrary npz files.
KIND = "repro_result_cache"

#: The VectorizedEvaluation arrays persisted per entry, in storage order.
ARRAY_FIELDS = (
    "nodes",
    "cores",
    "frequencies_hz",
    "t_cpu_s",
    "t_mem_s",
    "t_net_service_s",
    "t_net_wait_s",
    "utilization_baseline",
    "rho_network",
    "saturated",
    "cpu_j",
    "mem_j",
    "net_j",
    "idle_j",
    "times_s",
    "energies_j",
    "ucrs",
)


def _space_identity(space: object) -> list:
    """JSON form of a space: grid axes, or the explicit (n, c, f) list."""
    if (
        hasattr(space, "node_counts")
        and hasattr(space, "core_counts")
        and hasattr(space, "frequencies_hz")
    ):
        return [
            "grid",
            list(space.node_counts),
            list(space.core_counts),
            list(space.frequencies_hz),
        ]
    return [
        "configs",
        [[c.nodes, c.cores, c.frequency_hz] for c in space],
    ]


def entry_identity(
    model,
    space: object,
    class_name: str,
    queueing: str,
    service_overlap: bool,
) -> dict[str, Any]:
    """The full identity document one cache entry is keyed on.

    Any mutation of the machine spec, the workload calibration, the model
    parameters, the grid, the input class or the evaluation options
    changes this document, hence the fingerprint, hence the cache key.
    """
    return {
        "kind": KIND,
        "format_version": FORMAT_VERSION,
        "model": repr(model_fingerprint(model)),
        "space": _space_identity(space),
        "class_name": class_name,
        "queueing": queueing,
        "service_overlap": service_overlap,
    }


def _readonly(a: np.ndarray) -> np.ndarray:
    a.setflags(write=False)
    return a


class ResultCache:
    """A directory of fingerprinted configuration-space evaluations.

    One ``.npz`` file per entry, named ``<digest>.npz``.  Lookups verify
    the embedded identity document, so a wrong or torn file degrades to a
    miss (and is counted as ``rejected``), never to wrong results.
    """

    def __init__(self, directory: str | pathlib.Path) -> None:
        """Open (creating if needed) the cache rooted at ``directory``."""
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.rejected = 0

    # -- keys ----------------------------------------------------------

    def digest(self, identity: dict[str, Any]) -> str:
        """The fingerprint addressing ``identity``'s entry file."""
        return fingerprint(identity)

    def path_for(self, identity: dict[str, Any]) -> pathlib.Path:
        """The evaluation entry file an identity maps to (existing or not)."""
        return self.directory / f"{self.digest(identity)}.npz"

    def doc_path_for(self, identity: dict[str, Any]) -> pathlib.Path:
        """The JSON artifact entry file an identity maps to."""
        return self.directory / f"{self.digest(identity)}.json"

    # -- lookup --------------------------------------------------------

    def contains(self, identity: dict[str, Any]) -> bool:
        """Whether an entry file exists for ``identity``.

        A cheap existence probe for the planner's cache-hit signal: it
        does not read, validate, or count the entry (a torn or foreign
        file still reports ``True`` here and is rejected by
        :meth:`get` / :meth:`get_doc`).  Both entry kinds are probed —
        an evaluation ``.npz`` and a JSON artifact ``.json`` never share
        a digest because their identity documents differ in ``kind``.
        """
        return (
            self.path_for(identity).exists()
            or self.doc_path_for(identity).exists()
        )

    def get(self, identity: dict[str, Any]) -> VectorizedEvaluation | None:
        """The cached evaluation for ``identity``, or ``None`` on a miss.

        A file that is unreadable, not a repro cache entry, or whose
        embedded identity differs from the requested one (fingerprint
        collision, foreign file) is rejected and treated as a miss.
        """
        path = self.path_for(identity)
        if not path.exists():
            self.misses += 1
            obs.add("cache.disk.misses")
            return None
        try:
            with np.load(path, allow_pickle=False) as data:
                meta = json.loads(str(data["identity"]))
                if meta != identity:
                    raise ValueError("identity mismatch")
                arrays = {
                    name: _readonly(np.array(data[name]))
                    for name in ARRAY_FIELDS
                }
                class_name = str(data["class_name"])
        except (
            OSError,
            ValueError,
            KeyError,
            json.JSONDecodeError,
            zipfile.BadZipFile,
        ):
            self.rejected += 1
            self.misses += 1
            obs.add("cache.disk.rejected")
            obs.add("cache.disk.misses")
            return None
        self.hits += 1
        obs.add("cache.disk.hits")
        return VectorizedEvaluation(
            class_name=class_name, space=None, **arrays
        )

    # -- store ---------------------------------------------------------

    def put(
        self, identity: dict[str, Any], result: VectorizedEvaluation
    ) -> pathlib.Path:
        """Persist ``result`` under ``identity``'s fingerprint, atomically.

        Concurrent writers of the same entry each build a complete temp
        file and race on the final :func:`os.replace`; the last rename
        wins and readers never observe a torn entry.
        """
        path = self.path_for(identity)
        payload = io.BytesIO()
        np.savez(
            payload,
            identity=json.dumps(identity, sort_keys=True),
            class_name=result.class_name,
            **{name: getattr(result, name) for name in ARRAY_FIELDS},
        )
        tmp = path.with_name(f".{path.name}.tmp{os.getpid()}")
        tmp.write_bytes(payload.getvalue())
        os.replace(tmp, path)
        self.writes += 1
        obs.add("cache.disk.writes")
        return path

    # -- generic JSON artifacts ----------------------------------------

    def get_doc(self, identity: dict[str, Any]) -> Any | None:
        """The stored JSON payload for ``identity``, or ``None`` on a miss.

        The same degradation contract as :meth:`get`: an unreadable
        file, a non-artifact file, or an embedded identity differing
        from the requested one (digest collision, foreign or torn file)
        is rejected and counted as a miss, never returned.
        """
        path = self.doc_path_for(identity)
        if not path.exists():
            self.misses += 1
            obs.add("cache.disk.misses")
            return None
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
            if not isinstance(doc, dict) or doc.get("identity") != identity:
                raise ValueError("identity mismatch")
            payload = doc["payload"]
        except (OSError, ValueError, KeyError, json.JSONDecodeError):
            self.rejected += 1
            self.misses += 1
            obs.add("cache.disk.rejected")
            obs.add("cache.disk.misses")
            return None
        self.hits += 1
        obs.add("cache.disk.hits")
        return payload

    def put_doc(self, identity: dict[str, Any], payload: Any) -> pathlib.Path:
        """Persist a JSON ``payload`` under ``identity``, atomically.

        ``payload`` must be JSON-serializable with finite numbers only
        (the canonical form rejects NaN/Infinity so stored bytes are
        deterministic).  Concurrent writers race benignly exactly as in
        :meth:`put`: complete temp files, last rename wins.
        """
        path = self.doc_path_for(identity)
        text = json.dumps(
            {"identity": identity, "payload": payload},
            sort_keys=True,
            allow_nan=False,
        )
        tmp = path.with_name(f".{path.name}.tmp{os.getpid()}")
        tmp.write_text(text + "\n", encoding="utf-8")
        os.replace(tmp, path)
        self.writes += 1
        obs.add("cache.disk.writes")
        return path

    # -- maintenance ---------------------------------------------------

    def entries(self) -> list[pathlib.Path]:
        """All entry files (evaluations and JSON artifacts) in the cache."""
        return sorted(
            list(self.directory.glob("*.npz"))
            + list(self.directory.glob("*.json"))
        )

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self.entries():
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    def stats(self) -> dict[str, int]:
        """Hit/miss/write/reject counts plus the current entry count."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "rejected": self.rejected,
            "entries": len(self.entries()),
        }
