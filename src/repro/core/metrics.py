"""Energy-efficiency metrics beyond the paper's UCR.

The paper argues CCR is un-normalized and proposes UCR; the wider HPC
energy literature uses several complementary figures of merit, provided
here over :class:`~repro.core.model.Prediction` objects so every analysis
in the library can report them:

* **EDP / ED²P** — energy-delay products (Horowitz): scalarizations of the
  time-energy trade-off that weight delay linearly or quadratically;
* **throughput per watt** — abstract instructions per second per watt,
  the Green500-style rate metric;
* EDP-optimal selection over a space evaluation — a principled
  single-point pick when neither a deadline nor a budget exists (compare
  with the geometric knee of :func:`repro.core.optimizer.knee_point`).
"""

from __future__ import annotations

import numpy as np

from repro.core.configspace import SpaceEvaluation
from repro.core.model import HybridProgramModel, Prediction


def edp(prediction: Prediction) -> float:
    """Energy-delay product ``E * T`` (J*s)."""
    return prediction.energy_j * prediction.time_s


def ed2p(prediction: Prediction) -> float:
    """Energy-delay-squared product ``E * T^2`` (J*s^2) — favours speed."""
    return prediction.energy_j * prediction.time_s**2


def throughput_per_watt(
    model: HybridProgramModel, prediction: Prediction
) -> float:
    """Abstract instructions per second per watt for the whole run."""
    cls = prediction.class_name
    total_instr = (
        model.program.instructions(cls) * model.program.iterations(cls)
    )
    mean_power = prediction.energy_j / prediction.time_s
    return total_instr / prediction.time_s / mean_power


def edp_optimal(evaluation: SpaceEvaluation, weight: int = 1) -> Prediction:
    """The configuration minimizing ``E * T^weight`` over the space.

    ``weight=1`` is EDP, ``weight=2`` ED²P.  EDP/ED²P optima always lie on
    the time-energy Pareto frontier (a dominated point is beaten on both
    factors), which the tests exploit as an invariant.
    """
    if weight < 1:
        raise ValueError("weight must be at least 1")
    scores = evaluation.energies_j * evaluation.times_s**weight
    return evaluation.predictions[int(np.argmin(scores))]


def relative_efficiency(
    evaluation: SpaceEvaluation, prediction: Prediction
) -> float:
    """How close a configuration's EDP comes to the space's best (<= 1)."""
    best = edp(edp_optimal(evaluation))
    return best / edp(prediction)
