"""Adaptive execution planner + block-streamed huge-space evaluation.

The repo grew four ways to answer "evaluate this ``(n, c, f)`` space":
the scalar reference loop (:meth:`~repro.core.model.HybridProgramModel.predict`
per point), the vectorized broadcast engine
(:func:`repro.core.vectorized._compute`), the sharded multiprocess engine
(:mod:`repro.core.parallel`) and the caches (in-memory LRU + persistent
:class:`~repro.core.cache.ResultCache`).  Nothing *chose* between them —
the parallel bench even recorded a 0.67x "speedup" sharding 4 ways on a
1-CPU host.  This module adds the missing decision layer plus a
block-streamed execution mode for spaces too large to materialize:

* **Cost model** (:class:`CostModel`): per-strategy wall-time estimates,
  either *calibrated* from the committed bench reports
  (``benchmarks/out/vectorized_speedup.json`` +
  ``parallel_speedup.json`` via :func:`calibrate` / ``repro plan
  calibrate``) or a conservative static *fallback* table.
* **Decision** (:func:`decide`): picks ``cached`` / ``scalar`` /
  ``vectorized`` / ``sharded`` per request from the cost model, the
  space size, the ambient :class:`~repro.core.parallel.ExecutionPlan`
  and the host's CPU affinity mask.  Hard invariant, pinned by a
  regression test: **an effective single-CPU host never selects
  ``sharded``**, whatever the cost model says.
* **Streaming** (:func:`iter_block_spaces`, :func:`stream_blocks`,
  :func:`evaluate_space_streamed`, :func:`stream_topk`,
  :func:`stream_pareto`): evaluates a space in contiguous flat-order
  blocks sized by a byte budget (``--max-block-bytes``), with running
  top-k / Pareto reductions whose results are **bit-identical** to the
  materialized path — every block stays grid-shaped, every lane's
  arithmetic is independent (the Eq. 5 fixed point freezes converged
  lanes), and the reductions replicate NumPy's stable tie-breaking
  exactly.  The property suite pins this contract.

The planner only takes charge when a :class:`PlannerConfig` is active
(``repro --plan/--max-block-bytes``, :func:`planner_config`, or a
``repro serve`` instance); without one, execution follows the legacy
ambient-:class:`~repro.core.parallel.ExecutionPlan` dispatch unchanged,
so explicit operator plans (and the tests pinning them) keep their exact
semantics.  Every selection is recorded as a labeled counter exported as
``repro_plan_selected_total{strategy="…"}``.  See ``docs/PLANNER.md``.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Any, Iterator

import numpy as np

from repro import obs
from repro.core import parallel, vectorized
from repro.core.cache import ARRAY_FIELDS, entry_identity
from repro.core.model import HybridProgramModel, Prediction
from repro.core.parallel import _SubGrid
from repro.core.vectorized import VectorizedEvaluation
from repro.units import MIB

#: Execution strategies the planner chooses between.
PLAN_STRATEGIES = ("cached", "scalar", "vectorized", "sharded")

#: ``--plan`` modes: ``auto`` consults the cost model, the rest force one
#: strategy (``sharded`` still degrades to ``vectorized`` on a host whose
#: affinity mask yields a single effective worker).
PLAN_MODES = ("auto", "scalar", "vectorized", "sharded")

#: Default streaming budget: bounds the *working set* of one evaluation
#: block (result rows + broadcast temporaries), not the final output.
DEFAULT_MAX_BLOCK_BYTES = 64 * MIB

#: Bytes of result arrays one configuration occupies (the 17 persisted
#: ``ARRAY_FIELDS`` rows; ``saturated`` is 1 byte but counted as a full
#: float64 to keep the estimate conservative).
RESULT_BYTES_PER_CONFIG = len(ARRAY_FIELDS) * np.dtype(np.float64).itemsize

#: Conservative per-configuration working-set estimate for one streamed
#: block: result rows plus the broadcast engine's intermediate arrays
#: (~25 temporaries of the block shape during the Eq. 5 fixed point).
WORKING_BYTES_PER_CONFIG = 4 * RESULT_BYTES_PER_CONFIG

#: Environment variable naming a persisted calibration file
#: (:func:`save_cost_model`) that :func:`resolve_cost_model` loads when
#: no explicit cost model is configured.
CALIBRATION_ENV = "REPRO_PLANNER_CALIBRATION"

#: Marker + version of the persisted calibration document.
CALIBRATION_KIND = "repro_planner_calibration"
CALIBRATION_VERSION = 1


class CalibrationError(ValueError):
    """A calibration source or persisted calibration file is unusable."""


# ----------------------------------------------------------------------
# the cost model
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CostModel:
    """Per-strategy wall-time estimates, linear in the space size.

    ``scalar`` costs ``size * scalar_per_config_s``; ``vectorized`` pays
    a fixed base (table lookups, array setup) plus a per-config slope;
    ``sharded`` divides the vectorized slope across effective workers
    but adds fixed dispatch plus per-config transport overhead (memmap
    write + read-back); ``cached`` models a warm
    :class:`~repro.core.cache.ResultCache` read.  ``source`` records
    whether the numbers were fit from bench reports (``"calibrated"``)
    or are the static conservative table (``"fallback"``); ``cpus`` is
    the calibration host's CPU count (informational).
    """

    source: str
    scalar_per_config_s: float
    vectorized_base_s: float
    vectorized_per_config_s: float
    shard_dispatch_s: float
    shard_overhead_per_config_s: float
    cache_read_base_s: float
    cache_read_per_config_s: float
    cpus: int = 1

    def __post_init__(self) -> None:
        """Reject non-positive core rates (degenerate fits)."""
        if self.scalar_per_config_s <= 0 or self.vectorized_per_config_s <= 0:
            raise CalibrationError("per-config costs must be positive")

    def estimate(self, strategy: str, size: int, workers: int = 1) -> float:
        """Estimated wall seconds for ``strategy`` over ``size`` configs."""
        if strategy == "scalar":
            return size * self.scalar_per_config_s
        if strategy == "vectorized":
            return self.vectorized_base_s + size * self.vectorized_per_config_s
        if strategy == "sharded":
            w = max(1, workers)
            return (
                self.shard_dispatch_s
                + self.vectorized_base_s
                + size
                * (
                    self.vectorized_per_config_s / w
                    + self.shard_overhead_per_config_s
                )
            )
        if strategy == "cached":
            return self.cache_read_base_s + size * self.cache_read_per_config_s
        raise ValueError(f"unknown strategy {strategy!r}")

    def to_doc(self) -> dict[str, Any]:
        """JSON document for :func:`save_cost_model`."""
        return {
            "kind": CALIBRATION_KIND,
            "format_version": CALIBRATION_VERSION,
            "source": self.source,
            "scalar_per_config_s": self.scalar_per_config_s,
            "vectorized_base_s": self.vectorized_base_s,
            "vectorized_per_config_s": self.vectorized_per_config_s,
            "shard_dispatch_s": self.shard_dispatch_s,
            "shard_overhead_per_config_s": self.shard_overhead_per_config_s,
            "cache_read_base_s": self.cache_read_base_s,
            "cache_read_per_config_s": self.cache_read_per_config_s,
            "cpus": self.cpus,
        }

    @classmethod
    def from_doc(cls, doc: dict[str, Any]) -> "CostModel":
        """Rebuild a model from :meth:`to_doc` output, validated."""
        if not isinstance(doc, dict) or doc.get("kind") != CALIBRATION_KIND:
            raise CalibrationError("not a repro planner calibration document")
        if doc.get("format_version") != CALIBRATION_VERSION:
            raise CalibrationError(
                f"unsupported calibration version {doc.get('format_version')!r}"
            )
        try:
            return cls(
                source=str(doc["source"]),
                scalar_per_config_s=float(doc["scalar_per_config_s"]),
                vectorized_base_s=float(doc["vectorized_base_s"]),
                vectorized_per_config_s=float(doc["vectorized_per_config_s"]),
                shard_dispatch_s=float(doc["shard_dispatch_s"]),
                shard_overhead_per_config_s=float(
                    doc["shard_overhead_per_config_s"]
                ),
                cache_read_base_s=float(doc["cache_read_base_s"]),
                cache_read_per_config_s=float(doc["cache_read_per_config_s"]),
                cpus=int(doc.get("cpus", 1)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CalibrationError(f"bad calibration document: {exc}") from exc


#: The conservative static table used when no calibration exists.  The
#: orders of magnitude come from the committed bench reports (scalar
#: ~0.6 ms/config, vectorized ~1 µs/config after a ~2 ms base); the
#: shard dispatch cost is deliberately pessimistic so auto mode only
#: shards sweeps large enough (> ~10^5 configs at 4 workers) to clearly
#: amortize process fan-out.
FALLBACK_COST_MODEL = CostModel(
    source="fallback",
    scalar_per_config_s=5e-4,
    vectorized_base_s=2e-3,
    vectorized_per_config_s=1e-6,
    shard_dispatch_s=5e-2,
    shard_overhead_per_config_s=3e-7,
    cache_read_base_s=1e-3,
    cache_read_per_config_s=2e-7,
    cpus=1,
)

#: Fixed dispatch floor attributed to process fan-out when calibrating
#: the shard overhead from a single measured (sharded_s, single_s) pair.
_SHARD_DISPATCH_FLOOR_S = 1e-2


def calibrate(
    bench_dir: str | pathlib.Path = "benchmarks/out",
) -> CostModel:
    """Fit a :class:`CostModel` from the committed bench reports.

    Reads ``vectorized_speedup.json`` (scalar vs. vectorized vs. cached
    timings over several sizes — the per-config scalar rate, the
    vectorized base+slope least-squares fit and the cache read base) and,
    when present, ``parallel_speedup.json`` (single vs. sharded timing at
    one large size — the shard transport overhead, the per-config warm
    cache read rate and the calibration host's CPU count).  Raises
    :class:`CalibrationError` when the vectorized report is missing or
    unusable; missing parallel data falls back to the static table's
    shard/cache rates.
    """
    bench_dir = pathlib.Path(bench_dir)
    vec_doc = _load_report(bench_dir / "vectorized_speedup.json")
    if vec_doc is None:
        raise CalibrationError(
            f"no usable vectorized_speedup.json under {bench_dir}"
        )
    cases = vec_doc.get("extra", {}).get("cases", [])
    points = []
    scalar_rates = []
    cache_bases = []
    for case in cases:
        try:
            configs = int(case["configs"])
            scalar_s = float(case["scalar_s"])
            vectorized_s = float(case["vectorized_s"])
        except (KeyError, TypeError, ValueError):
            continue
        if configs < 1 or scalar_s <= 0 or vectorized_s <= 0:
            continue
        points.append((configs, vectorized_s))
        scalar_rates.append(scalar_s / configs)
        cached_s = case.get("cached_s")
        if isinstance(cached_s, (int, float)) and cached_s > 0:
            cache_bases.append(float(cached_s))
    if not points or not scalar_rates:
        raise CalibrationError("vectorized_speedup.json has no usable cases")

    fallback = FALLBACK_COST_MODEL
    shard_dispatch = fallback.shard_dispatch_s
    shard_overhead = fallback.shard_overhead_per_config_s
    cache_per_config = fallback.cache_read_per_config_s
    cpus = fallback.cpus

    par_doc = _load_report(bench_dir / "parallel_speedup.json")
    extra = (par_doc or {}).get("extra", {})
    try:
        par_configs = int(extra["configs"])
        single_s = float(extra["single_process_s"])
        sharded_s = float(extra["sharded_s"])
        cpus = max(1, int(extra.get("cpu_count", 1)))
        workers = max(1, int(extra.get("workers", 1)))
    except (KeyError, TypeError, ValueError):
        par_configs = 0
    if par_configs > 0 and single_s > 0:
        # the large single-process point anchors the vectorized slope
        # where shard decisions actually happen
        points.append((par_configs, single_s))
        eff = max(1, min(workers, cpus))
        # one measured (single, sharded) pair can't separate fixed
        # dispatch from per-config transport; attribute a fixed floor
        # and put the rest on the per-config term (conservative: large
        # sweeps keep paying it).
        shard_dispatch = _SHARD_DISPATCH_FLOOR_S
        overhead_total = max(0.0, sharded_s - single_s / eff - shard_dispatch)
        shard_overhead = max(1e-9, overhead_total / par_configs)
        warm_s = extra.get("cache_warm_s")
        if isinstance(warm_s, (int, float)) and warm_s > 0:
            cache_per_config = max(1e-12, float(warm_s) / par_configs)

    sizes = np.array([p[0] for p in points], dtype=np.float64)
    seconds = np.array([p[1] for p in points], dtype=np.float64)
    if sizes.size >= 2:
        slope, base = np.polyfit(sizes, seconds, 1)
    else:
        slope, base = seconds[0] / sizes[0], 0.0
    return CostModel(
        source="calibrated",
        scalar_per_config_s=float(min(scalar_rates)),
        vectorized_base_s=float(max(0.0, base)),
        vectorized_per_config_s=float(max(1e-9, slope)),
        shard_dispatch_s=float(shard_dispatch),
        shard_overhead_per_config_s=float(shard_overhead),
        cache_read_base_s=float(
            min(cache_bases) if cache_bases else fallback.cache_read_base_s
        ),
        cache_read_per_config_s=float(cache_per_config),
        cpus=cpus,
    )


def _load_report(path: pathlib.Path) -> dict[str, Any] | None:
    """One bench report JSON, or ``None`` when absent/unreadable."""
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None
    return doc if isinstance(doc, dict) else None


def save_cost_model(model: CostModel, path: str | pathlib.Path) -> pathlib.Path:
    """Persist a calibration atomically (temp file + ``os.replace``)."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.tmp{os.getpid()}")
    tmp.write_text(
        json.dumps(model.to_doc(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    os.replace(tmp, path)
    return path


def load_cost_model(path: str | pathlib.Path) -> CostModel:
    """Load a persisted calibration; :class:`CalibrationError` if unusable."""
    try:
        doc = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    except OSError as exc:
        raise CalibrationError(f"cannot read calibration {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise CalibrationError(f"calibration {path} is not JSON: {exc}") from exc
    return CostModel.from_doc(doc)


#: Memoized env-var calibrations, keyed by path (tests clear via
#: :func:`invalidate_cost_model_cache`).
_COST_MODEL_CACHE: dict[str, CostModel] = {}


def invalidate_cost_model_cache() -> None:
    """Forget memoized ``REPRO_PLANNER_CALIBRATION`` loads (tests)."""
    _COST_MODEL_CACHE.clear()


def resolve_cost_model() -> CostModel:
    """The cost model in effect: config > env calibration > fallback.

    An unusable file named by ``REPRO_PLANNER_CALIBRATION`` degrades to
    the fallback table (the planner must always be able to decide).
    """
    cfg = active_config()
    if cfg is not None and cfg.cost_model is not None:
        return cfg.cost_model
    path = os.environ.get(CALIBRATION_ENV)
    if path:
        model = _COST_MODEL_CACHE.get(path)
        if model is None:
            try:
                model = load_cost_model(path)
            except CalibrationError:
                model = FALLBACK_COST_MODEL
            _COST_MODEL_CACHE[path] = model
        return model
    return FALLBACK_COST_MODEL


# ----------------------------------------------------------------------
# the ambient planner configuration (thread-local)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PlannerConfig:
    """How the planner decides while this config is active.

    ``mode`` forces one strategy or lets the cost model choose
    (``auto``); ``max_block_bytes`` bounds the streamed working set (and
    makes over-budget sweeps stream); ``cost_model`` overrides
    :func:`resolve_cost_model`; ``allow_scalar`` lets callers whose
    responses must be byte-stable across space sizes (``repro serve``)
    exclude the scalar strategy, whose results match the vectorized path
    only to 1e-9, not bit-for-bit.
    """

    mode: str = "auto"
    max_block_bytes: int | None = None
    cost_model: CostModel | None = None
    allow_scalar: bool = True

    def __post_init__(self) -> None:
        """Validate the mode and the block budget."""
        if self.mode not in PLAN_MODES:
            raise ValueError(
                f"unknown plan mode {self.mode!r}; choose from {PLAN_MODES}"
            )
        if self.max_block_bytes is not None and self.max_block_bytes < 1:
            raise ValueError("max_block_bytes must be >= 1")


#: Thread-local holder: `repro serve` evaluates queries on worker
#: threads, so per-request configs must not race across requests.
_TLS = threading.local()


def active_config() -> PlannerConfig | None:
    """The planner config active on this thread, or ``None`` (legacy)."""
    return getattr(_TLS, "config", None)


def activate_config(config: PlannerConfig | None) -> PlannerConfig | None:
    """Install ``config`` on this thread; returns the previous one."""
    previous = active_config()
    _TLS.config = config
    return previous


@contextmanager
def planner_config(
    config: PlannerConfig | None = None, /, **options: Any
) -> Iterator[PlannerConfig]:
    """Activate a :class:`PlannerConfig` for a ``with`` block.

    Pass a prebuilt config positionally, or keyword options forwarded to
    :class:`PlannerConfig`.  The previous config is restored on exit.
    """
    cfg = config if config is not None else PlannerConfig(**options)
    previous = activate_config(cfg)
    try:
        yield cfg
    finally:
        activate_config(previous)


# ----------------------------------------------------------------------
# the decision
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PlanDecision:
    """One planning outcome: the strategy plus its supporting estimates."""

    strategy: str
    size: int
    workers: int
    streamed: bool
    reason: str
    estimates: tuple[tuple[str, float], ...]

    def estimate_for(self, strategy: str) -> float | None:
        """The recorded estimate for ``strategy`` (``None`` if absent)."""
        for name, est in self.estimates:
            if name == strategy:
                return est
        return None


def record_selection(strategy: str) -> None:
    """Count one strategy selection (``plan_selected_total{strategy=…}``)."""
    if obs.metrics_enabled():
        obs.add(f'plan_selected{{strategy="{strategy}"}}')


def decide(
    size: int,
    *,
    workers: int = 1,
    cpus: int | None = None,
    cache_hit: bool = False,
    mode: str = "auto",
    cost_model: CostModel | None = None,
    max_block_bytes: int | None = None,
    allow_scalar: bool = True,
    min_parallel_configs: int | None = None,
    record: bool = False,
) -> PlanDecision:
    """Choose an execution strategy for a sweep of ``size`` configs.

    ``workers`` is the ambient plan's requested worker count and ``cpus``
    the host's affinity-mask CPU count (defaults to
    :func:`repro.core.parallel.available_cpus`); sharding is only ever a
    candidate when ``min(workers, cpus) > 1`` — a single effective CPU
    never shards, regardless of ``mode`` or the cost model (the recorded
    0.67x pessimization).  ``cache_hit`` marks a warm persistent-cache
    entry; in ``auto`` mode it wins outright.  A ``max_block_bytes``
    budget smaller than the sweep's working set forces the streamed
    vectorized path (memory beats speed).  With ``record`` the selection
    is counted into the labeled ``plan_selected`` metric.
    """
    if size < 0:
        raise ValueError("size must be >= 0")
    if mode not in PLAN_MODES:
        raise ValueError(f"unknown plan mode {mode!r}; choose from {PLAN_MODES}")
    if not obs.active():
        decision = _decide(
            size,
            workers,
            cpus,
            cache_hit,
            mode,
            cost_model,
            max_block_bytes,
            allow_scalar,
            min_parallel_configs,
        )
    else:
        with obs.span("plan_decision", size=size, mode=mode) as sp:
            decision = _decide(
                size,
                workers,
                cpus,
                cache_hit,
                mode,
                cost_model,
                max_block_bytes,
                allow_scalar,
                min_parallel_configs,
            )
            sp.set(
                strategy=decision.strategy,
                streamed=decision.streamed,
                reason=decision.reason,
            )
        obs.add("planner.decisions")
    if record:
        record_selection(decision.strategy)
    return decision


def _decide(
    size: int,
    workers: int,
    cpus: int | None,
    cache_hit: bool,
    mode: str,
    cost_model: CostModel | None,
    max_block_bytes: int | None,
    allow_scalar: bool,
    min_parallel_configs: int | None,
) -> PlanDecision:
    cm = cost_model if cost_model is not None else resolve_cost_model()
    host_cpus = cpus if cpus is not None else parallel.available_cpus()
    eff = max(1, min(workers, host_cpus))
    min_parallel = (
        min_parallel_configs
        if min_parallel_configs is not None
        else parallel.DEFAULT_MIN_PARALLEL_CONFIGS
    )
    streamed = (
        max_block_bytes is not None
        and size * WORKING_BYTES_PER_CONFIG > max_block_bytes
    )
    estimates = [
        ("scalar", cm.estimate("scalar", size)),
        ("vectorized", cm.estimate("vectorized", size)),
    ]
    if eff > 1:
        estimates.append(("sharded", cm.estimate("sharded", size, eff)))
    if cache_hit:
        estimates.append(("cached", cm.estimate("cached", size)))
    table = tuple(estimates)

    def result(strategy: str, reason: str) -> PlanDecision:
        return PlanDecision(
            strategy=strategy,
            size=size,
            workers=eff,
            streamed=streamed and strategy == "vectorized",
            reason=reason,
            estimates=table,
        )

    if mode != "auto":
        if mode == "sharded":
            if eff <= 1:
                return result(
                    "vectorized",
                    "forced sharded degraded: a single effective CPU never "
                    "shards (recorded 0.67x pessimization)",
                )
            if streamed:
                return result(
                    "vectorized",
                    "forced sharded degraded: the max-block-bytes budget "
                    "requires the streamed vectorized path",
                )
            return result("sharded", "forced by plan mode")
        return result(mode, "forced by plan mode")

    if cache_hit:
        return result("cached", "warm persistent-cache entry")
    if streamed:
        return result(
            "vectorized",
            "streamed: sweep working set exceeds the max-block-bytes budget",
        )
    candidates = ["vectorized"]
    if eff > 1 and size >= min_parallel:
        candidates.append("sharded")
    if allow_scalar:
        candidates.append("scalar")
    by_name = dict(table)
    best = min(candidates, key=lambda name: by_name[name])
    return result(
        best,
        f"cheapest estimate ({cm.source} cost model: "
        + ", ".join(f"{n}={by_name[n]:.3g}s" for n in candidates)
        + ")",
    )


# ----------------------------------------------------------------------
# the scalar strategy
# ----------------------------------------------------------------------


def _scalar_compute(
    model: HybridProgramModel,
    space: object,
    class_name: str,
    queueing: str,
    service_overlap: bool,
) -> VectorizedEvaluation:
    """Evaluate via the scalar reference loop, packed as aligned arrays.

    One :meth:`~repro.core.model.HybridProgramModel.predict` call per
    configuration, in canonical space order.  Results agree with the
    vectorized engine to the pinned 1e-9 tolerance (not bit-for-bit),
    which is why byte-stable callers exclude this strategy
    (:attr:`PlannerConfig.allow_scalar`).
    """
    cfgs = tuple(space)
    preds = [
        model.predict(
            cfg, class_name, queueing=queueing, service_overlap=service_overlap
        )
        for cfg in cfgs
    ]
    space_ref = space if vectorized._is_grid(space) else cfgs

    def column(values: list, dtype: type = np.float64) -> np.ndarray:
        arr = np.array(values, dtype=dtype)
        arr.setflags(write=False)
        return arr

    return VectorizedEvaluation(
        class_name=class_name,
        space=space_ref,
        nodes=column([c.nodes for c in cfgs]),
        cores=column([c.cores for c in cfgs]),
        frequencies_hz=column([c.frequency_hz for c in cfgs]),
        t_cpu_s=column([p.time.t_cpu_s for p in preds]),
        t_mem_s=column([p.time.t_mem_s for p in preds]),
        t_net_service_s=column([p.time.t_net_service_s for p in preds]),
        t_net_wait_s=column([p.time.t_net_wait_s for p in preds]),
        utilization_baseline=column(
            [p.time.utilization_baseline for p in preds]
        ),
        rho_network=column([p.time.rho_network for p in preds]),
        saturated=column([p.time.saturated for p in preds], dtype=np.bool_),
        cpu_j=column([p.energy.cpu_j for p in preds]),
        mem_j=column([p.energy.mem_j for p in preds]),
        net_j=column([p.energy.net_j for p in preds]),
        idle_j=column([p.energy.idle_j for p in preds]),
        times_s=column([p.time_s for p in preds]),
        energies_j=column([p.energy_j for p in preds]),
        ucrs=column([p.ucr for p in preds]),
    )


# ----------------------------------------------------------------------
# block-streamed evaluation
# ----------------------------------------------------------------------


def block_configs(max_block_bytes: int) -> int:
    """Configurations per block under a byte budget (always >= 1)."""
    if max_block_bytes < 1:
        raise ValueError("max_block_bytes must be >= 1")
    return max(1, int(max_block_bytes) // WORKING_BYTES_PER_CONFIG)


def iter_block_spaces(
    space: object, max_block_bytes: int = DEFAULT_MAX_BLOCK_BYTES
) -> Iterator[tuple[int, int, object]]:
    """Split a space into contiguous flat-order blocks under a budget.

    Yields ``(offset, length, subspace)`` whose concatenation in yield
    order is exactly the canonical iteration order of ``space``.  Grids
    split hierarchically — node axis first, then (when a single node row
    exceeds the budget) the core axis, then the frequency axis — so
    every block is itself grid-shaped and takes the same grid-broadcast
    path as the whole space, which is what makes streamed results
    bit-identical to materialized ones.  A budget larger than the space
    yields a single block; an empty explicit sequence yields one empty
    block.
    """
    limit = block_configs(max_block_bytes)
    if not vectorized._is_grid(space):
        cfgs = tuple(space)
        if not cfgs:
            yield (0, 0, cfgs)
            return
        for start in range(0, len(cfgs), limit):
            stop = min(start + limit, len(cfgs))
            yield (start, stop - start, cfgs[start:stop])
        return
    nodes = tuple(space.node_counts)
    cores = tuple(space.core_counts)
    freqs = tuple(space.frequencies_hz)
    per_node = len(cores) * len(freqs)
    per_core = len(freqs)
    offset = 0
    if per_node <= limit:
        rows = max(1, limit // per_node)
        for start in range(0, len(nodes), rows):
            chunk = nodes[start : start + rows]
            length = len(chunk) * per_node
            yield (offset, length, _SubGrid(chunk, cores, freqs))
            offset += length
        return
    for node in nodes:
        if per_core <= limit:
            rows = max(1, limit // per_core)
            for start in range(0, len(cores), rows):
                chunk = cores[start : start + rows]
                length = len(chunk) * per_core
                yield (offset, length, _SubGrid((node,), chunk, freqs))
                offset += length
        else:
            for core in cores:
                for start in range(0, len(freqs), limit):
                    chunk = freqs[start : start + limit]
                    yield (offset, len(chunk), _SubGrid((node,), (core,), chunk))
                    offset += len(chunk)


def stream_blocks(
    model: HybridProgramModel,
    space: object,
    class_name: str | None = None,
    *,
    queueing: str = "bracketed",
    service_overlap: bool = True,
    max_block_bytes: int = DEFAULT_MAX_BLOCK_BYTES,
) -> Iterator[tuple[int, VectorizedEvaluation]]:
    """Generator-of-blocks evaluation: ``(offset, block evaluation)``.

    Each block runs the plain single-process broadcast engine on a
    flat-order :func:`iter_block_spaces` slice; consuming one block at a
    time bounds live memory by the budget while the concatenation of all
    blocks equals the materialized arrays bit for bit.
    """
    for offset, _length, sub in iter_block_spaces(space, max_block_bytes):
        vec = vectorized._compute(
            model, sub, class_name, queueing, service_overlap, instrument=False
        )
        yield offset, vec


def evaluate_space_streamed(
    model: HybridProgramModel,
    space: object,
    class_name: str | None = None,
    *,
    queueing: str = "bracketed",
    service_overlap: bool = True,
    max_block_bytes: int = DEFAULT_MAX_BLOCK_BYTES,
    transport: str = "memory",
) -> VectorizedEvaluation:
    """Full-space evaluation assembled block by block.

    The broadcast engine's working set (≈4x the result rows in
    intermediate arrays) stays bounded by ``max_block_bytes``; the
    assembled output arrays are exactly the materialized engine's, bit
    for bit.  ``transport="memory"`` assembles into plain arrays
    (output still occupies ``size * RESULT_BYTES_PER_CONFIG`` bytes of
    RAM); ``transport="memmap"`` reuses the shard-transport idiom —
    per-field scratch files written per block, reopened read-only and
    unlinked — so the output pages are file-backed and reclaimable, for
    spaces whose *results* outgrow RAM.  Use the streaming reductions
    (:func:`stream_topk`, :func:`stream_pareto`) when only extrema are
    needed: they are O(block), not O(space).
    """
    if transport not in ("memory", "memmap"):
        raise ValueError(f"unknown transport {transport!r}")
    total = parallel._space_size(space)
    if not obs.active():
        return _assemble_streamed(
            model,
            space,
            class_name,
            queueing,
            service_overlap,
            max_block_bytes,
            transport,
            total,
        )
    with obs.span(
        "evaluate_space_streamed", configs=total, transport=transport
    ) as sp:
        result = _assemble_streamed(
            model,
            space,
            class_name,
            queueing,
            service_overlap,
            max_block_bytes,
            transport,
            total,
        )
        sp.set(class_name=result.class_name)
    return result


def _assemble_streamed(
    model: HybridProgramModel,
    space: object,
    class_name: str | None,
    queueing: str,
    service_overlap: bool,
    max_block_bytes: int,
    transport: str,
    total: int,
) -> VectorizedEvaluation:
    import shutil
    import tempfile

    scratch: str | None = None
    arrays: dict[str, np.ndarray] = {}
    if transport == "memmap":
        scratch = tempfile.mkdtemp(prefix="repro-stream-")
    try:
        if scratch is None:
            for name in ARRAY_FIELDS:
                arrays[name] = np.empty(total, dtype=parallel._field_dtype(name))
        else:
            for name in ARRAY_FIELDS:
                arrays[name] = np.memmap(
                    os.path.join(scratch, f"{name}.bin"),
                    dtype=parallel._field_dtype(name),
                    mode="w+",
                    shape=(total,),
                )
        cls_name = class_name or model.inputs.baseline_class
        blocks = 0
        for offset, vec in stream_blocks(
            model,
            space,
            class_name,
            queueing=queueing,
            service_overlap=service_overlap,
            max_block_bytes=max_block_bytes,
        ):
            cls_name = vec.class_name
            for name in ARRAY_FIELDS:
                arrays[name][offset : offset + len(vec)] = getattr(vec, name)
            blocks += 1
        if obs.metrics_enabled():
            obs.add("planner.stream_blocks", blocks)
            obs.add("planner.stream_configs", total)
        if scratch is not None:
            # flush dirty pages, reopen read-only; unlinking keeps the
            # mapping alive (the pages become anonymous-like, reclaimed
            # when the arrays are garbage collected)
            reopened = {}
            for name in ARRAY_FIELDS:
                mm = arrays[name]
                mm.flush()  # type: ignore[attr-defined]
                del mm
                path = os.path.join(scratch, f"{name}.bin")
                reopened[name] = np.memmap(
                    path,
                    dtype=parallel._field_dtype(name),
                    mode="r",
                    shape=(total,),
                )
            arrays = reopened
    finally:
        if scratch is not None:
            shutil.rmtree(scratch, ignore_errors=True)
    space_ref = space if vectorized._is_grid(space) else tuple(space)
    for name in ARRAY_FIELDS:
        arr = arrays[name]
        if not isinstance(arr, np.memmap):
            arr.setflags(write=False)
    return VectorizedEvaluation(
        class_name=cls_name, space=space_ref, **arrays
    )


# ----------------------------------------------------------------------
# streaming reductions
# ----------------------------------------------------------------------

#: Reduction objectives: ``(score source, constraint source)``.  Scores
#: are minimized; constraints (when given) mark lanes infeasible.
STREAM_OBJECTIVES = ("min_energy", "min_time", "max_ucr")


@dataclass(frozen=True)
class StreamedSelection:
    """Rows selected by a streaming reduction, aligned with ``indices``.

    ``indices`` are global flat positions in the space's canonical
    iteration order; ``evaluation`` carries the selected rows' full
    result columns (``space=None`` — configurations rebuild from the
    arrays, exactly like disk-cache rehydration).
    """

    indices: np.ndarray
    evaluation: VectorizedEvaluation
    blocks: int
    configs: int

    def __len__(self) -> int:
        return int(self.indices.shape[0])

    @property
    def best(self) -> Prediction | None:
        """The top-ranked selection as a scalar-API prediction."""
        return self.evaluation.prediction(0) if len(self) else None

    def predictions(self) -> tuple[Prediction, ...]:
        """All selected rows as scalar-API predictions."""
        return self.evaluation.predictions


def topk_merge(
    scores: np.ndarray, indices: np.ndarray, k: int
) -> np.ndarray:
    """Positions of the ``k`` smallest scores, ties to the lowest index.

    Matches ``np.argsort(kind="stable")[:k]`` over the full array (and
    ``np.argmin`` for ``k=1``) when ``indices`` are the global flat
    positions — which is what makes the streamed top-k selection exact.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    order = np.lexsort((indices, scores))
    return order[: min(k, order.size)]


def _block_scores(
    vec: VectorizedEvaluation,
    objective: str,
    deadline_s: float | None,
    budget_j: float | None,
) -> np.ndarray:
    """Per-lane minimization scores; infeasible lanes become ``+inf``."""
    if objective == "min_energy":
        scores = np.array(vec.energies_j, dtype=np.float64)
        if deadline_s is not None:
            scores = np.where(vec.times_s <= deadline_s, scores, np.inf)
        return scores
    if objective == "min_time":
        scores = np.array(vec.times_s, dtype=np.float64)
        if budget_j is not None:
            scores = np.where(vec.energies_j <= budget_j, scores, np.inf)
        return scores
    if objective == "max_ucr":
        return -np.array(vec.ucrs, dtype=np.float64)
    raise ValueError(
        f"unknown objective {objective!r}; choose from {STREAM_OBJECTIVES}"
    )


def _take_rows(
    vec: VectorizedEvaluation, local: np.ndarray
) -> dict[str, np.ndarray]:
    """The selected rows of every result column of a block."""
    return {name: np.array(getattr(vec, name)[local]) for name in ARRAY_FIELDS}


def _concat_rows(
    parts: list[dict[str, np.ndarray]]
) -> dict[str, np.ndarray]:
    """Concatenate row dicts column-wise (empty parts list allowed)."""
    out = {}
    for name in ARRAY_FIELDS:
        dtype = parallel._field_dtype(name)
        cols = [p[name] for p in parts]
        out[name] = (
            np.concatenate(cols)
            if cols
            else np.empty(0, dtype=dtype)
        )
    return out


def _selection(
    rows: dict[str, np.ndarray],
    indices: np.ndarray,
    class_name: str,
    blocks: int,
    configs: int,
) -> StreamedSelection:
    """Pack reduced rows into a :class:`StreamedSelection`."""
    for name in ARRAY_FIELDS:
        rows[name].setflags(write=False)
    evaluation = VectorizedEvaluation(
        class_name=class_name, space=None, **rows
    )
    indices = np.array(indices, dtype=np.int64)
    indices.setflags(write=False)
    return StreamedSelection(
        indices=indices, evaluation=evaluation, blocks=blocks, configs=configs
    )


def stream_topk(
    model: HybridProgramModel,
    space: object,
    k: int = 1,
    *,
    objective: str = "min_energy",
    deadline_s: float | None = None,
    budget_j: float | None = None,
    class_name: str | None = None,
    queueing: str = "bracketed",
    service_overlap: bool = True,
    max_block_bytes: int = DEFAULT_MAX_BLOCK_BYTES,
) -> StreamedSelection:
    """Top-k reduction over a block-streamed evaluation, O(block) memory.

    Keeps a running candidate set of at most ``k`` feasible rows merged
    per block; the final indices equal a stable argsort (lowest score,
    ties to the lowest flat index) of the fully materialized scores —
    exactly, because block lanes are bit-identical to materialized lanes
    and the merge replicates the same tie-breaking.  Infeasible rows
    (deadline/budget violations) never enter the candidate set; an
    entirely infeasible space yields an empty selection.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if objective not in STREAM_OBJECTIVES:
        raise ValueError(
            f"unknown objective {objective!r}; choose from {STREAM_OBJECTIVES}"
        )
    if not obs.active():
        return _stream_topk(
            model,
            space,
            k,
            objective,
            deadline_s,
            budget_j,
            class_name,
            queueing,
            service_overlap,
            max_block_bytes,
        )
    with obs.span("stream_topk", objective=objective, k=k) as sp:
        selection = _stream_topk(
            model,
            space,
            k,
            objective,
            deadline_s,
            budget_j,
            class_name,
            queueing,
            service_overlap,
            max_block_bytes,
        )
        sp.set(blocks=selection.blocks, configs=selection.configs)
    return selection


def _stream_topk(
    model: HybridProgramModel,
    space: object,
    k: int,
    objective: str,
    deadline_s: float | None,
    budget_j: float | None,
    class_name: str | None,
    queueing: str,
    service_overlap: bool,
    max_block_bytes: int,
) -> StreamedSelection:
    cls_name = class_name or model.inputs.baseline_class
    run_rows: dict[str, np.ndarray] | None = None
    run_scores = np.empty(0, dtype=np.float64)
    run_idx = np.empty(0, dtype=np.int64)
    blocks = 0
    configs = 0
    for offset, vec in stream_blocks(
        model,
        space,
        class_name,
        queueing=queueing,
        service_overlap=service_overlap,
        max_block_bytes=max_block_bytes,
    ):
        blocks += 1
        configs += len(vec)
        cls_name = vec.class_name
        scores = _block_scores(vec, objective, deadline_s, budget_j)
        feasible = np.flatnonzero(np.isfinite(scores))
        if feasible.size > k:
            # block-local prefilter: only the block's own top-k can
            # survive the merge (same stable tie-breaking)
            feasible = feasible[
                topk_merge(scores[feasible], feasible.astype(np.int64), k)
            ]
        if not feasible.size:
            continue
        cand_scores = np.concatenate((run_scores, scores[feasible]))
        cand_idx = np.concatenate(
            (run_idx, (offset + feasible).astype(np.int64))
        )
        cand_rows = _concat_rows(
            ([run_rows] if run_rows is not None else [])
            + [_take_rows(vec, feasible)]
        )
        keep = topk_merge(cand_scores, cand_idx, k)
        run_scores = cand_scores[keep]
        run_idx = cand_idx[keep]
        run_rows = {name: cand_rows[name][keep] for name in ARRAY_FIELDS}
    if run_rows is None:
        run_rows = _concat_rows([])
    if obs.metrics_enabled():
        obs.add("planner.stream_blocks", blocks)
        obs.add("planner.stream_configs", configs)
    return _selection(run_rows, run_idx, cls_name, blocks, configs)


def stream_pareto(
    model: HybridProgramModel,
    space: object,
    class_name: str | None = None,
    *,
    queueing: str = "bracketed",
    service_overlap: bool = True,
    max_block_bytes: int = DEFAULT_MAX_BLOCK_BYTES,
) -> StreamedSelection:
    """Running-Pareto reduction over a block-streamed evaluation.

    Per block, the running frontier is merged with the block's own
    frontier and re-filtered through
    :func:`repro.core.pareto.pareto_mask`.  The final membership equals
    the materialized mask *exactly*: Pareto(A ∪ B) = Pareto(Pareto(A) ∪
    B), candidates stay in ascending flat-index order (running indices
    always precede the block's), and the mask's duplicate rule (first
    occurrence in array order wins) therefore keeps the same indices the
    materialized pass keeps.  Memory is O(frontier + block), never
    O(space).
    """
    if not obs.active():
        return _stream_pareto(
            model, space, class_name, queueing, service_overlap, max_block_bytes
        )
    with obs.span("stream_pareto") as sp:
        selection = _stream_pareto(
            model, space, class_name, queueing, service_overlap, max_block_bytes
        )
        sp.set(
            blocks=selection.blocks,
            configs=selection.configs,
            frontier=len(selection),
        )
    return selection


def _stream_pareto(
    model: HybridProgramModel,
    space: object,
    class_name: str | None,
    queueing: str,
    service_overlap: bool,
    max_block_bytes: int,
) -> StreamedSelection:
    from repro.core.pareto import pareto_mask

    cls_name = class_name or model.inputs.baseline_class
    run_rows: dict[str, np.ndarray] | None = None
    run_idx = np.empty(0, dtype=np.int64)
    blocks = 0
    configs = 0
    for offset, vec in stream_blocks(
        model,
        space,
        class_name,
        queueing=queueing,
        service_overlap=service_overlap,
        max_block_bytes=max_block_bytes,
    ):
        blocks += 1
        configs += len(vec)
        cls_name = vec.class_name
        local = np.flatnonzero(pareto_mask(vec.times_s, vec.energies_j))
        if not local.size:
            continue
        cand_rows = _concat_rows(
            ([run_rows] if run_rows is not None else [])
            + [_take_rows(vec, local)]
        )
        cand_idx = np.concatenate(
            (run_idx, (offset + local).astype(np.int64))
        )
        keep = pareto_mask(cand_rows["times_s"], cand_rows["energies_j"])
        run_idx = cand_idx[keep]
        run_rows = {name: cand_rows[name][keep] for name in ARRAY_FIELDS}
    if run_rows is None:
        run_rows = _concat_rows([])
    if obs.metrics_enabled():
        obs.add("planner.stream_blocks", blocks)
        obs.add("planner.stream_configs", configs)
    return _selection(run_rows, run_idx, cls_name, blocks, configs)


# ----------------------------------------------------------------------
# the dispatch
# ----------------------------------------------------------------------


def execute(
    model: HybridProgramModel,
    space: object,
    class_name: str | None,
    queueing: str,
    service_overlap: bool,
    *,
    cacheable: bool = True,
    instrument: bool = True,
) -> VectorizedEvaluation:
    """Run one space evaluation under the planner's chosen strategy.

    This is the dispatch point :func:`repro.core.vectorized._evaluate`
    routes through.  Without an active :class:`PlannerConfig` the legacy
    semantics apply unchanged: an ambient
    :class:`~repro.core.parallel.ExecutionPlan` dispatches through
    :func:`~repro.core.parallel.evaluate_plan` (operator contract —
    explicit plans keep their exact behavior, including
    ``clamp_workers=False``), otherwise the plain broadcast engine runs.
    With a config, :func:`decide` picks the strategy and this function
    executes it, handling the persistent disk cache around whichever
    strategy ran.
    """
    cfg = active_config()
    plan = parallel.active_plan()
    cls = class_name or model.inputs.baseline_class

    if cfg is None:
        if plan is not None:
            return parallel.evaluate_plan(
                plan,
                model,
                space,
                class_name,
                queueing,
                service_overlap,
                cacheable=cacheable,
                record_strategy=instrument,
            )
        result = vectorized._compute(
            model, space, cls, queueing, service_overlap, instrument
        )
        if instrument:
            record_selection("vectorized")
        return result

    size = parallel._space_size(space)
    workers = plan.workers if plan is not None else 1
    identity = None
    cache_hit = False
    if plan is not None and plan.cache is not None and cacheable:
        identity = entry_identity(model, space, cls, queueing, service_overlap)
        cache_hit = plan.cache.contains(identity)
    decision = decide(
        size,
        workers=workers,
        cache_hit=cache_hit,
        mode=cfg.mode,
        cost_model=cfg.cost_model,
        max_block_bytes=cfg.max_block_bytes,
        allow_scalar=cfg.allow_scalar,
        min_parallel_configs=(
            plan.min_parallel_configs if plan is not None else None
        ),
        record=instrument,
    )

    if decision.strategy == "cached":
        assert plan is not None and plan.cache is not None
        cached = plan.cache.get(identity)
        if cached is not None:
            return cached
        # torn/foreign entry rejected between probe and read: fall
        # through to a fresh computation
        decision = replace(decision, strategy="vectorized")

    if decision.strategy == "sharded":
        assert plan is not None
        eff = parallel.effective_workers(workers)
        result = parallel._run_sharded(
            plan, eff, model, space, cls, queueing, service_overlap
        )
    elif decision.strategy == "scalar":
        result = _scalar_compute(model, space, cls, queueing, service_overlap)
    elif decision.streamed:
        assert cfg.max_block_bytes is not None
        result = evaluate_space_streamed(
            model,
            space,
            cls,
            queueing=queueing,
            service_overlap=service_overlap,
            max_block_bytes=cfg.max_block_bytes,
        )
    else:
        result = vectorized._compute(
            model, space, cls, queueing, service_overlap, instrument
        )
    if identity is not None and plan is not None and plan.cache is not None:
        plan.cache.put(identity, result)
    return result
