"""Execution-time model (paper §III-C, Eqs. 1-7).

    T = T_CPU + T_w,net + T_s,net + T_w,mem + T_s,mem                (1)

All cycle quantities are per-core averages from the baseline sweep at the
*same* (c, f) point, scaled by the total-work ratio (the paper's ``S/S_s``)
and divided across ``n`` nodes:

* ``T_CPU = (w_s + b_s) * scale / (n * f)``                      (Eqs. 2-4)
* ``T_w,mem + T_s,mem = m_s * scale / (n * f)``                     (Eq. 7)

Network terms (for ``n > 1``):

* ``T_s,net = max((1-U) * T_CPU, η·ν / B)``                         (Eq. 6)
  — the wire time of the process's total communication, unless it is
  already covered by CPU idle gaps (overlap);
* ``T_w,net`` from the M/G/1 switch queue (Eq. 5): the paper's
  ``λ·ŷ²/(1-ρ)`` is exactly Pollaczek-Khinchine under exponentially
  distributed service, applied per message and accumulated over the
  process's messages.  Since the arrival rate λ depends on the execution
  time being predicted, the model solves a damped fixed point T → λ → T.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.params import ModelInputs

#: Fixed-point iteration controls.
_MAX_FIXPOINT_ITER = 200
_FIXPOINT_TOL = 1e-9
_DAMPING = 0.5
#: Utilization clamp: an offered load above this stretches T through the
#: fixed point rather than producing a negative waiting time.
_RHO_MAX = 0.985
#: Bulk-synchronous burst floor: fraction of the inbound-burst drain time a
#: barrier-synchronized iteration pays even when the run-average port
#: utilization looks low (messages collide at the receiving port because
#: they are released together, not spread Poisson-fashion).
_BURST_FLOOR = 0.5


@dataclass(frozen=True)
class TimeBreakdown:
    """Predicted execution-time components (the Eq. 1 terms, seconds)."""

    t_cpu_s: float
    t_mem_s: float
    t_net_service_s: float
    t_net_wait_s: float
    utilization_baseline: float
    rho_network: float

    @property
    def t_net_s(self) -> float:
        """Total network time ``T_w,net + T_s,net``."""
        return self.t_net_service_s + self.t_net_wait_s

    @property
    def total_s(self) -> float:
        """Predicted execution time ``T`` (Eq. 1)."""
        return self.t_cpu_s + self.t_mem_s + self.t_net_s

    @property
    def ucr(self) -> float:
        """Predicted useful computation ratio (Eq. 13)."""
        return self.t_cpu_s / self.total_s if self.total_s > 0 else 0.0


def predict_time(
    inputs: ModelInputs,
    nodes: int,
    cores: int,
    frequency_hz: float,
    scale: float,
    iterations: int,
    queueing: str = "bracketed",
    service_overlap: bool = True,
) -> TimeBreakdown:
    """Predict the execution time of the program at ``(n, c, f)``.

    Parameters
    ----------
    scale:
        Total-work ratio of the target input over the baseline input
        (the paper's ``S/S_s`` generalized to total work).
    iterations:
        ``S`` — iteration count of the target input (drives message counts,
        whose per-iteration rate was profiled at the baseline class).
    queueing:
        Network-waiting variant, for ablation studies:
        ``"bracketed"`` (default) — Eq. 5's M/G/1 estimate clamped between
        the bulk-synchronous burst floor and the drain bound;
        ``"mg1"`` — the raw Eq. 5 estimate (Poisson-arrival assumption);
        ``"none"`` — drop T_w,net entirely.
    service_overlap:
        Eq. 6 variant: ``True`` (default) applies the paper's
        ``max((1-U)·T_CPU, wire)`` overlap; ``False`` charges the full wire
        time on top of computation (no overlap modeling).
    """
    if nodes < 1 or cores < 1:
        raise ValueError("need nodes >= 1 and cores >= 1")
    if scale <= 0 or iterations < 1:
        raise ValueError("scale must be positive and iterations >= 1")
    if queueing not in ("bracketed", "mg1", "none"):
        raise ValueError(f"unknown queueing variant {queueing!r}")

    art = inputs.artefacts(cores, frequency_hz)
    f = frequency_hz

    # Eqs. 2-4: useful cycles, split across n nodes
    t_cpu = art.useful_cycles * scale / (nodes * f)
    # Eq. 7: memory stalls scale identically (contention level is set by c,
    # which the baseline point shares)
    t_mem = art.mem_stall_cycles * scale / (nodes * f)

    if nodes == 1:
        return TimeBreakdown(
            t_cpu_s=t_cpu,
            t_mem_s=t_mem,
            t_net_service_s=0.0,
            t_net_wait_s=0.0,
            utilization_baseline=art.utilization,
            rho_network=0.0,
        )

    # --- communication characteristics at this node count ---------------
    comm = inputs.comm
    size_ratio = scale * inputs.baseline_iterations / iterations
    eta_total = comm.eta(nodes) * iterations  # messages per process
    volume_total = comm.volume(nodes) * size_ratio * iterations  # bytes/process
    nu = volume_total / eta_total if eta_total else 0.0

    bandwidth = inputs.network.bandwidth_bytes_per_s
    overhead = inputs.network.latency_floor_s

    # Eq. 6: non-overlapped network service time
    wire_time = eta_total * overhead + volume_total / bandwidth
    if service_overlap:
        t_net_service = max((1.0 - art.utilization) * t_cpu, wire_time)
    else:
        t_net_service = (1.0 - art.utilization) * t_cpu + wire_time

    # Eq. 5: switch waiting time via damped fixed point on T.  The switch
    # is a non-blocking fabric, so the M/G/1 server of Eq. 5 is the
    # *receiving port*: messages from multiple senders converge on one
    # node's link and wait behind each other.  Per-message service there is
    # the transfer time ν/B (the per-message protocol overhead is paid in
    # parallel at each sender's NIC and already counted in T_s,net), and
    # the arrival rate seen by one port is the process's own inbound rate
    # η/T (traffic is spread evenly over ports by halo symmetry).
    #
    # The M/G/1 mean wait assumes Poisson arrivals; a bulk-synchronous
    # program instead releases its messages in iteration bursts, so the
    # realized wait is bracketed between a burst floor (concurrent senders
    # interleaving into the port) and the drain bound (the port fully
    # serializing the iteration's inbound burst).  The model takes the
    # M/G/1 estimate clamped into that bracket.
    y_mean = nu / bandwidth  # per-message service at the receiving port
    drain_bound = eta_total * y_mean
    burst_floor = _BURST_FLOOR * drain_bound if nodes > 2 else 0.0
    if queueing == "none":
        return TimeBreakdown(
            t_cpu_s=t_cpu,
            t_mem_s=t_mem,
            t_net_service_s=t_net_service,
            t_net_wait_s=0.0,
            utilization_baseline=art.utilization,
            rho_network=0.0,
        )
    t_total = t_cpu + t_mem + t_net_service
    t_net_wait = 0.0
    rho = 0.0
    for _ in range(_MAX_FIXPOINT_ITER):
        lam = eta_total / t_total  # per-port inbound message rate
        rho = min(lam * y_mean, _RHO_MAX)
        mean_wait = lam * y_mean**2 / (1.0 - rho)
        new_wait = eta_total * mean_wait
        if queueing == "bracketed":
            new_wait = min(max(new_wait, burst_floor), drain_bound)
        new_total = t_cpu + t_mem + t_net_service + new_wait
        if abs(new_total - t_total) <= _FIXPOINT_TOL * t_total:
            t_net_wait = new_wait
            t_total = new_total
            break
        t_net_wait = _DAMPING * new_wait + (1.0 - _DAMPING) * t_net_wait
        t_total = t_cpu + t_mem + t_net_service + t_net_wait

    return TimeBreakdown(
        t_cpu_s=t_cpu,
        t_mem_s=t_mem,
        t_net_service_s=t_net_service,
        t_net_wait_s=t_net_wait,
        utilization_baseline=art.utilization,
        rho_network=rho,
    )
