"""Execution-time model (paper §III-C, Eqs. 1-7).

    T = T_CPU + T_w,net + T_s,net + T_w,mem + T_s,mem                (1)

All cycle quantities are per-core averages from the baseline sweep at the
*same* (c, f) point, scaled by the total-work ratio (the paper's ``S/S_s``)
and divided across ``n`` nodes:

* ``T_CPU = (w_s + b_s) * scale / (n * f)``                      (Eqs. 2-4)
* ``T_w,mem + T_s,mem = m_s * scale / (n * f)``                     (Eq. 7)

Note on the Eq. 2 denominator: the paper writes ``T_CPU = cycles/(n·c·f)``
with *total* cycles summed over a node's ``c`` cores.  The baseline sweep
here records **per-core average** cycles at each (c, f) point (the counter
readings are per-core means), so the per-core quantities are already the
paper's total divided by ``c`` — dividing by ``n·f`` is exactly the
paper's ``/(n·c·f)``.  ``tests/integration/test_paper_anchors.py`` pins
Fig. 8 predictions so this denominator cannot silently drift.

Network terms (for ``n > 1``):

* ``T_s,net = max((1-U) * T_CPU, η·ν / B)``                         (Eq. 6)
  — the wire time of the process's total communication, unless it is
  already covered by CPU idle gaps (overlap);
* ``T_w,net`` from the M/G/1 switch queue (Eq. 5), computed by the shared
  Pollaczek-Khinchine helper :func:`repro.mg1.mg1_mean_wait` with the
  exponential-service second moment ``E[y²] = 2·ŷ²`` — exactly the
  paper's ``λ·ŷ²/(1-ρ)`` (see :mod:`repro.mg1` for the convention
  derivation).  Since the arrival rate λ depends on the execution time
  being predicted, the model solves a damped fixed point T → λ → T.
  The offered load is clamped at :data:`repro.mg1.RHO_MAX`; when the
  clamp engages, the breakdown's ``saturated`` flag is set.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro import obs
from repro.core.params import ModelInputs
from repro.mg1 import (
    RHO_MAX,
    exponential_second_moment,
    mg1_mean_wait,
    mg1_utilization,
)

#: Fixed-point iteration controls.
_MAX_FIXPOINT_ITER = 200
_FIXPOINT_TOL = 1e-9
_DAMPING = 0.5
#: Back-compat alias; the clamp is owned by :mod:`repro.mg1` so the
#: scalar model, the vectorized engine and the queueing helpers share it.
_RHO_MAX = RHO_MAX
#: Bulk-synchronous burst floor: fraction of the inbound-burst drain time a
#: barrier-synchronized iteration pays even when the run-average port
#: utilization looks low (messages collide at the receiving port because
#: they are released together, not spread Poisson-fashion).  Unchanged by
#: the P-K unification: the shared helper reproduces the paper's Eq. 5
#: form bit-for-bit (exponential second moment), so no recalibration of
#: this constant or the bracket was needed.
_BURST_FLOOR = 0.5


@dataclass(frozen=True)
class TimeBreakdown:
    """Predicted execution-time components (the Eq. 1 terms, seconds).

    ``saturated`` reports whether the Eq. 5 fixed point ever clamped the
    switch port's offered load at :data:`repro.mg1.RHO_MAX` — the waiting
    time then includes a capacity-limited extrapolation rather than a
    pure stable-queue estimate.
    """

    t_cpu_s: float
    t_mem_s: float
    t_net_service_s: float
    t_net_wait_s: float
    utilization_baseline: float
    rho_network: float
    saturated: bool = False

    @property
    def t_net_s(self) -> float:
        """Total network time ``T_w,net + T_s,net``."""
        return self.t_net_service_s + self.t_net_wait_s

    @property
    def total_s(self) -> float:
        """Predicted execution time ``T`` (Eq. 1)."""
        return self.t_cpu_s + self.t_mem_s + self.t_net_s

    @property
    def ucr(self) -> float:
        """Predicted useful computation ratio (Eq. 13)."""
        return self.t_cpu_s / self.total_s if self.total_s > 0 else 0.0


def predict_time(
    inputs: ModelInputs,
    nodes: int,
    cores: int,
    frequency_hz: float,
    scale: float,
    iterations: int,
    queueing: str = "bracketed",
    service_overlap: bool = True,
) -> TimeBreakdown:
    """Predict the execution time of the program at ``(n, c, f)``.

    Parameters
    ----------
    scale:
        Total-work ratio of the target input over the baseline input
        (the paper's ``S/S_s`` generalized to total work).
    iterations:
        ``S`` — iteration count of the target input (drives message counts,
        whose per-iteration rate was profiled at the baseline class).
    queueing:
        Network-waiting variant, for ablation studies:
        ``"bracketed"`` (default) — Eq. 5's M/G/1 estimate clamped between
        the bulk-synchronous burst floor and the drain bound;
        ``"mg1"`` — the raw Eq. 5 estimate (Poisson-arrival assumption);
        ``"none"`` — drop T_w,net entirely.
    service_overlap:
        Eq. 6 variant: ``True`` (default) applies the paper's
        ``max((1-U)·T_CPU, wire)`` overlap; ``False`` charges the full wire
        time on top of computation (no overlap modeling).
    """
    instrumented = obs.active()
    t_start = time.perf_counter() if instrumented else 0.0
    breakdown = _predict_time(
        inputs,
        nodes,
        cores,
        frequency_hz,
        scale,
        iterations,
        queueing,
        service_overlap,
    )
    if instrumented:
        obs.observe("model.predict_seconds", time.perf_counter() - t_start)
        obs.add("model.predictions")
        if breakdown.saturated:
            obs.add("model.saturated_predictions")
    return breakdown


def _predict_time(
    inputs: ModelInputs,
    nodes: int,
    cores: int,
    frequency_hz: float,
    scale: float,
    iterations: int,
    queueing: str,
    service_overlap: bool,
) -> TimeBreakdown:
    if nodes < 1 or cores < 1:
        raise ValueError("need nodes >= 1 and cores >= 1")
    if scale <= 0 or iterations < 1:
        raise ValueError("scale must be positive and iterations >= 1")
    if queueing not in ("bracketed", "mg1", "none"):
        raise ValueError(f"unknown queueing variant {queueing!r}")

    art = inputs.artefacts(cores, frequency_hz)
    f = frequency_hz

    # Eqs. 2-4: per-core average cycles, split across n nodes (see the
    # module docstring for why this equals the paper's /(n·c·f))
    t_cpu = art.useful_cycles * scale / (nodes * f)
    # Eq. 7: memory stalls scale identically (contention level is set by c,
    # which the baseline point shares)
    t_mem = art.mem_stall_cycles * scale / (nodes * f)

    if nodes == 1:
        return TimeBreakdown(
            t_cpu_s=t_cpu,
            t_mem_s=t_mem,
            t_net_service_s=0.0,
            t_net_wait_s=0.0,
            utilization_baseline=art.utilization,
            rho_network=0.0,
        )

    # --- communication characteristics at this node count ---------------
    comm = inputs.comm
    size_ratio = scale * inputs.baseline_iterations / iterations
    eta_total = comm.eta(nodes) * iterations  # messages per process
    volume_total = comm.volume(nodes) * size_ratio * iterations  # bytes/process
    nu = volume_total / eta_total if eta_total else 0.0

    bandwidth = inputs.network.bandwidth_bytes_per_s
    if bandwidth <= 0:
        raise ValueError("network bandwidth must be positive for nodes > 1")
    overhead = inputs.network.latency_floor_s

    # Eq. 6: non-overlapped network service time.  The overlap slack is
    # clamped at zero so a measured utilization above 1.0 (counter noise)
    # cannot produce a negative service time.
    wire_time = eta_total * overhead + volume_total / bandwidth
    slack = max(0.0, 1.0 - art.utilization)
    if service_overlap:
        t_net_service = max(slack * t_cpu, wire_time)
    else:
        t_net_service = slack * t_cpu + wire_time

    # Eq. 5: switch waiting time via damped fixed point on T.  The switch
    # is a non-blocking fabric, so the M/G/1 server of Eq. 5 is the
    # *receiving port*: messages from multiple senders converge on one
    # node's link and wait behind each other.  Per-message service there is
    # the transfer time ν/B (the per-message protocol overhead is paid in
    # parallel at each sender's NIC and already counted in T_s,net), and
    # the arrival rate seen by one port is the process's own inbound rate
    # η/T (traffic is spread evenly over ports by halo symmetry).
    #
    # The M/G/1 mean wait assumes Poisson arrivals; a bulk-synchronous
    # program instead releases its messages in iteration bursts, so the
    # realized wait is bracketed between a burst floor (concurrent senders
    # interleaving into the port) and the drain bound (the port fully
    # serializing the iteration's inbound burst).  The model takes the
    # M/G/1 estimate clamped into that bracket.
    y_mean = nu / bandwidth  # per-message service at the receiving port
    y_m2 = exponential_second_moment(y_mean)  # the paper's Eq. 5 convention
    drain_bound = eta_total * y_mean
    burst_floor = _BURST_FLOOR * drain_bound if nodes > 2 else 0.0
    if queueing == "none":
        return TimeBreakdown(
            t_cpu_s=t_cpu,
            t_mem_s=t_mem,
            t_net_service_s=t_net_service,
            t_net_wait_s=0.0,
            utilization_baseline=art.utilization,
            rho_network=0.0,
        )
    t_total = t_cpu + t_mem + t_net_service
    t_net_wait = 0.0
    rho = 0.0
    iters = 0
    bracket_clamps = 0
    rho_clamps = 0
    for iters in range(1, _MAX_FIXPOINT_ITER + 1):
        lam = eta_total / t_total  # per-port inbound message rate
        rho_raw = mg1_utilization(lam, y_mean)
        if rho_raw >= RHO_MAX:
            rho_clamps += 1
        rho = min(rho_raw, RHO_MAX)
        mean_wait = mg1_mean_wait(lam, y_mean, y_m2, rho_max=RHO_MAX)
        new_wait = eta_total * mean_wait
        if queueing == "bracketed":
            clamped_wait = min(max(new_wait, burst_floor), drain_bound)
            if clamped_wait != new_wait:
                bracket_clamps += 1
            new_wait = clamped_wait
        new_total = t_cpu + t_mem + t_net_service + new_wait
        if abs(new_total - t_total) <= _FIXPOINT_TOL * t_total:
            t_net_wait = new_wait
            t_total = new_total
            break
        t_net_wait = _DAMPING * new_wait + (1.0 - _DAMPING) * t_net_wait
        t_total = t_cpu + t_mem + t_net_service + t_net_wait

    # the wire time (>= the drain bound) is part of every T the iteration
    # visits, so the *converged* load always settles below the clamp; the
    # flag therefore reports whether the clamp engaged anywhere along the
    # fixed point (equivalently: the zero-wait offered load eta/t_base
    # exceeds capacity), marking the wait as a capacity-limited estimate.
    saturated = rho_clamps > 0
    if obs.metrics_enabled():
        obs.add("model.fixpoint_iterations", iters)
        obs.add("model.fixpoint_bracket_clamps", bracket_clamps)
        obs.add("model.fixpoint_rho_clamps", rho_clamps)

    return TimeBreakdown(
        t_cpu_s=t_cpu,
        t_mem_s=t_mem,
        t_net_service_s=t_net_service,
        t_net_wait_s=t_net_wait,
        utilization_baseline=art.utilization,
        rho_network=rho,
        saturated=saturated,
    )
