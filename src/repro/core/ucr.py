"""Useful Computation Ratio (paper §V-B, Eqs. 13-14).

    UCR = T_useful / T = T_CPU / T                                  (13)
    T   = T_CPU + T_data_dep + T_mem_contention + T_net_contention  (14)

UCR is normalized to [0, 1] (unlike the classic computation-to-
communication ratio), so it is comparable across configurations; its upper
bound for a program is attained at (1, 1, f_min) where contention and
communication vanish.  The decomposition separates:

* ``T_data_dep``       — memory service time that exists even without any
  contention (a program characteristic: the single-thread non-overlapped
  memory time);
* ``T_mem_contention`` — additional memory time caused by the c threads
  sharing the controller (the Eq. 14 intra-node communication cost);
* ``T_net_contention`` — all inter-node communication time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.model import HybridProgramModel, Prediction
from repro.machines.spec import Configuration


@dataclass(frozen=True)
class UCRDecomposition:
    """The Eq. 14 terms for one configuration (seconds)."""

    t_cpu_s: float
    t_data_dep_s: float
    t_mem_contention_s: float
    t_net_contention_s: float

    @property
    def total_s(self) -> float:
        """Execution time ``T`` reassembled from the terms."""
        return (
            self.t_cpu_s
            + self.t_data_dep_s
            + self.t_mem_contention_s
            + self.t_net_contention_s
        )

    @property
    def ucr(self) -> float:
        """UCR (Eq. 13)."""
        return self.t_cpu_s / self.total_s if self.total_s > 0 else 0.0


def ucr_decomposition(
    model: HybridProgramModel,
    prediction: Prediction,
) -> UCRDecomposition:
    """Decompose a prediction's time into the Eq. 14 terms.

    The data-dependency term is estimated from the single-thread baseline
    at the same frequency (no shared-memory contention with c = 1); memory
    time beyond that proportion is attributed to intra-node contention.
    """
    cfg = prediction.config
    single = model.inputs.artefacts(1, cfg.frequency_hz)
    scale = model.program.scale_factor(
        prediction.class_name, model.inputs.baseline_class
    )
    # The single-thread baseline's memory stalls are contention-free: its
    # per-core stall cycles cover the whole problem's traffic.  Divided
    # across n*c cores, they give the per-core memory time a contention-free
    # execution would show — anything the prediction's memory term carries
    # beyond that is intra-node contention.
    t_data_dep = single.mem_stall_cycles * scale / (
        cfg.nodes * cfg.cores * cfg.frequency_hz
    )
    t_data_dep = min(t_data_dep, prediction.time.t_mem_s)
    t_mem_contention = prediction.time.t_mem_s - t_data_dep
    return UCRDecomposition(
        t_cpu_s=prediction.time.t_cpu_s,
        t_data_dep_s=t_data_dep,
        t_mem_contention_s=t_mem_contention,
        t_net_contention_s=prediction.time.t_net_s,
    )


def ucr_upper_bound(
    model: HybridProgramModel, class_name: str | None = None
) -> Prediction:
    """The program's UCR upper bound: the (1, 1, f_min) prediction."""
    fmin = min(k[1] for k in model.inputs.baseline.keys())
    return model.predict(
        Configuration(nodes=1, cores=1, frequency_hz=fmin), class_name
    )
