"""Useful Computation Ratio (paper §V-B, Eqs. 13-14).

    UCR = T_useful / T = T_CPU / T                                  (13)
    T   = T_CPU + T_data_dep + T_mem_contention + T_net_contention  (14)

UCR is normalized to [0, 1] (unlike the classic computation-to-
communication ratio), so it is comparable across configurations; its upper
bound for a program is attained at (1, 1, f_min) where contention and
communication vanish.  The decomposition separates:

* ``T_data_dep``       — memory service time that exists even without any
  contention (a program characteristic: the single-thread non-overlapped
  memory time);
* ``T_mem_contention`` — additional memory time caused by the c threads
  sharing the controller (the Eq. 14 intra-node communication cost);
* ``T_net_contention`` — all inter-node communication time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.configspace import ConfigSpace, SpaceEvaluation, evaluate_space
from repro.core.model import HybridProgramModel, Prediction
from repro.machines.spec import Configuration


@dataclass(frozen=True)
class UCRDecomposition:
    """The Eq. 14 terms for one configuration (seconds)."""

    t_cpu_s: float
    t_data_dep_s: float
    t_mem_contention_s: float
    t_net_contention_s: float

    @property
    def total_s(self) -> float:
        """Execution time ``T`` reassembled from the terms."""
        return (
            self.t_cpu_s
            + self.t_data_dep_s
            + self.t_mem_contention_s
            + self.t_net_contention_s
        )

    @property
    def ucr(self) -> float:
        """UCR (Eq. 13)."""
        return self.t_cpu_s / self.total_s if self.total_s > 0 else 0.0


def ucr_decomposition(
    model: HybridProgramModel,
    prediction: Prediction,
) -> UCRDecomposition:
    """Decompose a prediction's time into the Eq. 14 terms.

    The data-dependency term is estimated from the single-thread baseline
    at the same frequency (no shared-memory contention with c = 1); memory
    time beyond that proportion is attributed to intra-node contention.
    """
    cfg = prediction.config
    single = model.inputs.artefacts(1, cfg.frequency_hz)
    scale = model.program.scale_factor(
        prediction.class_name, model.inputs.baseline_class
    )
    # The single-thread baseline's memory stalls are contention-free: its
    # per-core stall cycles cover the whole problem's traffic.  Divided
    # across n*c cores, they give the per-core memory time a contention-free
    # execution would show — anything the prediction's memory term carries
    # beyond that is intra-node contention.
    t_data_dep = single.mem_stall_cycles * scale / (
        cfg.nodes * cfg.cores * cfg.frequency_hz
    )
    t_data_dep = min(t_data_dep, prediction.time.t_mem_s)
    t_mem_contention = prediction.time.t_mem_s - t_data_dep
    return UCRDecomposition(
        t_cpu_s=prediction.time.t_cpu_s,
        t_data_dep_s=t_data_dep,
        t_mem_contention_s=t_mem_contention,
        t_net_contention_s=prediction.time.t_net_s,
    )


@dataclass(frozen=True)
class UCRSpaceDecomposition:
    """Eq. 14 terms for every configuration of a space, as aligned arrays.

    The vectorized counterpart of :func:`ucr_decomposition`: the Fig. 10/11
    grids decompose in one broadcast pass over the evaluation's arrays.
    """

    evaluation: SpaceEvaluation
    t_cpu_s: np.ndarray
    t_data_dep_s: np.ndarray
    t_mem_contention_s: np.ndarray
    t_net_contention_s: np.ndarray

    @property
    def totals_s(self) -> np.ndarray:
        """Execution times ``T`` reassembled from the terms."""
        return (
            self.t_cpu_s
            + self.t_data_dep_s
            + self.t_mem_contention_s
            + self.t_net_contention_s
        )

    @property
    def ucrs(self) -> np.ndarray:
        """UCR (Eq. 13) per configuration."""
        totals = self.totals_s
        return np.divide(
            self.t_cpu_s, totals, out=np.zeros_like(totals), where=totals > 0
        )

    def __len__(self) -> int:
        return int(self.t_cpu_s.shape[0])

    def point(self, index: int) -> UCRDecomposition:
        """Materialize the scalar-API decomposition for one configuration."""
        return UCRDecomposition(
            t_cpu_s=float(self.t_cpu_s[index]),
            t_data_dep_s=float(self.t_data_dep_s[index]),
            t_mem_contention_s=float(self.t_mem_contention_s[index]),
            t_net_contention_s=float(self.t_net_contention_s[index]),
        )


def ucr_decomposition_space(
    model: HybridProgramModel,
    space: ConfigSpace | Sequence[Configuration],
    class_name: str | None = None,
) -> UCRSpaceDecomposition:
    """Decompose every configuration of a space in one vectorized pass.

    Equivalent to running :func:`ucr_decomposition` over each prediction of
    ``evaluate_space(model, space, class_name)``, but the space evaluation
    comes from the vectorized engine's LRU cache and the single-thread
    data-dependency estimate broadcasts over the whole space at once.
    """
    evaluation = evaluate_space(model, space, class_name)
    vec = evaluation.vectorized
    assert vec is not None  # evaluate_space always routes vectorized
    cls = class_name or model.inputs.baseline_class
    scale = model.program.scale_factor(cls, model.inputs.baseline_class)

    # single-thread contention-free memory stalls at each frequency
    uniq_f, inv_f = np.unique(vec.frequencies_hz, return_inverse=True)
    single_mem = np.array(
        [model.inputs.artefacts(1, float(fv)).mem_stall_cycles for fv in uniq_f]
    )
    t_data_dep = single_mem[inv_f] * scale / (
        vec.nodes * vec.cores * vec.frequencies_hz
    )
    t_data_dep = np.minimum(t_data_dep, vec.t_mem_s)
    return UCRSpaceDecomposition(
        evaluation=evaluation,
        t_cpu_s=vec.t_cpu_s,
        t_data_dep_s=t_data_dep,
        t_mem_contention_s=vec.t_mem_s - t_data_dep,
        t_net_contention_s=vec.t_net_s,
    )


def ucr_upper_bound(
    model: HybridProgramModel, class_name: str | None = None
) -> Prediction:
    """The program's UCR upper bound: the (1, 1, f_min) prediction."""
    fmin = min(k[1] for k in model.inputs.baseline.keys())
    return model.predict(
        Configuration(nodes=1, cores=1, frequency_hz=fmin), class_name
    )


def stream_ucr_best(
    model: HybridProgramModel,
    space: ConfigSpace | Sequence[Configuration],
    class_name: str | None = None,
    *,
    k: int = 1,
    max_block_bytes: int | None = None,
) -> list[tuple[Prediction, UCRDecomposition]]:
    """The ``k`` highest-UCR configurations of a huge space, O(block) memory.

    Streams the space through :func:`repro.core.planner.stream_topk`
    (objective ``max_ucr``; ties go to the earliest configuration in
    canonical order, exactly like ``np.argmax`` over the materialized
    ``ucrs`` array) and decomposes only the winners through
    :func:`ucr_decomposition`.  Returns ``(prediction, decomposition)``
    pairs in rank order.
    """
    from repro.core import planner

    kwargs = {} if max_block_bytes is None else {
        "max_block_bytes": max_block_bytes
    }
    selection = planner.stream_topk(
        model, space, k, objective="max_ucr", class_name=class_name, **kwargs
    )
    return [
        (pred, ucr_decomposition(model, pred))
        for pred in selection.predictions()
    ]
