"""Scalability analysis on top of the model (Amdahl-family diagnostics).

The paper's related work leans on the Amdahl-law lineage (Hill & Marty,
Woo & Lee's energy extension); this module derives those classic
diagnostics from model predictions so users can read a program's scaling
behaviour the way the 1988-2008 literature taught:

* **strong scaling** — speedup/efficiency vs node count at fixed input;
* **weak scaling** — time vs node count with the input grown
  proportionally (Gustafson's regime), synthesizing scaled input classes;
* **Amdahl fit** — the apparent serial fraction that best explains the
  strong-scaling curve;
* **Karp-Flatt metric** — the experimentally determined serial fraction
  per point; a *rising* Karp-Flatt curve diagnoses overhead growth
  (communication/contention) rather than a fixed serial bottleneck, which
  is precisely the regime the paper's queueing terms model.

Energy-wise the same sweep exposes Woo-Lee behaviour: energy per unit
work vs parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from repro import obs
from repro.core.model import HybridProgramModel
from repro.machines.spec import Configuration
from repro.workloads.base import InputClass


@dataclass(frozen=True)
class ScalingPoint:
    """One point of a scaling sweep."""

    nodes: int
    time_s: float
    energy_j: float
    speedup: float
    efficiency: float


def strong_scaling(
    model: HybridProgramModel,
    node_counts: Sequence[int],
    cores: int,
    frequency_hz: float,
    class_name: str | None = None,
) -> list[ScalingPoint]:
    """Fixed-size speedup sweep over node counts (baseline: fewest nodes)."""
    counts = sorted(set(int(n) for n in node_counts))
    if not counts:
        raise ValueError("need at least one node count")
    with obs.span("strong_scaling", program=model.program.name, points=len(counts)):
        preds = [
            model.predict(Configuration(n, cores, frequency_hz), class_name)
            for n in counts
        ]
        t_base = preds[0].time_s * counts[0]  # normalize to 1-node-equivalent
        return [
            ScalingPoint(
                nodes=n,
                time_s=p.time_s,
                energy_j=p.energy_j,
                speedup=t_base / p.time_s,
                efficiency=t_base / (p.time_s * n),
            )
            for n, p in zip(counts, preds)
        ]


def weak_scaling(
    model: HybridProgramModel,
    node_counts: Sequence[int],
    cores: int,
    frequency_hz: float,
    base_class: str | None = None,
) -> list[ScalingPoint]:
    """Gustafson sweep: the input grows proportionally with the node count.

    Synthesizes input classes ``size_factor(n) = size_factor(base) * n``;
    perfect weak scaling keeps time flat, so ``efficiency`` here is
    ``T(smallest) / T(n)``.
    """
    counts = sorted(set(int(n) for n in node_counts))
    if not counts:
        raise ValueError("need at least one node count")
    cls = base_class or model.program.reference_class
    base = model.program.input_class(cls)

    points = []
    t_first = None
    with obs.span("weak_scaling", program=model.program.name, points=len(counts)):
        for n in counts:
            scaled_name = f"__weak_{n}"
            scaled = InputClass(
                name=scaled_name,
                iterations=base.iterations,
                size_factor=base.size_factor * n,
            )
            grown = replace(
                model, program=model.program.with_classes(**{scaled_name: scaled})
            )
            pred = grown.predict(Configuration(n, cores, frequency_hz), scaled_name)
            if t_first is None:
                t_first = pred.time_s
            points.append(
                ScalingPoint(
                    nodes=n,
                    time_s=pred.time_s,
                    energy_j=pred.energy_j,
                    speedup=n * t_first / pred.time_s,
                    efficiency=t_first / pred.time_s,
                )
            )
        return points


def fit_amdahl(points: Sequence[ScalingPoint]) -> float:
    """Least-squares serial fraction explaining a strong-scaling curve.

    Fits ``1/speedup = s + (1 - s)/n`` over the sweep; returns ``s``
    clipped into [0, 1].
    """
    if len(points) < 2:
        raise ValueError("need at least two scaling points")
    n = np.array([p.nodes for p in points], dtype=np.float64)
    inv_speedup = 1.0 / np.array([p.speedup for p in points])
    # 1/S = s*(1 - 1/n) + 1/n  ->  regress (1/S - 1/n) on (1 - 1/n)
    x = 1.0 - 1.0 / n
    y = inv_speedup - 1.0 / n
    mask = x > 0
    if not mask.any():
        return 0.0
    s = float(np.sum(x[mask] * y[mask]) / np.sum(x[mask] * x[mask]))
    return float(np.clip(s, 0.0, 1.0))


def karp_flatt(points: Sequence[ScalingPoint]) -> list[float]:
    """Per-point experimentally determined serial fraction.

    ``e(n) = (1/S - 1/n) / (1 - 1/n)`` for n > 1.  A flat curve means a
    genuine serial bottleneck; a rising curve means growing parallel
    overhead (contention, communication).
    """
    values = []
    for p in points:
        if p.nodes <= 1:
            continue
        values.append(
            float(
                (1.0 / p.speedup - 1.0 / p.nodes) / (1.0 - 1.0 / p.nodes)
            )
        )
    return values


def energy_optimal_parallelism(points: Sequence[ScalingPoint]) -> ScalingPoint:
    """The sweep point with minimum energy (the Woo-Lee question: how much
    parallelism minimizes joules, not seconds)."""
    if not points:
        raise ValueError("empty sweep")
    return min(points, key=lambda p: p.energy_j)
