"""Batch planning: energy-minimal configurations for a queue of jobs.

The paper's deadline framing comes from shared-cluster reality ("their
execution times are constrained due to sharing of cluster resources",
§I footnote).  This module closes that loop: given a queue of jobs —
each a (program, input class, deadline) — and the cluster's node count,
plan per-job configurations and a schedule that

* meets every deadline (wall-clock, from submission at t = 0),
* never over-subscribes the cluster's nodes,
* and spends as little total energy as the greedy planner can find.

The planner is deliberately simple and fully deterministic: jobs are
taken in EDF order (earliest deadline first); each job picks the
minimum-energy configuration that still meets its deadline given the
machine time already committed, preferring fewer nodes on ties so jobs
can run side by side.  It is a planning heuristic, not an optimal solver
— the tests pin its *guarantees* (feasibility, capacity) rather than
optimality.
"""

from __future__ import annotations

import pathlib
import re
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro import obs
from repro.core.configspace import ConfigSpace, evaluate_space
from repro.core.model import HybridProgramModel, Prediction


@dataclass(frozen=True)
class Job:
    """One queue entry."""

    name: str
    model: HybridProgramModel
    deadline_s: float
    class_name: str | None = None

    def __post_init__(self) -> None:
        if self.deadline_s <= 0:
            raise ValueError(f"job {self.name!r} needs a positive deadline")


@dataclass(frozen=True)
class PlacedJob:
    """A planned job: its configuration and time window."""

    job: Job
    prediction: Prediction
    start_s: float

    @property
    def end_s(self) -> float:
        """Completion time."""
        return self.start_s + self.prediction.time_s

    @property
    def meets_deadline(self) -> bool:
        """True when the window respects the job's deadline."""
        return self.end_s <= self.job.deadline_s + 1e-9


@dataclass(frozen=True)
class BatchPlan:
    """The planner's output."""

    placements: tuple[PlacedJob, ...]
    total_nodes: int

    @property
    def total_energy_j(self) -> float:
        """Summed predicted energy of all jobs."""
        return sum(p.prediction.energy_j for p in self.placements)

    @property
    def makespan_s(self) -> float:
        """Completion time of the last job."""
        return max((p.end_s for p in self.placements), default=0.0)

    @property
    def feasible(self) -> bool:
        """True when every job meets its deadline."""
        return all(p.meets_deadline for p in self.placements)


def _earliest_start(
    placements: list[PlacedJob], nodes_needed: int, total_nodes: int, runtime: float
) -> float:
    """Earliest time at which ``nodes_needed`` nodes are free for
    ``runtime`` seconds, given committed placements.

    Scans event times (starts/ends) as candidate start points and checks
    peak concurrent usage over the candidate window.
    """
    candidates = sorted({0.0, *(p.end_s for p in placements)})
    for t0 in candidates:
        window_end = t0 + runtime
        peak = nodes_needed
        ok = True
        for p in placements:
            if p.start_s < window_end and p.end_s > t0:
                peak += p.prediction.config.nodes
                if peak > total_nodes:
                    ok = False
                    break
        if ok:
            return t0
    # after everything drains
    return max((p.end_s for p in placements), default=0.0)


def plan_batch(
    jobs: Sequence[Job],
    total_nodes: int,
    checkpoint_dir: str | pathlib.Path | None = None,
) -> BatchPlan:
    """Plan a queue of jobs (EDF + min-energy configuration per job).

    With ``checkpoint_dir``, each job's configuration-space evaluation is
    checkpointed into ``<dir>/job-<name>.json`` so an interrupted planning
    run resumes without re-evaluating completed jobs' spaces.

    Raises :class:`ValueError` when some job cannot meet its deadline even
    with the whole machine to itself.
    """
    if total_nodes < 1:
        raise ValueError("the cluster needs at least one node")
    if not obs.active():
        return _plan(jobs, total_nodes, checkpoint_dir)
    with obs.span("batch_plan", jobs=len(jobs), total_nodes=total_nodes) as sp:
        plan = _plan(jobs, total_nodes, checkpoint_dir)
        sp.set(
            makespan_s=plan.makespan_s, total_energy_j=plan.total_energy_j
        )
    if obs.metrics_enabled():
        obs.add("batch.jobs_planned", len(plan.placements))
    return plan


def _plan(
    jobs: Sequence[Job],
    total_nodes: int,
    checkpoint_dir: str | pathlib.Path | None = None,
) -> BatchPlan:
    if checkpoint_dir is not None:
        checkpoint_dir = pathlib.Path(checkpoint_dir)
        checkpoint_dir.mkdir(parents=True, exist_ok=True)
    ordered = sorted(jobs, key=lambda j: j.deadline_s)
    placements: list[PlacedJob] = []
    for job in ordered:
        spec_nodes = min(total_nodes, 8)  # model spaces top out at the spec
        space = ConfigSpace(
            node_counts=tuple(range(1, spec_nodes + 1)),
            core_counts=tuple(range(1, _cores_of(job.model) + 1)),
            frequencies_hz=_frequencies_of(job.model),
        )
        if checkpoint_dir is not None:
            from repro.resilience.pipeline import evaluate_space_checkpointed

            slug = re.sub(r"[^A-Za-z0-9_.-]+", "_", job.name)
            evaluation = evaluate_space_checkpointed(
                job.model,
                space,
                job.class_name,
                checkpoint_path=checkpoint_dir / f"job-{slug}.json",
            )
        else:
            # vectorized + LRU-cached: a queue of same-model jobs evaluates
            # its space once and replans from the cached arrays
            evaluation = evaluate_space(job.model, space, job.class_name)
        best: PlacedJob | None = None
        for idx in np.argsort(evaluation.energies_j, kind="stable"):
            pred = evaluation.predictions[int(idx)]
            start = _earliest_start(
                placements, pred.config.nodes, total_nodes, pred.time_s
            )
            candidate = PlacedJob(job=job, prediction=pred, start_s=start)
            if candidate.meets_deadline:
                best = candidate
                break
        if best is None:
            raise ValueError(
                f"job {job.name!r} cannot meet its {job.deadline_s}s deadline"
            )
        placements.append(best)
    return BatchPlan(placements=tuple(placements), total_nodes=total_nodes)


def _cores_of(model: HybridProgramModel) -> int:
    return max(key[0] for key in model.inputs.baseline)


def _frequencies_of(model: HybridProgramModel) -> tuple[float, ...]:
    return tuple(sorted({key[1] for key in model.inputs.baseline}))
