"""The paper's contribution: measurement-driven time-energy modeling.

Public surface:

* :func:`characterize` / :class:`ModelInputs` — run the measurement
  campaigns (baseline counters, mpiP, NetPIPE, power micro-benchmarks)
  and assemble the model inputs (paper §III-E).
* :class:`HybridProgramModel` — predict execution time, energy and UCR for
  any (n, c, f) configuration (paper §III-C/D, Eqs. 1-13).
* :class:`ConfigSpace` / :func:`evaluate_space` — enumerate and evaluate
  configuration spaces.
* :func:`pareto_frontier` and the optimizer queries — time-energy
  Pareto-optimal configurations under deadlines and energy budgets
  (paper §V-A).
* :mod:`repro.core.ucr` — the Useful Computation Ratio metric and its
  decomposition (paper §V-B, Eqs. 13-14).
* :mod:`repro.core.whatif` — resource-scaling what-if analysis (e.g. the
  paper's memory-bandwidth-doubling study).
"""

from repro.core.params import BaselineArtefacts, CommCharacteristics, ModelInputs
from repro.core.inputs import characterize, fit_comm_model
from repro.core.time_model import TimeBreakdown, predict_time
from repro.core.energy_model import EnergyBreakdown, predict_energy
from repro.core.model import HybridProgramModel, Prediction
from repro.core.configspace import ConfigSpace, SpaceEvaluation, evaluate_space
from repro.core.vectorized import (
    CacheInfo,
    VectorizedEvaluation,
    clear_evaluation_cache,
    evaluate_configs,
    evaluation_cache_info,
)
from repro.core.pareto import ParetoPoint, pareto_frontier
from repro.core.optimizer import (
    min_energy_within_deadline,
    min_time_within_budget,
)
from repro.core.ucr import (
    UCRSpaceDecomposition,
    ucr_decomposition,
    ucr_decomposition_space,
)
from repro.core.whatif import SpaceDelta, WhatIf
from repro.core.dvfs import (
    DvfsAdvice,
    advise_stall_dvfs,
    decompose_stalls,
    predict_with_stall_dvfs,
)
from repro.core.roofline import (
    Roofline,
    node_energy_roofline,
    node_roofline,
    place_workload,
)
from repro.core.scaling import (
    ScalingPoint,
    energy_optimal_parallelism,
    fit_amdahl,
    karp_flatt,
    strong_scaling,
    weak_scaling,
)
from repro.core.search import (
    SearchStats,
    search_min_energy_within_deadline,
    search_min_time_within_budget,
)
from repro.core.calibrate import CalibratedModel, TermCorrections, calibrate
from repro.core.metrics import edp, ed2p, edp_optimal, throughput_per_watt
from repro.core.batch import BatchPlan, Job, PlacedJob, plan_batch
from repro.core.cache import ResultCache
from repro.core.parallel import ExecutionPlan, parallel_plan

__all__ = [
    "BaselineArtefacts",
    "CommCharacteristics",
    "ModelInputs",
    "characterize",
    "fit_comm_model",
    "TimeBreakdown",
    "predict_time",
    "EnergyBreakdown",
    "predict_energy",
    "HybridProgramModel",
    "Prediction",
    "ConfigSpace",
    "SpaceEvaluation",
    "evaluate_space",
    "CacheInfo",
    "VectorizedEvaluation",
    "evaluate_configs",
    "evaluation_cache_info",
    "clear_evaluation_cache",
    "ParetoPoint",
    "pareto_frontier",
    "min_energy_within_deadline",
    "min_time_within_budget",
    "ucr_decomposition",
    "ucr_decomposition_space",
    "UCRSpaceDecomposition",
    "SpaceDelta",
    "WhatIf",
    "DvfsAdvice",
    "advise_stall_dvfs",
    "decompose_stalls",
    "predict_with_stall_dvfs",
    "Roofline",
    "node_roofline",
    "node_energy_roofline",
    "place_workload",
    "ScalingPoint",
    "strong_scaling",
    "weak_scaling",
    "fit_amdahl",
    "karp_flatt",
    "energy_optimal_parallelism",
    "SearchStats",
    "search_min_energy_within_deadline",
    "search_min_time_within_budget",
    "CalibratedModel",
    "TermCorrections",
    "calibrate",
    "edp",
    "ed2p",
    "edp_optimal",
    "throughput_per_watt",
    "Job",
    "PlacedJob",
    "BatchPlan",
    "plan_batch",
    "ResultCache",
    "ExecutionPlan",
    "parallel_plan",
]
