"""Energy model (paper §III-D, Eqs. 8-12).

    E = (E_CPU + E_mem + E_net + E_idle) * n                         (8)
    E_CPU  = (P_core,act·T_CPU + P_core,stall·T_mem) * c             (9)
    E_mem  = P_mem · T_mem                                          (10)
    E_net  = P_net · (T_w,net + T_s,net)                            (11)
    E_idle = P_sys,idle · T                                         (12)

Power parameters come from the *characterized* power table (micro-benchmark
measurements with wall-meter error), never from the machine's true power
model — keeping the model honest about the paper's §IV-C power-accuracy
error source.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.time_model import TimeBreakdown
from repro.machines.power import PowerTable


@dataclass(frozen=True)
class EnergyBreakdown:
    """Predicted per-run energy components in joules (cluster totals)."""

    cpu_j: float
    mem_j: float
    net_j: float
    idle_j: float

    @property
    def total_j(self) -> float:
        """Predicted total energy ``E`` (Eq. 8)."""
        return self.cpu_j + self.mem_j + self.net_j + self.idle_j

    @property
    def total_kj(self) -> float:
        """Total in kJ (the paper's reporting unit)."""
        return self.total_j / 1e3


def predict_energy(
    power: PowerTable,
    time: TimeBreakdown,
    nodes: int,
    cores: int,
    frequency_hz: float,
) -> EnergyBreakdown:
    """Predict the energy of a run from its time breakdown (Eqs. 8-12)."""
    p_act = power.active(cores, frequency_hz)
    p_stall = power.stall(cores, frequency_hz)

    e_cpu = (p_act * time.t_cpu_s + p_stall * time.t_mem_s) * cores
    e_mem = power.mem_w * time.t_mem_s
    e_net = power.net_w * time.t_net_s
    e_idle = power.sys_idle_w * time.total_s

    return EnergyBreakdown(
        cpu_j=e_cpu * nodes,
        mem_j=e_mem * nodes,
        net_j=e_net * nodes,
        idle_j=e_idle * nodes,
    )
