"""Vectorized configuration-space evaluation engine (beyond-paper scalability).

The paper's Pareto analyses (Figs. 8-11) and the UCR search sweep hundreds
of ``(n, c, f)`` points; batch planning and what-if studies re-sweep the
same spaces repeatedly.  Walking those spaces one
:meth:`~repro.core.model.HybridProgramModel.predict` call at a time costs
a Python-level fixed-point loop per configuration.  This module computes
the full time model (Eqs. 1-7) and energy model (Eqs. 8-12) over an entire
space as NumPy array operations, broadcasting over the ``(n, c, f)`` axes
in one shot, plus an LRU-cached space-evaluation layer keyed on
``(model parameters, space)`` so repeated sweeps reuse results.

Two properties are deliberately preserved:

* **The scalar model stays the reference implementation.**  Every
  elementwise operation below mirrors :func:`repro.core.time_model.predict_time`
  and :func:`repro.core.energy_model.predict_energy` in the same order, and
  the per-``(c, f)`` / per-``n`` table lookups call the *same* scalar
  functions (``ModelInputs.artefacts``, ``PowerTable.active``,
  ``CommCharacteristics.eta`` …), so the vectorized results agree with the
  scalar path to within floating-point determinism (the test suite pins
  1e-9 relative tolerance via a hypothesis equivalence test).
* **The Eq. 5 fixed point is iterated lane-wise.**  Each configuration's
  damped iteration sequence is identical to the scalar loop; converged
  lanes are frozen while the rest keep iterating.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from functools import cached_property
from typing import Iterable, Mapping, NamedTuple

import numpy as np

from repro import obs
from repro.core.energy_model import EnergyBreakdown
from repro.core.model import HybridProgramModel, Prediction
from repro.core.time_model import (
    _BURST_FLOOR,
    _DAMPING,
    _FIXPOINT_TOL,
    _MAX_FIXPOINT_ITER,
    TimeBreakdown,
)
from repro.machines.spec import Configuration
from repro.mg1 import RHO_MAX, exponential_second_moment, mg1_mean_wait, mg1_utilization


def _is_grid(space: object) -> bool:
    """Duck-typed check for :class:`~repro.core.configspace.ConfigSpace`
    (imported structurally to avoid a circular import)."""
    return (
        hasattr(space, "node_counts")
        and hasattr(space, "core_counts")
        and hasattr(space, "frequencies_hz")
    )


@dataclass(frozen=True)
class VectorizedEvaluation:
    """Model predictions over a whole space as flat, aligned arrays.

    Arrays are ordered exactly like ``ConfigSpace`` iteration (cartesian
    product, node-major) or like the explicit configuration sequence that
    produced them.  All arrays are read-only: evaluations are shared
    through the LRU cache.
    """

    class_name: str
    space: object  # ConfigSpace or tuple[Configuration, ...]
    nodes: np.ndarray
    cores: np.ndarray
    frequencies_hz: np.ndarray
    t_cpu_s: np.ndarray
    t_mem_s: np.ndarray
    t_net_service_s: np.ndarray
    t_net_wait_s: np.ndarray
    utilization_baseline: np.ndarray
    rho_network: np.ndarray
    saturated: np.ndarray
    cpu_j: np.ndarray
    mem_j: np.ndarray
    net_j: np.ndarray
    idle_j: np.ndarray
    times_s: np.ndarray
    energies_j: np.ndarray
    ucrs: np.ndarray

    def __len__(self) -> int:
        return int(self.times_s.shape[0])

    @property
    def t_net_s(self) -> np.ndarray:
        """Total network time ``T_w,net + T_s,net`` per configuration."""
        return self.t_net_service_s + self.t_net_wait_s

    @cached_property
    def configs(self) -> tuple[Configuration, ...]:
        """The configurations, aligned with the arrays.

        ``space`` is ``None`` for evaluations rehydrated from the
        persistent disk cache (:mod:`repro.core.cache`); the
        configurations are then rebuilt from the aligned arrays.
        """
        if self.space is None:
            return tuple(
                Configuration(
                    nodes=int(n), cores=int(c), frequency_hz=float(f)
                )
                for n, c, f in zip(self.nodes, self.cores, self.frequencies_hz)
            )
        if isinstance(self.space, tuple):
            return self.space
        return tuple(self.space)

    @cached_property
    def labels(self) -> list[str]:
        """Paper-style (n,c,f) labels."""
        return [cfg.label() for cfg in self.configs]

    def prediction(self, i: int) -> Prediction:
        """Materialize the scalar-API :class:`Prediction` for one point."""
        time = TimeBreakdown(
            t_cpu_s=float(self.t_cpu_s[i]),
            t_mem_s=float(self.t_mem_s[i]),
            t_net_service_s=float(self.t_net_service_s[i]),
            t_net_wait_s=float(self.t_net_wait_s[i]),
            utilization_baseline=float(self.utilization_baseline[i]),
            rho_network=float(self.rho_network[i]),
            saturated=bool(self.saturated[i]),
        )
        energy = EnergyBreakdown(
            cpu_j=float(self.cpu_j[i]),
            mem_j=float(self.mem_j[i]),
            net_j=float(self.net_j[i]),
            idle_j=float(self.idle_j[i]),
        )
        return Prediction(
            config=self.configs[i],
            class_name=self.class_name,
            time=time,
            energy=energy,
        )

    @cached_property
    def predictions(self) -> tuple[Prediction, ...]:
        """All predictions materialized (built once, then cached)."""
        return tuple(self.prediction(i) for i in range(len(self)))


# ----------------------------------------------------------------------
# LRU-cached space-evaluation layer
# ----------------------------------------------------------------------

class CacheInfo(NamedTuple):
    """Cache statistics, mirroring :func:`functools.lru_cache` (plus the
    eviction count the obs layer also tracks)."""

    hits: int
    misses: int
    maxsize: int
    currsize: int
    evictions: int = 0


_MISSING = object()


class _LRUCache:
    """A small explicit LRU (model fingerprints are not lru_cache-able).

    All dict mutation and the ``hits``/``misses``/``evictions`` stats are
    guarded by a lock: `repro serve` calls into the engine from worker
    threads, so ``get``/``put`` race once requests run concurrently.
    Hit/miss/eviction events are mirrored into the observability layer
    (``vectorized.cache.*`` counters, reported outside the lock) whenever
    metrics are enabled.
    """

    def __init__(self, maxsize: int) -> None:
        self.maxsize = maxsize
        self._data: OrderedDict[object, VectorizedEvaluation] = (
            OrderedDict()
        )  # guarded-by: _lock
        self._lock = threading.Lock()
        self.hits = 0  # guarded-by: _lock
        self.misses = 0  # guarded-by: _lock
        self.evictions = 0  # guarded-by: _lock

    def get(self, key: object) -> VectorizedEvaluation | None:
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
            else:
                self._data.move_to_end(key)
                self.hits += 1
        if value is _MISSING:
            obs.add("vectorized.cache.misses")
            return None
        obs.add("vectorized.cache.hits")
        return value  # type: ignore[return-value]

    def put(self, key: object, value: VectorizedEvaluation) -> None:
        evicted = 0
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1
                evicted += 1
        for _ in range(evicted):
            obs.add("vectorized.cache.evictions")

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def info(self) -> CacheInfo:
        with self._lock:
            return CacheInfo(
                self.hits, self.misses, self.maxsize, len(self._data),
                self.evictions,
            )


_EVALUATION_CACHE = _LRUCache(maxsize=64)


def evaluation_cache_info() -> CacheInfo:
    """Statistics of the space-evaluation LRU cache."""
    return _EVALUATION_CACHE.info()


def clear_evaluation_cache() -> None:
    """Drop all cached space evaluations (tests, memory pressure)."""
    _EVALUATION_CACHE.clear()


def _freeze(mapping: Mapping) -> tuple:
    return tuple(sorted(mapping.items()))


def model_fingerprint(model: HybridProgramModel) -> tuple:
    """A hashable digest of everything a prediction depends on.

    Covers the program's input-class table (scale factors / iterations)
    and every :class:`~repro.core.params.ModelInputs` field, so what-if
    variants and recalibrated models never collide in the cache.
    """
    prog = model.program
    inputs = model.inputs
    classes = tuple(
        sorted((n, ic.iterations, ic.size_factor) for n, ic in prog.classes.items())
    )
    power = inputs.power
    return (
        prog.name,
        prog.reference_class,
        classes,
        inputs.baseline_class,
        inputs.baseline_iterations,
        _freeze(inputs.baseline),
        inputs.comm,
        inputs.network,
        _freeze(power.core_active_w),
        _freeze(power.core_stall_w),
        power.mem_w,
        power.net_w,
        power.sys_idle_w,
    )


def _space_key(space: object) -> tuple:
    if _is_grid(space):
        return (
            "grid",
            space.node_counts,
            space.core_counts,
            space.frequencies_hz,
        )
    return ("configs", tuple(space))


def cache_key(
    model: HybridProgramModel,
    space: object,
    class_name: str | None,
    queueing: str,
    service_overlap: bool,
) -> tuple:
    """The LRU key: (model params, space, evaluation options)."""
    cls = class_name or model.inputs.baseline_class
    return (
        model_fingerprint(model),
        _space_key(space),
        cls,
        queueing,
        service_overlap,
    )


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------

def _readonly(a: np.ndarray) -> np.ndarray:
    a.setflags(write=False)
    return a


def _flat(a: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Materialize a broadcastable array as a flat contiguous copy."""
    return np.ascontiguousarray(np.broadcast_to(a, shape)).reshape(-1)


def evaluate_configs(
    model: HybridProgramModel,
    space: object,
    class_name: str | None = None,
    *,
    queueing: str = "bracketed",
    service_overlap: bool = True,
    use_cache: bool = True,
) -> VectorizedEvaluation:
    """Predict every configuration of a space in one broadcast pass.

    ``space`` is a :class:`~repro.core.configspace.ConfigSpace` or any
    sequence of :class:`Configuration`.  ``queueing`` and
    ``service_overlap`` select the same time-model variants as
    :func:`repro.core.time_model.predict_time`.  With ``use_cache`` the
    result is served from / stored into the module LRU, keyed on
    ``(model params, space, options)``.
    """
    if queueing not in ("bracketed", "mg1", "none"):
        raise ValueError(f"unknown queueing variant {queueing!r}")
    if not obs.active():
        return _evaluate(
            model, space, class_name, queueing, service_overlap, use_cache
        )
    t_start = time.perf_counter()
    with obs.span("evaluate_space", queueing=queueing) as sp:
        result = _evaluate(
            model, space, class_name, queueing, service_overlap, use_cache
        )
        sp.set(configs=len(result), class_name=result.class_name)
    obs.observe("vectorized.evaluate_seconds", time.perf_counter() - t_start)
    return result


def _evaluate(
    model: HybridProgramModel,
    space: object,
    class_name: str | None,
    queueing: str,
    service_overlap: bool,
    use_cache: bool,
    instrument: bool = True,
) -> VectorizedEvaluation:
    if not _is_grid(space) and not isinstance(space, tuple):
        space = tuple(space)
    key = (
        cache_key(model, space, class_name, queueing, service_overlap)
        if use_cache
        else None
    )
    # The planner is the single dispatch point: with no active
    # PlannerConfig it reproduces the legacy routing exactly (ambient
    # ExecutionPlan -> sharded engine + disk cache, else the broadcast
    # engine); with one, a cost-model decision picks the strategy.  The
    # import is deferred: repro.core.planner imports this module.
    from repro.core import planner as _planner

    if key is not None:
        cached = _EVALUATION_CACHE.get(key)
        if cached is not None:
            if instrument:
                _planner.record_selection("cached")
            return cached

    result = _planner.execute(
        model,
        space,
        class_name,
        queueing,
        service_overlap,
        cacheable=use_cache,
        instrument=instrument,
    )
    if key is not None:
        _EVALUATION_CACHE.put(key, result)
    return result


def _compute(
    model: HybridProgramModel,
    space: object,
    class_name: str | None,
    queueing: str,
    service_overlap: bool,
    instrument: bool = True,
) -> VectorizedEvaluation:
    """The single-process broadcast engine (no caches, no dispatch).

    This is the reference vectorized path: the ambient-plan dispatch in
    :func:`_evaluate` and every shard of the multiprocess engine
    (:mod:`repro.core.parallel`) call exactly this function, which is why
    sharded results are bit-identical to single-process ones.
    """
    inputs = model.inputs
    cls_name = class_name or inputs.baseline_class
    scale = model.program.scale_factor(cls_name, inputs.baseline_class)
    iterations = model.program.iterations(cls_name)
    if scale <= 0 or iterations < 1:
        raise ValueError("scale must be positive and iterations >= 1")
    size_ratio = scale * inputs.baseline_iterations / iterations

    # --- broadcastable (n, c, f) views and per-point parameter tables.
    # Parameter values come from the *same scalar lookups and power laws*
    # the reference model uses, called once per distinct value, so the
    # elementwise math below sees bit-identical operands.
    if _is_grid(space):
        # grid: three small axes broadcast to shape (N, C, F), no sorting
        n_ax = np.asarray(space.node_counts, dtype=np.float64)
        c_ax = np.asarray(space.core_counts, dtype=np.float64)
        f_ax = np.asarray(space.frequencies_hz, dtype=np.float64)
        shape = (n_ax.size, c_ax.size, f_ax.size)
        n = n_ax.reshape(-1, 1, 1)
        c = c_ax.reshape(1, -1, 1)
        f = f_ax.reshape(1, 1, -1)
        cf_pairs = [
            (i, j, int(c_ax[i]), float(f_ax[j]))
            for i in range(c_ax.size)
            for j in range(f_ax.size)
        ]
        useful = np.empty((1, c_ax.size, f_ax.size))
        mem = np.empty_like(useful)
        util = np.empty_like(useful)
        p_act = np.empty_like(useful)
        p_stall = np.empty_like(useful)
        for i, j, ci, fi in cf_pairs:
            art = inputs.artefacts(ci, fi)
            useful[0, i, j] = art.useful_cycles
            mem[0, i, j] = art.mem_stall_cycles
            util[0, i, j] = art.utilization
            p_act[0, i, j] = inputs.power.active(ci, fi)
            p_stall[0, i, j] = inputs.power.stall(ci, fi)
        node_values = [int(v) for v in n_ax]
        eta_total = np.array(
            [inputs.comm.eta(v) * iterations for v in node_values]
        ).reshape(-1, 1, 1)
        volume_total = np.array(
            [inputs.comm.volume(v) * size_ratio * iterations for v in node_values]
        ).reshape(-1, 1, 1)
        space_ref: object = space
    else:
        # explicit configuration list: deduplicate lookups via np.unique
        cfgs = tuple(space)
        shape = (len(cfgs),)
        n = np.array([cfg.nodes for cfg in cfgs], dtype=np.float64)
        c = np.array([cfg.cores for cfg in cfgs], dtype=np.float64)
        f = np.array([cfg.frequency_hz for cfg in cfgs], dtype=np.float64)
        cf = np.stack((c, f), axis=1) if n.size else np.empty((0, 2))
        uniq_cf, inv_cf = np.unique(cf, axis=0, return_inverse=True)
        inv_cf = inv_cf.reshape(-1)
        k = uniq_cf.shape[0]
        useful_u = np.empty(k)
        mem_u = np.empty(k)
        util_u = np.empty(k)
        p_act_u = np.empty(k)
        p_stall_u = np.empty(k)
        for i in range(k):
            ci, fi = int(uniq_cf[i, 0]), float(uniq_cf[i, 1])
            art = inputs.artefacts(ci, fi)
            useful_u[i] = art.useful_cycles
            mem_u[i] = art.mem_stall_cycles
            util_u[i] = art.utilization
            p_act_u[i] = inputs.power.active(ci, fi)
            p_stall_u[i] = inputs.power.stall(ci, fi)
        useful = useful_u[inv_cf]
        mem = mem_u[inv_cf]
        util = util_u[inv_cf]
        p_act = p_act_u[inv_cf]
        p_stall = p_stall_u[inv_cf]
        uniq_n, inv_n = np.unique(n, return_inverse=True)
        eta_u = np.array(
            [inputs.comm.eta(int(v)) * iterations for v in uniq_n]
        )
        vol_u = np.array(
            [inputs.comm.volume(int(v)) * size_ratio * iterations for v in uniq_n]
        )
        eta_total = eta_u[inv_n]
        volume_total = vol_u[inv_n]
        space_ref = cfgs

    if n.size and (n.min() < 1 or c.min() < 1):
        raise ValueError("need nodes >= 1 and cores >= 1")

    # Eqs. 2-4 and Eq. 7: per-core cycles split across n nodes
    t_cpu = useful * scale / (n * f)
    t_mem = mem * scale / (n * f)

    # communication characteristics (single-node lanes carry zeros)
    nu = np.divide(
        volume_total, eta_total, out=np.zeros_like(volume_total), where=eta_total > 0
    )
    bandwidth = inputs.network.bandwidth_bytes_per_s
    overhead = inputs.network.latency_floor_s
    multi = n > 1
    if bandwidth <= 0 and bool(np.any(np.broadcast_to(multi, shape))):
        raise ValueError("network bandwidth must be positive for nodes > 1")

    # Eq. 6: non-overlapped network service time (zero on a single node).
    # The overlap slack is clamped at zero exactly like the scalar path.
    wire_time = eta_total * overhead + (
        volume_total / bandwidth if bandwidth > 0 else np.zeros_like(volume_total)
    )
    slack = np.maximum(0.0, 1.0 - util)
    if service_overlap:
        t_net_service = np.maximum(slack * t_cpu, wire_time)
    else:
        t_net_service = slack * t_cpu + wire_time
    t_net_service = np.where(multi, t_net_service, 0.0)

    # Eq. 5: switch waiting time via the damped fixed point, lane-wise,
    # through the shared P-K helper (repro.mg1) with the exponential
    # second moment — the same call the scalar model makes.  Each lane
    # follows exactly the scalar iteration sequence; converged lanes
    # freeze while the rest keep iterating.
    y_mean = (
        nu / bandwidth if bandwidth > 0 else np.zeros_like(nu)
    )
    y_m2 = exponential_second_moment(y_mean)
    drain_bound = eta_total * y_mean
    burst_floor = np.where(n > 2, _BURST_FLOOR * drain_bound, 0.0)

    t_base = t_cpu + t_mem + t_net_service
    wait = np.zeros(shape)
    rho_out = np.zeros(shape)
    saturated = np.zeros(shape, dtype=bool)
    iters = 0
    if queueing != "none" and bool(multi.any()):
        total = np.broadcast_to(t_base, shape).copy()
        done = np.broadcast_to(~multi, shape).copy()
        for iters in range(1, _MAX_FIXPOINT_ITER + 1):
            if bool(done.all()):
                break
            active = ~done
            lam = eta_total / total
            rho_raw = mg1_utilization(lam, y_mean)
            rho = np.minimum(rho_raw, RHO_MAX)
            new_wait = eta_total * mg1_mean_wait(
                lam, y_mean, y_m2, rho_max=RHO_MAX
            )
            if queueing == "bracketed":
                new_wait = np.minimum(
                    np.maximum(new_wait, burst_floor), drain_bound
                )
            new_total = t_base + new_wait
            conv = np.abs(new_total - total) <= _FIXPOINT_TOL * total
            damped = _DAMPING * new_wait + (1.0 - _DAMPING) * wait
            rho_out = np.where(active, rho, rho_out)
            # any-iteration semantics, matching the scalar flag: the clamp
            # engaging anywhere along the lane's fixed point marks it
            saturated = saturated | (active & (rho_raw >= RHO_MAX))
            wait = np.where(active, np.where(conv, new_wait, damped), wait)
            total = np.where(
                active, np.where(conv, new_total, t_base + damped), total
            )
            done = done | conv
    if instrument and obs.metrics_enabled():
        lanes = int(np.broadcast_to(multi, shape).sum())
        obs.add("vectorized.fixpoint_iterations", iters)
        obs.add("vectorized.lanes", int(np.prod(shape)))
        obs.add("vectorized.multi_node_lanes", lanes)
        obs.add("vectorized.saturated_lanes", int(saturated.sum()))
        if queueing == "bracketed" and lanes:
            # one post-hoc pass: lanes whose final wait sits on a bracket
            # edge were clamped away from the raw M/G/1 estimate
            on_edge = np.broadcast_to(multi, shape) & (
                (wait <= np.broadcast_to(burst_floor, shape))
                | (wait >= np.broadcast_to(drain_bound, shape))
            )
            obs.add(
                "vectorized.fixpoint_bracket_clamped_lanes",
                int(np.count_nonzero(on_edge & (wait > 0))),
            )

    # totals, associated exactly like TimeBreakdown.total_s
    t_net = t_net_service + wait
    times = t_cpu + t_mem + t_net
    ucrs = np.divide(t_cpu, times, out=np.zeros(shape), where=times > 0)

    # Eqs. 8-12
    power = inputs.power
    cpu_j = (p_act * t_cpu + p_stall * t_mem) * c * n
    mem_j = power.mem_w * t_mem * n
    net_j = power.net_w * t_net * n
    idle_j = power.sys_idle_w * times * n
    energies = cpu_j + mem_j + net_j + idle_j

    result = VectorizedEvaluation(
        class_name=cls_name,
        space=space_ref,
        nodes=_readonly(_flat(n, shape)),
        cores=_readonly(_flat(c, shape)),
        frequencies_hz=_readonly(_flat(f, shape)),
        t_cpu_s=_readonly(_flat(t_cpu, shape)),
        t_mem_s=_readonly(_flat(t_mem, shape)),
        t_net_service_s=_readonly(_flat(t_net_service, shape)),
        t_net_wait_s=_readonly(_flat(wait, shape)),
        utilization_baseline=_readonly(_flat(util, shape)),
        rho_network=_readonly(_flat(rho_out, shape)),
        saturated=_readonly(_flat(saturated, shape)),
        cpu_j=_readonly(_flat(cpu_j, shape)),
        mem_j=_readonly(_flat(mem_j, shape)),
        net_j=_readonly(_flat(net_j, shape)),
        idle_j=_readonly(_flat(idle_j, shape)),
        times_s=_readonly(_flat(times, shape)),
        energies_j=_readonly(_flat(energies, shape)),
        ucrs=_readonly(_flat(ucrs, shape)),
    )
    return result


def evaluate_many(
    model: HybridProgramModel,
    configs: Iterable[Configuration],
    class_name: str | None = None,
) -> VectorizedEvaluation:
    """Vectorized evaluation of an explicit configuration batch (uncached).

    Convenience for callers holding ad-hoc candidate lists (the pruned
    search, planners) where caching arbitrary subsets would only churn
    the LRU.  Deliberately *uninstrumented*: these callers invoke it from
    inner loops inside their own span (e.g. "search") and account the
    work through their own counters, so per-chunk spans and lane metrics
    would dominate both the trace and the < 2% overhead budget that
    ``benchmarks/bench_obs_overhead.py`` enforces.
    """
    return _evaluate(
        model, tuple(configs), class_name, "bracketed", True, False, instrument=False
    )
