"""Roofline bounds: the first-principles counterpart to the model.

The paper's related work (§II-A) contrasts its measurement-driven model
with roofline-style first-principles approaches (Williams et al., Choi et
al.'s energy roofline).  This module provides that complementary view on
the same machine descriptions:

* the **time roofline** — attainable instruction throughput at a node as
  ``min(compute peak, AI * memory bandwidth)`` over arithmetic intensity
  ``AI`` (abstract instructions per DRAM byte);
* the **energy roofline** — minimum energy per instruction as the larger
  of the compute and memory energy costs at a given AI;
* **workload placement** — where each program sits relative to the
  machine's balance point, and how close a measured/predicted execution
  comes to its bound.

Bounds use only machine specs (no baseline runs), so comparing them with
model predictions quantifies how much of the machine the contention and
overhead terms give away — an ablation bench does exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machines.spec import ClusterSpec
from repro.workloads.base import HybridProgram


@dataclass(frozen=True)
class Roofline:
    """Per-node roofline at one (c, f) operating point.

    ``compute_peak`` is abstract instructions/second; ``memory_bandwidth``
    is DRAM bytes/second; ``balance_ai`` the arithmetic intensity where the
    two roofs meet.
    """

    cores: int
    frequency_hz: float
    compute_peak: float
    memory_bandwidth: float

    @property
    def balance_ai(self) -> float:
        """The ridge point: AI where memory and compute roofs intersect."""
        return self.compute_peak / self.memory_bandwidth

    def attainable(self, ai: float | np.ndarray) -> float | np.ndarray:
        """Attainable abstract-instruction throughput at intensity ``ai``."""
        return np.minimum(self.compute_peak, np.asarray(ai) * self.memory_bandwidth)

    def bound(self, ai: float) -> str:
        """Which roof binds at intensity ``ai``."""
        return "memory" if ai < self.balance_ai else "compute"


def node_roofline(cluster: ClusterSpec, cores: int, frequency_hz: float) -> Roofline:
    """Build the per-node roofline from the machine spec alone."""
    core = cluster.node.core
    if cores < 1 or cores > cluster.node.max_cores:
        raise ValueError(f"cores must be in 1..{cluster.node.max_cores}")
    # peak abstract instruction rate: each core retires 1/base_cpi native
    # instructions per cycle, and native = abstract * instruction_scale
    per_core = frequency_hz / (core.base_cpi * core.instruction_scale)
    return Roofline(
        cores=cores,
        frequency_hz=frequency_hz,
        compute_peak=per_core * cores,
        memory_bandwidth=cluster.node.memory.bandwidth_bytes_per_s,
    )


@dataclass(frozen=True)
class EnergyRoofline:
    """Per-node energy-per-instruction floor at one (c, f) point.

    ``compute_j_per_instr`` is active-core energy per abstract instruction
    at peak throughput; ``memory_j_per_byte`` the DRAM energy per byte at
    full bandwidth.  The energy floor at intensity ``AI`` is
    ``compute_j_per_instr + memory_j_per_byte / AI`` plus the unavoidable
    idle-power tax at the *time* roofline.
    """

    roofline: Roofline
    compute_j_per_instr: float
    memory_j_per_byte: float
    idle_power_w: float

    def floor_j_per_instr(self, ai: float) -> float:
        """Minimum achievable energy per abstract instruction at ``ai``."""
        dynamic = self.compute_j_per_instr + self.memory_j_per_byte / ai
        idle_tax = self.idle_power_w / float(self.roofline.attainable(ai))
        return dynamic + idle_tax


def node_energy_roofline(
    cluster: ClusterSpec, cores: int, frequency_hz: float
) -> EnergyRoofline:
    """Build the energy roofline (Choi et al.-style) from the spec."""
    roof = node_roofline(cluster, cores, frequency_hz)
    power = cluster.node.power
    compute_w = cores * power.core_active_w(frequency_hz) + power.uncore_w(cores)
    return EnergyRoofline(
        roofline=roof,
        compute_j_per_instr=compute_w / roof.compute_peak,
        memory_j_per_byte=power.mem_active_w / roof.memory_bandwidth,
        idle_power_w=power.sys_idle_w,
    )


@dataclass(frozen=True)
class WorkloadPlacement:
    """A program's position against a machine's roofline."""

    program: str
    ai: float
    bound: str
    attainable_instr_per_s: float
    min_time_s: float
    min_energy_j: float


def place_workload(
    cluster: ClusterSpec,
    program: HybridProgram,
    class_name: str | None = None,
    cores: int | None = None,
    frequency_hz: float | None = None,
) -> WorkloadPlacement:
    """Place a program on a node's roofline.

    The AI uses the machine-amplified DRAM traffic (a small cache makes
    the same program more memory-bound), and the time/energy minima are
    single-node bounds a perfect execution could not beat.
    """
    cls = class_name or program.reference_class
    c = cores if cores is not None else cluster.node.max_cores
    f = frequency_hz if frequency_hz is not None else cluster.node.core.fmax

    amplification = cluster.node.memory.miss_amplification(program.working_set(cls))
    instructions = program.instructions(cls) * program.iterations(cls)
    dram = program.dram_bytes(cls) * amplification * program.iterations(cls)
    ai = instructions / dram

    roof = node_roofline(cluster, c, f)
    eroof = node_energy_roofline(cluster, c, f)
    rate = float(roof.attainable(ai))
    return WorkloadPlacement(
        program=program.name,
        ai=ai,
        bound=roof.bound(ai),
        attainable_instr_per_s=rate,
        min_time_s=instructions / rate,
        min_energy_j=eroof.floor_j_per_instr(ai) * instructions,
    )
