"""Phase-aware DVFS analysis on top of the model (paper §II-A extension).

The paper positions runtime DVFS techniques (Ge et al., Kappiah et al.,
Curtis-Maury et al.) as *complementary*: "as these approaches are
applicable at run-time in a dynamic manner, they can be used in
conjunction with our proposed approach."  This module builds that
conjunction: given a characterized model, it predicts the time/energy
effect of throttling cores to a lower frequency during memory-stall
phases, and recommends the best stall frequency per configuration.

The key measurement trick is decomposing the baseline memory-stall cycles
``m(c, f)`` into their two physical components using nothing but the
(c, f) sweep the model already has:

    m(c, f) = cache_cycles(c) + dram_seconds(c) * f

— pipeline-coupled cache stalls are constant in *cycles*, DRAM waits are
constant in *time* (so linear in cycles vs f).  A least-squares fit over
the measured frequencies recovers both components per core count.  Under
stall-phase DVFS at ``f_s``:

    T_mem(f, f_s) = (cache_cycles / f_s + dram_seconds) * scale / n

while compute still runs at ``f`` and stall power is priced at ``f_s``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.core.energy_model import EnergyBreakdown
from repro.core.model import HybridProgramModel, Prediction
from repro.core.time_model import TimeBreakdown, predict_time
from repro.machines.spec import Configuration


@dataclass(frozen=True)
class StallDecomposition:
    """Measured split of per-core memory stalls at one core count.

    ``cache_cycles`` is the frequency-invariant (pipeline-coupled)
    component; ``dram_seconds`` the time-bound DRAM component.  Both are
    per-core totals for the baseline input.
    """

    cores: int
    cache_cycles: float
    dram_seconds: float

    def stall_cycles_at(self, frequency_hz: float) -> float:
        """Reconstruct m(c, f) from the fit."""
        return self.cache_cycles + self.dram_seconds * frequency_hz


def decompose_stalls(
    model: HybridProgramModel, cores: int
) -> StallDecomposition:
    """Fit the cache/DRAM stall split from the baseline sweep at ``cores``.

    Requires baseline measurements at two or more frequencies (the sweep
    always has all DVFS points).  Negative fitted components are clipped to
    zero — they arise only from counter noise on nearly-pure workloads.
    """
    points = sorted(
        (f, art.mem_stall_cycles)
        for (c, f), art in model.inputs.baseline.items()
        if c == cores
    )
    if len(points) < 2:
        raise ValueError(
            f"need baseline measurements at >= 2 frequencies for c={cores}"
        )
    # Contention waits grow superlinearly with f (shorter compute spans
    # concentrate the same traffic), bending m(f) convex at the top of the
    # DVFS range; the cache/DRAM split is linear only where the controller
    # queue is quiet, so fit over the lower half of the frequency points.
    keep = max(2, (len(points) + 1) // 2)
    freqs = np.array([p[0] for p in points[:keep]])
    stalls = np.array([p[1] for p in points[:keep]])
    dram_seconds, cache_cycles = np.polyfit(freqs, stalls, 1)
    return StallDecomposition(
        cores=cores,
        cache_cycles=float(max(0.0, cache_cycles)),
        dram_seconds=float(max(0.0, dram_seconds)),
    )


def stall_power_curve(model: HybridProgramModel, cores: int):
    """Smoothed per-core stall power vs frequency at one core count.

    Individual wall-meter readings carry absolute error comparable to the
    *difference* between two stall-power points (the paper's ±0.4 W on a
    node whose per-core stall deltas are ~0.2 W), so differencing raw
    table entries is noise.  Fitting the physically-motivated quadratic
    ``P(f) = a + b f + c f²`` over all measured frequencies averages the
    meter error out; the returned callable evaluates the fit.
    """
    points = sorted(
        (f, p)
        for (c, f), p in model.inputs.power.core_stall_w.items()
        if c == cores
    )
    if len(points) < 2:
        raise ValueError(f"no power characterization at c={cores}")
    freqs = np.array([p[0] for p in points])
    powers = np.array([p[1] for p in points])
    degree = 2 if len(points) >= 3 else 1
    coeffs = np.polyfit(freqs, powers, degree)

    def curve(f_hz: float) -> float:
        return float(max(1e-3, np.polyval(coeffs, f_hz)))

    return curve


@dataclass(frozen=True)
class DvfsPrediction:
    """Prediction for one (configuration, stall frequency) pair."""

    config: Configuration
    stall_frequency_hz: float
    class_name: str
    time: TimeBreakdown
    energy: EnergyBreakdown

    @property
    def time_s(self) -> float:
        """Predicted execution time under the schedule."""
        return self.time.total_s

    @property
    def energy_j(self) -> float:
        """Predicted energy under the schedule."""
        return self.energy.total_j


def predict_with_stall_dvfs(
    model: HybridProgramModel,
    config: Configuration,
    stall_frequency_hz: float,
    class_name: str | None = None,
    delta_scale: float = 1.0,
) -> DvfsPrediction:
    """Predict time and energy with cores throttled to ``f_s`` during
    memory stalls (Eqs. 1-12 with the stall split applied).

    ``delta_scale`` inflates the throttling time-penalty; the advisor uses
    it for a pessimistic second opinion (the cache/DRAM split carries fit
    uncertainty, and an overestimated saving flips sign in reality).
    """
    cls = class_name or model.inputs.baseline_class
    scale = model.program.scale_factor(cls, model.inputs.baseline_class)
    iterations = model.program.iterations(cls)

    base = predict_time(
        model.inputs,
        nodes=config.nodes,
        cores=config.cores,
        frequency_hz=config.frequency_hz,
        scale=scale,
        iterations=iterations,
    )
    split = decompose_stalls(model, config.cores)

    # anchor at the static prediction and apply only the throttling *delta*:
    # the cache-stall component's wall time moves from cycles/f to
    # cycles/f_s, the DRAM component is time-bound and unchanged.  Using
    # the fit only for the delta keeps f_s = f exactly equal to the static
    # prediction (the fit's absolute reconstruction carries regression
    # error that would otherwise masquerade as speedup).
    f, f_s, n = config.frequency_hz, stall_frequency_hz, config.nodes
    delta = split.cache_cycles * (1.0 / f_s - 1.0 / f) * scale / n
    t_mem = max(0.0, base.t_mem_s + delta_scale * delta)
    time = TimeBreakdown(
        t_cpu_s=base.t_cpu_s,
        t_mem_s=t_mem,
        t_net_service_s=base.t_net_service_s,
        t_net_wait_s=base.t_net_wait_s,
        utilization_baseline=base.utilization_baseline,
        rho_network=base.rho_network,
    )

    power = model.inputs.power
    p_act = power.active(config.cores, f)
    curve = stall_power_curve(model, config.cores)
    # anchor at the raw table entry (so f_s = f reproduces the static
    # prediction exactly) and apply the *smoothed* frequency delta;
    # pessimism shrinks the power saving by the same factor that inflates
    # the time penalty
    saving_w = max(0.0, curve(f) - curve(f_s)) / delta_scale
    p_stall = max(1e-3, power.stall(config.cores, f) - saving_w)
    e_cpu = (p_act * time.t_cpu_s + p_stall * time.t_mem_s) * config.cores
    e_mem = power.mem_w * time.t_mem_s
    e_net = power.net_w * time.t_net_s
    e_idle = power.sys_idle_w * time.total_s
    energy = EnergyBreakdown(
        cpu_j=e_cpu * n, mem_j=e_mem * n, net_j=e_net * n, idle_j=e_idle * n
    )
    return DvfsPrediction(
        config=config,
        stall_frequency_hz=stall_frequency_hz,
        class_name=cls,
        time=time,
        energy=energy,
    )


@dataclass(frozen=True)
class DvfsAdvice:
    """Recommendation for one configuration."""

    static: Prediction
    best: DvfsPrediction

    @property
    def energy_saving_j(self) -> float:
        """Energy saved vs the static-frequency execution."""
        return self.static.energy_j - self.best.energy_j

    @property
    def slowdown(self) -> float:
        """Relative time cost of the schedule (>= 0 means slower)."""
        return self.best.time_s / self.static.time_s - 1.0

    @property
    def worthwhile(self) -> bool:
        """True if the schedule saves energy at all."""
        return self.energy_saving_j > 0.0


#: Pessimism factor for the advisor's second opinion: the throttling time
#: penalty is inflated by this much when checking a candidate still saves
#: energy (guards against fit uncertainty flipping a marginal saving).
CONSERVATISM = 1.6


def advise_stall_dvfs(
    model: HybridProgramModel,
    config: Configuration,
    class_name: str | None = None,
    max_slowdown: float = 0.05,
) -> DvfsAdvice:
    """Pick the stall frequency minimizing energy within a slowdown budget.

    Enumerates the machine's DVFS points at or below the run frequency
    (throttling *up* during stalls is never useful) and returns the
    energy-minimal schedule among candidates that

    * stay within ``max_slowdown`` of the static execution time, and
    * still save energy when the time penalty is inflated by
      :data:`CONSERVATISM` (marginal savings are not worth the risk).

    The static execution (f_s = f) is always a candidate, so advice is
    never worse than static under the model.
    """
    if max_slowdown < 0:
        raise ValueError("max_slowdown must be non-negative")
    with obs.span(
        "advise_stall_dvfs", config=str(config), max_slowdown=max_slowdown
    ):
        static = model.predict(config, class_name)
        frequencies = sorted(
            {key[1] for key in model.inputs.baseline if key[1] <= config.frequency_hz}
        )
        best: DvfsPrediction | None = None
        best_pessimistic = float("inf")
        for f_s in frequencies:
            cand = predict_with_stall_dvfs(model, config, f_s, class_name)
            if cand.time_s > static.time_s * (1.0 + max_slowdown):
                continue
            pessimistic = predict_with_stall_dvfs(
                model, config, f_s, class_name, delta_scale=CONSERVATISM
            )
            if f_s < config.frequency_hz and pessimistic.energy_j >= static.energy_j:
                continue  # marginal saving: not robust to fit uncertainty
            if best is None or pessimistic.energy_j < best_pessimistic:
                best = cand
                best_pessimistic = pessimistic.energy_j
        assert best is not None  # f_s = f always qualifies
        return DvfsAdvice(static=static, best=best)
