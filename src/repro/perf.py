"""Process-level performance tuning for measurement harnesses.

The simulator's throughput on virtualized single-core hosts is dominated
by memory effects, and one of the worst is glibc's default mmap policy:
every NumPy work array above the dynamic mmap threshold is served by a
fresh ``mmap`` and returned with ``munmap`` on free, so the *same*
logical temporaries fault their pages in again on every simulated run.
On paravirtual guests a minor fault costs microseconds, which adds tens
of percent to both simulator backends and drowns benchmark comparisons
in allocator noise.

:func:`tune_allocator` turns the mmap path off for the calling process
(``mallopt(M_MMAP_MAX, 0)``) and raises the trim threshold so freed
arena memory is reused instead of being given back to the kernel.  It
is deliberately **opt-in**: importing :mod:`repro.simulate` never mutates
process-global allocator state — only measurement entry points (the
benchmark harnesses) call this, and they apply it identically to every
backend they compare, keeping the comparison fair.

Non-glibc platforms simply report ``False`` and run untuned.
"""

from __future__ import annotations

import ctypes

__all__ = ["tune_allocator", "M_MMAP_MAX", "M_TRIM_THRESHOLD"]

#: ``mallopt`` parameter ids (glibc ``malloc.h``).
M_TRIM_THRESHOLD = -1
M_MMAP_MAX = -4

#: Keep this much free arena memory before trimming back to the kernel.
_TRIM_BYTES = 256 * 1024 * 1024


def tune_allocator() -> bool:
    """Disable malloc's mmap path so big NumPy temporaries reuse pages.

    Returns ``True`` when both ``mallopt`` calls were applied, ``False``
    on any platform where glibc's ``mallopt`` is unavailable or rejects
    the request.  Safe to call repeatedly; affects only this process.
    """
    try:
        libc = ctypes.CDLL(None, use_errno=True)
        mallopt = libc.mallopt
    except (OSError, AttributeError):  # pragma: no cover - non-glibc
        return False
    mallopt.argtypes = [ctypes.c_int, ctypes.c_int]
    mallopt.restype = ctypes.c_int
    applied = mallopt(M_MMAP_MAX, 0) == 1
    return (mallopt(M_TRIM_THRESHOLD, _TRIM_BYTES) == 1) and applied
