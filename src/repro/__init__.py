"""repro — reproduction of "An Approach for Energy Efficient Execution of
Hybrid Parallel Programs" (Ramapantulu, Loghin, Teo — IPDPS 2015).

The library predicts execution time, energy and the Useful Computation
Ratio (UCR) of hybrid MPI+OpenMP programs across (nodes, cores, frequency)
configurations from a measurement-driven analytical model, finds
time-energy Pareto-optimal configurations under deadlines and energy
budgets, and validates the model against a discrete-event cluster simulator
standing in for the paper's physical Xeon/ARM testbeds.

Quickstart::

    from repro import (
        SimulatedCluster, HybridProgramModel, Configuration,
        xeon_cluster, sp_program, ConfigSpace, evaluate_space,
        pareto_frontier,
    )

    sim = SimulatedCluster(xeon_cluster())
    model = HybridProgramModel.from_measurements(sim, sp_program())
    pred = model.predict(Configuration(nodes=4, cores=8, frequency_hz=1.8e9))
    frontier = pareto_frontier(evaluate_space(model, ConfigSpace.physical(sim.spec)))

See README.md for the architecture overview and DESIGN.md for the paper
mapping.
"""

from repro.machines import (
    ClusterSpec,
    Configuration,
    CoreSpec,
    InstructionMix,
    MemorySpec,
    NetworkSpec,
    NodeSpec,
    SwitchSpec,
    arm_cluster,
    get_cluster,
    list_clusters,
    xeon_cluster,
)
from repro.workloads import (
    HybridProgram,
    InputClass,
    all_programs,
    bt_program,
    cp_program,
    get_program,
    lb_program,
    list_programs,
    lu_program,
    sp_program,
    synthetic_program,
)
from repro.simulate import (
    FaultModel,
    NoiseModel,
    RunResult,
    SimulatedCluster,
    degraded_memory,
    degraded_network,
)
from repro.core import (
    ConfigSpace,
    ExecutionPlan,
    HybridProgramModel,
    ModelInputs,
    ParetoPoint,
    Prediction,
    ResultCache,
    WhatIf,
    characterize,
    evaluate_space,
    min_energy_within_deadline,
    min_time_within_budget,
    parallel_plan,
    pareto_frontier,
    ucr_decomposition,
)
from repro.analysis import ValidationCampaign, validate_program
from repro.workflow import Recommendation, recommend

__version__ = "1.0.0"

__all__ = [
    # machines
    "ClusterSpec",
    "Configuration",
    "CoreSpec",
    "InstructionMix",
    "MemorySpec",
    "NetworkSpec",
    "NodeSpec",
    "SwitchSpec",
    "xeon_cluster",
    "arm_cluster",
    "get_cluster",
    "list_clusters",
    # workloads
    "HybridProgram",
    "InputClass",
    "bt_program",
    "sp_program",
    "lu_program",
    "cp_program",
    "lb_program",
    "synthetic_program",
    "all_programs",
    "get_program",
    "list_programs",
    # simulator
    "SimulatedCluster",
    "RunResult",
    "NoiseModel",
    "FaultModel",
    "degraded_memory",
    "degraded_network",
    # model
    "HybridProgramModel",
    "Prediction",
    "ModelInputs",
    "characterize",
    "ConfigSpace",
    "evaluate_space",
    "ParetoPoint",
    "pareto_frontier",
    "min_energy_within_deadline",
    "min_time_within_budget",
    "ucr_decomposition",
    "WhatIf",
    # parallel execution + persistent result cache
    "ExecutionPlan",
    "ResultCache",
    "parallel_plan",
    # analysis
    "ValidationCampaign",
    "validate_program",
    # workflow porcelain
    "Recommendation",
    "recommend",
    "__version__",
]
