"""Unit conventions and conversion helpers.

The whole library uses a single set of base units so that model equations
(paper Section III) can be written without conversion factors:

* time        — seconds [s]
* frequency   — hertz [Hz] (machine specs expose GHz for readability and
                convert through :func:`ghz`)
* power       — watts [W]
* energy      — joules [J] (reports use kJ where the paper does)
* data volume — bytes [B]
* bandwidth   — bytes/second [B/s] (network specs are quoted in bits/s as is
                conventional for links and converted through :func:`mbps` /
                :func:`gbps`)

Keeping conversions in one module means a grep for ``1e9`` or ``/ 8`` in the
rest of the code base indicates a bug.
"""

from __future__ import annotations

GHZ = 1e9
MHZ = 1e6
KHZ = 1e3

KIB = 1024
MIB = 1024**2
GIB = 1024**3

KB = 1e3
MB = 1e6
GB = 1e9


def ghz(value: float) -> float:
    """Convert a clock frequency in GHz to Hz."""
    return value * GHZ


def to_ghz(hz: float) -> float:
    """Convert a clock frequency in Hz to GHz."""
    return hz / GHZ


def mbps(value: float) -> float:
    """Convert a link bandwidth in megabits/s to bytes/s."""
    return value * 1e6 / 8.0


def gbps(value: float) -> float:
    """Convert a link bandwidth in gigabits/s to bytes/s."""
    return value * 1e9 / 8.0


def to_mbps(bytes_per_s: float) -> float:
    """Convert a bandwidth in bytes/s to megabits/s."""
    return bytes_per_s * 8.0 / 1e6


def to_gbps(bytes_per_s: float) -> float:
    """Convert a bandwidth in bytes/s to gigabits/s."""
    return bytes_per_s * 8.0 / 1e9


def joules_to_kj(j: float) -> float:
    """Convert energy in joules to kilojoules (the paper's reporting unit)."""
    return j / 1e3


def kj(value: float) -> float:
    """Convert energy in kilojoules to joules."""
    return value * 1e3


def seconds_to_minutes(s: float) -> float:
    """Convert seconds to minutes (Figure 11 reports minutes on ARM)."""
    return s / 60.0
