"""The shipped default pipeline: the paper's reproduction, end to end.

``repro pipeline repro`` runs this DAG — characterize → calibrate →
validate → Figure 8 goldens → the two beyond-paper extension studies —
incrementally.  Each stage declares the source files its campaign
actually depends on (the machine spec module, the workload module), so
editing ``src/repro/machines/xeon.py`` re-runs exactly the Xeon
characterization and its downstream stages while the ARM half of the
graph stays fresh.

Stages exchange plain-JSON artifacts: characterized model inputs travel
as :func:`repro.io.model_inputs_to_dict` documents and are rebuilt into
:class:`~repro.core.model.HybridProgramModel` instances downstream, so a
stage never depends on live Python objects from another stage — only on
content.  All campaigns run at ``repetitions=1`` against the
deterministic simulated testbeds: the full cold pipeline finishes in
seconds and two cold runs produce bit-identical artifacts.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.analysis.validation import validate_program
from repro.core.calibrate import calibrate
from repro.core.configspace import ConfigSpace, evaluate_space
from repro.core.dvfs import advise_stall_dvfs
from repro.core.inputs import characterize
from repro.core.model import HybridProgramModel
from repro.core.pareto import pareto_frontier
from repro.io import campaign_to_dict, model_inputs_from_dict, model_inputs_to_dict
from repro.machines.arm import arm_cluster
from repro.machines.epyc import epyc_cluster
from repro.machines.spec import Configuration
from repro.machines.xeon import xeon_cluster
from repro.measure.timecmd import measure_wall_time
from repro.pipeline.dag import Pipeline
from repro.pipeline.stage import Stage, StageContext
from repro.simulate.cluster import SimulatedCluster
from repro.units import ghz
from repro.workloads.registry import get_program

_CLUSTERS = {
    "xeon": xeon_cluster,
    "arm": arm_cluster,
    "epyc": epyc_cluster,
}

#: The (n, c) validation grid of Figs. 5-6 on each cluster (at fmax).
_FIG56_NC = {
    "xeon": tuple((n, c) for n in (2, 4, 8) for c in (1, 4, 8)),
    "arm": tuple((n, c) for n in (2, 4, 8) for c in (1, 2, 4)),
}

#: Calibration probe configurations on the Xeon testbed, in GHz.
_PROBES_XEON = ((1, 1, 1.2), (1, 8, 1.8), (2, 4, 1.5), (4, 8, 1.8), (8, 2, 1.2), (8, 8, 1.8))


def _sim(cluster: str) -> SimulatedCluster:
    return SimulatedCluster(_CLUSTERS[cluster]())


def _model(program_name: str, inputs_doc: Mapping[str, Any]) -> HybridProgramModel:
    """Rebuild a prediction model from a characterization artifact."""
    return HybridProgramModel(
        program=get_program(program_name),
        inputs=model_inputs_from_dict(dict(inputs_doc)),
    )


def _characterize_stage(ctx: StageContext) -> Mapping[str, Any]:
    """Characterization campaign: measured model inputs for one program."""
    p = ctx.params
    sim = _sim(p["cluster"])
    program = get_program(p["program"])
    inputs = characterize(
        sim,
        program,
        class_name=p.get("class_name"),
        repetitions=p["repetitions"],
        baseline_checkpoint=ctx.checkpoint_path("baseline"),
    )
    return {ctx.stage.outputs[0]: model_inputs_to_dict(inputs)}


def _calibrate_stage(ctx: StageContext) -> Mapping[str, Any]:
    """Residual calibration: fitted Eq. 1 term corrections."""
    p = ctx.params
    model = _model(p["program"], ctx.artifact(p["inputs_artifact"]))
    probes = [Configuration(n, c, ghz(f)) for n, c, f in p["probes"]]
    calibrated = calibrate(
        model, _sim(p["cluster"]), probes, repetitions=p["repetitions"]
    )
    corr = calibrated.corrections
    return {
        ctx.stage.outputs[0]: {
            "cpu": corr.cpu,
            "mem": corr.mem,
            "net_service": corr.net_service,
            "net_wait": corr.net_wait,
        }
    }


def _validate_stage(ctx: StageContext) -> Mapping[str, Any]:
    """Measured-vs-predicted campaign over the Figs. 5-6 grid."""
    p = ctx.params
    sim = _sim(p["cluster"])
    model = _model(p["program"], ctx.artifact(p["inputs_artifact"]))
    fmax = sim.spec.node.core.fmax
    space = [
        Configuration(n, c, fmax) for n, c in _FIG56_NC[p["cluster"]]
    ]
    campaign = validate_program(
        sim,
        get_program(p["program"]),
        space=space,
        repetitions=p["repetitions"],
        model=model,
    )
    doc = campaign_to_dict(campaign)
    doc["summary"] = {
        "time_mean_abs_err_pct": float(campaign.time_errors.mean_abs),
        "time_max_abs_err_pct": float(campaign.time_errors.max_abs),
        "energy_mean_abs_err_pct": float(campaign.energy_errors.mean_abs),
        "energy_max_abs_err_pct": float(campaign.energy_errors.max_abs),
    }
    return {ctx.stage.outputs[0]: doc}


def _fig8_stage(ctx: StageContext) -> Mapping[str, Any]:
    """Figure 8 golden: the Xeon SP time-energy space and its frontier."""
    p = ctx.params
    model = _model(p["program"], ctx.artifact(p["inputs_artifact"]))
    evaluation = evaluate_space(model, ConfigSpace.xeon_pareto(xeon_cluster()))
    frontier = pareto_frontier(evaluation)
    points = [
        {
            "label": pt.label,
            "time_s": float(pt.time_s),
            "energy_j": float(pt.energy_j),
            "ucr": float(pt.ucr),
        }
        for pt in frontier
    ]
    return {
        ctx.stage.outputs[0]: {
            "configurations": len(evaluation),
            "frontier": points,
            "ucr_min": min(pt["ucr"] for pt in points),
            "ucr_max": max(pt["ucr"] for pt in points),
        }
    }


def _ext_modern_stage(ctx: StageContext) -> Mapping[str, Any]:
    """Extension: the 2015 methodology transferred to an EPYC-class node.

    Baseline at class A (cache-regime footnote — see
    ``benchmarks/bench_ext_modern_machine.py``), spot-checked on class C.
    """
    p = ctx.params
    sim = _sim(p["cluster"])
    program = get_program(p["program"])
    inputs = characterize(
        sim,
        program,
        class_name=p["baseline_class"],
        repetitions=p["repetitions"],
        baseline_checkpoint=ctx.checkpoint_path("baseline"),
    )
    model = HybridProgramModel(program=program, inputs=inputs)
    errs = []
    for n, c in ((1, 16), (2, 16), (4, 16)):
        cfg = Configuration(n, c, sim.spec.node.core.fmax)
        measured = measure_wall_time(
            sim.run(program, cfg, class_name="C", run_index=1)
        )
        predicted = model.predict(cfg, "C").time_s
        errs.append(100.0 * abs(predicted - measured) / measured)
    evaluation = evaluate_space(model, ConfigSpace.physical(sim.spec), "C")
    frontier = pareto_frontier(evaluation)
    energy_min = min(frontier, key=lambda pt: pt.energy_j)
    return {
        ctx.stage.outputs[0]: {
            "model_inputs": model_inputs_to_dict(inputs),
            "spot_check_time_mean_abs_err_pct": float(sum(errs) / len(errs)),
            "frontier_points": len(frontier),
            "energy_min_nodes": int(energy_min.prediction.config.nodes),
        }
    }


def _ext_dvfs_stage(ctx: StageContext) -> Mapping[str, Any]:
    """Extension: stall-phase DVFS advice verified against the testbed."""
    p = ctx.params
    sim = _sim(p["cluster"])
    program = get_program(p["program"])
    model = _model(p["program"], ctx.artifact(p["inputs_artifact"]))
    rows = []
    for n, c in ((1, 2), (1, 4), (4, 2), (4, 4), (8, 2), (8, 4)):
        cfg = Configuration(n, c, ghz(p["frequency_ghz"]))
        advice = advise_stall_dvfs(
            model, cfg, max_slowdown=p["max_slowdown"]
        )
        f_s = advice.best.stall_frequency_hz
        static = sim.run(program, cfg, run_index=0)
        throttled = sim.run(program, cfg, run_index=0, stall_frequency_hz=f_s)
        rows.append(
            {
                "config": cfg.label(),
                "stall_frequency_hz": float(f_s),
                "advised": bool(f_s < cfg.frequency_hz),
                "model_saving_j": float(advice.energy_saving_j),
                "model_slowdown": float(advice.slowdown),
                "testbed_saving_j": float(
                    static.energy.total_j - throttled.energy.total_j
                ),
                "testbed_slowdown": float(
                    throttled.wall_time_s / static.wall_time_s - 1.0
                ),
            }
        )
    advised = [r for r in rows if r["advised"]]
    confirmed = [r for r in advised if r["testbed_saving_j"] > 0]
    return {
        ctx.stage.outputs[0]: {
            "rows": rows,
            "advised_configs": len(advised),
            "confirmed_configs": len(confirmed),
        }
    }


def paper_pipeline() -> Pipeline:
    """The default reproduction DAG behind ``repro pipeline repro``."""
    stages = [
        Stage(
            name="characterize-xeon-sp",
            run=_characterize_stage,
            outputs=("model_inputs_xeon_sp",),
            inputs=("src/repro/machines/xeon.py", "src/repro/workloads/npb.py"),
            params={"cluster": "xeon", "program": "SP", "repetitions": 1},
            description="Characterize SP on the Xeon testbed (Table 3 left)",
        ),
        Stage(
            name="characterize-arm-cp",
            run=_characterize_stage,
            outputs=("model_inputs_arm_cp",),
            inputs=("src/repro/machines/arm.py", "src/repro/workloads/quantum.py"),
            params={"cluster": "arm", "program": "CP", "repetitions": 1},
            description="Characterize CP on the ARM testbed (Table 3 right)",
        ),
        Stage(
            name="calibrate-xeon-sp",
            run=_calibrate_stage,
            outputs=("corrections_xeon_sp",),
            deps=("characterize-xeon-sp",),
            params={
                "cluster": "xeon",
                "program": "SP",
                "inputs_artifact": "model_inputs_xeon_sp",
                "probes": [list(p) for p in _PROBES_XEON],
                "repetitions": 1,
            },
            description="Fit Eq. 1 term corrections on probe configurations",
        ),
        Stage(
            name="validate-xeon-sp",
            run=_validate_stage,
            outputs=("validation_xeon_sp",),
            deps=("characterize-xeon-sp",),
            params={
                "cluster": "xeon",
                "program": "SP",
                "inputs_artifact": "model_inputs_xeon_sp",
                "repetitions": 1,
            },
            description="Figs. 5-6 measured-vs-predicted campaign on Xeon",
        ),
        Stage(
            name="validate-arm-cp",
            run=_validate_stage,
            outputs=("validation_arm_cp",),
            deps=("characterize-arm-cp",),
            params={
                "cluster": "arm",
                "program": "CP",
                "inputs_artifact": "model_inputs_arm_cp",
                "repetitions": 1,
            },
            description="Figs. 5-6 measured-vs-predicted campaign on ARM",
        ),
        Stage(
            name="fig8-pareto-xeon-sp",
            run=_fig8_stage,
            outputs=("fig8_pareto_xeon_sp",),
            deps=("characterize-xeon-sp",),
            params={"program": "SP", "inputs_artifact": "model_inputs_xeon_sp"},
            description="Figure 8 golden: 216-config space and Pareto frontier",
        ),
        Stage(
            name="ext-modern-machine",
            run=_ext_modern_stage,
            outputs=("ext_modern_machine",),
            inputs=("src/repro/machines/epyc.py", "src/repro/workloads/npb.py"),
            params={
                "cluster": "epyc",
                "program": "SP",
                "baseline_class": "A",
                "repetitions": 1,
            },
            description="Extension: methodology on an EPYC-class cluster",
        ),
        Stage(
            name="ext-dvfs-advice",
            run=_ext_dvfs_stage,
            outputs=("ext_dvfs_advice",),
            deps=("characterize-arm-cp",),
            params={
                "cluster": "arm",
                "program": "CP",
                "inputs_artifact": "model_inputs_arm_cp",
                "frequency_ghz": 1.4,
                "max_slowdown": 0.15,
            },
            description="Extension: stall-phase DVFS advice, testbed-verified",
        ),
    ]
    return Pipeline(stages)
