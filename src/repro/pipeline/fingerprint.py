"""Stage identity: content fingerprints over inputs, params and upstreams.

A stage's identity document is the pipeline analogue of
:func:`repro.core.cache.entry_identity` — a plain JSON dict naming
everything the stage's outputs depend on:

* the sha256 digest of every declared input file's **content** (no
  mtimes, no sizes — touching a file without changing bytes changes
  nothing);
* the stage's params, verbatim;
* the digest of every upstream artifact the stage consumes (so a
  re-executed upstream whose outputs came out identical leaves
  downstream identities — and therefore their cached entries — valid:
  the early-cutoff property);
* the declared output names and the on-disk format version.

The document's digest (via :func:`repro.resilience.checkpoint.
fingerprint`, the same hashing used by checkpoints and the result
cache) addresses the stage's entry in the artifact store.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from typing import Any, Mapping

from repro.pipeline.dag import PipelineError
from repro.pipeline.stage import Stage
from repro.resilience.checkpoint import fingerprint

#: Participates in every stage identity; bump on layout changes so old
#: store entries are orphaned rather than misread.
FORMAT_VERSION = 1

#: Marker distinguishing pipeline stage entries from other cache docs.
KIND = "repro_pipeline_stage"

#: The repository root inputs with relative paths resolve against.
REPO_ROOT = pathlib.Path(__file__).resolve().parents[3]


def resolve_input(path: str) -> pathlib.Path:
    """Resolve a declared input path (relative ⇒ repository root)."""
    p = pathlib.Path(path)
    return p if p.is_absolute() else REPO_ROOT / p


def file_digest(path: str | pathlib.Path) -> str:
    """sha256 hex digest of one input file's bytes.

    A declared input that does not exist is a broken pipeline
    definition, not a cache miss — it raises :class:`PipelineError`.
    """
    p = resolve_input(str(path))
    try:
        return hashlib.sha256(p.read_bytes()).hexdigest()
    except OSError as exc:
        raise PipelineError(
            f"declared input {path!r} is unreadable: {exc}"
        ) from exc


def canonical_payload_bytes(payload: Any) -> bytes:
    """The canonical bytes of one JSON artifact payload.

    Sorted keys, no whitespace, NaN/Infinity rejected — the same
    convention as the serving layer's ``canonical_json``, so an artifact
    has exactly one byte representation and digests are reproducible.
    """
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")


def payload_digest(payload: Any) -> str:
    """sha256 hex digest of an artifact payload's canonical bytes."""
    return hashlib.sha256(canonical_payload_bytes(payload)).hexdigest()


def stage_identity(
    stage: Stage,
    upstream_digests: Mapping[str, str],
) -> dict[str, Any]:
    """The full identity document one stage's store entry is keyed on.

    ``upstream_digests`` maps every artifact name visible to the stage
    (the outputs of its declared deps) to that artifact's payload
    digest.  Mutating any input file, param, upstream output or the
    stage's own shape changes this document, hence the fingerprint,
    hence the store key.
    """
    return {
        "kind": KIND,
        "format_version": FORMAT_VERSION,
        "stage": stage.name,
        "inputs": {path: file_digest(path) for path in stage.inputs},
        "params": dict(stage.params),
        "upstream": dict(sorted(upstream_digests.items())),
        "outputs": list(stage.outputs),
    }


def identity_digest(identity: Mapping[str, Any]) -> str:
    """The fingerprint addressing ``identity``'s store entry."""
    return fingerprint(identity)
