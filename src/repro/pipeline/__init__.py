"""``repro.pipeline`` — the content-addressed reproduction DAG.

The full paper reproduction (characterize → calibrate → validate →
figure goldens → extensions) is a dependency graph that was previously
re-executed wholesale on every invocation.  This package makes it
incremental, DVC-style:

* a :class:`~repro.pipeline.stage.Stage` declares its *inputs* (files
  whose content it depends on), *params* (JSON-able knobs), *outputs*
  (named JSON artifacts) and *deps* (upstream stages whose outputs it
  consumes);
* a :class:`~repro.pipeline.dag.Pipeline` assembles stages into a
  validated DAG with a deterministic topological order;
* each stage's **identity** is a content fingerprint of its input file
  digests + params + upstream output digests (the same hashing family as
  :func:`repro.core.cache.entry_identity`), so any edit to a machine
  spec, a workload file, or a knob changes exactly the fingerprints of
  the stages downstream of the change;
* stage outputs land in an :class:`~repro.pipeline.store.ArtifactStore`
  built on the extended :class:`~repro.core.cache.ResultCache`, so
  ``repro pipeline run`` re-executes only stages whose fingerprint has
  no stored entry (minimal recomputation — identical re-produced outputs
  re-validate downstream entries without re-running them);
* ``repro pipeline status`` reports every stage as fresh / stale /
  missing with the concrete reason (changed input, changed param,
  changed upstream output, missing artifact).

See ``docs/PIPELINE.md`` for the stage model, fingerprinting rules,
store layout and a worked example; :mod:`repro.pipeline.paper` ships the
paper's end-to-end flow as the default pipeline behind
``repro pipeline repro``.
"""

from repro.pipeline.dag import Pipeline, PipelineError
from repro.pipeline.fingerprint import (
    file_digest,
    payload_digest,
    stage_identity,
)
from repro.pipeline.paper import paper_pipeline
from repro.pipeline.runner import (
    PipelineRun,
    StageReport,
    StageStatus,
    pipeline_status,
    run_pipeline,
)
from repro.pipeline.stage import Stage, StageContext
from repro.pipeline.store import ArtifactStore, StoreEntry

__all__ = [
    "ArtifactStore",
    "Pipeline",
    "PipelineError",
    "PipelineRun",
    "Stage",
    "StageContext",
    "StageReport",
    "StageStatus",
    "StoreEntry",
    "file_digest",
    "paper_pipeline",
    "payload_digest",
    "pipeline_status",
    "run_pipeline",
    "stage_identity",
]
