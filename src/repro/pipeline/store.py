"""The pipeline artifact store: stage outputs in the extended ResultCache.

One store directory holds every stage entry of every pipeline run that
shares it — entries are addressed purely by content fingerprint, so runs
of different machine specs, params or code revisions coexist without
invalidating each other (reverting an edit finds the old entries again,
no recomputation).  Layout::

    <dir>/<digest>.json      # one entry per executed stage fingerprint
    <dir>/latest/<stage>.json  # last identity each stage ran at (status)

Entries go through :meth:`repro.core.cache.ResultCache.put_doc` /
``get_doc``: atomic writes, embedded-identity verification on read, and
``cache.disk.*`` counters — a torn, foreign or stale file degrades to a
miss (the stage re-runs) rather than wrong artifacts.  The ``latest``
pointers are *not* part of correctness: they only let ``repro pipeline
status`` explain **why** a stage is stale (which input or param changed
since its last execution).
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from typing import Any, Mapping

from repro.core.cache import ResultCache
from repro.pipeline.fingerprint import identity_digest, payload_digest
from repro.resilience.checkpoint import atomic_write_json


@dataclass(frozen=True)
class StoreEntry:
    """One stage's stored result: output payloads and their digests."""

    fingerprint: str
    outputs: Mapping[str, Any]
    output_digests: Mapping[str, str]


class ArtifactStore:
    """Content-addressed stage outputs over a :class:`ResultCache`.

    The cache provides the durable, verified entry files; this wrapper
    adds the stage-output document shape and the per-stage ``latest``
    pointers used for staleness explanations.
    """

    def __init__(self, directory: str | pathlib.Path) -> None:
        """Open (creating if needed) the store rooted at ``directory``."""
        self.cache = ResultCache(directory)
        self.directory = self.cache.directory
        self._latest_dir = self.directory / "latest"
        self._latest_dir.mkdir(parents=True, exist_ok=True)

    # -- entries -------------------------------------------------------

    def get(self, identity: Mapping[str, Any]) -> StoreEntry | None:
        """The stored entry for ``identity``, or ``None`` on a miss.

        Misses include rejected entries (torn/foreign/corrupt files and
        digest collisions) — the stage simply re-runs.
        """
        payload = self.cache.get_doc(dict(identity))
        if not isinstance(payload, dict):
            return None
        outputs = payload.get("outputs")
        digests = payload.get("output_digests")
        if not isinstance(outputs, dict) or not isinstance(digests, dict):
            return None
        if set(outputs) != set(digests):
            return None
        return StoreEntry(
            fingerprint=identity_digest(identity),
            outputs=outputs,
            output_digests=digests,
        )

    def put(
        self, identity: Mapping[str, Any], outputs: Mapping[str, Any]
    ) -> StoreEntry:
        """Persist one stage's ``outputs`` under ``identity``.

        Output digests are computed here, once, from the canonical JSON
        bytes — the digests downstream identities embed.
        """
        digests = {name: payload_digest(p) for name, p in outputs.items()}
        self.cache.put_doc(
            dict(identity),
            {"outputs": dict(outputs), "output_digests": digests},
        )
        return StoreEntry(
            fingerprint=identity_digest(identity),
            outputs=dict(outputs),
            output_digests=digests,
        )

    def contains(self, identity: Mapping[str, Any]) -> bool:
        """Whether an entry file exists for ``identity`` (cheap probe)."""
        return self.cache.contains(dict(identity))

    # -- latest pointers (status explanations only) --------------------

    def _latest_path(self, stage_name: str) -> pathlib.Path:
        return self._latest_dir / f"{stage_name}.json"

    def record_latest(
        self, stage_name: str, identity: Mapping[str, Any]
    ) -> None:
        """Remember the identity ``stage_name`` last executed at."""
        atomic_write_json(
            self._latest_path(stage_name),
            {"identity": dict(identity)},
        )

    def latest_identity(self, stage_name: str) -> dict[str, Any] | None:
        """The identity of the stage's last recorded execution, if any."""
        path = self._latest_path(stage_name)
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        identity = doc.get("identity") if isinstance(doc, dict) else None
        return identity if isinstance(identity, dict) else None

    # -- maintenance ---------------------------------------------------

    def stats(self) -> dict[str, int]:
        """The underlying cache's hit/miss/write/reject/entry counts."""
        return self.cache.stats()
