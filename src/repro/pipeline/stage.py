"""Stage declarations: the unit of work of the reproduction DAG.

A :class:`Stage` is declarative — it names what it reads (input files,
params, upstream artifacts) and what it writes (named JSON outputs) —
and carries one Python callable that does the work.  The declaration is
the fingerprinting contract: **only declared inputs participate in a
stage's identity**, so a stage that secretly reads an undeclared file
will not re-run when that file changes.  The shipped paper pipeline
(:mod:`repro.pipeline.paper`) declares the machine-spec and workload
source files its campaigns depend on, which is what makes "edit one
machine spec, re-run only its downstream stages" work.
"""

from __future__ import annotations

import pathlib
import re
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

#: Stage and artifact names: filesystem- and metric-label-safe tokens.
_NAME_RE = re.compile(r"[A-Za-z0-9][A-Za-z0-9._-]*\Z")


def _valid_name(name: str) -> bool:
    """Whether ``name`` is usable as a stage or artifact name."""
    return bool(_NAME_RE.match(name))


@dataclass(frozen=True)
class StageContext:
    """What a stage's callable sees while it runs.

    The runner constructs one per execution: the stage's params, the
    payloads of every upstream artifact the stage declared a dep on, a
    private checkpoint directory for resumable campaigns, and the run
    workspace (for scratch only — durable outputs must be *returned*,
    not written ad hoc, so the store stays the source of truth).
    """

    stage: "Stage"
    workspace: pathlib.Path
    artifacts: Mapping[str, Any]
    checkpoint_dir: pathlib.Path

    @property
    def params(self) -> Mapping[str, Any]:
        """The stage's declared params (shorthand for ``stage.params``)."""
        return self.stage.params

    def artifact(self, name: str) -> Any:
        """The JSON payload of upstream artifact ``name``.

        Only artifacts produced by stages listed in this stage's
        ``deps`` are visible; asking for anything else is a programming
        error in the pipeline definition.
        """
        try:
            return self.artifacts[name]
        except KeyError:
            raise KeyError(
                f"stage {self.stage.name!r} did not declare a dep producing "
                f"artifact {name!r}; declared deps see: "
                f"{sorted(self.artifacts)}"
            ) from None

    def checkpoint_path(self, suffix: str = "checkpoint") -> pathlib.Path:
        """A checkpoint file path private to this stage.

        Files under the stage's checkpoint directory survive a crashed
        or interrupted run and are handed back on the next execution of
        the *same* stage fingerprint, so long campaigns (the baseline
        sweep, chunked space evaluations) resume mid-stage through the
        DAG.  The runner clears the directory when the stage's identity
        changes (a stale campaign must not resume into a new one) and
        after the stage completes.
        """
        self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        return self.checkpoint_dir / f"{suffix}.json"


#: A stage's work: receives the context, returns ``{output_name: payload}``
#: with one JSON-serializable payload per declared output.
StageFn = Callable[[StageContext], Mapping[str, Any]]


@dataclass(frozen=True)
class Stage:
    """One declarative node of the reproduction DAG.

    ``inputs`` are file paths (relative paths are resolved against the
    repository root by the fingerprinting layer) whose *content* the
    stage depends on.  ``params`` is a JSON-able mapping of knobs.
    ``outputs`` are the names of the JSON artifacts the callable
    returns.  ``deps`` are upstream stage names; the runner feeds every
    artifact of every dep into the :class:`StageContext`.
    """

    name: str
    run: StageFn
    outputs: tuple[str, ...]
    inputs: tuple[str, ...] = ()
    deps: tuple[str, ...] = ()
    params: Mapping[str, Any] = field(default_factory=dict)
    description: str = ""

    def __post_init__(self) -> None:
        """Validate names and shapes at construction time."""
        if not _valid_name(self.name):
            raise ValueError(f"invalid stage name {self.name!r}")
        if not self.outputs:
            raise ValueError(f"stage {self.name!r} declares no outputs")
        for out in self.outputs:
            if not _valid_name(out):
                raise ValueError(
                    f"stage {self.name!r}: invalid output name {out!r}"
                )
        if len(set(self.outputs)) != len(self.outputs):
            raise ValueError(f"stage {self.name!r}: duplicate output names")
        if self.name in self.deps:
            raise ValueError(f"stage {self.name!r} depends on itself")
