"""Pipeline execution and staleness inspection.

:func:`run_pipeline` walks the DAG in topological order, computes every
selected stage's content fingerprint from live input files + params +
upstream output digests, and executes **only** stages whose fingerprint
has no entry in the artifact store.  Independent stages fan out across a
thread pool when ``workers > 1`` (each stage's internal work still
routes through the ambient :class:`~repro.core.parallel.ExecutionPlan`
and planner config installed by the global CLI flags).

:func:`pipeline_status` answers "what would run, and why" without
executing anything: per stage it reports ``fresh`` / ``stale`` /
``missing`` and, for stale stages, the concrete reasons (which input
file changed, which param changed, which upstream artifact changed)
derived by diffing the current identity against the stage's last
recorded execution.

Stage checkpoints: each execution gets a private directory keyed by the
stage's fingerprint; resumable campaigns (:func:`repro.core.inputs.
characterize` with ``baseline_checkpoint``, :func:`repro.resilience.
pipeline.evaluate_space_checkpointed`) park their ledgers there, so a
crashed run resumes mid-stage.  The directory is wiped whenever the
stage's identity changes — a stale campaign must never resume into a new
one (:class:`repro.resilience.checkpoint.Checkpoint` would refuse with a
``CheckpointError``; we never get that far) — and after success.
"""

from __future__ import annotations

import pathlib
import shutil
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro import obs
from repro.pipeline.dag import Pipeline, PipelineError
from repro.pipeline.fingerprint import identity_digest, stage_identity
from repro.pipeline.stage import Stage, StageContext
from repro.pipeline.store import ArtifactStore, StoreEntry


@dataclass(frozen=True)
class StageReport:
    """What happened to one stage during a run."""

    name: str
    action: str  # "executed" | "cached"
    fingerprint: str
    seconds: float
    output_digests: Mapping[str, str]


@dataclass(frozen=True)
class PipelineRun:
    """The outcome of one :func:`run_pipeline` invocation."""

    reports: tuple[StageReport, ...]
    artifacts: Mapping[str, Any]

    @property
    def executed(self) -> tuple[str, ...]:
        """Names of stages that actually ran, in topological order."""
        return tuple(r.name for r in self.reports if r.action == "executed")

    @property
    def cached(self) -> tuple[str, ...]:
        """Names of stages served from the store, in topological order."""
        return tuple(r.name for r in self.reports if r.action == "cached")


@dataclass(frozen=True)
class StageStatus:
    """One stage's freshness verdict from :func:`pipeline_status`."""

    name: str
    state: str  # "fresh" | "stale" | "missing"
    reasons: tuple[str, ...] = ()
    fingerprint: str | None = None


def _checkpoint_dir(store: ArtifactStore, stage: Stage) -> pathlib.Path:
    return store.directory / "checkpoints" / stage.name


def _prepare_checkpoint_dir(
    store: ArtifactStore, stage: Stage, fingerprint: str
) -> pathlib.Path:
    """The stage's checkpoint dir, wiped if it belongs to another identity."""
    directory = _checkpoint_dir(store, stage)
    marker = directory / ".identity"
    try:
        previous = marker.read_text(encoding="utf-8").strip()
    except OSError:
        previous = None
    if previous != fingerprint and directory.exists():
        shutil.rmtree(directory, ignore_errors=True)
    directory.mkdir(parents=True, exist_ok=True)
    marker.write_text(fingerprint + "\n", encoding="utf-8")
    return directory


def _clear_checkpoint_dir(store: ArtifactStore, stage: Stage) -> None:
    shutil.rmtree(_checkpoint_dir(store, stage), ignore_errors=True)


def _execute_stage(
    stage: Stage,
    identity: dict[str, Any],
    fingerprint: str,
    store: ArtifactStore,
    workspace: pathlib.Path,
    artifacts: Mapping[str, Any],
) -> tuple[StoreEntry, float]:
    """Run one stage's callable and persist its outputs."""
    checkpoint_dir = _prepare_checkpoint_dir(store, stage, fingerprint)
    stage_workspace = workspace / stage.name
    stage_workspace.mkdir(parents=True, exist_ok=True)
    context = StageContext(
        stage=stage,
        workspace=stage_workspace,
        artifacts=dict(artifacts),
        checkpoint_dir=checkpoint_dir,
    )
    started = time.perf_counter()
    with obs.span("pipeline_stage", stage=stage.name, fingerprint=fingerprint):
        outputs = stage.run(context)
    elapsed = time.perf_counter() - started
    if set(outputs) != set(stage.outputs):
        raise PipelineError(
            f"stage {stage.name!r} returned outputs {sorted(outputs)}, "
            f"declared {sorted(stage.outputs)}"
        )
    entry = store.put(identity, outputs)
    store.record_latest(stage.name, identity)
    _clear_checkpoint_dir(store, stage)
    return entry, elapsed


def run_pipeline(
    pipeline: Pipeline,
    store: ArtifactStore,
    stages: Iterable[str] | None = None,
    workers: int = 1,
    force: bool = False,
) -> PipelineRun:
    """Execute ``pipeline`` incrementally against ``store``.

    ``stages`` selects a subset (plus its transitive dependencies —
    fresh ancestors are served from the store, not re-run); ``None``
    runs everything.  ``workers > 1`` executes independent stages of the
    same depth concurrently in threads.  ``force`` re-executes every
    selected stage even when its entry exists (the new outputs still
    land at the same fingerprints, so an unchanged pipeline stays
    bit-identical).

    Returns a :class:`PipelineRun` with per-stage reports in topological
    order and the payloads of every selected stage's artifacts.
    """
    selected = pipeline.closure(stages)
    workers = max(1, int(workers))
    workspace = store.directory / "workspace"

    entries: dict[str, StoreEntry] = {}
    reports: dict[str, StageReport] = {}
    artifacts: dict[str, Any] = {}

    def _visit(stage: Stage) -> None:
        upstream: dict[str, str] = {}
        visible: dict[str, Any] = {}
        for dep in stage.deps:
            dep_entry = entries[dep]
            upstream.update(dep_entry.output_digests)
            visible.update(dep_entry.outputs)
        identity = stage_identity(stage, upstream)
        fingerprint = identity_digest(identity)
        entry = None if force else store.get(identity)
        if entry is not None:
            store.record_latest(stage.name, identity)
            obs.add("pipeline.stage_runs.cached")
            report = StageReport(
                name=stage.name,
                action="cached",
                fingerprint=fingerprint,
                seconds=0.0,
                output_digests=entry.output_digests,
            )
        else:
            obs.add("pipeline.stage_runs.executed")
            entry, elapsed = _execute_stage(
                stage, identity, fingerprint, store, workspace, visible
            )
            obs.observe("pipeline.stage_seconds", elapsed)
            report = StageReport(
                name=stage.name,
                action="executed",
                fingerprint=fingerprint,
                seconds=elapsed,
                output_digests=entry.output_digests,
            )
        entries[stage.name] = entry
        reports[stage.name] = report

    with obs.span(
        "pipeline_run", stages=len(selected), workers=workers, force=force
    ):
        obs.add("pipeline.runs")
        pending = [pipeline.stage(n) for n in pipeline.order if n in selected]
        if workers == 1:
            for stage in pending:
                _visit(stage)
        else:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                done: set[str] = set()
                while pending:
                    wave = [
                        s
                        for s in pending
                        if all(d in done for d in s.deps if d in selected)
                    ]
                    if not wave:  # unreachable: order is topological
                        raise PipelineError(
                            "pipeline wave deadlock; remaining: "
                            f"{[s.name for s in pending]}"
                        )
                    for future in [pool.submit(_visit, s) for s in wave]:
                        future.result()
                    done.update(s.name for s in wave)
                    pending = [s for s in pending if s.name not in done]

        for name in pipeline.order:
            if name in entries:
                artifacts.update(entries[name].outputs)

    ordered = tuple(
        reports[name] for name in pipeline.order if name in reports
    )
    return PipelineRun(reports=ordered, artifacts=artifacts)


def _diff_reasons(
    current: Mapping[str, Any], previous: Mapping[str, Any]
) -> list[str]:
    """Human-readable differences between two identity documents."""
    reasons: list[str] = []
    cur_inputs = current.get("inputs", {})
    prev_inputs = previous.get("inputs", {})
    for path in sorted(set(cur_inputs) | set(prev_inputs)):
        if cur_inputs.get(path) != prev_inputs.get(path):
            reasons.append(f"input changed: {path}")
    cur_params = current.get("params", {})
    prev_params = previous.get("params", {})
    for key in sorted(set(cur_params) | set(prev_params)):
        if cur_params.get(key) != prev_params.get(key):
            reasons.append(f"param changed: {key}")
    cur_up = current.get("upstream", {})
    prev_up = previous.get("upstream", {})
    for name in sorted(set(cur_up) | set(prev_up)):
        if cur_up.get(name) != prev_up.get(name):
            reasons.append(f"upstream artifact changed: {name}")
    for key in ("outputs", "format_version"):
        if current.get(key) != previous.get(key):
            reasons.append(f"stage definition changed: {key}")
    return reasons


def pipeline_status(
    pipeline: Pipeline,
    store: ArtifactStore,
    stages: Iterable[str] | None = None,
) -> tuple[StageStatus, ...]:
    """Per-stage freshness of ``pipeline`` against ``store``, read-only.

    A stage is ``fresh`` when its current fingerprint has a store entry,
    ``stale`` when it (or an upstream) must re-run, and ``missing`` when
    it has never executed or its entry was evicted.  Stale verdicts
    carry concrete reasons diffed against the stage's last recorded
    execution.  Stages downstream of a non-fresh stage cannot have their
    fingerprint computed (upstream output digests are unknown) and
    report ``stale`` with the blocking upstream named.
    """
    selected = pipeline.closure(stages)
    statuses: list[StageStatus] = []
    digests: dict[str, Mapping[str, str]] = {}  # fresh stages only
    verdicts: dict[str, str] = {}

    for name in pipeline.order:
        if name not in selected:
            continue
        stage = pipeline.stage(name)
        blocking = [
            d for d in stage.deps if verdicts.get(d) in ("stale", "missing")
        ]
        if blocking:
            verdicts[name] = "stale"
            statuses.append(
                StageStatus(
                    name=name,
                    state="stale",
                    reasons=tuple(
                        f"upstream stage not fresh: {d}" for d in blocking
                    ),
                )
            )
            continue
        upstream: dict[str, str] = {}
        for dep in stage.deps:
            upstream.update(digests[dep])
        identity = stage_identity(stage, upstream)
        fingerprint = identity_digest(identity)
        if store.contains(identity):
            entry = store.get(identity)
            if entry is not None:
                verdicts[name] = "fresh"
                digests[name] = entry.output_digests
                statuses.append(
                    StageStatus(
                        name=name, state="fresh", fingerprint=fingerprint
                    )
                )
                continue
        previous = store.latest_identity(name)
        if previous is None:
            verdicts[name] = "missing"
            statuses.append(
                StageStatus(
                    name=name,
                    state="missing",
                    reasons=("never executed",),
                    fingerprint=fingerprint,
                )
            )
            continue
        reasons = _diff_reasons(identity, previous)
        if not reasons:
            verdicts[name] = "missing"
            statuses.append(
                StageStatus(
                    name=name,
                    state="missing",
                    reasons=("artifact entry missing from store",),
                    fingerprint=fingerprint,
                )
            )
            continue
        verdicts[name] = "stale"
        statuses.append(
            StageStatus(
                name=name,
                state="stale",
                reasons=tuple(reasons),
                fingerprint=fingerprint,
            )
        )
    return tuple(statuses)
