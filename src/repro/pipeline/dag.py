"""Pipeline assembly: stage collection, validation, topological order.

A :class:`Pipeline` is an immutable, validated DAG of
:class:`~repro.pipeline.stage.Stage` declarations.  Validation happens
at construction — duplicate stage or artifact names, references to
unknown stages, and dependency cycles are all programming errors in the
pipeline definition and raise :class:`PipelineError` immediately rather
than failing mid-run.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.pipeline.stage import Stage


class PipelineError(RuntimeError):
    """An invalid pipeline definition or an unrunnable pipeline state."""


class Pipeline:
    """A validated DAG of stages with a deterministic topological order.

    The topological order is stable: stages appear as early as their
    dependencies allow, ties broken by declaration order — so two runs
    of the same pipeline always walk the same sequence, independent of
    dict-iteration or scheduling accidents.
    """

    def __init__(self, stages: Sequence[Stage]) -> None:
        """Validate ``stages`` and precompute the topological order."""
        names = [s.name for s in stages]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise PipelineError(f"duplicate stage names: {sorted(duplicates)}")
        self._stages: dict[str, Stage] = {s.name: s for s in stages}

        producers: dict[str, str] = {}
        for stage in stages:
            for out in stage.outputs:
                if out in producers:
                    raise PipelineError(
                        f"artifact {out!r} is produced by both "
                        f"{producers[out]!r} and {stage.name!r}"
                    )
                producers[out] = stage.name
        self._producers = producers

        for stage in stages:
            for dep in stage.deps:
                if dep not in self._stages:
                    raise PipelineError(
                        f"stage {stage.name!r} depends on unknown stage "
                        f"{dep!r}"
                    )
        self._order = self._toposort(stages)

    def _toposort(self, stages: Sequence[Stage]) -> tuple[str, ...]:
        """Kahn's algorithm, declaration order as the tie-breaker."""
        remaining = {s.name: set(s.deps) for s in stages}
        order: list[str] = []
        while remaining:
            ready = [
                s.name
                for s in stages
                if s.name in remaining and not remaining[s.name]
            ]
            if not ready:
                cycle = sorted(remaining)
                raise PipelineError(
                    f"dependency cycle among stages: {cycle}"
                )
            for name in ready:
                order.append(name)
                del remaining[name]
            for deps in remaining.values():
                deps.difference_update(ready)
        return tuple(order)

    # -- lookup --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._stages)

    def __iter__(self) -> Iterator[Stage]:
        """Stages in topological order."""
        return (self._stages[name] for name in self._order)

    def __contains__(self, name: object) -> bool:
        return name in self._stages

    def stage(self, name: str) -> Stage:
        """The stage named ``name`` (:class:`PipelineError` if absent)."""
        try:
            return self._stages[name]
        except KeyError:
            raise PipelineError(
                f"unknown stage {name!r}; pipeline stages: "
                f"{list(self._order)}"
            ) from None

    def producer_of(self, artifact: str) -> Stage:
        """The stage producing ``artifact``."""
        try:
            return self._stages[self._producers[artifact]]
        except KeyError:
            raise PipelineError(f"no stage produces artifact {artifact!r}") from None

    @property
    def order(self) -> tuple[str, ...]:
        """Stage names in the deterministic topological order."""
        return self._order

    # -- graph queries -------------------------------------------------

    def closure(self, names: Iterable[str] | None = None) -> set[str]:
        """``names`` plus every transitive dependency (all stages if None).

        This is the selection ``repro pipeline run --stages`` executes:
        a requested stage cannot run without its upstream artifacts, so
        ancestors ride along (fresh ones are served from the store, not
        re-executed).
        """
        if names is None:
            return set(self._order)
        selected: set[str] = set()
        frontier = [self.stage(n).name for n in names]
        while frontier:
            name = frontier.pop()
            if name in selected:
                continue
            selected.add(name)
            frontier.extend(self._stages[name].deps)
        return selected

    def downstream(self, names: Iterable[str]) -> set[str]:
        """Every stage transitively depending on any of ``names``.

        (Excludes ``names`` themselves.)  This is the blast radius of an
        edit: touching a stage's input staleness-propagates exactly to
        its downstream set.
        """
        roots = {self.stage(n).name for n in names}
        out: set[str] = set()
        changed = True
        while changed:
            changed = False
            for stage in self._stages.values():
                if stage.name in out or stage.name in roots:
                    continue
                if any(d in roots or d in out for d in stage.deps):
                    out.add(stage.name)
                    changed = True
        return out
