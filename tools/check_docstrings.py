#!/usr/bin/env python3
"""Docstring coverage gate for the load-bearing packages.

Walks the AST of every module under the given paths and requires a
docstring on each module, public class and public function/method.
Dunders and ``_private`` names are exempt — the same policy as ruff's
``D1`` rules with ``D105``/``D107`` ignored.  Private helpers are
*counted* when they do have docstrings but never required — the bar is
that the public surface explains itself.

The same policy is encoded for ruff's pydocstyle rules in
``pyproject.toml`` (``D1`` selected for ``src/repro/core``); this script
is the zero-dependency enforcement wired into ``make ci``, so the gate
holds even where ruff is not installed.

Usage: ``python tools/check_docstrings.py [path ...]``
Default paths: the packages listed in ``ENFORCED`` (100% required).
"""

from __future__ import annotations

import ast
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.lint.discovery import iter_python_files  # noqa: E402

#: Packages whose public surface must be 100% documented.
ENFORCED = (
    "src/repro/core",
    "src/repro/obs",
    "src/repro/pipeline",
    "src/repro/resilience",
    "src/repro/lint",
    "src/repro/serve",
    "src/repro/mg1.py",
)


def _is_public(name: str) -> bool:
    if name.startswith("__") and name.endswith("__"):
        return False  # dunders: the protocol documents them (D105/D107)
    return not name.startswith("_")


def _walk_definitions(module: ast.Module):
    """Yield (kind, qualified name, node) for every def/class, any depth."""
    stack = [("", module)]
    while stack:
        prefix, node = stack.pop()
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                kind = "class" if isinstance(child, ast.ClassDef) else "def"
                qualified = f"{prefix}{child.name}"
                yield kind, qualified, child
                if isinstance(child, ast.ClassDef):
                    stack.append((qualified + ".", child))
                # nested defs are implementation detail: not descended into


def audit(path: pathlib.Path) -> tuple[int, int, list[str]]:
    """(documented, required, missing) for one module file."""
    tree = ast.parse(path.read_text(), filename=str(path))
    documented = required = 0
    missing: list[str] = []

    required += 1
    if ast.get_docstring(tree):
        documented += 1
    else:
        missing.append(f"{path}:1: module")

    for kind, name, node in _walk_definitions(tree):
        public = all(_is_public(part) for part in name.split("."))
        has = ast.get_docstring(node) is not None
        if not public:
            # private helpers count toward the score only when documented
            if has:
                documented += 1
                required += 1
            continue
        required += 1
        if has:
            documented += 1
        else:
            missing.append(f"{path}:{node.lineno}: {kind} {name}")
    return documented, required, missing


def main(argv: list[str]) -> int:
    targets = [pathlib.Path(a) for a in argv] or [ROOT / p for p in ENFORCED]
    documented = required = 0
    missing: list[str] = []
    files = 0
    # one shared file-discovery policy with reprolint: a module the
    # linter scans is a module this gate audits, and vice versa
    for path in iter_python_files(targets):
        files += 1
        d, r, m = audit(path)
        documented += d
        required += r
        missing.extend(m)

    coverage = 100.0 * documented / required if required else 100.0
    print(
        f"docstring coverage: {documented}/{required} "
        f"({coverage:.1f}%) across {files} modules"
    )
    if missing:
        print(f"missing ({len(missing)}):")
        for entry in missing:
            print(f"  {entry}")
        return 1
    print("docstring gate: PASS (public surface fully documented)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
