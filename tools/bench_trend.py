#!/usr/bin/env python3
"""Benchmark trend gate: aggregate JSON reports and enforce baselines.

Every ``bench_*`` module writes a machine-readable report to
``benchmarks/out/<name>.json`` (the envelope of ``benchmarks/report.py``)
beside its human-readable ``.txt`` artifact.  This tool turns those
per-bench files into one trend record and a regression verdict:

1. **aggregate** — collect every report envelope under ``benchmarks/out/``
   into a single ``bench_report.json`` (metrics flattened to
   ``<report>.<metric>``), suitable for uploading as a CI artifact and
   diffing across commits;
2. **check** — compare each flattened metric against the tolerance band
   committed in ``benchmarks/baseline.json``.  A metric outside its
   ``[min, max]`` band is a regression and the exit status is non-zero.
   Metrics without a band, and bands without a metric, are reported as
   warnings only — new benchmarks should not break the build before a
   baseline is agreed, and full-mode-only metrics are legitimately absent
   from smoke runs.

Bands are deliberately wide: they must hold in both smoke and full modes
and across noisy virtualized CI hosts, so they catch order-of-magnitude
breakage (a gate asserting 1.1x suddenly reporting 0.2x, an error metric
jumping past its paper bound), not percent-level drift.  The drift story
is the aggregated artifact's job — ``bench_report.json`` carries exact
values, units, mode, and git SHA for offline comparison.

Usage::

    python tools/bench_trend.py                 # aggregate + check
    python tools/bench_trend.py --out trend.json
    python tools/bench_trend.py --no-check      # aggregate only

CI runs this right after the benchmark smoke gates; the nightly workflow
runs it after the full-mode benches and uploads the trend artifact.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parents[1]
OUT_DIR = ROOT / "benchmarks" / "out"
BASELINE = ROOT / "benchmarks" / "baseline.json"

#: Filename of the aggregated record — never re-ingested as a report.
AGGREGATE_NAME = "bench_report.json"

sys.path.insert(0, str(ROOT / "benchmarks"))
from report import load_report  # noqa: E402  (repo-local import)


def aggregate(out_dir: pathlib.Path) -> dict:
    """Collect every report envelope in ``out_dir`` into one record.

    Returns ``{"reports": {...}, "metrics": {...}}`` where ``metrics``
    flattens every report's metrics to ``<report>.<metric>`` entries
    (each still a ``{"value", "unit"}`` dict, plus the report's mode).
    Non-envelope JSON files (legacy records, trace dumps) are skipped.
    """
    reports: dict[str, dict] = {}
    flat: dict[str, dict] = {}
    for path in sorted(out_dir.glob("*.json")):
        if path.name == AGGREGATE_NAME:
            continue  # never re-ingest our own output
        payload = load_report(path)
        if payload is None:
            continue
        name = payload.get("name", path.stem)
        reports[name] = payload
        for metric, entry in payload["metrics"].items():
            flat[f"{name}.{metric}"] = {**entry, "mode": payload.get("mode")}
    return {"reports": reports, "metrics": flat}


def check(metrics: dict, baseline: dict) -> tuple[list[str], list[str]]:
    """Compare flattened metrics against baseline bands.

    Returns ``(failures, warnings)``.  A failure is a metric whose value
    falls outside its committed ``[min, max]`` band; a warning is a
    metric with no band or a band with no metric (informational only).
    """
    bands = baseline.get("metrics", {})
    failures: list[str] = []
    warnings: list[str] = []
    for key, entry in sorted(metrics.items()):
        band = bands.get(key)
        if band is None:
            warnings.append(f"no baseline band for {key} (value {entry['value']:g})")
            continue
        lo, hi = band.get("min"), band.get("max")
        value = entry["value"]
        if lo is not None and value < lo:
            failures.append(
                f"{key} = {value:g} {entry.get('unit', '')} "
                f"below baseline min {lo:g}"
            )
        if hi is not None and value > hi:
            failures.append(
                f"{key} = {value:g} {entry.get('unit', '')} "
                f"above baseline max {hi:g}"
            )
    for key in sorted(set(bands) - set(metrics)):
        warnings.append(f"baseline band {key} has no measured metric this run")
    return failures, warnings


def main(argv: list[str] | None = None) -> int:
    """Aggregate the reports, write the trend record, enforce the bands."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out-dir",
        type=pathlib.Path,
        default=OUT_DIR,
        help="directory holding the per-bench report JSONs",
    )
    parser.add_argument(
        "--baseline",
        type=pathlib.Path,
        default=BASELINE,
        help="committed tolerance bands (benchmarks/baseline.json)",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=OUT_DIR / "bench_report.json",
        help="where to write the aggregated trend record",
    )
    parser.add_argument(
        "--no-check",
        action="store_true",
        help="aggregate only; skip the baseline comparison",
    )
    args = parser.parse_args(argv)

    record = aggregate(args.out_dir)
    if not record["metrics"]:
        print(f"bench_trend: no report envelopes found under {args.out_dir}")
        return 1
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(record, indent=2) + "\n")
    print(
        f"bench_trend: aggregated {len(record['reports'])} reports "
        f"({len(record['metrics'])} metrics) -> {args.out}"
    )

    if args.no_check:
        return 0
    try:
        baseline = json.loads(args.baseline.read_text())
    except FileNotFoundError:
        print(f"bench_trend: baseline {args.baseline} missing")
        return 1
    failures, warnings = check(record["metrics"], baseline)
    for line in warnings:
        print(f"  warn: {line}")
    for line in failures:
        print(f"  FAIL: {line}")
    if failures:
        print(f"bench_trend: {len(failures)} metric(s) outside baseline bands")
        return 1
    print(
        f"bench_trend: all banded metrics within baseline "
        f"({len(warnings)} warnings)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
