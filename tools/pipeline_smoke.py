#!/usr/bin/env python3
"""Pipeline incrementality smoke: the acceptance contract, end to end.

Runs the shipped paper pipeline cold into a scratch store, appends a
comment to one machine spec, and asserts the three guarantees
docs/PIPELINE.md makes:

1. ``status`` marks exactly the edited spec's subtree stale, naming the
   file as the reason, while the other branches stay fresh;
2. the incremental rerun executes only the stage that reads the file
   (its outputs are unchanged, so early cutoff revalidates the rest);
3. a cold rebuild in a fresh store produces bit-identical artifacts.

The spec edit is reverted in a ``finally`` block, so the working tree
is left untouched even on failure.  CI runs this as the "pipeline"
step; locally: ``make pipeline-smoke`` or
``python tools/pipeline_smoke.py``.
"""

from __future__ import annotations

import pathlib
import sys
import tempfile
import time

ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.pipeline import (  # noqa: E402
    ArtifactStore,
    paper_pipeline,
    pipeline_status,
    run_pipeline,
)
from repro.pipeline.fingerprint import canonical_payload_bytes  # noqa: E402

SPEC = ROOT / "src" / "repro" / "machines" / "xeon.py"
EDITED_STAGE = "characterize-xeon-sp"
XEON_SUBTREE = {
    "characterize-xeon-sp",
    "calibrate-xeon-sp",
    "validate-xeon-sp",
    "fig8-pareto-xeon-sp",
}


def _check(ok: bool, label: str) -> bool:
    print(f"  {'ok  ' if ok else 'FAIL'} {label}")
    return ok


def _artifact_bytes(run) -> dict[str, bytes]:
    return {
        name: canonical_payload_bytes(payload)
        for name, payload in run.artifacts.items()
    }


def main() -> int:
    pipeline = paper_pipeline()
    ok = True
    with tempfile.TemporaryDirectory() as scratch:
        store = ArtifactStore(pathlib.Path(scratch) / "store")

        start = time.perf_counter()
        cold = run_pipeline(pipeline, store)
        print(f"[cold run] {time.perf_counter() - start:.1f}s")
        ok &= _check(
            set(cold.executed) == set(pipeline.order),
            f"all {len(pipeline.order)} stages executed",
        )

        original = SPEC.read_bytes()
        try:
            SPEC.write_bytes(original + b"\n# pipeline smoke edit\n")

            print("[status after editing src/repro/machines/xeon.py]")
            status = {s.name: s for s in pipeline_status(pipeline, store)}
            ok &= _check(
                status[EDITED_STAGE].reasons
                == ("input changed: src/repro/machines/xeon.py",),
                "the edited file is named as the reason",
            )
            stale = {n for n, s in status.items() if s.state != "fresh"}
            ok &= _check(
                stale == XEON_SUBTREE,
                "exactly the xeon subtree is stale, other branches fresh",
            )

            print("[incremental rerun]")
            warm = run_pipeline(pipeline, store)
            ok &= _check(
                warm.executed == (EDITED_STAGE,),
                f"only {EDITED_STAGE} re-executed "
                f"({len(warm.cached)} cached via early cutoff)",
            )

            print("[cold rebuild in a fresh store]")
            rebuilt = run_pipeline(
                pipeline, ArtifactStore(pathlib.Path(scratch) / "store2")
            )
            ok &= _check(
                _artifact_bytes(rebuilt) == _artifact_bytes(warm)
                and _artifact_bytes(rebuilt) == _artifact_bytes(cold),
                "artifacts bit-identical across warm run and both cold runs",
            )
        finally:
            SPEC.write_bytes(original)

    print("pipeline smoke:", "PASS" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
