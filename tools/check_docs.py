#!/usr/bin/env python3
"""Docs gate: the documentation must actually run.

Five checks, any failure exits non-zero:

1. every ``examples/*.py`` script runs to completion and prints output;
2. every fenced code block in README.md and docs/TUTORIAL.md executes —
   ``python`` blocks are concatenated per document (later blocks may use
   names from earlier ones, as a reader would) and run once; ``bash`` /
   ``console`` blocks contribute their ``repro …`` command lines, which
   run via ``python -m repro`` (install/test lines — pip, pytest, make —
   are environment management, not library usage, and are skipped);
3. ``docs/README.md`` links every page in ``docs/``;
4. no markdown link in README.md or ``docs/*.md`` points at a file that
   does not exist (dangling intra-docs links);
5. every subcommand ``repro --help`` advertises is documented in
   ``docs/API.md``.

Everything executes in a scratch working directory so commands that
write files (``--trace``, ``--checkpoint``, ``--output``) leave no
droppings in the repository.  The scratch directory is seeded with
``chaos.json`` (a copy of the pinned CI schedule,
``tests/fixtures/chaos/schedule_ci.json``) so resilience examples that
take a user-provided fault schedule run as written.

CI runs this as the "docs" step; locally: ``make docs-check`` or
``python tools/check_docs.py``.
"""

from __future__ import annotations

import os
import pathlib
import re
import shlex
import subprocess
import sys
import tempfile
import time

ROOT = pathlib.Path(__file__).resolve().parents[1]
EXECUTED_DOCS = (ROOT / "README.md", ROOT / "docs" / "TUTORIAL.md")
SHELL_LANGS = {"bash", "sh", "shell", "console"}
#: Shell lines that manage the environment rather than use the library.
SKIP_COMMANDS = ("pip", "pytest", "make", "cat", "python")

_PER_UNIT_TIMEOUT_S = 600


def _env() -> dict[str, str]:
    env = dict(os.environ)
    src = str(ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    return env


def _run(argv: list[str], cwd: pathlib.Path, label: str) -> tuple[bool, str]:
    start = time.perf_counter()
    proc = subprocess.run(
        argv,
        cwd=cwd,
        env=_env(),
        capture_output=True,
        text=True,
        timeout=_PER_UNIT_TIMEOUT_S,
    )
    seconds = time.perf_counter() - start
    ok = proc.returncode == 0
    print(f"  {'ok  ' if ok else 'FAIL'} {label} ({seconds:.1f}s)")
    if not ok:
        tail = (proc.stdout + proc.stderr).strip().splitlines()[-15:]
        for line in tail:
            print(f"       | {line}")
    return ok, proc.stdout


def fenced_blocks(path: pathlib.Path) -> list[tuple[str, str]]:
    """(language, body) for every fenced code block in a markdown file."""
    blocks: list[tuple[str, str]] = []
    lang: str | None = None
    buf: list[str] = []
    for line in path.read_text().splitlines():
        if line.startswith("```"):
            if lang is None:
                lang = line[3:].strip() or "text"
            else:
                blocks.append((lang, "\n".join(buf)))
                lang, buf = None, []
        elif lang is not None:
            buf.append(line)
    return blocks


def shell_commands(body: str) -> list[str]:
    """The executable ``repro …`` commands of one shell block.

    Strips ``$ `` prompts and inline ``#`` comments, joins backslash
    continuations, and drops environment-management lines (pip, pytest,
    make, …).
    """
    joined: list[str] = []
    pending = ""
    for raw in body.splitlines():
        line = raw.strip()
        if line.startswith("$"):
            line = line[1:].strip()
        line = pending + line
        if line.endswith("\\"):
            pending = line[:-1] + " "
            continue
        pending = ""
        # drop a trailing comment (good enough: no quoted '#' in our docs)
        line = line.split(" #")[0].strip()
        if not line or line.startswith("#"):
            continue
        first = shlex.split(line)[0]
        if first in SKIP_COMMANDS:
            continue
        joined.append(line)
    return joined


def check_examples() -> bool:
    print("[examples]")
    ok = True
    for script in sorted((ROOT / "examples").glob("*.py")):
        with tempfile.TemporaryDirectory() as scratch:
            good, out = _run(
                [sys.executable, str(script)],
                pathlib.Path(scratch),
                f"examples/{script.name}",
            )
        if good and len(out) < 100:
            print(f"  FAIL examples/{script.name}: produced no real output")
            good = False
        ok &= good
    return ok


def check_document(path: pathlib.Path) -> bool:
    rel = path.relative_to(ROOT)
    print(f"[{rel}]")
    ok = True
    python_blocks: list[str] = []
    commands: list[str] = []
    for lang, body in fenced_blocks(path):
        if lang == "python":
            python_blocks.append(body)
        elif lang in SHELL_LANGS:
            commands.extend(shell_commands(body))
    with tempfile.TemporaryDirectory() as scratch:
        cwd = pathlib.Path(scratch)
        schedule = ROOT / "tests" / "fixtures" / "chaos" / "schedule_ci.json"
        (cwd / "chaos.json").write_text(schedule.read_text())
        if python_blocks:
            merged = cwd / "doc_blocks.py"
            merged.write_text("\n\n".join(python_blocks) + "\n")
            good, _ = _run(
                [sys.executable, str(merged)],
                cwd,
                f"{rel}: {len(python_blocks)} python block(s)",
            )
            ok &= good
        for command in commands:
            argv = shlex.split(command)
            if argv[0] != "repro":
                print(f"  FAIL {rel}: unexpected command {command!r}")
                ok = False
                continue
            good, _ = _run(
                [sys.executable, "-m", "repro", *argv[1:]],
                cwd,
                f"{rel}: {command}",
            )
            ok &= good
    return ok


def check_docs_index() -> bool:
    print("[docs/README.md index]")
    index = (ROOT / "docs" / "README.md").read_text()
    ok = True
    for page in sorted((ROOT / "docs").glob("*.md")):
        if page.name == "README.md":
            continue
        if page.name not in index:
            print(f"  FAIL docs/README.md does not link {page.name}")
            ok = False
    if ok:
        print("  ok   every docs page is linked")
    return ok


#: ``[text](target)`` — target captured up to the closing paren.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: Link targets that are not files in this repository.
_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "#")


def check_links() -> bool:
    """No markdown link may point at a missing file (dangling link)."""
    print("[intra-docs links]")
    pages = [ROOT / "README.md"] + sorted((ROOT / "docs").glob("*.md"))
    ok = True
    checked = 0
    for page in pages:
        text = page.read_text()
        # ignore links inside fenced code blocks (command examples)
        text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
        for target in _LINK_RE.findall(text):
            if target.startswith(_EXTERNAL_PREFIXES):
                continue
            rel_target = target.split("#", 1)[0]
            if not rel_target:
                continue
            checked += 1
            if not (page.parent / rel_target).exists():
                rel = page.relative_to(ROOT)
                print(f"  FAIL {rel}: dangling link -> {target}")
                ok = False
    if ok:
        print(f"  ok   {checked} relative links all resolve")
    return ok


def check_cli_coverage() -> bool:
    """Every ``repro --help`` subcommand must appear in docs/API.md."""
    print("[CLI coverage in docs/API.md]")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "--help"],
        env=_env(),
        capture_output=True,
        text=True,
        timeout=_PER_UNIT_TIMEOUT_S,
    )
    if proc.returncode != 0:
        print("  FAIL 'repro --help' exited non-zero")
        return False
    # argparse renders choice sets as "{a,b,c,...}"; the subcommand set
    # is the group containing "systems" (option choices like
    # --sim-backend render the same way)
    groups = re.findall(r"\{([a-z0-9,\-\s]+)\}", proc.stdout)
    commands = next(
        (
            [c.strip() for c in g.split(",") if c.strip()]
            for g in groups
            if "systems" in g
        ),
        None,
    )
    if commands is None:
        print("  FAIL could not find the subcommand list in 'repro --help'")
        return False
    api = (ROOT / "docs" / "API.md").read_text()
    ok = True
    for command in commands:
        if f"repro {command}" not in api:
            print(f"  FAIL docs/API.md does not document 'repro {command}'")
            ok = False
    if ok:
        print(f"  ok   all {len(commands)} subcommands documented")
    return ok


def main() -> int:
    ok = check_examples()
    for path in EXECUTED_DOCS:
        ok &= check_document(path)
    ok &= check_docs_index()
    ok &= check_links()
    ok &= check_cli_coverage()
    print("docs gate:", "PASS" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
