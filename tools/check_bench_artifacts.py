#!/usr/bin/env python3
"""Benchmark artifact hygiene gate: every ``.txt`` needs a ``.json`` twin.

The benchmark harness writes each regenerated table/figure twice: a
human-readable ``.txt`` artifact and a machine-readable ``.json`` report
(the envelope of ``benchmarks/report.py``) that feeds
``tools/bench_trend.py``.  A committed ``.txt`` without its sibling means
a bench was added or renamed without wiring the trend pipeline — the
numbers would render for humans but silently vanish from regression
tracking.  This gate fails the build on any such orphan.

Only *committed* artifacts are checked (``git ls-files``), so local
scratch output never trips it.  Aggregates (``bench_report.json``) and
non-tabular artifacts (``.prom`` metric dumps, ``.jsonl`` traces) are
exempt: they are not bench tables and carry no metrics to band.

CI runs this in the lint job; locally: ``python tools/check_bench_artifacts.py``.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parents[1]
OUT_PREFIX = "benchmarks/out/"


def committed_artifacts() -> list[str]:
    """Paths of committed files under ``benchmarks/out/``."""
    proc = subprocess.run(
        ["git", "ls-files", OUT_PREFIX],
        cwd=ROOT,
        capture_output=True,
        text=True,
        check=True,
    )
    return [line for line in proc.stdout.splitlines() if line]


def find_orphans(paths: list[str]) -> list[str]:
    """Committed ``.txt`` artifacts with no committed ``.json`` sibling."""
    committed = set(paths)
    return sorted(
        path
        for path in committed
        if path.endswith(".txt")
        and path[: -len(".txt")] + ".json" not in committed
    )


def main() -> int:
    """Exit non-zero listing every ``.txt`` artifact missing its report."""
    paths = committed_artifacts()
    if not paths:
        print(f"check_bench_artifacts: nothing committed under {OUT_PREFIX}")
        return 0
    orphans = find_orphans(paths)
    if orphans:
        print(
            "check_bench_artifacts: committed .txt artifacts missing their "
            ".json report sibling (add a write_report call to the bench):"
        )
        for path in orphans:
            print(f"  {path}")
        return 1
    txt_count = sum(1 for p in paths if p.endswith(".txt"))
    print(
        f"check_bench_artifacts: ok — {txt_count} .txt artifacts all have "
        "their .json reports"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
