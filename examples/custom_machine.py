"""Bring your own machine and workload.

The paper's approach is machine-agnostic: anything with per-core DVFS, UMA
memory per node and a switched network can be characterized.  This example
defines a hypothetical 16-node AArch64 microserver cluster ("graviton-ish")
and a synthetic memory-bound halo-exchange workload, then runs the whole
pipeline: characterization -> model -> Pareto frontier.

Run:  python examples/custom_machine.py
"""

from repro import (
    ClusterSpec,
    ConfigSpace,
    CoreSpec,
    HybridProgramModel,
    MemorySpec,
    NetworkSpec,
    NodeSpec,
    SimulatedCluster,
    SwitchSpec,
    evaluate_space,
    pareto_frontier,
    synthetic_program,
)
from repro.machines.power import NodePowerModel
from repro.units import GIB, gbps, ghz, joules_to_kj


def build_cluster() -> ClusterSpec:
    """A 16-node, 16-core AArch64 microserver cluster with 10 GbE."""
    core = CoreSpec(
        name="custom-aarch64",
        isa="AArch64",
        frequencies_hz=(ghz(1.0), ghz(1.6), ghz(2.2), ghz(2.6)),
        instruction_scale=1.15,
        base_cpi=0.7,
        hazard_cpi_flops=0.4,
        hazard_cpi_branch=0.7,
        hazard_cpi_other=0.2,
        l1_kb=64,
        line_bytes=64,
        memory_overlap=0.45,
        mlp=4.0,
        cache_stall_cpi=0.8,
    )
    memory = MemorySpec(
        capacity_bytes=32 * GIB,
        bandwidth_bytes_per_s=25e9,
        latency_s=90e-9,
        l2_kb=16 * 1024,
        l3_kb=32 * 1024,
        channels=2,
    )
    nic = NetworkSpec(
        link_bytes_per_s=gbps(10),
        per_message_overhead_s=15e-6,
        protocol_efficiency=0.95,
        cpu_cost_per_message_s=3e-6,
        cpu_cost_per_byte_s=5e-11,
    )
    power = NodePowerModel(
        fmax_hz=ghz(2.6),
        core_leakage_w=0.4,
        core_dynamic_w=2.2,
        dvfs_alpha=2.3,
        stall_fraction=0.42,
        uncore_active_w=8.0,
        uncore_per_core_w=0.3,
        mem_active_w=6.0,
        net_active_w=5.0,
        sys_idle_w=35.0,
    )
    node = NodeSpec(core=core, max_cores=16, memory=memory, nic=nic, power=power)
    return ClusterSpec(
        name="custom",
        node=node,
        max_nodes=16,
        switch=SwitchSpec(port_bytes_per_s=gbps(10), forwarding_latency_s=2e-6),
        description="hypothetical 16-node AArch64 microserver cluster",
    )


def main() -> None:
    cluster = build_cluster()
    testbed = SimulatedCluster(cluster)
    program = synthetic_program(
        name="STENCIL27",
        iterations=150,
        instructions_per_iteration=6e9,
        arithmetic_intensity=4.0,  # memory-bound
        comm_fraction=0.02,
        messages_per_iteration=26,  # 27-point stencil halo
        pattern="halo",
        working_set_mib=512,
    )

    print(f"characterizing {program.name} on {cluster.description} ...")
    model = HybridProgramModel.from_measurements(testbed, program)

    space = ConfigSpace.physical(cluster)
    evaluation = evaluate_space(model, space)
    frontier = pareto_frontier(evaluation)

    print(
        f"\n{len(evaluation)} configurations, "
        f"{len(frontier)} Pareto-optimal:"
    )
    for p in frontier:
        print(
            f"  {p.label:14s} T = {p.time_s:8.2f} s  "
            f"E = {joules_to_kj(p.energy_j):7.2f} kJ  UCR = {p.ucr:.2f}"
        )

    bound = max(evaluation.ucrs)
    print(f"\nbest UCR across the space: {bound:.2f}")
    print(
        "memory-bound as designed: UCR falls from "
        f"{evaluation.ucrs.max():.2f} to {evaluation.ucrs.min():.2f} "
        "across the space"
    )


if __name__ == "__main__":
    main()
