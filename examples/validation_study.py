"""Measured-vs-predicted validation study (paper Section IV, reduced).

Reproduces the paper's validation procedure for any of the five programs
on either cluster: characterize once, then compare the model's predictions
against direct measurement (repeated simulated runs read through the
``time`` command and the WattsUp meter) across the validation
configuration space, reporting per-configuration errors and the Table 2
style summary.

Run:  python examples/validation_study.py [PROGRAM] [CLUSTER] [REPS]
      (defaults: BT xeon 3)
"""

import sys

from repro import SimulatedCluster, get_cluster, get_program, validate_program
from repro.analysis.report import ascii_table
from repro.core.model import HybridProgramModel
from repro.units import joules_to_kj


def main(program_name: str = "BT", cluster_name: str = "xeon", reps: str = "3") -> None:
    testbed = SimulatedCluster(get_cluster(cluster_name))
    program = get_program(program_name)

    print(f"characterizing {program.name} on {cluster_name} ...")
    model = HybridProgramModel.from_measurements(testbed, program)

    print(f"validating over the full space ({int(reps)} runs per point) ...")
    campaign = validate_program(
        testbed, program, repetitions=int(reps), model=model
    )

    rows = [
        [
            r.config.label(),
            f"{r.measured_time_s:.1f}",
            f"{r.predicted_time_s:.1f}",
            f"{r.time_error_percent:+.1f}",
            f"{joules_to_kj(r.measured_energy_j):.2f}",
            f"{joules_to_kj(r.predicted_energy_j):.2f}",
            f"{r.energy_error_percent:+.1f}",
        ]
        for r in campaign.records
    ]
    print(
        ascii_table(
            [
                "(n,c,f)",
                "T meas[s]",
                "T pred[s]",
                "T err[%]",
                "E meas[kJ]",
                "E pred[kJ]",
                "E err[%]",
            ],
            rows,
            f"Validation: {program.name} on {cluster_name} "
            f"({len(campaign.records)} configurations)",
        )
    )
    print(f"\ntime:   {campaign.time_errors}")
    print(f"energy: {campaign.energy_errors}")
    print("(paper Table 2 bound: mean errors below 15%)")


if __name__ == "__main__":
    main(*sys.argv[1:4])
