"""Pareto exploration: the paper's Fig. 8/9 analysis as a user workflow.

Evaluates a model over an extrapolated configuration space far larger than
the physical testbed (Fig. 8 reaches 256 Xeon nodes), extracts the
time-energy Pareto frontier, draws it as an ASCII chart, and answers the
two practical questions from the paper's introduction:

* "I have a deadline — what is the cheapest configuration that meets it?"
* "I have an energy budget — what is the fastest configuration inside it?"

Run:  python examples/pareto_explorer.py [PROGRAM] [CLUSTER]
      (defaults: SP xeon; e.g. `python examples/pareto_explorer.py CP arm`)
"""

import sys

from repro import (
    ConfigSpace,
    HybridProgramModel,
    SimulatedCluster,
    evaluate_space,
    get_cluster,
    get_program,
    min_energy_within_deadline,
    min_time_within_budget,
    pareto_frontier,
)
from repro.analysis.figures import ascii_chart
from repro.analysis.report import ascii_table
from repro.units import joules_to_kj


def main(program_name: str = "SP", cluster_name: str = "xeon") -> None:
    spec = get_cluster(cluster_name)
    testbed = SimulatedCluster(spec)
    program = get_program(program_name)

    print(f"characterizing {program.name} on {spec.name} ...")
    model = HybridProgramModel.from_measurements(testbed, program)

    space = (
        ConfigSpace.xeon_pareto(spec)
        if cluster_name == "xeon"
        else ConfigSpace.arm_pareto(spec)
    )
    evaluation = evaluate_space(model, space)
    frontier = pareto_frontier(evaluation)

    frontier_ids = {id(p.prediction) for p in frontier}
    marks = ["*" if id(p) in frontier_ids else "." for p in evaluation.predictions]
    print()
    print(
        ascii_chart(
            evaluation.times_s,
            evaluation.energies_j / 1e3,
            logx=True,
            marks=marks,
            title=f"{program.name} on {spec.name}: energy [kJ] vs time [s] "
            f"({len(evaluation)} configurations, * = Pareto-optimal)",
        )
    )
    print()
    print(
        ascii_table(
            ["(n,c,f)", "T[s]", "E[kJ]", "UCR"],
            [
                [p.label, f"{p.time_s:.1f}", f"{joules_to_kj(p.energy_j):.2f}", f"{p.ucr:.2f}"]
                for p in frontier
            ],
            "Pareto frontier",
        )
    )

    # deadline / budget queries at three operating points each
    times = sorted(evaluation.times_s)
    energies = sorted(evaluation.energies_j)
    print("\ndeadline queries (min energy subject to T <= deadline):")
    for deadline in (times[2], times[len(times) // 2], times[-1]):
        best = min_energy_within_deadline(evaluation, float(deadline))
        assert best is not None
        print(
            f"  deadline {deadline:9.1f}s -> {best.config}  "
            f"T={best.time_s:8.1f}s  E={joules_to_kj(best.energy_j):7.2f}kJ"
        )
    print("budget queries (min time subject to E <= budget):")
    for budget in (energies[2], energies[len(energies) // 2], energies[-1]):
        best = min_time_within_budget(evaluation, float(budget))
        assert best is not None
        print(
            f"  budget {joules_to_kj(budget):8.2f}kJ -> {best.config}  "
            f"T={best.time_s:8.1f}s  E={joules_to_kj(best.energy_j):7.2f}kJ"
        )


if __name__ == "__main__":
    main(*sys.argv[1:3])
