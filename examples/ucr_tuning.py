"""UCR analysis and co-design tuning (paper §V-B).

Shows the two optimization loops the paper proposes around the Useful
Computation Ratio:

* the **system designer's** loop — decompose a Pareto-optimal
  configuration's time into useful computation, data dependency, memory
  contention and network contention (Eq. 14), locate the imbalance, and
  evaluate a hardware what-if (the paper doubles memory bandwidth on the
  Xeon node: SP's UCR at (1,8,1.8) rises 0.67 -> 0.81, saving ~7 s/~590 J);
* the **application developer's** loop — restructure the program to cut
  synchronization overhead and imbalance, and re-measure.

Run:  python examples/ucr_tuning.py
"""

from repro import (
    Configuration,
    HybridProgramModel,
    SimulatedCluster,
    WhatIf,
    sp_program,
    lb_program,
    ucr_decomposition,
    xeon_cluster,
)
from repro.units import joules_to_kj


def designer_loop() -> None:
    """Hardware what-if on a frontier configuration."""
    testbed = SimulatedCluster(xeon_cluster())
    model = HybridProgramModel.from_measurements(testbed, sp_program())
    cfg = Configuration(1, 8, 1.8e9)

    pred = model.predict(cfg)
    decomp = ucr_decomposition(model, pred)
    print(f"SP on Xeon {cfg}: T = {pred.time_s:.1f} s, UCR = {pred.ucr:.2f}")
    print("  Eq. 14 decomposition:")
    print(f"    useful computation : {decomp.t_cpu_s:7.1f} s")
    print(f"    data dependency    : {decomp.t_data_dep_s:7.1f} s")
    print(f"    memory contention  : {decomp.t_mem_contention_s:7.1f} s")
    print(f"    network contention : {decomp.t_net_contention_s:7.1f} s")

    print("\n  -> memory time dominates the overhead: try 2x memory bandwidth")
    tuned = WhatIf(model).memory_bandwidth(2.0).predict(cfg)
    print(
        f"  after: T = {tuned.time_s:.1f} s "
        f"({tuned.time_s - pred.time_s:+.1f}), "
        f"E = {joules_to_kj(tuned.energy_j):.2f} kJ "
        f"({tuned.energy_j - pred.energy_j:+.0f} J), "
        f"UCR = {tuned.ucr:.2f} (paper: 0.67 -> 0.81)"
    )


def developer_loop() -> None:
    """Application restructuring: cut LB's synchronization pathology."""
    testbed = SimulatedCluster(xeon_cluster())
    original = lb_program()
    # halve the sync-instruction growth and thread imbalance, as a
    # developer restructuring iterations for the chosen (l, tau) would
    restructured = original.restructured(sync_coeff_factor=0.5, imbalance_factor=0.5)

    cfg = Configuration(4, 8, 1.8e9)
    for label, program in (("original", original), ("restructured", restructured)):
        run = testbed.run(program, cfg)
        print(
            f"  LB {label:13s} at {cfg}: T = {run.wall_time_s:6.1f} s, "
            f"E = {joules_to_kj(run.energy.total_j):5.2f} kJ, "
            f"UCR = {run.ucr:.2f}"
        )


def main() -> None:
    print("=== system designer loop: hardware what-if ===")
    designer_loop()
    print("\n=== application developer loop: restructuring LB ===")
    developer_loop()


if __name__ == "__main__":
    main()
