"""Model-based cluster health checks: the model as a regression detector.

A validated model knows what your cluster *should* do.  This example runs
the paper's characterize-and-model pipeline once, then uses a handful of
canary configurations to health-check three versions of the cluster:

1. the healthy testbed — all canaries within the validation band;
2. one node thermally throttled to ~60% speed — multi-node canaries flag,
   the single-node canary (scheduled on a healthy node) stays clean;
3. DRAM degraded to 30% bandwidth — every canary flags.

The deviation *pattern* localizes the fault class without any per-node
instrumentation.

Run:  python examples/cluster_health.py
"""

from repro import (
    Configuration,
    FaultModel,
    HybridProgramModel,
    SimulatedCluster,
    degraded_memory,
    sp_program,
    xeon_cluster,
)
from repro.analysis.anomaly import diagnose, health_check

SINGLE_CANARIES = [Configuration(1, 8, 1.8e9)]
MULTI_CANARIES = [Configuration(4, 4, 1.5e9), Configuration(8, 8, 1.8e9)]


def report(name: str, model, testbed) -> None:
    single = health_check(model, testbed, SINGLE_CANARIES)
    multi = health_check(model, testbed, MULTI_CANARIES)
    print(f"\n=== {name} ===")
    for rep, label in ((single, "single-node"), (multi, "multi-node")):
        for canary in rep.canaries:
            status = "FLAG" if canary.flagged else "ok  "
            print(
                f"  [{status}] {label:12s} {canary.config}: "
                f"expected {canary.expected_time_s:6.1f}s, "
                f"measured {canary.measured_time_s:6.1f}s "
                f"({canary.deviation:+.1%})"
            )
    print(f"  diagnosis: {diagnose(single, multi)}")


def main() -> None:
    healthy = SimulatedCluster(xeon_cluster())
    print("characterizing SP on the healthy cluster ...")
    model = HybridProgramModel.from_measurements(healthy, sp_program())

    report("healthy cluster", model, healthy)

    throttled = SimulatedCluster(
        xeon_cluster(),
        faults=FaultModel(straggler_node=2, straggler_factor=1.7),
    )
    report("node 2 thermally throttled (x1.7)", model, throttled)

    slow_dram = SimulatedCluster(degraded_memory(xeon_cluster(), 0.3))
    report("DRAM at 30% of nameplate bandwidth", model, slow_dram)


if __name__ == "__main__":
    main()
