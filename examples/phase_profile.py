"""Per-iteration phase profile of an execution (profiler's-eye view).

The paper's related work covers profilers (HPCToolkit, TAU, Scalasca-style
wait-state analysis); this example plays that role on the simulated
testbed: it runs a program with iteration tracing enabled and renders the
per-iteration compute / memory-stall / network timeline, making the
bulk-synchronous structure of Listing 1 visible — and showing where time
goes as the configuration changes.

Run:  python examples/phase_profile.py
"""

import numpy as np

from repro import Configuration, SimulatedCluster, sp_program, xeon_cluster


def render_profile(run, width: int = 60) -> str:
    """Render the mean iteration's phase split as a labelled bar."""
    trace = run.trace
    assert trace is not None
    compute = float(np.mean(trace.compute_s))
    memory = float(np.mean(trace.memory_s))
    network = float(np.mean(trace.network_s))
    iteration = float(np.mean(trace.iteration_s))
    other = max(0.0, iteration - compute - memory - network)

    total = compute + memory + network + other
    cells = {
        "C": compute,
        "M": memory,
        "N": network,
        ".": other,
    }
    bar = "".join(
        glyph * max(0, round(width * value / total)) for glyph, value in cells.items()
    )
    return (
        f"[{bar:<{width}}] iter={iteration * 1e3:7.1f} ms  "
        f"(C compute {compute / total:4.0%}, M memory {memory / total:4.0%}, "
        f"N network {network / total:4.0%}, . sync/imbalance {other / total:4.0%})"
    )


def main() -> None:
    testbed = SimulatedCluster(xeon_cluster())
    program = sp_program()
    fmax = testbed.spec.node.core.fmax

    print(f"{program.name} on {testbed.spec.name}: mean-iteration phase profile\n")
    for n, c in [(1, 1), (1, 8), (2, 8), (4, 8), (8, 8)]:
        run = testbed.run(
            program, Configuration(n, c, fmax), collect_trace=True
        )
        print(f"(n={n},c={c},f=1.8GHz)")
        print("  " + render_profile(run))

    # iteration-to-iteration variability at one configuration
    run = testbed.run(program, Configuration(4, 8, fmax), collect_trace=True)
    trace = run.trace
    assert trace is not None
    iters = np.asarray(trace.iteration_s)
    print(
        f"\niteration time variability at (4,8,1.8): "
        f"mean {iters.mean() * 1e3:.1f} ms, "
        f"p95/p5 = {np.percentile(iters, 95) / np.percentile(iters, 5):.2f} "
        "(OS jitter + barrier skew)"
    )


if __name__ == "__main__":
    main()
