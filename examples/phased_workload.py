"""Phase-level modeling: compose a mini-app from kernels and plan DVFS.

Builds a two-kernel lattice-Boltzmann-style mini-app — a compute-dense
*collide* and a memory-streaming *stream* — then:

1. composes the aggregate HybridProgram (what counters would measure) and
   characterizes it end to end on the simulated Xeon testbed;
2. places each kernel on the machine roofline individually, exposing the
   binding phase that the aggregate arithmetic intensity hides;
3. derives a per-phase frequency plan from the energy roofline: the
   stream phase runs at low frequency nearly for free (its memory roof
   doesn't move), while collide keeps fmax.

Run:  python examples/phased_workload.py
"""

from repro import (
    Configuration,
    HybridProgramModel,
    InstructionMix,
    SimulatedCluster,
    xeon_cluster,
)
from repro.units import MIB, joules_to_kj
from repro.workloads import Phase, compose, phase_frequency_plan, phase_placements
from repro.workloads.base import CommunicationModel, InputClass


def build_phases() -> list[Phase]:
    """A D3Q19-flavoured LBM iteration: collide then stream."""
    return [
        Phase(
            name="collide",
            instructions=1.6e9,
            dram_bytes=6e7,
            mix=InstructionMix(flops=0.62, mem=0.18, branch=0.08, other=0.12),
        ),
        Phase(
            name="stream",
            instructions=3.5e8,
            dram_bytes=5.5e8,
            mix=InstructionMix(flops=0.08, mem=0.72, branch=0.08, other=0.12),
        ),
    ]


def main() -> None:
    phases = build_phases()
    program = compose(
        "LBM-MINI",
        phases,
        classes={"W": InputClass("W", iterations=300, size_factor=1.0)},
        reference_class="W",
        comm=CommunicationModel(
            msgs_ref=12.0, bytes_ref=2.0e6, msg_count_exponent=0.0,
            decomposition_exponent=2.0 / 3.0,
        ),
        working_set_bytes=96 * MIB,
        thread_imbalance=0.03,
    )

    spec = xeon_cluster()
    print("per-phase roofline placement (c=8, fmax):")
    for placement in phase_placements(spec, phases, working_set_bytes=96 * MIB):
        p = placement.phase
        print(
            f"  {p.name:8s} AI={placement.effective_ai:6.2f} instr/B "
            f"-> {placement.bound}-bound, "
            f"min share {placement.min_time_share_s * 1e3:.1f} ms/iter"
        )

    plan = phase_frequency_plan(
        spec, phases, working_set_bytes=96 * MIB, max_slowdown=0.05
    )
    print("\nper-phase frequency plan (<=5% bound-level slowdown):")
    for name, f in plan.frequencies_hz.items():
        print(f"  {name:8s} -> {f / 1e9:g} GHz")
    print(
        f"  bound-level effect: {plan.energy_saving_fraction:+.1%} energy at "
        f"{plan.slowdown_fraction:+.1%} time"
    )

    testbed = SimulatedCluster(spec)
    print("\ncharacterizing the composed program ...")
    model = HybridProgramModel.from_measurements(testbed, program)
    for n, c in [(1, 8), (4, 8)]:
        pred = model.predict(Configuration(n, c, spec.node.core.fmax))
        print(
            f"  ({n},{c},1.8): T = {pred.time_s:6.1f} s, "
            f"E = {joules_to_kj(pred.energy_j):5.2f} kJ, UCR = {pred.ucr:.2f}"
        )


if __name__ == "__main__":
    main()
