"""Quickstart: characterize a program, predict configurations, pick one.

This walks the paper's workflow end to end in ~40 lines:

1. stand up the (simulated) 8-node Xeon testbed;
2. characterize the SP solver on it — baseline counter sweep, mpiP
   communication profile, NetPIPE, power micro-benchmarks;
3. predict time/energy/UCR for a few configurations;
4. find the minimum-energy configuration that meets a deadline.

Run:  python examples/quickstart.py
"""

from repro import (
    ConfigSpace,
    Configuration,
    HybridProgramModel,
    SimulatedCluster,
    evaluate_space,
    min_energy_within_deadline,
    sp_program,
    xeon_cluster,
)
from repro.units import joules_to_kj


def main() -> None:
    # 1. the testbed (a discrete-event simulator standing in for hardware)
    testbed = SimulatedCluster(xeon_cluster())

    # 2. measurement-driven characterization -> analytical model
    print("characterizing SP on the Xeon cluster ...")
    model = HybridProgramModel.from_measurements(testbed, sp_program())

    # 3. point predictions
    print("\npredictions (n, c, f[GHz]) -> T, E, UCR")
    for n, c, f_ghz in [(1, 1, 1.2), (1, 8, 1.8), (4, 8, 1.8), (8, 8, 1.8)]:
        pred = model.predict(Configuration(n, c, f_ghz * 1e9))
        print(
            f"  ({n},{c},{f_ghz}): T = {pred.time_s:7.1f} s,  "
            f"E = {joules_to_kj(pred.energy_j):6.2f} kJ,  UCR = {pred.ucr:.2f}"
        )

    # 4. deadline query over the whole physical configuration space
    space = ConfigSpace.physical(testbed.spec)
    evaluation = evaluate_space(model, space)
    deadline = 60.0
    best = min_energy_within_deadline(evaluation, deadline)
    assert best is not None
    print(
        f"\nminimum-energy configuration meeting a {deadline:.0f}s deadline: "
        f"{best.config} -> T = {best.time_s:.1f} s, "
        f"E = {joules_to_kj(best.energy_j):.2f} kJ"
    )


if __name__ == "__main__":
    main()
