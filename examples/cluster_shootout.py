"""Cross-cluster shoot-out: Xeon vs ARM for each of the five programs.

The paper chose its two validation clusters for their "diverse time-energy
performance".  This example quantifies the diversity: for every program it
builds both clusters' models, forms the combined Pareto frontier, and
reports which machine owns the trade-off — plus the roofline placements
that explain why.

Run:  python examples/cluster_shootout.py
"""

from repro import (
    ConfigSpace,
    HybridProgramModel,
    SimulatedCluster,
    all_programs,
    arm_cluster,
    evaluate_space,
    xeon_cluster,
)
from repro.analysis.compare import ClusterComparison
from repro.core.roofline import node_roofline, place_workload
from repro.units import joules_to_kj


def main() -> None:
    testbeds = {
        "xeon": SimulatedCluster(xeon_cluster()),
        "arm": SimulatedCluster(arm_cluster()),
    }

    print("machine balance points (AI where memory and compute roofs meet):")
    for name, testbed in testbeds.items():
        spec = testbed.spec
        roof = node_roofline(spec, spec.node.max_cores, spec.node.core.fmax)
        print(f"  {name}: {roof.balance_ai:.2f} abstract instr / DRAM byte")

    for program in all_programs():
        evaluations = {}
        for name, testbed in testbeds.items():
            model = HybridProgramModel.from_measurements(testbed, program)
            evaluations[name] = evaluate_space(
                model, ConfigSpace.physical(testbed.spec)
            )
        comparison = ClusterComparison(evaluations)
        share = comparison.frontier_share()
        fastest = comparison.combined_frontier()[0]
        cheapest = comparison.combined_frontier()[-1]

        placements = {
            name: place_workload(testbed.spec, program)
            for name, testbed in testbeds.items()
        }
        print(f"\n{program.name} ({program.domain}):")
        print(
            "  roofline: "
            + ", ".join(
                f"{name} AI={p.ai:.2f} ({p.bound}-bound)"
                for name, p in placements.items()
            )
        )
        print(
            f"  frontier share: "
            + ", ".join(f"{k}={v}" for k, v in share.items())
        )
        print(
            f"  fastest : {fastest.cluster} {fastest.prediction.config} "
            f"T={fastest.time_s:.1f}s E={joules_to_kj(fastest.energy_j):.2f}kJ"
        )
        print(
            f"  cheapest: {cheapest.cluster} {cheapest.prediction.config} "
            f"T={cheapest.time_s:.1f}s E={joules_to_kj(cheapest.energy_j):.2f}kJ"
        )
        crossover = comparison.crossover_deadline()
        if crossover is not None:
            print(f"  winner flips at deadline ~ {crossover:.0f}s")
        else:
            print(f"  one machine owns the whole frontier")


if __name__ == "__main__":
    main()
