"""Scalability diagnostics: strong/weak scaling, Amdahl, Karp-Flatt.

Runs the classic scalability playbook on model predictions for two
contrasting programs — SP (halo exchange: per-process communication
shrinks with n) and CP (all-to-all: per-process message count grows with
n) — and shows how the diagnostics tell them apart:

* SP's Karp-Flatt curve *falls* after the n=1->2 startup cost: the
  overhead amortizes, strong scaling keeps paying off;
* CP's curve *rises*: overhead grows with parallelism, a contention
  signature no fixed serial fraction can explain;
* weak scaling (Gustafson) stays near-flat for both while the work grows
  n-fold;
* the energy-vs-parallelism sweep answers Woo & Lee's question: the
  joule-optimal node count is far below the time-optimal one.

Run:  python examples/scaling_study.py
"""

from repro import HybridProgramModel, SimulatedCluster, cp_program, sp_program, xeon_cluster
from repro.core.scaling import (
    energy_optimal_parallelism,
    fit_amdahl,
    karp_flatt,
    strong_scaling,
    weak_scaling,
)
from repro.units import joules_to_kj

NODE_COUNTS = (1, 2, 4, 8, 16, 32)


def study(model, name: str) -> None:
    strong = strong_scaling(model, NODE_COUNTS, cores=8, frequency_hz=1.8e9)
    print(f"\n{name}: strong scaling (c=8, f=1.8 GHz)")
    print("  n    T[s]   speedup  efficiency   E[kJ]")
    for p in strong:
        print(
            f"  {p.nodes:3d} {p.time_s:7.1f} {p.speedup:8.2f} "
            f"{p.efficiency:10.2f} {joules_to_kj(p.energy_j):7.2f}"
        )
    print(f"  Amdahl fit: apparent serial fraction s = {fit_amdahl(strong):.3f}")
    kf = karp_flatt(strong)
    trend = "rising (growing overhead)" if kf[-1] > kf[0] else "falling (amortizing startup)"
    print(f"  Karp-Flatt: {['%.3f' % v for v in kf]} -> {trend}")

    best = energy_optimal_parallelism(strong)
    fastest = min(strong, key=lambda p: p.time_s)
    print(
        f"  joule-optimal n = {best.nodes} "
        f"({joules_to_kj(best.energy_j):.2f} kJ) vs time-optimal n = "
        f"{fastest.nodes} ({joules_to_kj(fastest.energy_j):.2f} kJ)"
    )

    weak = weak_scaling(model, (1, 2, 4, 8), cores=8, frequency_hz=1.8e9)
    print("  weak scaling (work grows with n): "
          + ", ".join(f"n={p.nodes}: {p.time_s:.1f}s" for p in weak))


def main() -> None:
    testbed = SimulatedCluster(xeon_cluster())
    for program in (sp_program(), cp_program()):
        print(f"characterizing {program.name} ...")
        model = HybridProgramModel.from_measurements(testbed, program)
        study(model, program.name)


if __name__ == "__main__":
    main()
