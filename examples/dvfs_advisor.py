"""Phase-aware DVFS advice on top of the model (paper §II-A conjunction).

The paper notes that runtime DVFS techniques "can be used in conjunction
with our proposed approach".  This example shows the conjunction: for each
interesting configuration of CP on the ARM cluster,

1. decompose the measured memory stalls into their cache (cycle-bound) and
   DRAM (time-bound) components using only the baseline (c, f) sweep;
2. predict the time/energy effect of throttling stalled cores to each
   lower DVFS point;
3. recommend the schedule that minimizes energy within a slowdown budget;
4. verify the recommendation against the simulated testbed (which
   implements stall-phase throttling natively).

Run:  python examples/dvfs_advisor.py
"""

from repro import Configuration, HybridProgramModel, SimulatedCluster, arm_cluster, cp_program
from repro.core.dvfs import advise_stall_dvfs, decompose_stalls
from repro.units import joules_to_kj


def main() -> None:
    testbed = SimulatedCluster(arm_cluster())
    program = cp_program()
    print("characterizing CP on the ARM cluster ...")
    model = HybridProgramModel.from_measurements(testbed, program)

    print("\nmeasured stall decomposition (from the baseline sweep alone):")
    for c in (1, 2, 4):
        split = decompose_stalls(model, c)
        print(
            f"  c={c}: cache-bound {split.cache_cycles:.3g} cycles, "
            f"DRAM-bound {split.dram_seconds:.3g} s (per core)"
        )

    print("\nadvice (max 15% slowdown) and simulator verification:")
    for n, c, f_ghz in [(1, 4, 1.4), (4, 4, 1.4), (8, 4, 1.4), (1, 2, 1.1)]:
        cfg = Configuration(n, c, f_ghz * 1e9)
        advice = advise_stall_dvfs(model, cfg, max_slowdown=0.15)
        f_s = advice.best.stall_frequency_hz

        static_run = testbed.run(program, cfg, run_index=0)
        dvfs_run = testbed.run(program, cfg, run_index=0, stall_frequency_hz=f_s)
        saved = static_run.energy.total_j - dvfs_run.energy.total_j

        print(
            f"  {cfg}: throttle stalls to {f_s / 1e9:g} GHz -> "
            f"model saves {advice.energy_saving_j:6.0f} J "
            f"({advice.slowdown:+.1%} time); "
            f"testbed confirms {saved:6.0f} J "
            f"({dvfs_run.wall_time_s / static_run.wall_time_s - 1:+.1%} time)"
        )

    print(
        "\ninterpretation: memory-stall phases burn near-active power at "
        "high f; clocking them down trades a bounded slowdown (the cache-"
        "stall cycles stretch) for a large cut in stall power."
    )


if __name__ == "__main__":
    main()
