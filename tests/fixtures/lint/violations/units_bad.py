"""Violation fixture for RL001: raw conversion literals."""

from __future__ import annotations


def to_hz(ghz_value: float) -> float:
    """Convert GHz to Hz with a magic literal (flagged)."""
    return ghz_value * 1e9


def to_megabits(bytes_per_s: float) -> float:
    """Bit/byte conversion with magic literals (flagged twice)."""
    return bytes_per_s * 8 / 1e6


def capacity_gib(capacity_bytes: float) -> float:
    """Binary size factor spelled as a power (flagged)."""
    return capacity_bytes / 2**30


def is_gigabit(bits_per_s: float) -> bool:
    """Comparison against a conversion factor (flagged)."""
    return bits_per_s >= 1e9
