"""Violation fixture for RL002: entropy and wall-clock sources."""

from __future__ import annotations

import random
import time

import numpy as np


def jitter() -> float:
    """Stdlib global generator (flagged)."""
    return random.random()


def noise(n: int) -> list[float]:
    """Unseeded numpy generator (flagged)."""
    gen = np.random.default_rng()
    return [float(x) for x in gen.random(n)]


def stamp() -> float:
    """Wall-clock timestamp that can key results (flagged)."""
    return time.time()
