"""Violation fixture for RL004: non-atomic checkpoint writes."""

from __future__ import annotations

import json


def save_checkpoint(checkpoint_path: str, payload: dict[str, float]) -> None:
    """Bare truncating write straight onto the checkpoint (flagged)."""
    with open(checkpoint_path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)


def append_cache_entry(cache_file: str, line: str) -> None:
    """Append-mode write onto a cache file (flagged)."""
    with open(cache_file, "a", encoding="utf-8") as fh:
        fh.write(line)
