"""RL007 fixture: guarded state accessed without its declared lock."""

import threading

_TOTALS_LOCK = threading.Lock()
_TOTALS = {}  # guarded-by: _TOTALS_LOCK


class SharedCounter:
    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0  # guarded-by: _lock

    def bump(self):
        with self._lock:
            self.value += 1

    def racy_read(self):
        return self.value  # missing 'with self._lock:'


def record(key):
    _TOTALS[key] = _TOTALS.get(key, 0) + 1  # missing 'with _TOTALS_LOCK:'


def totals_snapshot():
    with _TOTALS_LOCK:
        return dict(_TOTALS)  # correctly locked
