"""RL008 fixture: opposite-order lock nesting and an await under a lock."""

import asyncio
import threading

_MODELS_LOCK = threading.Lock()
_STATS_LOCK = threading.Lock()


def refresh_models():
    with _MODELS_LOCK:
        with _STATS_LOCK:  # order: models -> stats
            pass


def snapshot_stats():
    with _STATS_LOCK:
        with _MODELS_LOCK:  # order: stats -> models (closes the cycle)
            pass


async def publish():
    with _STATS_LOCK:
        await asyncio.sleep(0)  # event loop parks while holding the lock
