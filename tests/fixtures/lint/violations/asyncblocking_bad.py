"""RL006 fixture: blocking calls reachable from ``async def`` bodies."""

import asyncio
import time


def _load(path):
    # Blocking file IO two hops below the coroutine.
    with open(path) as fh:
        return fh.read()


def _prepare(path):
    return _load(path)


async def fetch(path):
    data = _prepare(path)  # transitively blocking: _prepare -> _load -> open
    await asyncio.sleep(0)
    return data


async def nap():
    time.sleep(0.1)  # directly blocking on the event loop


async def fine(path):
    # The sanctioned shape: the blocking chain runs in a worker thread.
    return await asyncio.to_thread(_prepare, path)
