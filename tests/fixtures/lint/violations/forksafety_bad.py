"""Violation fixture for RL003: worker-side global mutation."""

from __future__ import annotations

_RESULTS: dict[int, float] = {}
_CALLS: list[int] = []


def _record(key: int, value: float) -> None:
    """Helper reachable from the worker (both mutations flagged)."""
    _RESULTS[key] = value
    _CALLS.append(key)


def worker_shard(shard: list[float]) -> float:
    """Worker entry point that leaks state into module globals."""
    total = sum(shard)
    _record(len(shard), total)
    return total


def run(pool: object, shards: list[list[float]]) -> list[float]:
    """Dispatch the impure worker over a pool."""
    futures = [pool.submit(worker_shard, shard) for shard in shards]  # type: ignore[attr-defined]
    return [f.result() for f in futures]
