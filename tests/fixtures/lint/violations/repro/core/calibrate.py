"""Violation fixture for RL005: a package-shaped ``repro.core.calibrate``.

Linted with this fixture tree as the root, this file's dotted module
name is ``repro.core.calibrate``, so the default
``DEFAULT_OBS_ENTRY_POINTS`` contract applies — and ``calibrate`` below
carries no :mod:`repro.obs` span, which must be flagged.
"""

from __future__ import annotations


def calibrate(model: object, probes: list[object]) -> object:
    """Uninstrumented pipeline entry point (flagged by RL005)."""
    return {"model": model, "probes": len(probes)}
