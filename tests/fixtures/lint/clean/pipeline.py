"""Clean fixture: a module compliant with every reprolint rule.

Unit conversions go through :mod:`repro.units`, randomness through
:mod:`repro.rng`, checkpoint writes use tmp+rename, and no module-level
global is mutated from a worker.
"""

from __future__ import annotations

import json
import os
import pathlib

from repro import rng
from repro.units import GIB, ghz, to_ghz


def frequency_label(frequency_hz: float) -> str:
    """Format a frequency using the units helpers (RL001-clean)."""
    return f"{to_ghz(frequency_hz):g} GHz"


def default_frequency() -> float:
    """A nominal 2.5 GHz clock, converted through repro.units."""
    return ghz(2.5)


def memory_budget_bytes(gib: int) -> float:
    """A count of GiB units is not a conversion (RL001-clean)."""
    return gib * GIB


def draw(seed: int, n: int) -> list[float]:
    """Deterministic draws from a named stream (RL002-clean)."""
    stream = rng.derive(seed, "fixture.draw")
    return [float(x) for x in stream.random(n)]


def save_checkpoint(checkpoint_path: str, payload: dict[str, float]) -> None:
    """Atomic checkpoint write: temp file, then rename (RL004-clean)."""
    tmp = pathlib.Path(str(checkpoint_path) + ".tmp")
    tmp.write_text(json.dumps(payload))
    os.replace(tmp, checkpoint_path)


def shard_sum(shard: list[float]) -> float:
    """Worker entry point: pure, state in / result out (RL003-clean)."""
    return sum(shard)


def run_sharded(pool: object, shards: list[list[float]]) -> list[float]:
    """Dispatch pure workers over a pool."""
    futures = [pool.submit(shard_sum, shard) for shard in shards]  # type: ignore[attr-defined]
    return [f.result() for f in futures]
