"""Property tests: the energy model's algebraic structure (Eqs. 8-12)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.energy_model import predict_energy
from repro.core.time_model import TimeBreakdown
from repro.machines.power import PowerTable

_GRID = [(c, f) for c in (1, 2, 4, 8) for f in (1.0e9, 2.0e9)]

time_st = st.floats(0.0, 1e4, allow_nan=False, allow_infinity=False)
power_st = st.floats(0.1, 100.0, allow_nan=False)


def make_table(p_act, p_stall, p_mem, p_net, p_idle):
    return PowerTable(
        core_active_w={k: p_act for k in _GRID},
        core_stall_w={k: p_stall for k in _GRID},
        mem_w=p_mem,
        net_w=p_net,
        sys_idle_w=p_idle,
    )


def make_time(t_cpu, t_mem, t_net_s, t_net_w):
    return TimeBreakdown(
        t_cpu_s=t_cpu,
        t_mem_s=t_mem,
        t_net_service_s=t_net_s,
        t_net_wait_s=t_net_w,
        utilization_baseline=0.9,
        rho_network=0.0,
    )


@given(time_st, time_st, time_st, time_st, power_st, power_st, power_st, power_st, power_st)
@settings(max_examples=150)
def test_linearity_in_nodes(t1, t2, t3, t4, pa, ps, pm, pn, pi):
    table = make_table(pa, ps, pm, pn, pi)
    time = make_time(t1, t2, t3, t4)
    e1 = predict_energy(table, time, 1, 2, 1.0e9)
    e8 = predict_energy(table, time, 8, 2, 1.0e9)
    assert e8.total_j == pytest.approx(8 * e1.total_j, rel=1e-9, abs=1e-9)


@given(time_st, time_st, power_st, power_st, power_st)
@settings(max_examples=100)
def test_linearity_in_time_scaling(t_cpu, t_mem, pa, ps, pi):
    table = make_table(pa, ps, 1.0, 1.0, pi)
    base = predict_energy(table, make_time(t_cpu, t_mem, 0, 0), 1, 4, 1.0e9)
    doubled = predict_energy(
        table, make_time(2 * t_cpu, 2 * t_mem, 0, 0), 1, 4, 1.0e9
    )
    assert doubled.total_j == pytest.approx(2 * base.total_j, rel=1e-9, abs=1e-9)


@given(time_st, time_st, time_st, time_st, power_st, power_st, power_st, power_st, power_st)
@settings(max_examples=150)
def test_components_nonnegative_and_sum(t1, t2, t3, t4, pa, ps, pm, pn, pi):
    table = make_table(pa, ps, pm, pn, pi)
    e = predict_energy(table, make_time(t1, t2, t3, t4), 2, 4, 2.0e9)
    assert e.cpu_j >= 0 and e.mem_j >= 0 and e.net_j >= 0 and e.idle_j >= 0
    assert e.total_j == pytest.approx(
        e.cpu_j + e.mem_j + e.net_j + e.idle_j, rel=1e-12, abs=1e-9
    )


@given(time_st, time_st, power_st, power_st, power_st)
@settings(max_examples=100)
def test_monotone_in_power_parameters(t_cpu, t_mem, pa, ps, pi):
    lean = make_table(pa, ps, 1.0, 1.0, pi)
    rich = make_table(pa * 2, ps * 2, 2.0, 2.0, pi * 2)
    time = make_time(t_cpu, t_mem, 1.0, 1.0)
    assert (
        predict_energy(rich, time, 2, 2, 1.0e9).total_j
        >= predict_energy(lean, time, 2, 2, 1.0e9).total_j
    )


@given(time_st, time_st, time_st, time_st, power_st)
@settings(max_examples=100)
def test_idle_energy_tracks_total_time(t1, t2, t3, t4, pi):
    table = make_table(1.0, 1.0, 1.0, 1.0, pi)
    time = make_time(t1, t2, t3, t4)
    e = predict_energy(table, time, 3, 2, 1.0e9)
    assert e.idle_j == pytest.approx(pi * time.total_s * 3, rel=1e-9, abs=1e-9)