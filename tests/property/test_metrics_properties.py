"""Property tests: energy metrics and Pareto interaction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pareto import pareto_mask

positive = st.floats(1e-3, 1e6, allow_nan=False, allow_infinity=False)


@st.composite
def te_cloud(draw, min_size=2, max_size=64):
    n = draw(st.integers(min_size, max_size))
    times = np.array([draw(positive) for _ in range(n)])
    energies = np.array([draw(positive) for _ in range(n)])
    return times, energies


@given(te_cloud(), st.integers(1, 3))
@settings(max_examples=100)
def test_edp_optimum_is_pareto_member(cloud, weight):
    """min E*T^w always lies on the time-energy Pareto frontier."""
    times, energies = cloud
    scores = energies * times**weight
    best = int(np.argmin(scores))
    mask = pareto_mask(times, energies)
    # the optimum either is kept, or ties exactly with a kept duplicate
    if not mask[best]:
        kept = np.where(mask)[0]
        assert any(
            times[k] == times[best] and energies[k] == energies[best]
            for k in kept
        )


@given(te_cloud())
@settings(max_examples=100)
def test_heavier_delay_weight_never_slower(cloud):
    times, energies = cloud
    t1 = times[int(np.argmin(energies * times))]
    t2 = times[int(np.argmin(energies * times**2))]
    assert t2 <= t1 + 1e-12


@given(te_cloud())
@settings(max_examples=100)
def test_edp_scale_invariance(cloud):
    """Rescaling either axis rescales EDP but not the argmin."""
    times, energies = cloud
    base = int(np.argmin(energies * times))
    scaled = int(np.argmin((energies * 3.7) * (times * 0.2)))
    assert energies[base] * times[base] == pytest.approx(
        energies[scaled] * times[scaled]
    )