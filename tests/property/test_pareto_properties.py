"""Property-based tests of Pareto frontier extraction."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.pareto import pareto_mask

positive = st.floats(
    min_value=1e-3, max_value=1e6, allow_nan=False, allow_infinity=False
)


def point_cloud(min_size=1, max_size=128):
    return st.integers(min_size, max_size).flatmap(
        lambda n: st.tuples(
            hnp.arrays(np.float64, n, elements=positive),
            hnp.arrays(np.float64, n, elements=positive),
        )
    )


def is_dominated(i, times, energies):
    return bool(
        np.any(
            (times <= times[i])
            & (energies <= energies[i])
            & ((times < times[i]) | (energies < energies[i]))
        )
    )


@given(point_cloud())
@settings(max_examples=150)
def test_kept_points_are_non_dominated(cloud):
    times, energies = cloud
    mask = pareto_mask(times, energies)
    assert mask.any()  # at least one survivor
    for i in np.where(mask)[0]:
        assert not is_dominated(i, times, energies)


@given(point_cloud())
@settings(max_examples=150)
def test_excluded_points_are_dominated_or_duplicates(cloud):
    times, energies = cloud
    mask = pareto_mask(times, energies)
    kept = set(zip(times[mask], energies[mask]))
    for i in np.where(~mask)[0]:
        dominated = is_dominated(i, times, energies)
        duplicate = (times[i], energies[i]) in kept
        assert dominated or duplicate


@given(point_cloud(min_size=2))
@settings(max_examples=100)
def test_permutation_invariance(cloud):
    times, energies = cloud
    rng = np.random.default_rng(0)
    perm = rng.permutation(times.size)
    base = set(zip(times[pareto_mask(times, energies)], energies[pareto_mask(times, energies)]))
    shuffled_mask = pareto_mask(times[perm], energies[perm])
    shuffled = set(zip(times[perm][shuffled_mask], energies[perm][shuffled_mask]))
    assert base == shuffled


@given(point_cloud())
def test_global_minima_always_kept(cloud):
    times, energies = cloud
    mask = pareto_mask(times, energies)
    # the min-energy point always survives; a min-time point survives
    assert energies[mask].min() == energies.min()
    assert times[mask].min() == times.min()


@given(point_cloud(), positive, positive)
def test_scale_invariance(cloud, kt, ke):
    """Rescaling the axes does not change frontier membership."""
    times, energies = cloud
    base = pareto_mask(times, energies)
    scaled = pareto_mask(times * kt, energies * ke)
    assert np.array_equal(base, scaled)
