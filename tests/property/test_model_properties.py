"""Property-based tests of the analytical model's invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.time_model import predict_time
from repro.core.energy_model import predict_energy
from tests.unit.test_core_time_model import make_inputs

nodes_st = st.sampled_from([1, 2, 4, 8, 16, 64])
cores_st = st.sampled_from([1, 2, 4, 8])
freq_st = st.sampled_from([1.0e9, 2.0e9])
scale_st = st.floats(0.1, 16.0, allow_nan=False)


@given(nodes_st, cores_st, freq_st, scale_st)
@settings(max_examples=150, deadline=None)
def test_time_breakdown_always_valid(n, c, f, scale):
    inputs = make_inputs()
    t = predict_time(inputs, n, c, f, scale, 100)
    assert t.total_s > 0
    assert t.t_cpu_s > 0
    assert t.t_mem_s >= 0
    assert t.t_net_service_s >= 0
    assert t.t_net_wait_s >= 0
    assert 0 < t.ucr <= 1
    assert 0 <= t.rho_network < 1


@given(nodes_st, cores_st, freq_st)
@settings(max_examples=100, deadline=None)
def test_scale_monotone_in_work(n, c, f):
    inputs = make_inputs()
    small = predict_time(inputs, n, c, f, 1.0, 100)
    large = predict_time(inputs, n, c, f, 2.0, 100)
    assert large.total_s > small.total_s


@given(nodes_st, cores_st, freq_st, scale_st)
@settings(max_examples=100, deadline=None)
def test_energy_components_positive(n, c, f, scale):
    inputs = make_inputs()
    t = predict_time(inputs, n, c, f, scale, 100)
    e = predict_energy(inputs.power, t, n, c, f)
    assert e.total_j > 0
    assert e.idle_j > 0
    assert e.cpu_j > 0
    assert e.total_j == pytest.approx(e.cpu_j + e.mem_j + e.net_j + e.idle_j)


@given(nodes_st, cores_st, scale_st)
@settings(max_examples=100, deadline=None)
def test_higher_frequency_never_slower_when_comm_light(n, c, scale):
    """With frequency-invariant baseline cycle tables and light
    communication, raising f cannot slow the prediction down.  (Under
    heavy network load the speedup compresses the run and raises the
    offered message rate, so the queueing term can legitimately eat the
    gain — hence the light-traffic restriction.)"""
    inputs = make_inputs(volume_ref=1e3, eta_ref=1.0)
    slow = predict_time(inputs, n, c, 1.0e9, scale, 100)
    fast = predict_time(inputs, n, c, 2.0e9, scale, 100)
    assert fast.total_s <= slow.total_s * (1 + 1e-9)


@given(cores_st, freq_st, scale_st)
@settings(max_examples=100, deadline=None)
def test_single_node_time_is_cycle_arithmetic(c, f, scale):
    """For n = 1 the model is exactly Eqs. 2-7 — check against direct
    arithmetic."""
    inputs = make_inputs()
    art = inputs.artefacts(c, f)
    t = predict_time(inputs, 1, c, f, scale, 100)
    expected = (art.useful_cycles + art.mem_stall_cycles) * scale / f
    assert t.total_s == pytest.approx(expected)


@given(nodes_st, cores_st, freq_st, scale_st)
@settings(max_examples=100, deadline=None)
def test_deterministic(n, c, f, scale):
    inputs = make_inputs()
    a = predict_time(inputs, n, c, f, scale, 100)
    b = predict_time(inputs, n, c, f, scale, 100)
    assert a.total_s == b.total_s
