"""Property tests: pruned search == exhaustive search, always."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.configspace import ConfigSpace, evaluate_space
from repro.core.optimizer import min_energy_within_deadline, min_time_within_budget
from repro.core.search import (
    search_min_energy_within_deadline,
    search_min_time_within_budget,
)

_SPACE = ConfigSpace(
    node_counts=(1, 2, 4, 8, 16, 32, 64),
    core_counts=(1, 2, 4, 8),
    frequencies_hz=(1.2e9, 1.5e9, 1.8e9),
)

_suppress = [HealthCheck.function_scoped_fixture]


@pytest.fixture(scope="module")
def evaluation(xeon_sp_model):
    return evaluate_space(xeon_sp_model, _SPACE)


@given(fraction=st.floats(0.0, 1.0))
@settings(max_examples=40, deadline=None, suppress_health_check=_suppress)
def test_deadline_search_equivalence(fraction, xeon_sp_model, evaluation):
    times = evaluation.times_s
    deadline = float(
        times.min() * 0.5 + fraction * (times.max() * 1.2 - times.min() * 0.5)
    )
    expected = min_energy_within_deadline(evaluation, deadline)
    found, stats = search_min_energy_within_deadline(
        xeon_sp_model, _SPACE, deadline
    )
    if expected is None:
        assert found is None
    else:
        assert found is not None
        assert found.config == expected.config
    assert stats.evaluated <= stats.total


@given(fraction=st.floats(0.0, 1.0))
@settings(max_examples=40, deadline=None, suppress_health_check=_suppress)
def test_budget_search_equivalence(fraction, xeon_sp_model, evaluation):
    energies = evaluation.energies_j
    budget = float(
        energies.min() * 0.5
        + fraction * (energies.max() * 1.2 - energies.min() * 0.5)
    )
    expected = min_time_within_budget(evaluation, budget)
    found, stats = search_min_time_within_budget(xeon_sp_model, _SPACE, budget)
    if expected is None:
        assert found is None
    else:
        assert found is not None
        assert found.config == expected.config
    assert stats.evaluated <= stats.total


@given(fraction=st.floats(0.05, 1.0))
@settings(max_examples=20, deadline=None, suppress_health_check=_suppress)
def test_search_winner_is_feasible(fraction, xeon_sp_model, evaluation):
    deadline = float(np.quantile(evaluation.times_s, fraction))
    found, _ = search_min_energy_within_deadline(xeon_sp_model, _SPACE, deadline)
    if found is not None:
        assert found.time_s <= deadline