"""Property-based tests of simulator-level invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machines.spec import Configuration
from repro.machines.xeon import xeon_cluster
from repro.simulate.cluster import SimulatedCluster
from repro.workloads.synthetic import synthetic_program

# one shared simulator; hypothesis varies the configuration
_SIM = SimulatedCluster(xeon_cluster())
_PROG = synthetic_program(iterations=20, instructions_per_iteration=2e8)

config_st = st.builds(
    Configuration,
    nodes=st.sampled_from([1, 2, 4, 8]),
    cores=st.sampled_from([1, 2, 4, 8]),
    frequency_hz=st.sampled_from([1.2e9, 1.5e9, 1.8e9]),
)


@given(config_st)
@settings(max_examples=40, deadline=None)
def test_run_invariants(cfg):
    r = _SIM.run(_PROG, cfg)
    # accounting identities
    assert r.wall_time_s > 0
    assert r.phases.total_s == pytest.approx(r.wall_time_s, rel=1e-6)
    assert 0 < r.ucr < 1
    assert 0 < r.counters.utilization <= 1
    e = r.energy
    assert e.total_j == pytest.approx(
        e.cpu_active_j + e.cpu_stall_j + e.mem_j + e.net_j + e.idle_j
    )
    # physical power envelope
    idle_floor = _SIM.spec.node.power.sys_idle_w * r.wall_time_s * cfg.nodes
    peak = _SIM.spec.node.power.node_peak_w(cfg.cores, cfg.frequency_hz)
    assert idle_floor <= e.total_j <= peak * r.wall_time_s * cfg.nodes * 1.1


@given(config_st, st.integers(0, 5))
@settings(max_examples=30, deadline=None)
def test_runs_reproducible(cfg, run_index):
    a = _SIM.run(_PROG, cfg, run_index=run_index)
    b = _SIM.run(_PROG, cfg, run_index=run_index)
    assert a.wall_time_s == b.wall_time_s
    assert a.energy.total_j == b.energy.total_j
    assert a.counters.instructions == b.counters.instructions


@given(config_st)
@settings(max_examples=30, deadline=None)
def test_messages_only_with_multiple_nodes(cfg):
    r = _SIM.run(_PROG, cfg)
    if cfg.nodes == 1:
        assert r.messages.total_messages == 0
    else:
        assert r.messages.total_messages > 0
        assert r.messages.mean_message_bytes > 0
