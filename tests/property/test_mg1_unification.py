"""Unification properties of the shared M/G/1 helper (`repro.mg1`).

Three independent consumers — the scalar time model, the vectorized
engine, and the discrete-event simulator — must agree on Eq. 5:

* scalar `predict_time` and the vectorized lanes match at 1e-9 relative,
  through every queueing variant and across the saturation boundary;
* the simulator's empirical Lindley waits converge to the analytical
  `mg1_mean_wait` under Poisson arrivals and exponential service;
* division edge cases (bandwidth == 0, η == 0, U >= 1) behave
  identically in the scalar and vectorized paths.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import HybridProgramModel
from repro.core.configspace import ConfigSpace
from repro.core.params import NetworkCharacteristics
from repro.core.vectorized import evaluate_configs
from repro.machines.spec import Configuration, InstructionMix
from repro.mg1 import RHO_MAX, exponential_second_moment, mg1_mean_wait
from repro.simulate.queueing import lindley_waits
from repro.workloads.base import CommunicationModel, HybridProgram, InputClass
from tests.unit.test_core_time_model import make_inputs
from tests.unit.test_core_vectorized import RTOL, _rel_close, random_models, spaces_for

QUEUEING_MODES = ["bracketed", "mg1", "none"]


def synthetic_model(**inputs_kwargs) -> HybridProgramModel:
    """A HybridProgramModel over the synthetic `make_inputs` parameter set."""
    program = HybridProgram(
        name="TEST",
        suite="synthetic",
        language="n/a",
        domain="n/a",
        mix=InstructionMix(flops=0.25, mem=0.25, branch=0.25, other=0.25),
        classes={"W": InputClass("W", iterations=100, size_factor=1.0)},
        reference_class="W",
        instructions_per_iteration=1e6,
        dram_bytes_per_iteration=1e6,
        working_set_bytes=1e6,
        comm=CommunicationModel(
            msgs_ref=10.0,
            bytes_ref=1e4,
            msg_count_exponent=0.0,
            decomposition_exponent=1.0,
        ),
    )
    return HybridProgramModel(
        program=program, inputs=make_inputs(**inputs_kwargs)
    )


def _assert_lanes_match_scalar(model, space, queueing="bracketed"):
    """Every vectorized lane equals its scalar prediction at 1e-9."""
    vec = evaluate_configs(model, space, queueing=queueing, use_cache=False)
    saw_saturated = False
    for i, cfg in enumerate(space):
        expected = model.predict(cfg, queueing=queueing)
        assert _rel_close(float(vec.times_s[i]), expected.time_s)
        assert _rel_close(
            float(vec.t_net_wait_s[i]), expected.time.t_net_wait_s
        )
        assert _rel_close(float(vec.rho_network[i]), expected.time.rho_network)
        assert bool(vec.saturated[i]) == expected.time.saturated
        saw_saturated |= expected.time.saturated
    return saw_saturated


class TestScalarVectorizedWaits:
    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_waits_and_flags_agree(self, data):
        model = data.draw(random_models())
        space = data.draw(spaces_for(model))
        queueing = data.draw(st.sampled_from(QUEUEING_MODES))
        _assert_lanes_match_scalar(model, space, queueing)

    @pytest.mark.parametrize("queueing", ["bracketed", "mg1"])
    def test_agreement_across_saturation_boundary(self, queueing):
        """Sweeping comm volume from light to overwhelming walks lanes
        across ρ = RHO_MAX; scalar and vectorized must agree on both the
        waits and the saturated flag at every point."""
        saw_saturated = False
        saw_stable = False
        for volume_ref in (1e4, 1e7, 1e9, 1e11):
            model = synthetic_model(volume_ref=volume_ref, bandwidth=10e6)
            space = ConfigSpace((2, 4, 8), (1, 4), (1.0e9, 2.0e9))
            any_sat = _assert_lanes_match_scalar(model, space, queueing)
            saw_saturated |= any_sat
            saw_stable |= not any_sat
        assert saw_saturated, "sweep never reached the saturation clamp"
        assert saw_stable, "sweep never produced a stable queue"

    def test_saturated_flag_marks_clamped_fixed_points(self):
        """The clamp engaging along the fixed point sets the flag, and the
        converged load still settles below the clamp (the wire time keeps
        the equilibrium ρ away from RHO_MAX — see time_model)."""
        model = synthetic_model(volume_ref=1e11, bandwidth=10e6)
        cfg = Configuration(nodes=8, cores=4, frequency_hz=2.0e9)
        pred = model.predict(cfg, queueing="mg1")
        assert pred.time.saturated
        assert pred.time.rho_network <= RHO_MAX
        assert np.isfinite(pred.time_s)
        # a light-communication prediction never clamps
        light = synthetic_model(volume_ref=1e4).predict(cfg, queueing="mg1")
        assert not light.time.saturated

    def test_queueing_none_never_saturates(self):
        model = synthetic_model(volume_ref=1e11, bandwidth=10e6)
        space = ConfigSpace((1, 8), (4,), (2.0e9,))
        vec = evaluate_configs(model, space, queueing="none", use_cache=False)
        assert not vec.saturated.any()
        assert (vec.t_net_wait_s == 0.0).all()


class TestEdgeGuards:
    def test_zero_bandwidth_raises_identically(self):
        model = synthetic_model()
        model = model.with_inputs(
            dataclasses.replace(
                model.inputs,
                network=NetworkCharacteristics(
                    bandwidth_bytes_per_s=0.0, latency_floor_s=1e-4
                ),
            )
        )
        multi = Configuration(nodes=4, cores=1, frequency_hz=1.0e9)
        with pytest.raises(ValueError, match="bandwidth"):
            model.predict(multi)
        with pytest.raises(ValueError, match="bandwidth"):
            evaluate_configs(
                model, ConfigSpace((1, 4), (1,), (1.0e9,)), use_cache=False
            )
        # single-node spaces never touch the network: both paths succeed
        single = Configuration(nodes=1, cores=1, frequency_hz=1.0e9)
        scalar = model.predict(single)
        vec = evaluate_configs(
            model, ConfigSpace((1,), (1,), (1.0e9,)), use_cache=False
        )
        assert _rel_close(float(vec.times_s[0]), scalar.time_s)

    def test_zero_eta_with_multiple_nodes(self):
        """η == 0 (a program that never communicates): finite, equal,
        and free of 0/0 artifacts in both paths."""
        model = synthetic_model(eta_ref=0.0, volume_ref=0.0)
        space = ConfigSpace((1, 2, 8), (1, 4), (1.0e9,))
        for queueing in QUEUEING_MODES:
            vec = evaluate_configs(
                model, space, queueing=queueing, use_cache=False
            )
            assert np.isfinite(vec.times_s).all()
            _assert_lanes_match_scalar(model, space, queueing)

    def test_full_utilization_clamps_slack(self):
        """U >= 1 (counter noise) must not produce negative service time."""
        for utilization in (1.0, 1.05):
            model = synthetic_model(utilization=utilization)
            space = ConfigSpace((2, 4), (1, 8), (1.0e9, 2.0e9))
            vec = evaluate_configs(model, space, use_cache=False)
            assert (vec.t_net_service_s >= 0.0).all()
            _assert_lanes_match_scalar(model, space)


class TestSimulatorConvergence:
    """The empirical side of the unification: FIFO-queue waits resolved by
    the simulator's Lindley recursion converge to the analytical
    `mg1_mean_wait` the model uses — same function, same convention."""

    @pytest.mark.parametrize("rho", [0.3, 0.5, 0.7])
    def test_mm1_empirical_wait_matches_pk(self, rho):
        rng = np.random.default_rng(1234)
        n = 400_000
        mean_service = 1.0
        lam = rho / mean_service
        arrivals = np.cumsum(rng.exponential(1.0 / lam, size=n))
        services = rng.exponential(mean_service, size=n)
        empirical = lindley_waits(arrivals, services)[n // 10 :].mean()
        analytical = mg1_mean_wait(
            lam, mean_service, exponential_second_moment(mean_service)
        )
        assert empirical == pytest.approx(analytical, rel=0.08)

    def test_md1_empirical_wait_matches_pk(self):
        """Deterministic service: E[y²] = ŷ² — half the M/M/1 wait, which
        only the true P-K form (explicit second moment) can express."""
        rng = np.random.default_rng(99)
        n = 400_000
        rho, mean_service = 0.6, 1.0
        lam = rho / mean_service
        arrivals = np.cumsum(rng.exponential(1.0 / lam, size=n))
        services = np.full(n, mean_service)
        empirical = lindley_waits(arrivals, services)[n // 10 :].mean()
        analytical = mg1_mean_wait(lam, mean_service, mean_service**2)
        assert empirical == pytest.approx(analytical, rel=0.08)
        # and it is half the exponential-service wait, as theory demands
        assert analytical == pytest.approx(
            mg1_mean_wait(
                lam, mean_service, exponential_second_moment(mean_service)
            )
            / 2.0
        )

    def test_saturated_server_diverges(self):
        """ρ >= 1: the analytical wait is inf and the empirical wait grows
        without bound — the theory convention, not the predictor clamp."""
        assert mg1_mean_wait(1.2, 1.0, 2.0) == float("inf")
        rng = np.random.default_rng(7)
        lam, mean_service = 1.2, 1.0
        waits = []
        for n in (10_000, 40_000):
            arrivals = np.cumsum(rng.exponential(1.0 / lam, size=n))
            services = rng.exponential(mean_service, size=n)
            waits.append(lindley_waits(arrivals, services).mean())
        assert waits[1] > 2.0 * waits[0]  # linear growth in run length


class TestPinnedRegression:
    """The ISSUE acceptance pin: scalar == vectorized == queueing module
    at 1e-9 relative, including the saturation boundary."""

    def test_three_way_pin(self):
        for volume_ref, queueing in [
            (1e7, "bracketed"),
            (1e9, "mg1"),
            (1e11, "mg1"),  # saturated
        ]:
            model = synthetic_model(volume_ref=volume_ref, bandwidth=10e6)
            cfg = Configuration(nodes=8, cores=4, frequency_hz=2.0e9)
            scalar = model.predict(cfg, queueing=queueing).time

            space = ConfigSpace((8,), (4,), (2.0e9,))
            vec = evaluate_configs(
                model, space, queueing=queueing, use_cache=False
            )
            assert _rel_close(float(vec.t_net_wait_s[0]), scalar.t_net_wait_s)
            assert bool(vec.saturated[0]) == scalar.saturated

            # reconstruct the converged wait through the queueing module's
            # re-exported helper: identical function, identical number
            inputs = model.inputs
            eta_total = inputs.comm.eta(8) * 100
            volume_total = inputs.comm.volume(8) * 100
            y_mean = (
                volume_total / eta_total
            ) / inputs.network.bandwidth_bytes_per_s
            lam = eta_total / scalar.total_s
            from repro.simulate import queueing as qmod

            wait = eta_total * qmod.mg1_mean_wait(
                lam,
                y_mean,
                exponential_second_moment(y_mean),
                rho_max=RHO_MAX,
            )
            if queueing == "bracketed":
                drain = eta_total * y_mean
                wait = min(max(wait, 0.5 * drain), drain)
            assert scalar.t_net_wait_s == pytest.approx(wait, rel=1e-6)
