"""Property-based tests of the Lindley queueing machinery."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.simulate.queueing import lindley_waits, lindley_waits_loop, mg1_mean_wait

finite = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)


def request_batch(min_size=1, max_size=64):
    """Random (sorted arrivals, services) pair."""
    return st.integers(min_size, max_size).flatmap(
        lambda n: st.tuples(
            hnp.arrays(np.float64, n, elements=finite),
            hnp.arrays(
                np.float64,
                n,
                elements=st.floats(0.0, 1e3, allow_nan=False, allow_infinity=False),
            ),
        )
    )


@given(request_batch())
@settings(max_examples=200)
def test_vectorized_matches_scalar_reference(batch):
    arrivals, services = batch
    arrivals = np.sort(arrivals)
    assert np.allclose(
        lindley_waits(arrivals, services),
        lindley_waits_loop(arrivals, services),
        rtol=1e-9,
        atol=1e-6,
    )


@given(request_batch())
def test_waits_nonnegative(batch):
    arrivals, services = batch
    waits = lindley_waits(np.sort(arrivals), services)
    assert np.all(waits >= 0.0)


@given(request_batch(), st.floats(0.1, 100.0, allow_nan=False))
def test_time_scaling_invariance(batch, k):
    """Scaling all times by k scales all waits by k."""
    arrivals, services = batch
    arrivals = np.sort(arrivals)
    base = lindley_waits(arrivals, services)
    scaled = lindley_waits(arrivals * k, services * k)
    assert np.allclose(scaled, base * k, rtol=1e-6, atol=1e-6)


@given(request_batch(), st.floats(0.0, 1e5, allow_nan=False))
def test_arrival_shift_invariance(batch, shift):
    """Shifting every arrival by a constant leaves waits unchanged."""
    arrivals, services = batch
    arrivals = np.sort(arrivals)
    base = lindley_waits(arrivals, services)
    shifted = lindley_waits(arrivals + shift, services)
    assert np.allclose(shifted, base, rtol=1e-9, atol=1e-6)


@given(request_batch())
def test_longer_service_never_reduces_waits(batch):
    """Monotonicity: inflating any service time cannot reduce any wait."""
    arrivals, services = batch
    arrivals = np.sort(arrivals)
    base = lindley_waits(arrivals, services)
    inflated = lindley_waits(arrivals, services * 1.5 + 0.1)
    assert np.all(inflated >= base - 1e-9)


@given(request_batch())
def test_first_request_never_waits(batch):
    arrivals, services = batch
    waits = lindley_waits(np.sort(arrivals), services)
    assert waits[0] == 0.0


@given(
    st.floats(0.01, 0.99, allow_nan=False),
    st.floats(1e-6, 10.0, allow_nan=False),
)
def test_mg1_wait_positive_below_saturation(rho, y):
    lam = rho / y
    w = mg1_mean_wait(lam, y, 2 * y * y)
    assert np.isfinite(w)
    assert w >= 0.0


@given(st.floats(1e-6, 10.0, allow_nan=False))
def test_mg1_wait_increases_with_load(y):
    lam_low = 0.2 / y
    lam_high = 0.8 / y
    assert mg1_mean_wait(lam_high, y, 2 * y * y) > mg1_mean_wait(
        lam_low, y, 2 * y * y
    )
