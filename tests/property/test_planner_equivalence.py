"""Property suite: streamed == materialized == sharded, always.

The planner's hard contract (docs/PLANNER.md): block-streamed execution
returns results bit-identical to the materialized broadcast engine for
any machine/workload/grid/budget tuple — including degenerate grids —
and the streaming reductions (top-k, running Pareto) select exactly the
indices the materialized reference selects.  The scalar strategy agrees
to the repo-wide 1e-9 relative tolerance.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import planner
from repro.core.cache import ARRAY_FIELDS
from repro.core.configspace import ConfigSpace
from repro.core.parallel import ExecutionPlan, evaluate_plan
from repro.core.pareto import pareto_mask
from repro.core.planner import (
    WORKING_BYTES_PER_CONFIG,
    evaluate_space_streamed,
    stream_pareto,
    stream_topk,
)
from repro.core.vectorized import _compute
from tests.unit.test_core_vectorized import random_models, spaces_for

RTOL = 1e-9

_suppress = [HealthCheck.function_scoped_fixture, HealthCheck.too_slow]

#: A fixed grid for the reduction properties (the model stays the
#: session-characterized one; the draws vary k, constraints and budget).
_SPACE = ConfigSpace(
    node_counts=(1, 2, 3, 5, 8, 13),
    core_counts=(1, 2, 8),
    frequencies_hz=(1.2e9, 1.8e9, 2.4e9),
)

#: Block budgets spanning one-config blocks to whole-space blocks.
_budgets = st.integers(min_value=1, max_value=40).map(
    lambda blocks: blocks * WORKING_BYTES_PER_CONFIG + 1
)


def _assert_bit_identical(a, b):
    for name in ARRAY_FIELDS:
        np.testing.assert_array_equal(
            np.asarray(getattr(a, name)),
            np.asarray(getattr(b, name)),
            err_msg=name,
        )


# ----------------------------------------------------------------------
# streamed == materialized, random machines/workloads/grids/budgets
# ----------------------------------------------------------------------


@given(data=st.data())
@settings(deadline=None, suppress_health_check=_suppress)
def test_streamed_matches_materialized_bit_for_bit(data):
    model = data.draw(random_models())
    space = data.draw(spaces_for(model))
    budget = data.draw(_budgets)
    full = _compute(model, space, None, "bracketed", True, instrument=False)
    streamed = evaluate_space_streamed(model, space, max_block_bytes=budget)
    _assert_bit_identical(full, streamed)


@given(data=st.data())
@settings(deadline=None, suppress_health_check=_suppress)
def test_memmap_transport_matches_materialized(data):
    model = data.draw(random_models())
    space = data.draw(spaces_for(model))
    budget = data.draw(_budgets)
    full = _compute(model, space, None, "bracketed", True, instrument=False)
    streamed = evaluate_space_streamed(
        model, space, max_block_bytes=budget, transport="memmap"
    )
    _assert_bit_identical(full, streamed)


@given(data=st.data())
@settings(deadline=None, suppress_health_check=_suppress)
def test_sharded_matches_materialized_bit_for_bit(data):
    model = data.draw(random_models())
    space = data.draw(spaces_for(model))
    full = _compute(model, space, None, "bracketed", True, instrument=False)
    plan = ExecutionPlan(
        workers=2, min_parallel_configs=1, clamp_workers=False
    )
    sharded = evaluate_plan(plan, model, space, None, "bracketed", True)
    _assert_bit_identical(full, sharded)


@given(data=st.data())
@settings(deadline=None, suppress_health_check=_suppress)
def test_scalar_strategy_matches_vectorized_at_rtol(data):
    model = data.draw(random_models())
    space = data.draw(spaces_for(model))
    full = _compute(model, space, None, "bracketed", True, instrument=False)
    scalar = planner._scalar_compute(
        model, space, model.inputs.baseline_class, "bracketed", True
    )
    np.testing.assert_allclose(scalar.times_s, full.times_s, rtol=RTOL)
    np.testing.assert_allclose(scalar.energies_j, full.energies_j, rtol=RTOL)
    np.testing.assert_allclose(scalar.ucrs, full.ucrs, rtol=RTOL)
    np.testing.assert_array_equal(scalar.saturated, full.saturated)


# ----------------------------------------------------------------------
# reductions select exactly the materialized indices
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def reference(xeon_sp_model):
    return _compute(xeon_sp_model, _SPACE, None, "bracketed", True, False)


@given(
    k=st.integers(1, 8),
    fraction=st.floats(0.0, 1.2),
    budget=_budgets,
)
@settings(deadline=None, suppress_health_check=_suppress)
def test_stream_topk_min_energy_exact(
    k, fraction, budget, xeon_sp_model, reference
):
    deadline = float(
        reference.times_s.min()
        + fraction * (reference.times_s.max() - reference.times_s.min())
    )
    selection = stream_topk(
        xeon_sp_model,
        _SPACE,
        k,
        objective="min_energy",
        deadline_s=deadline,
        max_block_bytes=budget,
    )
    scores = np.where(reference.times_s <= deadline, reference.energies_j, np.inf)
    feasible = np.flatnonzero(np.isfinite(scores))
    expected = feasible[
        np.argsort(scores[feasible], kind="stable")[:k]
    ] if feasible.size else np.empty(0, dtype=np.int64)
    np.testing.assert_array_equal(selection.indices, expected)
    if len(selection):
        np.testing.assert_array_equal(
            selection.evaluation.energies_j, reference.energies_j[expected]
        )


@given(
    k=st.integers(1, 8),
    fraction=st.floats(0.0, 1.2),
    budget=_budgets,
)
@settings(deadline=None, suppress_health_check=_suppress)
def test_stream_topk_min_time_exact(
    k, fraction, budget, xeon_sp_model, reference
):
    cap = float(
        reference.energies_j.min()
        + fraction * (reference.energies_j.max() - reference.energies_j.min())
    )
    selection = stream_topk(
        xeon_sp_model,
        _SPACE,
        k,
        objective="min_time",
        budget_j=cap,
        max_block_bytes=budget,
    )
    scores = np.where(reference.energies_j <= cap, reference.times_s, np.inf)
    feasible = np.flatnonzero(np.isfinite(scores))
    expected = feasible[
        np.argsort(scores[feasible], kind="stable")[:k]
    ] if feasible.size else np.empty(0, dtype=np.int64)
    np.testing.assert_array_equal(selection.indices, expected)


@given(k=st.integers(1, 4), budget=_budgets)
@settings(deadline=None, suppress_health_check=_suppress)
def test_stream_topk_max_ucr_matches_argmax(k, budget, xeon_sp_model, reference):
    selection = stream_topk(
        xeon_sp_model, _SPACE, k, objective="max_ucr", max_block_bytes=budget
    )
    expected = np.argsort(-reference.ucrs, kind="stable")[:k]
    np.testing.assert_array_equal(selection.indices, expected)
    assert selection.indices[0] == int(np.argmax(reference.ucrs))


@given(budget=_budgets)
@settings(deadline=None, suppress_health_check=_suppress)
def test_stream_pareto_membership_exact(budget, xeon_sp_model, reference):
    selection = stream_pareto(xeon_sp_model, _SPACE, max_block_bytes=budget)
    expected = np.flatnonzero(
        pareto_mask(reference.times_s, reference.energies_j)
    )
    np.testing.assert_array_equal(selection.indices, expected)
    np.testing.assert_array_equal(
        selection.evaluation.times_s, reference.times_s[expected]
    )


# ----------------------------------------------------------------------
# degenerate grids and budgets
# ----------------------------------------------------------------------


def test_single_config_grid_streams_exactly(xeon_sp_model):
    grid = ConfigSpace(
        node_counts=(1,), core_counts=(8,), frequencies_hz=(1.8e9,)
    )
    full = _compute(xeon_sp_model, grid, None, "bracketed", True, False)
    streamed = evaluate_space_streamed(xeon_sp_model, grid, max_block_bytes=1)
    _assert_bit_identical(full, streamed)
    selection = stream_topk(xeon_sp_model, grid, 5, max_block_bytes=1)
    assert selection.indices.tolist() == [0]


def test_space_empty_after_constraints_yields_empty_selection(
    xeon_sp_model, reference
):
    impossible = float(reference.times_s.min()) * 0.5
    selection = stream_topk(
        xeon_sp_model,
        _SPACE,
        3,
        objective="min_energy",
        deadline_s=impossible,
        max_block_bytes=WORKING_BYTES_PER_CONFIG + 1,
    )
    assert len(selection) == 0
    assert selection.best is None
    assert selection.configs == len(_SPACE)


def test_block_size_larger_than_grid_is_one_block(xeon_sp_model):
    full = _compute(xeon_sp_model, _SPACE, None, "bracketed", True, False)
    streamed = evaluate_space_streamed(
        xeon_sp_model, _SPACE, max_block_bytes=10**12
    )
    _assert_bit_identical(full, streamed)
    blocks = list(planner.iter_block_spaces(_SPACE, 10**12))
    assert len(blocks) == 1


def test_empty_explicit_sequence(xeon_sp_model):
    streamed = evaluate_space_streamed(xeon_sp_model, (), max_block_bytes=1)
    assert len(streamed) == 0
    selection = stream_pareto(xeon_sp_model, (), max_block_bytes=1)
    assert len(selection) == 0
