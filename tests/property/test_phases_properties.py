"""Property tests: phase composition invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machines.spec import InstructionMix
from repro.workloads.base import CommunicationModel, InputClass
from repro.workloads.phases import Phase, blend_mixes, compose

instr_st = st.floats(1e6, 1e10, allow_nan=False)
bytes_st = st.floats(0.0, 1e9, allow_nan=False)


@st.composite
def mixes(draw):
    parts = [draw(st.floats(0.01, 1.0)) for _ in range(4)]
    total = sum(parts)
    f, m, b, o = (p / total for p in parts)
    # absorb rounding into 'other'
    return InstructionMix(flops=f, mem=m, branch=b, other=1.0 - f - m - b)


@st.composite
def phase_lists(draw, max_phases=5):
    n = draw(st.integers(1, max_phases))
    return [
        Phase(
            name=f"p{i}",
            instructions=draw(instr_st),
            dram_bytes=draw(bytes_st),
            mix=draw(mixes()),
        )
        for i in range(n)
    ]


@given(phase_lists())
@settings(max_examples=100)
def test_blend_is_valid_mix(phases):
    mix = blend_mixes(phases)
    assert mix.flops + mix.mem + mix.branch + mix.other == pytest.approx(1.0)
    for v in (mix.flops, mix.mem, mix.branch, mix.other):
        assert 0.0 <= v <= 1.0


@given(phase_lists())
@settings(max_examples=100)
def test_blend_within_convex_hull(phases):
    """The blended mix never leaves the phases' min/max envelope."""
    mix = blend_mixes(phases)
    for attr in ("flops", "mem", "branch", "other"):
        values = [getattr(p.mix, attr) for p in phases]
        assert min(values) - 1e-12 <= getattr(mix, attr) <= max(values) + 1e-12


@given(phase_lists())
@settings(max_examples=100)
def test_compose_conserves_totals(phases):
    prog = compose(
        "X",
        phases,
        classes={"W": InputClass("W", iterations=10, size_factor=1.0)},
        reference_class="W",
        comm=CommunicationModel(4.0, 1e5, 0.0, 1.0),
        working_set_bytes=1e7,
    )
    assert prog.instructions_per_iteration == pytest.approx(
        sum(p.instructions for p in phases)
    )
    assert prog.dram_bytes_per_iteration == pytest.approx(
        sum(p.dram_bytes for p in phases)
    )


@given(phase_lists(max_phases=3))
@settings(max_examples=50)
def test_compose_order_invariant(phases):
    kwargs = dict(
        classes={"W": InputClass("W", iterations=10, size_factor=1.0)},
        reference_class="W",
        comm=CommunicationModel(4.0, 1e5, 0.0, 1.0),
        working_set_bytes=1e7,
    )
    a = compose("X", phases, **kwargs)
    b = compose("X", list(reversed(phases)), **kwargs)
    assert a.mix.flops == pytest.approx(b.mix.flops)
    assert a.instructions_per_iteration == pytest.approx(
        b.instructions_per_iteration
    )