"""Property-based tests of workload demand laws."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.base import CommunicationModel
from repro.workloads.synthetic import synthetic_program

msgs_st = st.floats(1.0, 1e3, allow_nan=False)
bytes_st = st.floats(1.0, 1e9, allow_nan=False)
exp_st = st.floats(0.0, 2.0, allow_nan=False)
nodes_st = st.integers(2, 256)


@given(msgs_st, bytes_st, exp_st, exp_st, nodes_st)
def test_nu_eta_volume_identity(msgs, vol, e1, e2, n):
    comm = CommunicationModel(msgs, vol, e1, e2)
    assert comm.bytes_per_message(n) * comm.messages_per_process(n) == pytest.approx(
        comm.volume_per_process(n)
    )


@given(msgs_st, bytes_st, exp_st, nodes_st)
def test_volume_decreases_with_nodes(msgs, vol, decomp, n):
    comm = CommunicationModel(msgs, vol, 0.0, max(decomp, 0.01))
    assert comm.volume_per_process(n + 1) <= comm.volume_per_process(n) + 1e-9


@given(msgs_st, bytes_st, nodes_st)
def test_reference_point_identity(msgs, vol, n):
    comm = CommunicationModel(msgs, vol, 1.0, 1.0)
    assert comm.messages_per_process(2) == pytest.approx(msgs)
    assert comm.volume_per_process(2) == pytest.approx(vol)


@given(
    st.floats(0.5, 64.0, allow_nan=False),
    st.floats(0.0, 0.5, allow_nan=False),
    st.sampled_from(["halo", "alltoall"]),
)
@settings(max_examples=100)
def test_synthetic_program_always_valid(intensity, comm_fraction, pattern):
    prog = synthetic_program(
        arithmetic_intensity=intensity,
        comm_fraction=comm_fraction,
        pattern=pattern,
    )
    assert prog.instructions("W") > 0
    assert prog.dram_bytes("W") > 0
    assert prog.comm.bytes_ref >= 1.0
    # scale factors multiply work consistently
    assert prog.scale_factor("C") == pytest.approx(4.0)


@given(st.integers(1, 64), st.integers(1, 16))
def test_sync_instructions_nonnegative_and_monotone(n, c):
    prog = synthetic_program(sync_coeff=0.01, sync_exponent=1.4)
    here = prog.sync_instructions("W", n, c)
    more = prog.sync_instructions("W", n * 2, c)
    assert here >= 0.0
    assert more >= here - 1e-9
