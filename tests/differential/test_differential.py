"""Differential harness: scalar model vs vectorized lanes vs simulator.

Four implementations of the paper's model must agree:

* ``HybridProgramModel.predict`` — the scalar reference path;
* ``evaluate_many`` — the vectorized engine the space sweeps run on
  (every lane must equal the scalar prediction at that configuration,
  including saturated/clamped network lanes);
* the scalar simulator — ground truth the model was calibrated against,
  which must stay within validation-level tolerance of the predictions;
* the batched simulator core — which must reproduce the scalar
  simulator **bit-for-bit** per lane (the resilience layer keys chaos
  decisions by exact float values, so "1e-9-close" is not close enough).

Configurations are drawn by hypothesis over (machine, workload, n, c, f),
including node counts far past the physical testbeds so the M/G/1
saturation clamp is exercised.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.vectorized import evaluate_many
from repro.machines.spec import Configuration
from repro.simulate import (
    FaultModel,
    RunRequest,
    SimulatedCluster,
    degraded_memory,
    degraded_network,
)
from repro.workloads.registry import get_program
from tests.conftest import config

#: Relative tolerance for scalar-vs-vectorized lane equality.  The lanes
#: run the same formulas over numpy arrays; they must agree to rounding.
LANE_RTOL = 1e-9

#: Node counts spanning physical (<= 8) through extrapolated territory
#: where the network queue saturates and the rho clamp engages.
NODE_COUNTS = [1, 2, 3, 4, 6, 8, 16, 32, 64, 128, 256]

#: Per-prediction scalar fields compared lane-by-lane.
_TIME_FIELDS = (
    "t_cpu_s",
    "t_mem_s",
    "t_net_service_s",
    "t_net_wait_s",
    "utilization_baseline",
    "rho_network",
)
_ENERGY_FIELDS = ("cpu_j", "mem_j", "net_j", "idle_j")


@pytest.fixture(params=["xeon_sp", "arm_cp"], scope="module")
def model(request, xeon_sp_model, arm_cp_model):
    """Both characterized session models, one per parametrization."""
    return {"xeon_sp": xeon_sp_model, "arm_cp": arm_cp_model}[request.param]


def _cores_of(m) -> list[int]:
    return sorted({key[0] for key in m.inputs.baseline})


def _frequencies_of(m) -> list[float]:
    return sorted({key[1] for key in m.inputs.baseline})


def _assert_lane_equals_scalar(model, cfg, rtol=LANE_RTOL):
    """The vectorized lane at ``cfg`` must reproduce the scalar path."""
    scalar = model.predict(cfg)
    vec = evaluate_many(model, (cfg,))
    assert len(vec) == 1
    t, e = scalar.time, scalar.energy
    for name in _TIME_FIELDS:
        assert float(getattr(vec, name)[0]) == pytest.approx(
            getattr(t, name), rel=rtol, abs=1e-12
        ), name
    for name in _ENERGY_FIELDS:
        assert float(getattr(vec, name)[0]) == pytest.approx(
            getattr(e, name), rel=rtol, abs=1e-12
        ), name
    assert bool(vec.saturated[0]) == t.saturated
    assert float(vec.times_s[0]) == pytest.approx(scalar.time_s, rel=rtol)
    assert float(vec.energies_j[0]) == pytest.approx(scalar.energy_j, rel=rtol)
    assert float(vec.ucrs[0]) == pytest.approx(scalar.ucr, rel=rtol)
    # the materialized Prediction must round-trip the lane exactly
    lane_pred = vec.prediction(0)
    assert lane_pred.config == cfg
    assert lane_pred.time_s == pytest.approx(scalar.time_s, rel=rtol)
    return scalar


class TestScalarVsVectorized:
    @given(data=st.data())
    @settings(max_examples=120, deadline=None)
    def test_every_lane_matches_scalar_prediction(self, model, data):
        n = data.draw(st.sampled_from(NODE_COUNTS), label="nodes")
        c = data.draw(st.sampled_from(_cores_of(model)), label="cores")
        f = data.draw(st.sampled_from(_frequencies_of(model)), label="f_hz")
        _assert_lane_equals_scalar(model, config(n, c, f / 1e9))

    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_batch_lanes_align_with_per_config_scalars(self, model, data):
        cores = _cores_of(model)
        freqs = _frequencies_of(model)
        configs = data.draw(
            st.lists(
                st.tuples(
                    st.sampled_from(NODE_COUNTS),
                    st.sampled_from(cores),
                    st.sampled_from(freqs),
                ),
                min_size=1,
                max_size=12,
            ),
            label="configs",
        )
        batch = tuple(config(n, c, f / 1e9) for n, c, f in configs)
        vec = evaluate_many(model, batch)
        for i, cfg in enumerate(batch):
            scalar = model.predict(cfg)
            assert float(vec.times_s[i]) == pytest.approx(
                scalar.time_s, rel=LANE_RTOL
            )
            assert float(vec.energies_j[i]) == pytest.approx(
                scalar.energy_j, rel=LANE_RTOL
            )
            assert bool(vec.saturated[i]) == scalar.time.saturated

    def test_saturated_lanes_are_exercised_and_agree(self, model):
        """Choking the network bandwidth clamps the M/G/1 queue, and the
        clamped (extrapolated) lanes must still match the scalar path.

        The characterized testbeds never saturate on their own (peak rho
        stays well under RHO_MAX even at 256 nodes), so the differential
        check reaches the clamp through a what-if bandwidth derating —
        the same mechanism ``repro.core.whatif`` exposes to users."""
        from repro.core.whatif import WhatIf

        choked = WhatIf(model).network_bandwidth(1e-4)
        cores = max(_cores_of(model))
        f = max(_frequencies_of(model))
        saturated_seen = False
        for n in NODE_COUNTS:
            scalar = _assert_lane_equals_scalar(choked, config(n, cores, f / 1e9))
            saturated_seen = saturated_seen or scalar.time.saturated
        assert saturated_seen, "no node count saturated the network queue"

    def test_unsaturated_lanes_exist_too(self, model):
        scalar = model.predict(config(1, 1, _frequencies_of(model)[0] / 1e9))
        assert not scalar.time.saturated


class TestDegradedCalibrationDifferential:
    """The scalar/vectorized agreement must survive degraded calibration:
    a model built from a lossy campaign is still one consistent model."""

    @pytest.fixture(scope="class")
    def degraded_model(self, arm_sim):
        from repro import resilience
        from repro.core.model import HybridProgramModel
        from repro.resilience.pipeline import characterize_resilient
        from repro.workloads.registry import get_program

        # counters only: its losses always degrade gracefully (baseline
        # repetitions are skipped, points survive on the remaining reps);
        # the required power/netpipe scalars stay chaos-free so the
        # campaign is guaranteed to complete
        chaos = resilience.ChaosSchedule(
            seed=1234,
            rules={"counters": resilience.ChaosRule(drop_p=0.4)},
        )
        with resilience.enabled(resilience.RetryPolicy(max_retries=0), chaos):
            inputs, report = characterize_resilient(
                arm_sim, get_program("CP")
            )
        model = HybridProgramModel(
            program=get_program("CP"), inputs=inputs
        )
        return model, report

    def test_campaign_actually_degraded(self, degraded_model):
        _, report = degraded_model
        assert report.degraded
        counters = report.coverage_for("counters")
        assert counters is not None and counters.lost > 0
        assert 0.0 < counters.coverage < 1.0
        # degraded instruments widen their groups' error bars
        sigmas = report.sigmas()
        assert any("w_s" in g or "P_act" in g for g in sigmas)
        for group, sigma in sigmas.items():
            assert sigma > 0.0
        factor = counters.sigma_factor()
        assert factor >= 1.0 / math.sqrt(max(counters.coverage, 1e-9)) - 1e-12

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_degraded_model_lanes_match_scalar(self, degraded_model, data):
        model, _ = degraded_model
        n = data.draw(st.sampled_from(NODE_COUNTS), label="nodes")
        c = data.draw(st.sampled_from(_cores_of(model)), label="cores")
        f = data.draw(st.sampled_from(_frequencies_of(model)), label="f_hz")
        _assert_lane_equals_scalar(model, config(n, c, f / 1e9))


class TestModelVsSimulator:
    """The model must stay within validation-level agreement of the
    simulator it was calibrated against (the paper reports < 15% mean
    error; individual points get a looser bound)."""

    @given(data=st.data())
    @settings(max_examples=8, deadline=None)
    def test_prediction_tracks_measurement(self, model, xeon_sim, arm_sim, data):
        from repro.analysis.validation import measure_configuration
        from repro.workloads.registry import get_program

        sim = xeon_sim if model.inputs.cluster == xeon_sim.spec.name else arm_sim
        program = get_program(model.inputs.program)
        # physical territory only: the simulator runs real configurations
        n = data.draw(st.sampled_from([1, 2, 4, 8]), label="nodes")
        c = data.draw(st.sampled_from(_cores_of(model)), label="cores")
        f = data.draw(st.sampled_from(_frequencies_of(model)), label="f_hz")
        cfg = config(n, c, f / 1e9)
        t_meas, e_meas = measure_configuration(
            sim, program, cfg, model.inputs.baseline_class, repetitions=2
        )
        pred = model.predict(cfg)
        assert pred.time_s == pytest.approx(t_meas, rel=0.40)
        assert pred.energy_j == pytest.approx(e_meas, rel=0.40)


def _assert_run_bit_identical(batched, scalar) -> None:
    """Every observable field of the two RunResults must be *equal*.

    The result records are frozen dataclasses of floats, so ``==`` is
    exact bit-level comparison — far stricter than LANE_RTOL, and the
    actual contract: ``resilience.value_token`` fingerprints results by
    exact float repr, so any last-bit drift would divert chaos schedules.
    """
    assert batched.program == scalar.program
    assert batched.class_name == scalar.class_name
    assert batched.cluster == scalar.cluster
    assert batched.config == scalar.config
    assert batched.wall_time_s == scalar.wall_time_s
    assert batched.energy == scalar.energy
    assert batched.counters == scalar.counters
    assert batched.messages == scalar.messages
    assert batched.phases == scalar.phases
    if scalar.trace is None:
        assert batched.trace is None
    else:
        assert batched.trace is not None
        for name in ("compute_s", "memory_s", "network_s", "iteration_s"):
            assert np.array_equal(
                getattr(batched.trace, name), getattr(scalar.trace, name)
            ), name


def _assert_backends_agree(sim: SimulatedCluster, requests) -> None:
    """run_batch must give bit-identical results on both backends."""
    scalar = sim.run_batch(requests, backend="scalar")
    batched = sim.run_batch(requests, backend="batched")
    assert len(scalar) == len(batched) == len(requests)
    for b, s in zip(batched, scalar):
        _assert_run_bit_identical(b, s)


class TestScalarVsBatchedSim:
    """Fourth differential lane: scalar simulator vs batched core.

    The batched core stacks lanes through one NumPy pipeline; every lane
    must come back bit-identical to the standalone scalar run with the
    same named RNG stream — across mixed configurations, repetition
    indices, DVFS throttle points, trace collection, fault injection and
    spec-level chaos degradations.
    """

    @given(data=st.data())
    @settings(max_examples=10, deadline=None)
    def test_mixed_batches_match_scalar_runs(self, xeon_sim, arm_sim, data):
        on_xeon = data.draw(st.booleans(), label="xeon")
        sim = xeon_sim if on_xeon else arm_sim
        program = get_program("SP" if on_xeon else "CP")
        freqs = sorted(sim.spec.node.core.frequencies_hz)
        specs = data.draw(
            st.lists(
                st.tuples(
                    st.sampled_from([1, 2, 4, 8]),
                    st.sampled_from([1, 2, sim.spec.node.max_cores]),
                    st.sampled_from(freqs),
                    st.integers(min_value=0, max_value=3),
                    st.booleans(),  # throttle stalls to fmin?
                ),
                min_size=2,
                max_size=6,
            ),
            label="requests",
        )
        requests = [
            RunRequest(
                program,
                Configuration(nodes=n, cores=c, frequency_hz=f),
                run_index=run,
                stall_frequency_hz=freqs[0] if throttle and f > freqs[0] else None,
            )
            for n, c, f, run, throttle in specs
        ]
        _assert_backends_agree(sim, requests)

    def test_replication_batch_matches_individual_runs(self, xeon_sim):
        """run_many (the validation campaign's shape) vs one-at-a-time."""
        program = get_program("SP")
        cfg = config(4, 8, 1.8)
        many = xeon_sim.run_many(program, cfg, repetitions=5)
        for i, result in enumerate(many):
            _assert_run_bit_identical(
                result, xeon_sim.run(program, cfg, run_index=i)
            )

    def test_traced_lanes_match(self, arm_sim):
        program = get_program("CP")
        requests = [
            RunRequest(program, config(2, 4, 1.4), run_index=i, collect_trace=True)
            for i in range(3)
        ]
        _assert_backends_agree(arm_sim, requests)

    def test_saturated_contention_matches(self, xeon_sim):
        """Heavy-contention lanes: full node count, full cores, choked
        memory and network so the Lindley queues run deep backlogs."""
        spec = degraded_network(degraded_memory(xeon_sim.spec, 0.05), 0.05)
        sim = SimulatedCluster(spec, root_seed=xeon_sim.root_seed)
        program = get_program("SP")
        requests = [
            RunRequest(program, config(8, 8, 1.8), run_index=i) for i in range(3)
        ]
        scalar = sim.run_batch(requests, backend="scalar")
        _assert_backends_agree(sim, requests)
        # the degradation must actually bite (deep queues, not a no-op)
        healthy = xeon_sim.run(program, config(8, 8, 1.8))
        assert scalar[0].wall_time_s > 2.0 * healthy.wall_time_s

    def test_chaos_degraded_faulty_lanes_match(self, arm_sim):
        """Straggler faults + degraded DRAM: the chaos-path arithmetic
        (apply_straggler, rescaled bandwidth) stays lane-exact too."""
        spec = degraded_memory(arm_sim.spec, 0.5)
        sim = SimulatedCluster(
            spec,
            root_seed=arm_sim.root_seed,
            faults=FaultModel(straggler_node=1, straggler_factor=1.6),
        )
        program = get_program("CP")
        requests = [
            RunRequest(program, config(4, 4, 1.4), run_index=i) for i in range(3)
        ] + [RunRequest(program, config(2, 2, 0.5), run_index=0)]
        _assert_backends_agree(sim, requests)
