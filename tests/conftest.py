"""Shared fixtures: simulated clusters and characterized models.

Characterization is the expensive step (a full single-node (c, f) sweep),
so models are cached per (cluster, program) at session scope.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import settings

from repro.core.model import HybridProgramModel
from repro.machines.arm import arm_cluster
from repro.machines.spec import Configuration
from repro.machines.xeon import xeon_cluster
from repro.simulate.cluster import SimulatedCluster
from repro.workloads.registry import get_program

# Hypothesis budget profiles, selected via REPRO_HYPOTHESIS_PROFILE.
# "smoke" keeps CI's tier-1 job deadline-safe (model characterization
# makes per-example wall time vary too much for hypothesis deadlines);
# "deep" is the nightly exhaustive sweep.  Tests that carry an explicit
# @settings(...) keep their own values — profiles only fill the gaps.
settings.register_profile("smoke", max_examples=15, deadline=None)
settings.register_profile("deep", max_examples=250, deadline=None)
settings.register_profile("default", max_examples=50, deadline=None)
settings.load_profile(os.environ.get("REPRO_HYPOTHESIS_PROFILE", "default"))


@pytest.fixture(scope="session", autouse=True)
def ambient_chaos():
    """Run the whole suite under a chaos schedule when REPRO_CHAOS is set.

    CI's chaos job points REPRO_CHAOS at a pinned drop/delay-only schedule
    (no corruption) with generous retries (REPRO_CHAOS_RETRIES, default 8):
    every sample eventually succeeds with its original value, so the suite
    must pass unchanged while the retry machinery is exercised end to end.
    """
    schedule_path = os.environ.get("REPRO_CHAOS")
    if not schedule_path:
        yield None
        return
    from repro import resilience

    policy = resilience.RetryPolicy(
        max_retries=int(os.environ.get("REPRO_CHAOS_RETRIES", "8"))
    )
    chaos = resilience.ChaosSchedule.load(schedule_path)
    with resilience.enabled(policy, chaos) as context:
        yield context


@pytest.fixture(scope="session")
def xeon_sim() -> SimulatedCluster:
    """Simulated 8-node Xeon cluster."""
    return SimulatedCluster(xeon_cluster())


@pytest.fixture(scope="session")
def arm_sim() -> SimulatedCluster:
    """Simulated 8-node ARM cluster."""
    return SimulatedCluster(arm_cluster())


@pytest.fixture(scope="session")
def model_cache():
    """Session cache of characterized models keyed by (cluster, program)."""
    cache: dict[tuple[str, str], HybridProgramModel] = {}

    def get(sim: SimulatedCluster, program_name: str) -> HybridProgramModel:
        key = (sim.spec.name, program_name)
        if key not in cache:
            cache[key] = HybridProgramModel.from_measurements(
                sim, get_program(program_name)
            )
        return cache[key]

    return get


@pytest.fixture(scope="session")
def xeon_sp_model(xeon_sim, model_cache) -> HybridProgramModel:
    """Characterized SP-on-Xeon model (the paper's flagship example)."""
    return model_cache(xeon_sim, "SP")


@pytest.fixture(scope="session")
def arm_cp_model(arm_sim, model_cache) -> HybridProgramModel:
    """Characterized CP-on-ARM model (Fig. 9's subject)."""
    return model_cache(arm_sim, "CP")


def config(n: int, c: int, f_ghz: float) -> Configuration:
    """Terse configuration constructor for tests."""
    return Configuration(nodes=n, cores=c, frequency_hz=f_ghz * 1e9)
